// Crossforum: break pseudo-anonymity between two Dark Web forums (§V-B of
// the paper). Some people hold aliases on both The Majestic Garden and the
// Dream Market; this example finds them from writing style and posting
// schedule alone, then checks the links against the generator's ground
// truth.
//
//	go run ./examples/crossforum
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"darklight"
)

func main() {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 7, Scale: 0.08})
	if err != nil {
		log.Fatal(err)
	}

	world.AlignUTC() // §IV-B: forum-local clocks → UTC
	pipe := darklight.NewPipeline()
	pipe.Polish(world.TMG)
	pipe.Polish(world.DM)

	tmg := pipe.Refine(world.TMG)
	dm := pipe.Refine(world.DM)
	fmt.Printf("refined: TMG %d aliases, DM %d aliases\n", tmg.Len(), dm.Len())

	// Count the cross-forum people an oracle could link.
	truth := world.Truth
	planted := 0
	for i := range dm.Aliases {
		if _, ok := truth.MateOn("dm/"+dm.Aliases[i].Name, darklight.PlatformTheMajesticGarden); ok {
			planted++
		}
	}
	fmt.Printf("planted cross-forum identities surviving refinement: %d\n\n", planted)

	// DM users are the unknowns; TMG is the known set.
	matches, err := pipe.Link(context.Background(), tmg, dm)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Score > matches[j].Score })

	fmt.Println("accepted pairs (dark alias -> dark alias):")
	for _, m := range matches {
		if !m.Accepted {
			continue
		}
		verdict := "WRONG"
		if truth.SamePerson("dm/"+m.Unknown, "tmg/"+m.Candidate) {
			verdict = "same person ✓"
		}
		fmt.Printf("  %.4f  %-26s -> %-26s %s\n", m.Score, m.Unknown, m.Candidate, verdict)
	}
}
