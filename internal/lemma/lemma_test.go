package lemma

import "testing"

func TestLemmatizeIrregulars(t *testing.T) {
	tests := []struct{ in, want string }{
		{"am", "am"}, // < 3 runes pass through untouched
		{"was", "be"},
		{"were", "be"},
		{"been", "be"},
		{"has", "have"},
		{"did", "do"},
		{"went", "go"},
		{"bought", "buy"},
		{"children", "child"},
		{"mice", "mouse"},
		{"people", "person"},
		{"better", "good"},
		{"worst", "bad"},
		{"wrote", "write"},
		{"written", "write"},
		{"THOUGHT", "think"}, // case-insensitive
	}
	for _, tt := range tests {
		if got := Lemmatize(tt.in); got != tt.want {
			t.Errorf("Lemmatize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLemmatizeSuffixRules(t *testing.T) {
	tests := []struct{ in, want string }{
		// -ing
		{"walking", "walk"},
		{"running", "run"},  // doubled consonant collapses
		{"falling", "fall"}, // ll kept
		{"making", "make"},  // silent e restored
		{"writing", "write"},
		{"believing", "believe"},
		// -ed
		{"walked", "walk"},
		{"stopped", "stop"},
		{"tried", "try"},
		{"hoped", "hope"},
		{"used", "use"},
		// plurals / 3sg
		{"dogs", "dog"},
		{"cities", "city"},
		{"boxes", "box"},
		{"classes", "class"},
		{"wolves", "wolf"},
		{"knives", "knife"},
		{"potatoes", "potato"},
		{"runs", "run"},
		// comparatives
		{"happier", "happy"},
		{"happiest", "happy"},
		// protected words
		{"this", "this"},
		{"news", "news"},
		{"morning", "morning"},
		{"bus", "bus"},
		{"anonymous", "anonymous"},
		{"series", "series"},
		{"string", "string"},
		// unknown words pass through
		{"zxqqv", "zxqqv"},
	}
	for _, tt := range tests {
		if got := Lemmatize(tt.in); got != tt.want {
			t.Errorf("Lemmatize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLemmatizeAllInPlace(t *testing.T) {
	words := []string{"Dogs", "were", "running"}
	got := LemmatizeAll(words)
	want := []string{"dog", "be", "run"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LemmatizeAll[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Idempotence: lemmatising a lemma must be stable for the whole
// irregular table and for typical rule outputs — feature extraction relies
// on a canonical form.
func TestLemmatizeIdempotentOnIrregularLemmas(t *testing.T) {
	seen := map[string]bool{}
	for _, lemma := range irregular {
		if seen[lemma] {
			continue
		}
		seen[lemma] = true
		once := Lemmatize(lemma)
		twice := Lemmatize(once)
		if once != twice {
			t.Errorf("Lemmatize not idempotent: %q → %q → %q", lemma, once, twice)
		}
	}
}

func TestShortWordsPassThrough(t *testing.T) {
	for _, w := range []string{"a", "of", "to", "it"} {
		if got := Lemmatize(w); got != w {
			t.Errorf("Lemmatize(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestNoVowelStemsUntouched(t *testing.T) {
	// "sphinxed" would strip to a vowel-less stem — rule must refuse.
	if got := Lemmatize("bcding"); got != "bcding" {
		t.Errorf("Lemmatize(bcding) = %q, want unchanged (no vowel in stem)", got)
	}
}
