// Package fsyncrename enforces the write → fsync → rename durability
// discipline: a file that has been written and is then moved over its
// destination with os.Rename must have Sync() called on it on every
// path in between. Rename is atomic for the directory entry only — the
// data blocks of the temp file may still be in the page cache, so a
// crash after an unsynced rename can leave the destination pointing at
// a truncated or empty file. That is exactly the shape of PR 8's
// checkpoint-compaction bug, and store.WriteFileAtomic is the blessed
// helper that gets the order right (write, fsync, rename, fsync dir).
//
// The pass runs a must-analysis over the function's control-flow
// graph: each *os.File created in the function carries a state — clean
// (nothing written), written, or synced — joined across paths by
// "least safe wins", so a Sync on only one branch does not bless the
// other. Writes are any write-shaped method, plus passing the file to
// another call (fmt.Fprintf, io.Copy, bufio.NewWriter — whatever
// happens in there, the file can no longer be assumed clean); a write
// after a Sync demotes the state back to written. The rename's source
// is tied to the file through f.Name(), directly in the call or via a
// string variable assigned from it. Cross-function write/rename splits
// are invisible (the analysis is intraprocedural) and carry a typed
// lint:ignore with the reason.
package fsyncrename

import (
	"go/ast"
	"go/types"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
	"darklight/internal/analysis/cfg"
)

// DefaultScope applies everywhere: every rename in the tree must be
// crash-safe.
const DefaultScope = "all"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the fsyncrename pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc: "a file written and then passed to os.Rename must have Sync() on every path in between " +
		"(store.WriteFileAtomic is the blessed helper)",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

// state is ordered least-safe-first so Join can take the minimum.
type state int

const (
	written state = iota // has unsynced writes: rename here is the bug
	clean                // created, nothing written yet
	synced               // all writes flushed
)

// fileFact maps each tracked *os.File object to its durability state.
type fileFact map[types.Object]state

// writeMethods are the os.File methods that dirty the file.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true, "Truncate": true,
}

type files struct {
	pass    *analysis.Pass
	aliases map[types.Object]types.Object // string var -> file object (from f.Name())
	report  bool
}

func (fl *files) Entry() fileFact { return nil }

func (fl *files) Join(a, b fileFact) fileFact {
	out := make(fileFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if have, ok := out[k]; !ok || v < have {
			out[k] = v
		}
	}
	return out
}

func (fl *files) Equal(a, b fileFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (fl *files) set(f fileFact, k types.Object, v state) fileFact {
	out := make(fileFact, len(f)+1)
	for kk, vv := range f {
		out[kk] = vv
	}
	out[k] = v
	return out
}

func (fl *files) Transfer(n ast.Node, in fileFact) fileFact {
	f := in
	info := fl.pass.TypesInfo
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			// f, err := os.Create/CreateTemp/OpenFile(...) starts
			// tracking; a rebind resets to clean.
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok &&
					astquery.IsPkgCall(info, call, "os", "Create", "CreateTemp", "OpenFile") {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if obj := astquery.ObjectOf(info, id); obj != nil {
							f = fl.set(f, obj, clean)
						}
					}
				}
			}
		case *ast.CallExpr:
			f = fl.call(n, f)
		}
		return true
	})
	return f
}

func (fl *files) call(call *ast.CallExpr, f fileFact) fileFact {
	info := fl.pass.TypesInfo

	// os.Rename(src, dst): the check itself.
	if astquery.IsPkgCall(info, call, "os", "Rename") && len(call.Args) == 2 {
		if obj := fl.renameSource(call.Args[0], f); obj != nil && f[obj] == written {
			if fl.report {
				fl.pass.Reportf(call.Pos(),
					"os.Rename of %s without Sync() on every path since its last write; "+
						"a crash can publish a truncated file — fsync before rename or use store.WriteFileAtomic",
					obj.Name())
			}
		}
		return f
	}

	// Method call on a tracked file.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := astquery.ObjectOf(info, id); obj != nil {
				if _, tracked := f[obj]; tracked {
					switch {
					case sel.Sel.Name == "Sync":
						return fl.set(f, obj, synced)
					case writeMethods[sel.Sel.Name]:
						return fl.set(f, obj, written)
					}
					return f // Close, Name, Stat, … leave the state alone
				}
			}
		}
	}

	// Any other call a tracked file is passed into may write it.
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := astquery.ObjectOf(info, id); obj != nil {
				if _, tracked := f[obj]; tracked {
					f = fl.set(f, obj, written)
				}
			}
		}
	}
	return f
}

// renameSource resolves os.Rename's first argument to a tracked file:
// either f.Name() inline or a string variable assigned from it.
func (fl *files) renameSource(src ast.Expr, f fileFact) types.Object {
	info := fl.pass.TypesInfo
	switch src := src.(type) {
	case *ast.Ident:
		if obj := astquery.ObjectOf(info, src); obj != nil {
			if file, ok := fl.aliases[obj]; ok {
				if _, tracked := f[file]; tracked {
					return file
				}
			}
		}
	case *ast.CallExpr:
		if sel, ok := src.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := astquery.ObjectOf(info, id); obj != nil {
					if _, tracked := f[obj]; tracked {
						return obj
					}
				}
			}
		}
	}
	return nil
}

// collectAliases pre-scans the body for `name := f.Name()` bindings,
// flow-insensitively; a string rebound from two different files is
// dropped as ambiguous.
func collectAliases(info *types.Info, body *ast.BlockStmt) map[types.Object]types.Object {
	aliases := make(map[types.Object]types.Object)
	ambiguous := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Name" {
			return true
		}
		fid, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		nid, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		nameObj := astquery.ObjectOf(info, nid)
		fileObj := astquery.ObjectOf(info, fid)
		if nameObj == nil || fileObj == nil {
			return true
		}
		if prev, ok := aliases[nameObj]; ok && prev != fileObj {
			ambiguous[nameObj] = true
		}
		aliases[nameObj] = fileObj
		return true
	})
	for k := range ambiguous {
		delete(aliases, k)
	}
	return aliases
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.EachFuncBody(func(body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap gate: no os.Rename in the body, nothing to prove.
	hasRename := false
	ast.Inspect(body, func(n ast.Node) bool {
		if hasRename {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok &&
			astquery.IsPkgCall(pass.TypesInfo, call, "os", "Rename") {
			hasRename = true
		}
		return true
	})
	if !hasRename {
		return
	}

	g := cfg.Build(body)
	an := &files{pass: pass, aliases: collectAliases(pass.TypesInfo, body)}
	in := cfg.Forward[fileFact](g, an)

	an.report = true
	for _, b := range g.Blocks {
		f := in[b]
		for _, n := range b.Nodes {
			f = an.Transfer(n, f)
		}
	}
	an.report = false
}
