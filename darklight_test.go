package darklight

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	world, err := GenerateWorld(WorldConfig{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func TestGenerateWorldDefaults(t *testing.T) {
	w, err := GenerateWorld(WorldConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Reddit.Len() == 0 || w.TMG.Len() == 0 || w.DM.Len() == 0 {
		t.Error("default world has empty forums")
	}
	if w.Truth == nil {
		t.Error("ground truth missing")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	world := testWorld(t)
	world.AlignUTC()
	pipe := NewPipeline()

	report := pipe.Polish(world.Reddit)
	if len(report.Steps) == 0 {
		t.Fatal("polish produced no report")
	}

	refined := pipe.Refine(world.Reddit)
	if refined.Len() == 0 || refined.Len() >= world.Reddit.Len() {
		t.Fatalf("refine kept %d of %d", refined.Len(), world.Reddit.Len())
	}

	main, ae := pipe.SplitAlterEgos(refined)
	if ae.Len() == 0 {
		t.Fatal("no alter-egos")
	}

	probes := ae
	if probes.Len() > 25 {
		trimmed := *probes
		trimmed.Aliases = trimmed.Aliases[:25]
		probes = &trimmed
	}
	matches, err := pipe.Link(context.Background(), main, probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != probes.Len() {
		t.Fatalf("matches = %d, probes = %d", len(matches), probes.Len())
	}
	correct := 0
	for _, m := range matches {
		if m.Unknown == m.Candidate {
			correct++
		}
	}
	if correct < len(matches)/2 {
		t.Errorf("alter-ego linking got %d of %d", correct, len(matches))
	}
}

func TestPipelineOptions(t *testing.T) {
	p := NewPipeline(
		WithThreshold(0.9),
		WithK(5),
		WithoutActivity(),
		WithWordBudget(500),
		WithForumUTCOffset(-300),
		WithWorkers(1),
	)
	if p.opts.Threshold != 0.9 || p.opts.K != 5 || p.opts.UseActivity || p.budget != 500 {
		t.Error("options not applied")
	}
	if p.actOpts.ForumUTCOffsetMinutes != -300 {
		t.Error("UTC offset not applied")
	}
}

func TestLinkDetailed(t *testing.T) {
	world := testWorld(t)
	pipe := NewPipeline(WithWordBudget(400))
	pipe.Polish(world.DM)
	refined := pipe.Refine(world.DM)
	if refined.Len() < 2 {
		t.Skip("tiny world produced too few refined DM aliases")
	}
	results, err := pipe.LinkDetailed(context.Background(), refined, refined)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Candidates) == 0 {
			t.Fatal("no stage-1 candidates")
		}
		// Self-linking: an alias matched against a set containing itself
		// must find itself first with score ≈ 1.
		if r.Best.Name != r.Unknown {
			t.Errorf("%s best-matched %s", r.Unknown, r.Best.Name)
		}
	}
}

func TestJSONLFiles(t *testing.T) {
	world := testWorld(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "dm.jsonl")
	if err := SaveJSONL(path, world.DM); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatal("file not written")
	}
	got, err := LoadJSONL(path, "DM", PlatformDreamMarket)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalMessages() != world.DM.TotalMessages() {
		t.Errorf("roundtrip lost messages: %d vs %d", got.TotalMessages(), world.DM.TotalMessages())
	}
	if _, err := LoadJSONL(filepath.Join(dir, "missing.jsonl"), "x", PlatformReddit); err == nil {
		t.Error("missing file must error")
	}
}

func TestPaperConstants(t *testing.T) {
	if DefaultThreshold != 0.4190 {
		t.Errorf("DefaultThreshold = %v", DefaultThreshold)
	}
	if DefaultK != 10 || DefaultWordBudget != 1500 {
		t.Errorf("constants = %d / %d", DefaultK, DefaultWordBudget)
	}
}

func TestVerify(t *testing.T) {
	world := testWorld(t)
	pipe := NewPipeline(WithWordBudget(400))
	pipe.Polish(world.Reddit)
	refined := pipe.Refine(world.Reddit)
	if refined.Len() < 5 {
		t.Skip("too few refined aliases")
	}
	main, ae := pipe.SplitAlterEgos(refined)
	if ae.Len() == 0 {
		t.Skip("no alter-egos")
	}
	alter := ae.Aliases[0]
	self, err := main.Find(alter.Name)
	if err != nil {
		t.Fatal(err)
	}
	other := &main.Aliases[0]
	if other.Name == alter.Name {
		other = &main.Aliases[1]
	}

	same, err := pipe.Verify(main, alter, *self)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := pipe.Verify(main, alter, *other)
	if err != nil {
		t.Fatal(err)
	}
	if same.Score <= diff.Score {
		t.Errorf("same-author score %.3f must exceed different-author score %.3f", same.Score, diff.Score)
	}
	if same.Threshold != pipe.opts.Threshold {
		t.Error("threshold not echoed")
	}
}
