// Command benchdiff runs a perf-regression benchmark suite and records the
// results in its trajectory file. Three suites exist, each with its own
// file so none clobbers another:
//
//   - matcher: the query hot path (BenchmarkRank, BenchmarkRescore,
//     BenchmarkMatchAll) → BENCH_matcher.json
//   - ingest: the corpus-onboarding path (BenchmarkPolish,
//     BenchmarkVocabBuild, BenchmarkIndexBuild, BenchmarkIngestEndToEnd)
//     → BENCH_ingest.json
//   - obs: the telemetry overhead guard (BenchmarkMatchAll and
//     BenchmarkIngestEndToEnd against their instrumented *Obs twins)
//     → BENCH_obs.json
//   - serve: the HTTP serving layer under closed-loop concurrent load
//     (BenchmarkServeRank, BenchmarkServeMatch, BenchmarkServeMixed in
//     ./internal/serve) → BENCH_serve.json. These benchmarks report a
//     per-request tail latency as a `p99-ns` custom metric; `-maxp99`
//     (a duration, e.g. 150ms; 0 disables) gates it.
//   - prefilter: the three stage-1 candidate paths (BenchmarkRankExact,
//     BenchmarkRankPruned, BenchmarkRankLSH in ./internal/attribution) at
//     N ∈ {1k, 10k, 100k} → BENCH_prefilter.json. Each reports its mean
//     exactly-scored candidates as a `cands/op` custom metric. Within a
//     phase, exact-vs-prefiltered ns/op ratios at each N are recorded
//     under `prefilter_speedups`; `-minpruned` and `-minlsh` gate the
//     ratios at the largest measured N (0 disables).
//   - store: the persistent index store (BenchmarkStoreSave,
//     BenchmarkStoreLoad, BenchmarkStoreRebuild in ./internal/store) at
//     N ∈ {1k, 10k, 100k} known subjects → BENCH_store.json. Within a
//     phase, rebuild-vs-load ns/op ratios at each N are recorded under
//     `cold_start_speedups` — how much faster cold-starting from the
//     snapshot is than rebuilding the index from the corpus —
//     and `-mincoldstart` gates the ratio at the largest measured N
//     (0 disables).
//
// Run a suite once from the commit you are starting from and once after
// your change:
//
//	go run ./cmd/benchdiff -suite ingest -phase before
//	go run ./cmd/benchdiff -suite ingest -phase after
//
// Phases merge into one file; when both are present a speedup factor
// (before ns/op divided by after ns/op) is computed per benchmark. Each
// phase stores the median of -count samples, so a single noisy run does
// not skew the trajectory. `-bench` and `-out` override the suite's
// benchmark filter and trajectory file for ad-hoc comparisons; `-benchtime`
// passes through to go test.
//
// For every Benchmark<X>Obs / Benchmark<X> pair measured in the same
// phase, the ratio of instrumented to uninstrumented ns/op minus one is
// recorded under `overheads`. `-maxoverhead` (percent, default 3; 0
// disables) turns the ratio into a gate: telemetry costing more than the
// bound fails the run.
//
// `benchdiff -summary` runs nothing: it joins every BENCH_*.json in the
// working directory into one aligned table (per-benchmark before/after
// ns/op, speedups, serve p99, plus the derived overhead and speedup
// ratios) — the whole recorded perf surface in one read.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics is one phase's measurement of one benchmark (medians over the
// -count samples).
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// P99Ns is the per-request p99 latency the serve benchmarks report
	// through b.ReportMetric as "p99-ns"; zero for suites without it.
	P99Ns float64 `json:"p99_ns,omitempty"`
	// CandsPerOp is the mean exactly-scored candidate count the prefilter
	// benchmarks report as "cands/op"; zero for suites without it.
	CandsPerOp float64 `json:"cands_per_op,omitempty"`
	Samples    int     `json:"samples"`
}

// Entry pairs the two phases of one benchmark.
type Entry struct {
	Before *Metrics `json:"before,omitempty"`
	After  *Metrics `json:"after,omitempty"`
	// Speedup is before.ns_per_op / after.ns_per_op (>1 means faster).
	Speedup float64 `json:"speedup,omitempty"`
}

// File is the BENCH_matcher.json schema.
type File struct {
	Description string            `json:"description"`
	GoVersion   string            `json:"go_version"`
	CPU         string            `json:"cpu,omitempty"`
	Benchmarks  map[string]*Entry `json:"benchmarks"`
	// Overheads maps each benchmark that has an instrumented <name>Obs
	// twin to (obs ns/op ÷ base ns/op) − 1, from the most recent phase
	// that measured both.
	Overheads map[string]float64 `json:"overheads,omitempty"`
	// PrefilterSpeedups maps "RankPruned/N=100000"-style keys to the
	// exact-scan ns/op divided by that path's ns/op at the same world
	// size, from the most recent phase that measured the pair (>1 means
	// the pre-filter is faster than scoring everything).
	PrefilterSpeedups map[string]float64 `json:"prefilter_speedups,omitempty"`
	// ColdStartSpeedups maps "StoreLoad/N=100000"-style keys to the
	// from-scratch rebuild ns/op divided by the snapshot load ns/op at the
	// same world size, from the most recent phase that measured the pair
	// (>1 means cold-starting from the snapshot beats rebuilding).
	ColdStartSpeedups map[string]float64 `json:"cold_start_speedups,omitempty"`
}

// benchName matches the leading "BenchmarkX-8" column; the metric columns
// after it are free-form (value, unit) pairs parsed by parseLine, so custom
// b.ReportMetric units like p99-ns survive alongside -benchmem's columns.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?$`)

// suite bundles a benchmark filter with the trajectory file it maintains
// and the package the benchmarks live in ("" means the module root).
type suite struct {
	pattern     string
	out         string
	pkg         string
	description string
}

var suites = map[string]suite{
	"matcher": {
		pattern:     "^(BenchmarkRank|BenchmarkRescore|BenchmarkMatchAll)$",
		out:         "BENCH_matcher.json",
		description: "Matcher hot-path benchmark trajectory. Regenerate with `go run ./cmd/benchdiff -suite matcher -phase before|after`; medians of -count runs, ns/op ratios in `speedup`.",
	},
	"ingest": {
		pattern:     "^(BenchmarkPolish|BenchmarkVocabBuild|BenchmarkIndexBuild|BenchmarkIngestEndToEnd)$",
		out:         "BENCH_ingest.json",
		description: "Ingest-path benchmark trajectory (polish, vocabulary build, index build, end-to-end onboarding). Regenerate with `go run ./cmd/benchdiff -suite ingest -phase before|after`; medians of -count runs, ns/op ratios in `speedup`.",
	},
	"obs": {
		pattern:     "^(BenchmarkMatchAll|BenchmarkMatchAllObs|BenchmarkIngestEndToEnd|BenchmarkIngestEndToEndObs)$",
		out:         "BENCH_obs.json",
		description: "Telemetry overhead trajectory: instrumented (tracing on, metrics live) vs uninstrumented runs of the two headline paths. Regenerate with `go run ./cmd/benchdiff -suite obs -phase before|after`; `overheads` holds (obs ÷ base) − 1 per pair, gated by -maxoverhead.",
	},
	"serve": {
		pattern:     "^(BenchmarkServeRank|BenchmarkServeRankObs|BenchmarkServeMatch|BenchmarkServeMixed)$",
		out:         "BENCH_serve.json",
		pkg:         "./internal/serve",
		description: "Serving-layer load trajectory: closed-loop concurrent drivers through the full /v1 middleware + handler chain, with every response verified byte-identical to the sequential matcher. ServeRankObs repeats the rank load with request tracing live; `overheads` holds its (obs ÷ base) − 1 ratio, gated by -maxoverhead. Regenerate with `go run ./cmd/benchdiff -suite serve -phase before|after`; `p99_ns` is the per-request tail latency, gated by -maxp99.",
	},
	"prefilter": {
		pattern:     "^(BenchmarkRankExact|BenchmarkRankPruned|BenchmarkRankLSH)$",
		out:         "BENCH_prefilter.json",
		pkg:         "./internal/attribution",
		description: "Stage-1 pre-filter trajectory: the exact posting scan vs the lossless upper-bound pruned walk vs banded MinHash-LSH, at 1k/10k/100k known subjects. Regenerate with `go run ./cmd/benchdiff -suite prefilter -phase before|after`; `cands_per_op` is the mean exactly-scored candidate count, `prefilter_speedups` holds exact÷path ns ratios per world size, gated at the largest size by -minpruned/-minlsh.",
	},
	"store": {
		pattern:     "^(BenchmarkStoreSave|BenchmarkStoreLoad|BenchmarkStoreRebuild)$",
		out:         "BENCH_store.json",
		pkg:         "./internal/store",
		description: "Persistent index store trajectory: snapshot save, digest-verified load + matcher reassembly, and the from-scratch rebuild it replaces, at 1k/10k/100k known subjects. Regenerate with `go run ./cmd/benchdiff -suite store -phase before|after`; `cold_start_speedups` holds rebuild÷load ns ratios per world size, gated at the largest size by -mincoldstart.",
	},
}

func main() {
	phase := flag.String("phase", "", "which side of the change this run measures: before | after")
	count := flag.Int("count", 3, "benchmark sample count (median is recorded)")
	suiteName := flag.String("suite", "matcher", "benchmark suite: matcher | ingest | obs | serve | prefilter | store")
	out := flag.String("out", "", "trajectory file to create or merge into (default: the suite's file)")
	pattern := flag.String("bench", "", "benchmark selection pattern (default: the suite's filter)")
	pkg := flag.String("pkg", "", "package containing the benchmarks (default: the suite's package)")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime (e.g. 1x, 2s)")
	maxOverhead := flag.Float64("maxoverhead", 3, "fail when an Obs twin costs more than this percent over its base (0 disables)")
	maxP99 := flag.Duration("maxp99", 0, "fail when a benchmark's p99-ns metric exceeds this duration (0 disables)")
	minPruned := flag.Float64("minpruned", 0, "fail when the pruned path is not at least this many times faster than the exact scan at the largest world size (0 disables)")
	minLSH := flag.Float64("minlsh", 0, "fail when the LSH path is not at least this many times faster than the exact scan at the largest world size (0 disables)")
	minColdStart := flag.Float64("mincoldstart", 0, "fail when loading the snapshot is not at least this many times faster than rebuilding the index at the largest world size (0 disables)")
	summary := flag.Bool("summary", false, "join every BENCH_*.json into one table on stdout and exit; runs no benchmarks")
	flag.Parse()
	if *summary {
		paths, err := filepath.Glob("BENCH_*.json")
		if err == nil {
			err = runSummary(paths, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *phase != "before" && *phase != "after" {
		fmt.Fprintln(os.Stderr, "benchdiff: -phase must be 'before' or 'after'")
		flag.Usage()
		os.Exit(2)
	}
	s, ok := suites[*suiteName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchdiff: unknown suite %q (want matcher, ingest, obs, serve, prefilter, or store)\n", *suiteName)
		os.Exit(2)
	}
	if *out == "" {
		*out = s.out
	}
	if *pattern == "" {
		*pattern = s.pattern
	}
	if *pkg == "" {
		*pkg = s.pkg
	}
	if *pkg == "" {
		*pkg = "."
	}

	args := []string{"test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: go test -bench failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}
	os.Stdout.Write(outBytes)

	samples, cpu := parse(string(outBytes))
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results parsed")
		os.Exit(1)
	}

	f := load(*out, s.description)
	f.GoVersion = runtime.Version()
	if cpu != "" {
		f.CPU = cpu
	}
	for name, ms := range samples {
		short := strings.TrimPrefix(name, "Benchmark")
		e := f.Benchmarks[short]
		if e == nil {
			e = &Entry{}
			f.Benchmarks[short] = e
		}
		med := median(ms)
		if *phase == "before" {
			e.Before = &med
		} else {
			e.After = &med
		}
		if e.Before != nil && e.After != nil && e.After.NsPerOp > 0 {
			e.Speedup = round3(e.Before.NsPerOp / e.After.NsPerOp)
		} else {
			e.Speedup = 0
		}
	}

	overheadFailed := gateOverheads(f, *phase, *maxOverhead)
	p99Failed := gateP99(f, *phase, *maxP99)
	prefilterFailed := gatePrefilter(f, *phase, *minPruned, *minLSH)
	storeFailed := gateStore(f, *phase, *minColdStart)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: recorded %q phase for %d benchmarks in %s\n", *phase, len(samples), *out)
	if overheadFailed || p99Failed || prefilterFailed || storeFailed {
		os.Exit(1)
	}
}

// gateStore pairs the from-scratch StoreRebuild with the snapshot
// StoreLoad at the same world size, records the rebuild÷load ns ratios in
// f, and gates them against -mincoldstart at the largest measured size
// only — that is the regime where cold-start time matters and where fixed
// per-load costs stop drowning the signal.
func gateStore(f *File, phase string, minColdStart float64) bool {
	pick := func(e *Entry) *Metrics {
		if e == nil {
			return nil
		}
		if phase == "after" {
			return e.After
		}
		return e.Before
	}
	largest := 0
	rebuilds := map[int]*Metrics{}
	for short, e := range f.Benchmarks {
		rest, ok := strings.CutPrefix(short, "StoreRebuild/N=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if m := pick(e); m != nil && m.NsPerOp > 0 {
			rebuilds[n] = m
			if n > largest {
				largest = n
			}
		}
	}
	failed := false
	for n, rebuild := range rebuilds {
		key := fmt.Sprintf("StoreLoad/N=%d", n)
		m := pick(f.Benchmarks[key])
		if m == nil || m.NsPerOp == 0 {
			continue
		}
		ratio := rebuild.NsPerOp / m.NsPerOp
		if f.ColdStartSpeedups == nil {
			f.ColdStartSpeedups = make(map[string]float64)
		}
		f.ColdStartSpeedups[key] = round3(ratio)
		fmt.Fprintf(os.Stderr, "benchdiff: %s: cold start %.2fx faster than rebuild\n", key, ratio)
		if n == largest && minColdStart > 0 && ratio < minColdStart {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL: %s cold-start speedup %.2fx is under the %.2fx bound\n", key, ratio, minColdStart)
			failed = true
		}
	}
	return failed
}

// gatePrefilter pairs the exact stage-1 scan with each pre-filtered path
// at the same world size, records the exact÷path ns ratios in f, and
// gates them against -minpruned/-minlsh at the largest measured size only
// — small worlds leave too little room between fixed per-query costs and
// the scan for a stable bound, and the acceptance target is the scaling
// regime anyway.
func gatePrefilter(f *File, phase string, minPruned, minLSH float64) bool {
	pick := func(e *Entry) *Metrics {
		if e == nil {
			return nil
		}
		if phase == "after" {
			return e.After
		}
		return e.Before
	}
	largest := 0
	exacts := map[int]*Metrics{}
	for short, e := range f.Benchmarks {
		rest, ok := strings.CutPrefix(short, "RankExact/N=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if m := pick(e); m != nil && m.NsPerOp > 0 {
			exacts[n] = m
			if n > largest {
				largest = n
			}
		}
	}
	failed := false
	for n, exact := range exacts {
		for path, min := range map[string]float64{"RankPruned": minPruned, "RankLSH": minLSH} {
			key := fmt.Sprintf("%s/N=%d", path, n)
			m := pick(f.Benchmarks[key])
			if m == nil || m.NsPerOp == 0 {
				continue
			}
			ratio := exact.NsPerOp / m.NsPerOp
			if f.PrefilterSpeedups == nil {
				f.PrefilterSpeedups = make(map[string]float64)
			}
			f.PrefilterSpeedups[key] = round3(ratio)
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %.2fx the exact scan (%.0f of %d candidates scored)\n",
				key, ratio, m.CandsPerOp, n)
			if n == largest && min > 0 && ratio < min {
				fmt.Fprintf(os.Stderr, "benchdiff: FAIL: %s speedup %.2fx is under the %.2fx bound\n", key, ratio, min)
				failed = true
			}
		}
	}
	return failed
}

// gateP99 checks every benchmark that reported a p99-ns metric in the
// current phase against the -maxp99 bound (0 disables the gate).
func gateP99(f *File, phase string, maxP99 time.Duration) bool {
	if maxP99 <= 0 {
		return false
	}
	failed := false
	for short, e := range f.Benchmarks {
		m := e.Before
		if phase == "after" {
			m = e.After
		}
		if m == nil || m.P99Ns == 0 {
			continue
		}
		p99 := time.Duration(m.P99Ns)
		fmt.Fprintf(os.Stderr, "benchdiff: p99 latency on %s: %s\n", short, p99)
		if m.P99Ns > float64(maxP99) {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL: %s p99 %s exceeds the %s bound\n", short, p99, maxP99)
			failed = true
		}
	}
	return failed
}

// gateOverheads pairs every Benchmark<X>Obs with its Benchmark<X> base in
// the given phase, records the relative overheads in f, and reports
// whether any pair exceeded maxOverhead percent (0 disables the gate).
func gateOverheads(f *File, phase string, maxOverhead float64) bool {
	failed := false
	for short, e := range f.Benchmarks {
		base, ok := strings.CutSuffix(short, "Obs")
		if !ok {
			continue
		}
		be := f.Benchmarks[base]
		if be == nil {
			continue
		}
		obsM, baseM := e.Before, be.Before
		if phase == "after" {
			obsM, baseM = e.After, be.After
		}
		if obsM == nil || baseM == nil || baseM.NsPerOp == 0 {
			continue
		}
		ov := obsM.NsPerOp/baseM.NsPerOp - 1
		if f.Overheads == nil {
			f.Overheads = make(map[string]float64)
		}
		f.Overheads[base] = round3(ov)
		fmt.Fprintf(os.Stderr, "benchdiff: telemetry overhead on %s: %+.2f%%\n", base, ov*100)
		if maxOverhead > 0 && ov*100 > maxOverhead {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL: %s overhead %.2f%% exceeds the %.2f%% bound\n", base, ov*100, maxOverhead)
			failed = true
		}
	}
	return failed
}

// parse collects every sample per benchmark name plus the reported CPU.
func parse(output string) (map[string][]Metrics, string) {
	samples := make(map[string][]Metrics)
	cpu := ""
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		name, s, ok := parseLine(line)
		if !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	return samples, cpu
}

// parseLine parses one benchmark result line: the name column, the
// iteration count, then (value, unit) metric pairs in any order — the
// standard ns/op, B/op, allocs/op plus custom b.ReportMetric units like
// p99-ns. Lines without an ns/op pair are not results.
func parseLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Metrics{}, false
	}
	nm := benchName.FindStringSubmatch(fields[0])
	if nm == nil {
		return "", Metrics{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Metrics{}, false
	}
	var s Metrics
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
			sawNs = true
		case "B/op":
			s.BytesPerOp = v
		case "allocs/op":
			s.AllocsPerOp = v
		case "p99-ns":
			s.P99Ns = v
		case "cands/op":
			s.CandsPerOp = v
		}
	}
	return nm[1], s, sawNs
}

// median takes the per-field median so one outlier run cannot skew the
// recorded trajectory point.
func median(ms []Metrics) Metrics {
	pick := func(get func(Metrics) float64) float64 {
		vs := make([]float64, len(ms))
		for i, m := range ms {
			vs[i] = get(m)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return Metrics{
		NsPerOp:     pick(func(m Metrics) float64 { return m.NsPerOp }),
		BytesPerOp:  pick(func(m Metrics) float64 { return m.BytesPerOp }),
		AllocsPerOp: pick(func(m Metrics) float64 { return m.AllocsPerOp }),
		P99Ns:       pick(func(m Metrics) float64 { return m.P99Ns }),
		CandsPerOp:  pick(func(m Metrics) float64 { return m.CandsPerOp }),
		Samples:     len(ms),
	}
}

func load(path, description string) *File {
	f := &File{
		Description: description,
		Benchmarks:  make(map[string]*Entry),
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return f
	}
	var existing File
	if err := json.Unmarshal(data, &existing); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring unreadable %s: %v\n", path, err)
		return f
	}
	if existing.Benchmarks == nil {
		existing.Benchmarks = make(map[string]*Entry)
	}
	if existing.Description == "" {
		existing.Description = f.Description
	}
	return &existing
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
