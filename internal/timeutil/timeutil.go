// Package timeutil provides the calendar arithmetic the daily-activity
// profile of the paper depends on: UTC alignment of forum-local timestamps,
// weekend detection, and a US public-holiday calendar (the datasets of the
// paper are from 2017 and dominated by North-American users; §IV-B excludes
// weekends and holidays because users change their habits on those days).
package timeutil

import (
	"fmt"
	"time"
)

// AlignUTC converts a forum-local timestamp to UTC given the forum's fixed
// UTC offset in minutes. Forums in the paper report times in their own
// time zone; eq. (1) profiles are only comparable after alignment.
func AlignUTC(t time.Time, offsetMinutes int) time.Time {
	return t.Add(-time.Duration(offsetMinutes) * time.Minute).UTC()
}

// IsWeekend reports whether the (UTC) timestamp falls on Saturday or Sunday.
func IsWeekend(t time.Time) bool {
	wd := t.UTC().Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// dateKey is a calendar day, comparable.
type dateKey struct {
	y int
	m time.Month
	d int
}

func keyOf(t time.Time) dateKey {
	u := t.UTC()
	return dateKey{u.Year(), u.Month(), u.Day()}
}

// HolidayCalendar is a set of calendar days to exclude from activity
// profiles. The zero value is an empty calendar.
type HolidayCalendar struct {
	days map[dateKey]string
}

// NewHolidayCalendar returns an empty calendar.
func NewHolidayCalendar() *HolidayCalendar {
	return &HolidayCalendar{days: make(map[dateKey]string)}
}

// Add marks a day as a holiday with a descriptive name.
func (c *HolidayCalendar) Add(year int, month time.Month, day int, name string) {
	if c.days == nil {
		c.days = make(map[dateKey]string)
	}
	c.days[dateKey{year, month, day}] = name
}

// Contains reports whether the timestamp's UTC calendar day is a holiday.
func (c *HolidayCalendar) Contains(t time.Time) bool {
	if c == nil || c.days == nil {
		return false
	}
	_, ok := c.days[keyOf(t)]
	return ok
}

// Name returns the holiday name for the day, if any.
func (c *HolidayCalendar) Name(t time.Time) (string, bool) {
	if c == nil || c.days == nil {
		return "", false
	}
	n, ok := c.days[keyOf(t)]
	return n, ok
}

// Len returns the number of holiday days in the calendar.
func (c *HolidayCalendar) Len() int {
	if c == nil {
		return 0
	}
	return len(c.days)
}

// USHolidays returns the federal US holidays (observed dates) for the given
// year, computed from the statutory rules. This covers the years the
// paper's datasets span without embedding a static table per year.
func USHolidays(year int) *HolidayCalendar {
	c := NewHolidayCalendar()
	add := func(m time.Month, d int, name string) { c.Add(year, m, d, name) }

	// Fixed-date holidays, shifted to the observed weekday when they land
	// on a weekend (Saturday → Friday before, Sunday → Monday after).
	observed := func(m time.Month, d int, name string) {
		t := time.Date(year, m, d, 12, 0, 0, 0, time.UTC)
		switch t.Weekday() {
		case time.Saturday:
			t = t.AddDate(0, 0, -1)
		case time.Sunday:
			t = t.AddDate(0, 0, 1)
		}
		c.Add(t.Year(), t.Month(), t.Day(), name)
	}
	observed(time.January, 1, "New Year's Day")
	observed(time.July, 4, "Independence Day")
	observed(time.November, 11, "Veterans Day")
	observed(time.December, 25, "Christmas Day")

	// Nth-weekday holidays.
	add(time.January, nthWeekday(year, time.January, time.Monday, 3), "Martin Luther King Jr. Day")
	add(time.February, nthWeekday(year, time.February, time.Monday, 3), "Washington's Birthday")
	add(time.May, lastWeekday(year, time.May, time.Monday), "Memorial Day")
	add(time.September, nthWeekday(year, time.September, time.Monday, 1), "Labor Day")
	add(time.October, nthWeekday(year, time.October, time.Monday, 2), "Columbus Day")
	add(time.November, nthWeekday(year, time.November, time.Thursday, 4), "Thanksgiving Day")
	return c
}

// nthWeekday returns the day of month of the n-th given weekday of the month.
func nthWeekday(year int, month time.Month, wd time.Weekday, n int) int {
	first := time.Date(year, month, 1, 12, 0, 0, 0, time.UTC)
	offset := (int(wd) - int(first.Weekday()) + 7) % 7
	return 1 + offset + (n-1)*7
}

// lastWeekday returns the day of month of the last given weekday of the month.
func lastWeekday(year int, month time.Month, wd time.Weekday) int {
	last := time.Date(year, month+1, 1, 12, 0, 0, 0, time.UTC).AddDate(0, 0, -1)
	offset := (int(last.Weekday()) - int(wd) + 7) % 7
	return last.Day() - offset
}

// DayHour identifies one (day, hour) activity bin as used by eq. (1):
// a_u(d, h) is 1 when the user posted at least once in hour h of day d.
type DayHour struct {
	Day  dateKey
	Hour int
}

// BinUTC returns the DayHour bin of a timestamp after UTC conversion.
func BinUTC(t time.Time) DayHour {
	u := t.UTC()
	return DayHour{Day: keyOf(u), Hour: u.Hour()}
}

// String implements fmt.Stringer for debugging.
func (dh DayHour) String() string {
	return fmt.Sprintf("%04d-%02d-%02d@%02dh", dh.Day.y, dh.Day.m, dh.Day.d, dh.Hour)
}
