package experiments

import (
	"fmt"
	"sort"
	"strings"

	"darklight/internal/attribution"
	"darklight/internal/eval"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/synth"
)

// ---------------------------------------------------------------- Table I

// Table1Row is one topic of the Reddit composition table.
type Table1Row struct {
	Topic            string
	Subreddits       int
	SubscriptionsPct float64 // share of (user, subreddit) posting pairs
	MessagesPct      float64
	PopularSubreddit string
	PopularMessages  int
}

// Table1Report reproduces Table I: the Reddit dataset's composition by
// topic.
type Table1Report struct {
	Rows          []Table1Row
	TotalMessages int
	TotalUsers    int
}

// Table1 computes the composition of the polished Reddit dataset.
func (l *Lab) Table1() *Table1Report {
	type agg struct {
		boards   map[string]int // board → messages
		userSubs int            // (user, board) pairs
		messages int
	}
	byTopic := make(map[string]*agg)
	total := 0
	totalSubs := 0
	for i := range l.RawReddit.Aliases {
		a := &l.RawReddit.Aliases[i]
		seen := make(map[string]bool)
		for j := range a.Messages {
			board := a.Messages[j].Board
			topic := synth.TopicOfBoard(board)
			if topic == "" {
				continue
			}
			ag := byTopic[topic]
			if ag == nil {
				ag = &agg{boards: make(map[string]int)}
				byTopic[topic] = ag
			}
			ag.boards[board]++
			ag.messages++
			total++
			if !seen[board] {
				seen[board] = true
				ag.userSubs++
				totalSubs++
			}
		}
	}
	rep := &Table1Report{TotalMessages: total, TotalUsers: l.RawReddit.Len()}
	for _, topic := range synth.Topics {
		ag := byTopic[topic]
		if ag == nil {
			continue
		}
		row := Table1Row{Topic: topic, Subreddits: len(ag.boards)}
		if total > 0 {
			row.MessagesPct = 100 * float64(ag.messages) / float64(total)
		}
		if totalSubs > 0 {
			row.SubscriptionsPct = 100 * float64(ag.userSubs) / float64(totalSubs)
		}
		for b, c := range ag.boards {
			if c > row.PopularMessages || (c == row.PopularMessages && b < row.PopularSubreddit) {
				row.PopularSubreddit, row.PopularMessages = b, c
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// String renders the table in the paper's row format.
func (r *Table1Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Reddit dataset composition by topic (%d users, %d topic-labelled messages)\n",
		r.TotalUsers, r.TotalMessages)
	fmt.Fprintf(&b, "%-20s %12s %15s %12s %20s %12s\n",
		"Topic", "subreddits(#)", "subscripts(%)", "messages(%)", "popular subreddit", "messages(#)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %12d %14.1f%% %11.1f%% %20s %12d\n",
			row.Topic, row.Subreddits, row.SubscriptionsPct, row.MessagesPct,
			"r/"+row.PopularSubreddit, row.PopularMessages)
	}
	return b.String()
}

// --------------------------------------------------------------- Table II

// Table2Report reproduces Table II: the feature budgets of the two stages
// and the vocabulary sizes actually realised on the Reddit corpus.
type Table2Report struct {
	ReductionConfigured features.Config
	FinalConfigured     features.Config
	// Realised sizes on the lab's Reddit corpus under the reduction config.
	RealisedWordGrams int
	RealisedCharGrams int
	FreqFeatures      int
	ActivityDims      int
}

// Table2 reports the feature-space shape.
func (l *Lab) Table2() (*Table2Report, error) {
	m, err := l.RedditMatcher()
	if err != nil {
		return nil, err
	}
	v := m.Vocabulary()
	return &Table2Report{
		ReductionConfigured: features.ReductionConfig(),
		FinalConfigured:     features.FinalConfig(),
		RealisedWordGrams:   v.NumWordGrams(),
		RealisedCharGrams:   v.NumCharGrams(),
		FreqFeatures:        features.NumFreqFeatures,
		ActivityDims:        24,
	}, nil
}

// String renders the table.
func (r *Table2Report) String() string {
	var b strings.Builder
	b.WriteString("Table II — features used for space reduction and final classification\n")
	fmt.Fprintf(&b, "%-34s %16s %10s %10s\n", "Type", "Space Reduction", "Final", "realised")
	fmt.Fprintf(&b, "%-34s %16d %10d %10d\n", "Word n-grams 1-3",
		r.ReductionConfigured.MaxWordGrams, r.FinalConfigured.MaxWordGrams, r.RealisedWordGrams)
	fmt.Fprintf(&b, "%-34s %16d %10d %10d\n", "Char n-grams 1-5",
		r.ReductionConfigured.MaxCharGrams, r.FinalConfigured.MaxCharGrams, r.RealisedCharGrams)
	fmt.Fprintf(&b, "%-34s %16d %10d %10d\n", "Freq. punct/digit/special", 42, 42, r.FreqFeatures)
	fmt.Fprintf(&b, "%-34s %16d %10d %10d\n", "Daily activity profile", 24, 24, r.ActivityDims)
	return b.String()
}

// -------------------------------------------------------------- Table III

// Table3Row is one word-budget row of the k-attribution accuracy table.
type Table3Row struct {
	Words     int
	K1Text    float64
	K1All     float64
	K10Text   float64
	K10All    float64
	Unknowns  int
	KnownSize int
}

// Table3Report reproduces Table III: k-attribution accuracy at different
// text sizes, with text-only vs text+activity features.
type Table3Report struct {
	Rows []Table3Row
}

// Table3WordBudgets are the word budgets of the paper's sweep.
var Table3WordBudgets = []int{400, 600, 800, 1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700}

// Table3 runs the word-budget sweep. For each budget one matcher serves
// both feature sets (text-only vs all) — the block-decomposed scorer
// re-weights at query time.
func (l *Lab) Table3() (*Table3Report, error) {
	rep := &Table3Report{}
	for _, words := range Table3WordBudgets {
		row, err := l.table3Row(words)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 at %d words: %w", words, err)
		}
		rep.Rows = append(rep.Rows, *row)
	}
	return rep, nil
}

func (l *Lab) table3Row(words int) (*Table3Row, error) {
	opts := l.SubjectOpts()
	opts.WordBudget = words
	knownAll, err := attribution.BuildSubjects(l.Reddit, opts)
	if err != nil {
		return nil, err
	}
	aeAll, err := attribution.BuildSubjects(l.AEReddit, opts)
	if err != nil {
		return nil, err
	}
	known, unknown := sampleKnownUnknown(knownAll, aeAll,
		l.Cfg.Table3Known, l.Cfg.Table3Unknowns, int64(l.Cfg.Seed)+101)

	mopts := l.MatcherOpts()
	mopts.TwoStage = false // the sweep measures stage-1 accuracy only
	m, err := attribution.NewMatcher(known, mopts)
	if err != nil {
		return nil, err
	}
	w := mopts
	textW := attribution.Weights{Freq: w.FreqWeight, Activity: 0}
	allW := attribution.Weights{Freq: w.FreqWeight, Activity: w.ActivityWeight}

	row := &Table3Row{Words: words, Unknowns: len(unknown), KnownSize: len(known)}
	var textRanks, allRanks []eval.Ranking
	for i := range unknown {
		rt := m.RankWith(&unknown[i], 10, textW)
		ra := m.RankWith(&unknown[i], 10, allW)
		textRanks = append(textRanks, rankingOf(unknown[i].Name, rt))
		allRanks = append(allRanks, rankingOf(unknown[i].Name, ra))
	}
	row.K1Text = eval.AccuracyAtK(textRanks, eval.SameName, 1)
	row.K1All = eval.AccuracyAtK(allRanks, eval.SameName, 1)
	row.K10Text = eval.AccuracyAtK(textRanks, eval.SameName, 10)
	row.K10All = eval.AccuracyAtK(allRanks, eval.SameName, 10)
	return row, nil
}

func rankingOf(unknown string, scored []attribution.Scored) eval.Ranking {
	r := eval.Ranking{Unknown: unknown}
	for _, s := range scored {
		r.Candidates = append(r.Candidates, s.Name)
		r.Scores = append(r.Scores, s.Score)
	}
	return r
}

// String renders the table in the paper's format.
func (r *Table3Report) String() string {
	var b strings.Builder
	b.WriteString("Table III — k-attribution accuracy at different numbers of words\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "# of words", "K=1 (text)", "K=1 (all)", "K=10 (text)", "K=10 (all)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			row.Words, 100*row.K1Text, 100*row.K1All, 100*row.K10Text, 100*row.K10All)
	}
	return b.String()
}

// -------------------------------------------------------------- Table IV

// Table4Report reproduces Table IV: the six datasets' final sizes.
type Table4Report struct {
	Rows []Table4Row
	// CollectedReddit/TMG/DM are the pre-refinement alias counts, for the
	// retention-rate comparison with the paper.
	CollectedReddit, CollectedTMG, CollectedDM int
}

// Table4Row is one dataset's alias count.
type Table4Row struct {
	Name    string
	Aliases int
}

// Table4 reports the refined dataset sizes.
func (l *Lab) Table4() *Table4Report {
	return &Table4Report{
		Rows: []Table4Row{
			{"Reddit", l.Reddit.Len()},
			{"AE_Reddit", l.AEReddit.Len()},
			{"TMG", l.TMG.Len()},
			{"AE_TMG", l.AETMG.Len()},
			{"DM", l.DM.Len()},
			{"AE_DM", l.AEDM.Len()},
		},
		CollectedReddit: l.RawReddit.Len(),
		CollectedTMG:    l.RawTMG.Len(),
		CollectedDM:     l.RawDM.Len(),
	}
}

// String renders the table.
func (r *Table4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — datasets final composition (collected: reddit %d, tmg %d, dm %d)\n",
		r.CollectedReddit, r.CollectedTMG, r.CollectedDM)
	fmt.Fprintf(&b, "%-12s %10s\n", "Name", "(#)Aliases")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10d\n", row.Name, row.Aliases)
	}
	return b.String()
}

// --------------------------------------------------------------- Table V

// Table5Row is one dataset's operating point.
type Table5Row struct {
	Forum     string
	Threshold float64
	Precision float64
	Recall    float64
}

// Table5Report reproduces Table V: per-forum thresholds tuned for 80%
// recall, then the single global threshold applied everywhere.
type Table5Report struct {
	PerForum []Table5Row
	Global   []Table5Row
	// GlobalThreshold is the W1-derived threshold applied in the second
	// half (the paper's 0.4190).
	GlobalThreshold float64
	// DarkAccuracy is the §IV-G 10-attribution accuracy on the merged
	// DarkWeb datasets (paper: 98.4%).
	DarkAccuracy float64
}

// Table5 computes both halves of the table. The global threshold is
// derived from the W1 split exactly as §IV-E does, rather than hard-coding
// the paper's 0.4190.
func (l *Lab) Table5() (*Table5Report, error) {
	curves, err := l.aeCurves()
	if err != nil {
		return nil, err
	}
	rep := &Table5Report{}

	// Global threshold := W1's threshold at 80% recall.
	if p, ok := curves.w1.ThresholdForRecall(0.80); ok {
		rep.GlobalThreshold = p.Threshold
	} else {
		rep.GlobalThreshold = attribution.DefaultThreshold
	}

	entries := []struct {
		name  string
		curve eval.Curve
	}{
		{"Reddit_A", curves.w1},
		{"Reddit_B", curves.w2},
		{"DM", curves.dm},
		{"TMG", curves.tmg},
	}
	for _, e := range entries {
		if p, ok := e.curve.ThresholdForRecall(0.80); ok {
			rep.PerForum = append(rep.PerForum, Table5Row{e.name, p.Threshold, p.Precision, p.Recall})
		} else {
			best := e.curve.BestF1()
			rep.PerForum = append(rep.PerForum, Table5Row{e.name, best.Threshold, best.Precision, best.Recall})
		}
		prec, rec := e.curve.AtThreshold(rep.GlobalThreshold)
		rep.Global = append(rep.Global, Table5Row{e.name, rep.GlobalThreshold, prec, rec})
	}

	rep.DarkAccuracy, err = l.darkTenAttribution()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// darkTenAttribution is §IV-G's accuracy: 10-attribution of AE_DarkWeb
// against the merged DarkWeb dataset.
func (l *Lab) darkTenAttribution() (float64, error) {
	m, err := l.DarkMatcher()
	if err != nil {
		return 0, err
	}
	_, ae := l.DarkWeb()
	unknowns, err := attribution.BuildSubjects(ae, l.SubjectOpts())
	if err != nil {
		return 0, err
	}
	var ranks []eval.Ranking
	for i := range unknowns {
		ranks = append(ranks, rankingOf(unknowns[i].Name, m.Rank(&unknowns[i], 10)))
	}
	return eval.AccuracyAtK(ranks, eval.SameName, 10), nil
}

// String renders the table.
func (r *Table5Report) String() string {
	var b strings.Builder
	b.WriteString("Table V — precision-recall with different thresholds\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s\n", "Forum", "threshold", "Precision", "Recall")
	for _, row := range r.PerForum {
		fmt.Fprintf(&b, "%-10s %10.4f %9.1f%% %7.1f%%\n", row.Forum, row.Threshold, 100*row.Precision, 100*row.Recall)
	}
	b.WriteString(strings.Repeat("-", 42) + "\n")
	for _, row := range r.Global {
		fmt.Fprintf(&b, "%-10s %10.4f %9.1f%% %7.1f%%\n", row.Forum, row.Threshold, 100*row.Precision, 100*row.Recall)
	}
	fmt.Fprintf(&b, "(§IV-G) DarkWeb 10-attribution accuracy: %.1f%%\n", 100*r.DarkAccuracy)
	return b.String()
}

// --------------------------------------------------------------- Table VI

// Table6Row is one forum's AUC pair.
type Table6Row struct {
	Forum            string
	AUCWithReduction float64
	AUCWithout       float64
}

// Table6Report reproduces Table VI: AUC with and without the search-space
// reduction step.
type Table6Report struct {
	Rows []Table6Row
	// Curves for Fig. 5 rendering, keyed "<forum>/with" and
	// "<forum>/without".
	Curves map[string]eval.Curve
}

// Table6 computes PR curves with the full two-stage pipeline (reduction +
// rescoring) and without it (a single cosine pass over all candidates,
// best candidate wins), on all three forums.
func (l *Lab) Table6() (*Table6Report, error) {
	curves, err := l.aeCurves()
	if err != nil {
		return nil, err
	}
	rep := &Table6Report{Curves: make(map[string]eval.Curve)}

	type entry struct {
		name      string
		with      eval.Curve
		knownSet  *forum.Dataset
		unknowns  []attribution.Subject
		matcher   *attribution.Matcher
		relevant  int
		usePooled bool
	}
	redditM, err := l.RedditMatcher()
	if err != nil {
		return nil, err
	}
	darkEntries := []entry{}
	// Reddit row: reuse the pooled W1+W2 predictions for "with".
	redditWith := eval.PRCurve(append(append([]eval.Prediction{}, curves.w1Preds...), curves.w2Preds...),
		eval.SameName, len(curves.w1Preds)+len(curves.w2Preds))
	redditUnknowns := append(append([]attribution.Subject{}, curves.w1Subjects...), curves.w2Subjects...)
	darkEntries = append(darkEntries, entry{name: "Reddit", with: redditWith, matcher: redditM, unknowns: redditUnknowns, relevant: len(redditUnknowns)})

	darkEntries = append(darkEntries, entry{name: "TMG", with: curves.tmg, matcher: curves.tmgMatcher, unknowns: curves.tmgSubjects, relevant: len(curves.tmgSubjects)})
	darkEntries = append(darkEntries, entry{name: "DM", with: curves.dm, matcher: curves.dmMatcher, unknowns: curves.dmSubjects, relevant: len(curves.dmSubjects)})

	for _, e := range darkEntries {
		withoutPreds := make([]eval.Prediction, 0, len(e.unknowns))
		for i := range e.unknowns {
			top := e.matcher.Rank(&e.unknowns[i], 1)
			if len(top) > 0 {
				withoutPreds = append(withoutPreds, eval.Prediction{Unknown: e.unknowns[i].Name, Candidate: top[0].Name, Score: top[0].Score})
			}
		}
		without := eval.PRCurve(withoutPreds, eval.SameName, e.relevant)
		rep.Rows = append(rep.Rows, Table6Row{Forum: e.name, AUCWithReduction: e.with.AUC(), AUCWithout: without.AUC()})
		rep.Curves[e.name+"/with"] = e.with
		rep.Curves[e.name+"/without"] = without
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Forum < rep.Rows[j].Forum })
	return rep, nil
}

// forumMatcherAndAE builds a matcher over a forum's refined dataset and the
// subjects of its alter-ego set.
func (l *Lab) forumMatcherAndAE(known, ae *forum.Dataset) (*attribution.Matcher, []attribution.Subject, error) {
	ks, err := attribution.BuildSubjects(known, l.SubjectOpts())
	if err != nil {
		return nil, nil, err
	}
	m, err := attribution.NewMatcher(ks, l.MatcherOpts())
	if err != nil {
		return nil, nil, err
	}
	aes, err := attribution.BuildSubjects(ae, l.SubjectOpts())
	if err != nil {
		return nil, nil, err
	}
	return m, aes, nil
}

// String renders the table.
func (r *Table6Report) String() string {
	var b strings.Builder
	b.WriteString("Table VI — AUC values\n")
	fmt.Fprintf(&b, "%-10s %20s %24s\n", "Forum", "AUC with reduction", "AUC without reduction")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %20.2f %24.2f\n", row.Forum, row.AUCWithReduction, row.AUCWithout)
	}
	return b.String()
}

// ----------------------------------------------------- shared AE matching

// aeCurveSet caches the expensive alter-ego matching runs shared by
// Fig. 2, Table V, Table VI and Fig. 5.
type aeCurveSet struct {
	w1, w2, tmg, dm         eval.Curve
	w1Preds, w2Preds        []eval.Prediction
	tmgPreds, dmPreds       []eval.Prediction
	w1Subjects, w2Subjects  []attribution.Subject
	tmgMatcher, dmMatcher   *attribution.Matcher
	tmgSubjects, dmSubjects []attribution.Subject
}

var errNoAE = fmt.Errorf("experiments: alter-ego set is empty")

func (l *Lab) aeCurves() (*aeCurveSet, error) {
	if l.curves != nil {
		return l.curves, nil
	}
	m, err := l.RedditMatcher()
	if err != nil {
		return nil, err
	}
	all, err := attribution.BuildSubjects(l.AEReddit, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, errNoAE
	}
	sample := sampleSubjects(all, l.Cfg.MaxUnknowns*2, int64(l.Cfg.Seed)+303)
	half := len(sample) / 2
	w1, w2 := sample[:half], sample[half:]

	ctx := l.Context()
	res1, err := m.MatchAll(ctx, w1)
	if err != nil {
		return nil, err
	}
	res2, err := m.MatchAll(ctx, w2)
	if err != nil {
		return nil, err
	}
	set := &aeCurveSet{
		w1Preds: predictionsOf(res1), w2Preds: predictionsOf(res2),
		w1Subjects: w1, w2Subjects: w2,
	}
	set.w1 = eval.PRCurve(set.w1Preds, eval.SameName, len(w1))
	set.w2 = eval.PRCurve(set.w2Preds, eval.SameName, len(w2))

	tmgM, tmgAE, err := l.forumMatcherAndAE(l.TMG, l.AETMG)
	if err != nil {
		return nil, err
	}
	resT, err := tmgM.MatchAll(ctx, tmgAE)
	if err != nil {
		return nil, err
	}
	set.tmgPreds = predictionsOf(resT)
	set.tmg = eval.PRCurve(set.tmgPreds, eval.SameName, len(tmgAE))
	set.tmgMatcher, set.tmgSubjects = tmgM, tmgAE

	dmM, dmAE, err := l.forumMatcherAndAE(l.DM, l.AEDM)
	if err != nil {
		return nil, err
	}
	resD, err := dmM.MatchAll(ctx, dmAE)
	if err != nil {
		return nil, err
	}
	set.dmPreds = predictionsOf(resD)
	set.dm = eval.PRCurve(set.dmPreds, eval.SameName, len(dmAE))
	set.dmMatcher, set.dmSubjects = dmM, dmAE

	l.curves = set
	return set, nil
}
