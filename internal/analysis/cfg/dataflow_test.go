package cfg

import (
	"go/ast"
	"testing"
)

// markAnalysis is a tiny must-analysis used to exercise the fixpoint:
// the fact counts how many times mark() has definitely been called on
// every path reaching a point. Join takes the minimum — exactly the
// shape lockbalance and fsyncrename use.
type markAnalysis struct{}

func (markAnalysis) Entry() int { return 0 }

func (markAnalysis) Transfer(n ast.Node, in int) int {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return in
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return in
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
		return in + 1
	}
	return in
}

func (markAnalysis) Join(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (markAnalysis) Equal(a, b int) bool { return a == b }

// exitFact runs the analysis and returns the fact at the Exit block.
func exitFact(t *testing.T, body string) int {
	t.Helper()
	g, _ := buildFunc(t, body)
	in := Forward[int](g, markAnalysis{})
	return in[g.Exit]
}

func TestForwardFixpoint(t *testing.T) {
	tests := []struct {
		name string
		body string
		want int
	}{
		{"straight line", "mark()\nmark()", 2},
		{"one branch only", "if true {\nmark()\n}", 0},
		{"both branches", "if true {\nmark()\n} else {\nmark()\n}", 1},
		{"before the branch", "mark()\nif true {\nmark()\n}", 1},
		// A loop body may run zero times: the join of "skipped" and
		// "ran" paths must settle at the pre-loop fact, and the back
		// edge must not inflate it.
		{"conditional loop", "for i := 0; i < 3; i++ {\nmark()\n}", 0},
		{"range loop", "var xs []int\nfor range xs {\nmark()\n}", 0},
		// A loop that marks then breaks on every path does guarantee
		// one call.
		{"loop with unconditional break", "for {\nmark()\nbreak\n}", 1},
		// Switch without default: the skip edge carries the smaller
		// fact past the cases.
		{"switch no default", "switch 1 {\ncase 1:\nmark()\n}", 0},
		{"switch with default", "switch 1 {\ncase 1:\nmark()\ndefault:\nmark()\n}", 1},
		// Every select case marks, and there is no default to skip.
		{"select all cases", "var a, b chan int\nselect {\ncase <-a:\nmark()\ncase <-b:\nmark()\n}", 1},
		{"select with default skips", "var a chan int\nselect {\ncase <-a:\nmark()\ndefault:\n}", 0},
		// The early return leaves with 0; only the fall-through end
		// has seen mark(). Exit joins both to 0.
		{"early return", "if true {\nreturn\n}\nmark()", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := exitFact(t, tt.body); got != tt.want {
				t.Errorf("fact at exit = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestForwardInBlockFacts pins the per-block facts the reporting walks
// re-derive: the in-fact of the loop head is the join of the entry path
// and the back edge.
func TestForwardInBlockFacts(t *testing.T) {
	g, _ := buildFunc(t, "mark()\nfor {\nmark()\n}")
	in := Forward[int](g, markAnalysis{})
	// The infinite loop head joins the entry path (1 mark) with the
	// back edge (one more per iteration). A must-analysis with min join
	// stays at 1: the first iteration has only seen the entry fact.
	var head *Block
	for _, b := range g.Blocks {
		if len(b.Preds) == 2 {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head with two predecessors found")
	}
	if in[head] != 1 {
		t.Errorf("loop head in-fact = %d, want 1", in[head])
	}
}
