// Package darklight reproduces "A Light in the Dark Web: Linking Dark Web
// Aliases to Real Internet Identities" (Arabnezhad, La Morgia, Mei, Nemmi,
// Stefa — ICDCS 2020): a large-scale alias-linking pipeline that combines
// stylometry (word/char n-grams, punctuation habits, TF-IDF, cosine
// similarity) with daily-activity profiles, using two-stage k-attribution
// to scale to tens of thousands of candidate authors.
//
// The package is a thin facade over the internal implementation. The
// typical flow is:
//
//	world, _ := darklight.GenerateWorld(darklight.WorldConfig{Seed: 1, Scale: 0.05})
//	pipe := darklight.NewPipeline()
//	pipe.Polish(world.Reddit)               // §III-C cleaning
//	refined := pipe.Refine(world.Reddit)    // §IV-D thresholds
//	main, ae := pipe.SplitAlterEgos(refined)
//	matches, _ := pipe.Link(ctx, main, ae)  // §IV-I algorithm
//
// Real (scraped) data can be loaded with LoadJSONL instead of the
// generator; the pipeline does not care where messages come from.
package darklight

import (
	"context"
	"fmt"
	"io"
	"os"

	"darklight/internal/activity"
	"darklight/internal/anonymize"
	"darklight/internal/attribution"
	"darklight/internal/corpus"
	"darklight/internal/forum"
	"darklight/internal/normalize"
	"darklight/internal/synth"
)

// Re-exported core types. These aliases are the public names of the data
// model; the internal packages remain the single source of truth.
type (
	// Dataset is a named collection of aliases from one platform.
	Dataset = forum.Dataset
	// Alias is one account and everything it posted.
	Alias = forum.Alias
	// Message is a single forum post.
	Message = forum.Message
	// Platform identifies the source site kind.
	Platform = forum.Platform
	// World is a generated three-forum universe with ground truth.
	World = synth.World
	// GroundTruth records which aliases belong to the same person.
	GroundTruth = synth.GroundTruth
	// PolishReport describes what each cleaning step removed.
	PolishReport = normalize.Report
	// MatchResult is the full outcome of linking one unknown alias.
	MatchResult = attribution.MatchResult
	// Subject is an alias prepared for matching.
	Subject = attribution.Subject
)

// Platform constants.
const (
	PlatformReddit            = forum.PlatformReddit
	PlatformTheMajesticGarden = forum.PlatformTheMajesticGarden
	PlatformDreamMarket       = forum.PlatformDreamMarket
	PlatformSynthetic         = forum.PlatformSynthetic
)

// Paper constants.
const (
	// DefaultThreshold is the published global acceptance threshold
	// (§IV-E: 0.4190).
	DefaultThreshold = attribution.DefaultThreshold
	// DefaultK is the k-attribution candidate count (§IV-C: 10).
	DefaultK = attribution.DefaultK
	// DefaultWordBudget is the per-alias document size (§IV-C1: 1,500).
	DefaultWordBudget = attribution.DefaultWordBudget
)

// WorldConfig sizes a synthetic world.
type WorldConfig struct {
	// Seed makes generation reproducible (default 1).
	Seed uint64
	// Scale multiplies the paper's population (16,567 Reddit / 4,709 TMG /
	// 6,348 DM aliases at 1.0). Default 0.05.
	Scale float64
}

// GenerateWorld builds a synthetic three-forum world with ground truth —
// the stand-in for the paper's scraped corpora (see DESIGN.md §2).
func GenerateWorld(cfg WorldConfig) (*World, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.05
	}
	gen := synth.DefaultConfig().Scaled(cfg.Scale)
	gen.Seed = cfg.Seed
	return synth.Generate(gen)
}

// Match is one accepted alias pair.
type Match struct {
	// Unknown is the queried alias, Candidate the linked known alias.
	Unknown, Candidate string
	// Score is the stage-2 cosine similarity.
	Score float64
	// Accepted reports whether Score clears the pipeline threshold.
	Accepted bool
}

// Pipeline bundles the paper's processing stages under one configuration.
// The zero value is not usable; construct with NewPipeline.
type Pipeline struct {
	opts    attribution.Options
	actOpts activity.Options
	budget  int
}

// Option customises a Pipeline.
type Option func(*Pipeline)

// WithThreshold overrides the acceptance threshold (default 0.4190).
func WithThreshold(t float64) Option {
	return func(p *Pipeline) { p.opts.Threshold = t }
}

// WithK overrides the candidate-set size (default 10).
func WithK(k int) Option {
	return func(p *Pipeline) { p.opts.K = k }
}

// WithoutActivity disables the daily-activity feature (text only).
func WithoutActivity() Option {
	return func(p *Pipeline) { p.opts.UseActivity = false }
}

// WithWordBudget overrides the per-alias document size (default 1,500).
func WithWordBudget(words int) Option {
	return func(p *Pipeline) { p.budget = words }
}

// WithForumUTCOffset declares the forum-local timestamp offset in minutes,
// so activity profiles align to UTC (§IV-B).
func WithForumUTCOffset(minutes int) Option {
	return func(p *Pipeline) { p.actOpts.ForumUTCOffsetMinutes = minutes }
}

// WithWorkers bounds the pipeline's parallelism.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.opts.Workers = n }
}

// NewPipeline returns a pipeline with the paper's configuration: k = 10,
// threshold 0.4190, 1,500-word documents, weekend/US-holiday-excluded
// UTC-aligned activity profiles.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{
		opts:    attribution.DefaultOptions(),
		actOpts: activity.PaperOptions(2017),
		budget:  DefaultWordBudget,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// MatcherOptions returns the attribution options the pipeline builds its
// matchers with. The serving daemon (cmd/attributed, internal/serve)
// passes these to its own matcher so served scores are bit-identical to
// Pipeline.Link for the same corpus.
func (p *Pipeline) MatcherOptions() attribution.Options { return p.opts }

// SubjectOptions returns the subject-construction settings (word budget,
// activity alignment, workers) behind Pipeline.Subjects. The serving
// daemon uses them to build inline query subjects through exactly the
// batch path.
func (p *Pipeline) SubjectOptions() attribution.SubjectOptions {
	return attribution.SubjectOptions{
		WordBudget:   p.budget,
		Activity:     p.actOpts,
		WithActivity: p.opts.UseActivity,
		Workers:      p.opts.Workers,
	}
}

// Polish runs the 12-step §III-C cleaning pipeline in place and returns
// the per-step report. The steps fan out over the pipeline's worker count;
// the result is bit-identical for any setting.
func (p *Pipeline) Polish(d *Dataset) *PolishReport {
	return p.PolishContext(context.Background(), d)
}

// PolishContext is Polish under a context that may carry an obs.Tracer
// (see internal/obs): with tracing enabled the run emits polish spans; the
// dataset and report are bit-identical either way.
func (p *Pipeline) PolishContext(ctx context.Context, d *Dataset) *PolishReport {
	return normalize.NewPipeline(normalize.WithWorkers(p.opts.Workers)).RunContext(ctx, d)
}

// Refine drops aliases below the §IV-D thresholds (1,500 words, 30 usable
// timestamps) and returns the surviving dataset.
func (p *Pipeline) Refine(d *Dataset) *Dataset {
	return corpus.Refine(d, corpus.RefineOptions{Activity: p.actOpts})
}

// SplitAlterEgos builds the §IV-D evaluation ground truth: prolific
// aliases are split into disjoint (original, alter-ego) halves that share
// the alias name.
func (p *Pipeline) SplitAlterEgos(d *Dataset) (main, ae *Dataset) {
	return corpus.SplitAlterEgos(d, corpus.AlterEgoOptions{Activity: p.actOpts})
}

// Subjects prepares a dataset for matching under the pipeline's word
// budget and activity settings.
func (p *Pipeline) Subjects(d *Dataset) ([]Subject, error) {
	return attribution.BuildSubjects(d, attribution.SubjectOptions{
		WordBudget:   p.budget,
		Activity:     p.actOpts,
		WithActivity: p.opts.UseActivity,
		Workers:      p.opts.Workers,
	})
}

// Link runs the full §IV-I algorithm: every alias of unknown is matched
// against the known dataset; pairs whose stage-2 score clears the
// threshold come back with Accepted set. All pairs (accepted or not) are
// returned so callers can sweep their own thresholds.
func (p *Pipeline) Link(ctx context.Context, known, unknown *Dataset) ([]Match, error) {
	knownSubs, err := p.Subjects(known)
	if err != nil {
		return nil, fmt.Errorf("darklight: prepare known aliases: %w", err)
	}
	m, err := attribution.NewMatcherContext(ctx, knownSubs, p.opts)
	if err != nil {
		return nil, fmt.Errorf("darklight: index known aliases: %w", err)
	}
	unknownSubs, err := p.Subjects(unknown)
	if err != nil {
		return nil, fmt.Errorf("darklight: prepare unknown aliases: %w", err)
	}
	results, err := m.MatchAll(ctx, unknownSubs)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(results))
	for _, r := range results {
		if r.Best.Name == "" {
			continue
		}
		out = append(out, Match{
			Unknown:   r.Unknown,
			Candidate: r.Best.Name,
			Score:     r.Best.Score,
			Accepted:  r.Accepted,
		})
	}
	return out, nil
}

// LinkDetailed is Link returning the full per-unknown match results
// (stage-1 candidates and stage-2 rescoring included).
func (p *Pipeline) LinkDetailed(ctx context.Context, known, unknown *Dataset) ([]MatchResult, error) {
	knownSubs, err := p.Subjects(known)
	if err != nil {
		return nil, fmt.Errorf("darklight: prepare known aliases: %w", err)
	}
	m, err := attribution.NewMatcherContext(ctx, knownSubs, p.opts)
	if err != nil {
		return nil, fmt.Errorf("darklight: index known aliases: %w", err)
	}
	unknownSubs, err := p.Subjects(unknown)
	if err != nil {
		return nil, fmt.Errorf("darklight: prepare unknown aliases: %w", err)
	}
	return m.MatchAll(ctx, unknownSubs)
}

// LoadJSONL reads a dataset from a JSON-lines file (one Message object per
// line; aliases are grouped by author).
func LoadJSONL(path, name string, platform Platform) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("darklight: %w", err)
	}
	defer f.Close()
	return forum.ReadJSONL(f, name, platform)
}

// SaveJSONL writes a dataset as JSON lines.
func SaveJSONL(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("darklight: %w", err)
	}
	if err := forum.WriteJSONL(f, d); err != nil {
		//lint:ignore errdrop the WriteJSONL failure is the error worth returning; Close here only releases the fd
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL and WriteJSONL are the io.Reader/Writer forms of the loaders.
func ReadJSONL(r io.Reader, name string, platform Platform) (*Dataset, error) {
	return forum.ReadJSONL(r, name, platform)
}

// WriteJSONL writes every message of the dataset to w, one JSON object per
// line.
func WriteJSONL(w io.Writer, d *Dataset) error {
	return forum.WriteJSONL(w, d)
}

// Verification is the outcome of a pairwise authorship-verification check
// (§II of the paper distinguishes attribution — "which of these candidates
// wrote it" — from verification — "did this specific candidate write it").
type Verification struct {
	// Score is the stage-2 cosine similarity between the two aliases.
	Score float64
	// SameAuthor reports Score >= the pipeline threshold.
	SameAuthor bool
	// Threshold echoes the threshold used for the decision.
	Threshold float64
}

// Verify answers the authorship-verification question for one alias pair:
// are `unknown` and `candidate` the same person? Both aliases are reduced
// to their analysis documents and activity profiles, features and TF-IDF
// are computed over the provided background dataset (which should contain
// candidate's peers — IDF needs a population), and the §IV-I second-stage
// score is compared against the threshold.
func (p *Pipeline) Verify(background *Dataset, unknown, candidate Alias) (Verification, error) {
	bg := forum.NewDataset(background.Name, background.Platform)
	bg.Aliases = append(bg.Aliases, background.Aliases...)
	if _, err := bg.Find(candidate.Name); err != nil {
		bg.Add(candidate)
	}
	bgSubs, err := p.Subjects(bg)
	if err != nil {
		return Verification{}, fmt.Errorf("darklight: verify: %w", err)
	}
	m, err := attribution.NewMatcher(bgSubs, p.opts)
	if err != nil {
		return Verification{}, fmt.Errorf("darklight: verify: %w", err)
	}
	uDS := forum.NewDataset("unknown", background.Platform)
	uDS.Add(unknown)
	uSubs, err := p.Subjects(uDS)
	if err != nil {
		return Verification{}, fmt.Errorf("darklight: verify: %w", err)
	}
	scored := m.Rescore(&uSubs[0], []attribution.Scored{{Name: candidate.Name}})
	if len(scored) == 0 {
		return Verification{Threshold: p.opts.Threshold}, nil
	}
	v := Verification{
		Score:     scored[0].Score,
		Threshold: p.opts.Threshold,
	}
	v.SameAuthor = v.Score >= v.Threshold
	return v, nil
}

// AnonymizeOptions re-exports the §VI countermeasure configuration.
type AnonymizeOptions = anonymize.Options

// DefaultAnonymizeOptions enables every textual defence plus a 24-hour
// scheduled-posting queue.
func DefaultAnonymizeOptions() AnonymizeOptions { return anonymize.DefaultOptions() }

// Anonymize applies the §VI countermeasures — misspelling/slang
// normalisation, case and punctuation flattening, opener removal, and
// posting-time rescheduling — returning a rewritten copy of the dataset.
// It is the defensive counterpart of Link: run it on your own outgoing
// posts to blunt exactly the features this pipeline exploits.
func Anonymize(d *Dataset, opts AnonymizeOptions) *Dataset {
	return anonymize.New(opts).Dataset(d)
}

// AnonymizeText rewrites a single message body under the given options.
func AnonymizeText(body string, opts AnonymizeOptions) string {
	return anonymize.New(opts).Text(body)
}
