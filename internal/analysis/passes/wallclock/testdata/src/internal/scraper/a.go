// Allowlisted package: the scraper's politeness limiter and backoff are
// entitled to the wall clock, so wallclock must stay silent here.
package scraper

import "time"

func nextSlot(last time.Time, interval time.Duration) time.Time {
	if now := time.Now(); last.Add(interval).Before(now) {
		return now
	}
	return last.Add(interval)
}
