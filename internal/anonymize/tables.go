package anonymize

// corrections maps habitual misspellings to the standard form. Stable
// misspellings are among the strongest IDF-amplified author markers, so
// fixing them removes exactly the rare-gram signal §IV-A's TF-IDF boosts.
var corrections = map[string]string{
	"definately": "definitely", "alot": "a lot", "recieve": "receive",
	"seperate": "separate", "wierd": "weird", "beleive": "believe",
	"untill": "until", "tommorow": "tomorrow", "realy": "really",
	"wich": "which", "becuase": "because", "thier": "their",
	"probly": "probably", "gunna": "going to", "wether": "whether",
	"grammer": "grammar", "tonite": "tonight", "somethin": "something",
	"nothin": "nothing", "u": "you", "ur": "your", "r": "are",
	"plz": "please", "ppl": "people", "tho": "though", "thru": "through",
	"rite": "right", "wat": "what", "dont": "don't", "cant": "can't",
	"wont": "won't", "didnt": "didn't", "doesnt": "doesn't",
	"isnt": "isn't", "wasnt": "wasn't", "im": "i'm", "ive": "i've",
	"id": "i'd", "youre": "you're", "theyre": "they're", "theres": "there's",
}

// slangExpansion rewrites forum abbreviations into plain words; the
// expansions are population-common phrases, so the per-user slang
// repertoire stops being a marker.
var slangExpansion = map[string]string{
	"lol": "that is funny", "lmao": "that is funny",
	"imo": "in my opinion", "imho": "in my opinion",
	"tbh": "to be honest", "afaik": "as far as i know",
	"iirc": "if i remember correctly", "btw": "by the way",
	"fyi": "for your information", "smh": "unbelievable",
	"ikr": "i agree", "idk": "i do not know", "irl": "in real life",
	"nvm": "never mind", "thx": "thanks", "pls": "please",
	"rn": "right now", "af": "very", "fr": "really",
	"ngl": "honestly", "yep": "yes", "nope": "no", "yeah": "yes",
	"nah": "no", "kinda": "kind of", "sorta": "sort of",
	"gonna": "going to", "wanna": "want to", "gotta": "have to",
	"dunno": "do not know", "lemme": "let me", "gimme": "give me",
	"welp": "well", "meh": "it is average", "sus": "suspicious",
	"dude": "friend", "bro": "friend", "mate": "friend",
}

// openerSet lists habitual sentence openers whose per-user preference is a
// strong word-gram signature; dropping them from the front of a message
// costs little meaning.
var openerSet = map[string]bool{
	"well": true, "honestly": true, "look": true, "listen": true,
	"anyway": true, "personally": true, "frankly": true, "actually": true,
	"so": true, "alright": true, "man": true, "oh": true, "hmm": true,
	"basically": true, "literally": true, "ok": true, "okay": true,
}
