package forum

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func checkpointFixture() []ThreadRecord {
	ts := time.Date(2017, 6, 1, 8, 0, 0, 0, time.UTC)
	return []ThreadRecord{
		{Thread: "t0", Messages: []Message{
			{ID: "a1", Author: "ann", Board: "garden", Thread: "t0", Body: "hello", PostedAt: ts},
			{ID: "a2", Author: "ben", Board: "garden", Thread: "t0", Body: "hi back", PostedAt: ts.Add(time.Hour)},
		}},
		{Thread: "t1", Messages: []Message{
			{ID: "a3", Author: "ann", Board: "garden", Thread: "t1", Body: "elsewhere", PostedAt: ts},
		}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := checkpointFixture()
	for i := range want {
		if err := WriteThreadRecord(&buf, &want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Thread != want[i].Thread {
			t.Errorf("record %d thread = %q, want %q", i, got[i].Thread, want[i].Thread)
		}
		if len(got[i].Messages) != len(want[i].Messages) {
			t.Fatalf("record %d has %d messages, want %d", i, len(got[i].Messages), len(want[i].Messages))
		}
		for j, m := range want[i].Messages {
			g := got[i].Messages[j]
			if g.ID != m.ID || g.Author != m.Author || g.Body != m.Body || !g.PostedAt.Equal(m.PostedAt) {
				t.Errorf("record %d message %d = %+v, want %+v", i, j, g, m)
			}
		}
	}
}

func TestCheckpointToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	recs := checkpointFixture()
	for i := range recs {
		if err := WriteThreadRecord(&buf, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A crawl killed mid-append leaves a torn final line.
	truncated := buf.String()[:buf.Len()-25]
	got, err := ReadCheckpoint(strings.NewReader(truncated))
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if len(got) != 1 || got[0].Thread != "t0" {
		t.Errorf("got %d records, want just the intact t0", len(got))
	}
}

func TestCheckpointRejectsCorruptMiddle(t *testing.T) {
	journal := `{"thread":"t0","messages":[]}` + "\n" +
		`{"thread":"t1","mes` + "\n" + // corrupt, but not the tail
		`{"thread":"t2","messages":[]}` + "\n"
	if _, err := ReadCheckpoint(strings.NewReader(journal)); err == nil {
		t.Fatal("corruption before the tail must error")
	}
}

func TestCheckpointEmptyAndBlankLines(t *testing.T) {
	got, err := ReadCheckpoint(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty journal: %v, %d records", err, len(got))
	}
	got, err = ReadCheckpoint(strings.NewReader("\n\n" + `{"thread":"t0","messages":[]}` + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank lines must be skipped: %v, %d records", err, len(got))
	}
}
