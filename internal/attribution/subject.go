// Package attribution is the paper's core contribution: large-scale alias
// linking via two-stage cosine similarity over stylometric + daily-activity
// features.
//
// Stage 1 (§IV-C, "k-attribution"): rank every known alias against the
// unknown by cosine similarity over the space-reduction feature space
// (Table II) and keep the top k = 10 candidates.
//
// Stage 2 (§IV-E, §IV-I): re-extract features and recompute TF-IDF over
// only those k candidates (which reselects the n-gram vocabulary), rescore
// with cosine, and accept the best candidate iff its score clears the
// global threshold t = 0.4190.
package attribution

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"darklight/internal/activity"
	"darklight/internal/corpus"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/sparse"
)

// DefaultK is the paper's candidate-set size (§IV-C: k = 10).
const DefaultK = 10

// DefaultThreshold is the global acceptance threshold found on the W1
// Reddit split (§IV-E: cosine 0.4190 → 94% precision, 80% recall).
const DefaultThreshold = 0.4190

// DefaultWordBudget is the per-alias text size (§IV-C1: 1,500 words).
const DefaultWordBudget = 1500

// Subject is one alias prepared for matching: its analysis document and
// (optionally) its daily activity profile.
type Subject struct {
	// Name is the alias name; the platform is implicit in the dataset the
	// subject came from.
	Name string
	// Text is the analysis document (longest messages first, truncated to
	// the word budget).
	Text string
	// Timestamps are all the alias's posting times (forum-local).
	Timestamps []time.Time
	// Activity is the daily activity profile, nil when unavailable or
	// disabled.
	Activity *activity.Profile
}

// SubjectOptions configure BuildSubjects.
type SubjectOptions struct {
	// WordBudget caps the document size; 0 means DefaultWordBudget,
	// negative means unlimited.
	WordBudget int
	// Activity controls timestamp alignment/exclusion for the profile.
	Activity activity.Options
	// WithActivity enables profile construction. Subjects whose usable
	// timestamps fall below the activity minimum get a nil profile rather
	// than an error: the matcher simply scores them on text alone.
	WithActivity bool
	// Workers bounds the parallelism of subject construction; 0 means
	// GOMAXPROCS. Subjects are independent of each other, so the output is
	// identical for any worker count.
	Workers int
}

// BuildSubjects converts a dataset into matchable subjects. Document
// selection and activity-profile construction fan out over the aliases;
// the returned slice is in dataset order regardless of worker count.
//
// An alias with too few usable timestamps for an activity profile gets a
// nil profile (the matcher scores it on text alone — §IV-D's fallback);
// any other profile-construction failure aborts the build with the alias
// named in the error rather than silently degrading that subject.
func BuildSubjects(d *forum.Dataset, opts SubjectOptions) ([]Subject, error) {
	budget := opts.WordBudget
	if budget == 0 {
		budget = DefaultWordBudget
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = shardCount(workers, d.Len())
	subjects := make([]Subject, d.Len())
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*d.Len()/workers, (w+1)*d.Len()/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				a := &d.Aliases[i]
				s := Subject{
					Name:       a.Name,
					Text:       corpus.Document(a, budget),
					Timestamps: a.Timestamps(),
				}
				if opts.WithActivity {
					p, err := activity.Build(s.Timestamps, opts.Activity)
					switch {
					case err == nil:
						s.Activity = p
					case errors.Is(err, activity.ErrInsufficientTimestamps):
						// Expected: score on text alone.
					default:
						if errs[w] == nil {
							errs[w] = fmt.Errorf("attribution: subject %q: %w", a.Name, err)
						}
					}
				}
				subjects[i] = s
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return subjects, nil
}

// Weights control the relative L2 norm of each feature block in the
// (conceptually) concatenated vector. Raw concatenation — the naive
// reading of the paper — lets the 42 frequency dimensions, whose values
// are orders of magnitude larger than TF-IDF weights and nearly identical
// across users, dominate the cosine; every pair then scores ≈ 0.9 and
// nothing separates. Each block is therefore normalised to unit norm and
// scaled: n-grams at 1.0, frequency and activity at the weights below.
type Weights struct {
	// Freq is the relative norm of the 42 punctuation/digit/special-char
	// frequency dimensions.
	Freq float64
	// Activity is the relative norm of the 24 daily-activity bins;
	// 0 disables the activity feature ("text only" in Table III/Fig. 4).
	Activity float64
}

// blocks is a subject decomposed into its three per-block-normalised
// feature vectors. The cosine of two concatenated weighted vectors equals
//
//	(tDot + wf²·fDot + wa²·aDot) / (norm(u) · norm(v))
//
// with norm(x) = sqrt(1 + wf²·hasF + wa²·hasA), so keeping the blocks
// separate lets one index answer rankings under any weighting — Table III
// and Fig. 4 compare "text" vs "all" from a single pass.
type blocks struct {
	grams sparse.Vector // unit norm (zero vector when the doc is empty)
	freq  []float64     // unit norm, nil when all-zero
	act   []float64     // unit norm, nil when no profile
}

// buildBlocks extracts and normalises the three blocks of a subject.
func buildBlocks(s *Subject, vocab *features.Vocabulary, cfg features.Config) blocks {
	doc := features.Extract(s.Text, cfg)
	return buildBlocksFromDoc(doc, s, vocab)
}

func buildBlocksFromDoc(doc *features.Doc, s *Subject, vocab *features.Vocabulary) blocks {
	return blocks{
		grams: vocab.VectorizeGrams(doc).Normalize(),
		freq:  normalizedFreq(doc.Freq),
		act:   normalizedActivity(s),
	}
}

// buildBlocksFromSortedVocab is buildBlocksFromDoc over the flattened
// document form and the full reduction vocabulary — the incremental index
// pass, which reuses cached sorted extractions instead of re-extracting.
// The per-entry arithmetic matches VectorizeGrams exactly, so the blocks
// are bit-identical to buildBlocks on the same subject.
func buildBlocksFromSortedVocab(d *features.SortedDoc, s *Subject, vocab *features.Vocabulary) blocks {
	return blocks{
		grams: vocab.VectorizeGramsSorted(d).Normalize(),
		freq:  normalizedFreq(d.Freq),
		act:   normalizedActivity(s),
	}
}

// buildBlocksFromSorted is buildBlocksFromDoc over the flattened document
// form and a candidate vocabulary — the stage-2 hot path.
func buildBlocksFromSorted(d *features.SortedDoc, s *Subject, cv *features.CandidateVocab) blocks {
	return blocks{
		grams: cv.VectorizeGrams(d).Normalize(),
		freq:  normalizedFreq(d.Freq),
		act:   normalizedActivity(s),
	}
}

// normalizedFreq returns the unit-norm frequency block, nil when all-zero.
func normalizedFreq(freq [features.NumFreqFeatures]float64) []float64 {
	var fnorm float64
	for _, x := range freq {
		fnorm += x * x
	}
	if fnorm == 0 {
		return nil
	}
	inv := 1 / math.Sqrt(fnorm)
	out := make([]float64, len(freq))
	for i, x := range freq {
		out[i] = x * inv
	}
	return out
}

// normalizedActivity returns the unit-norm activity block, nil when the
// subject has no (or an empty) profile.
func normalizedActivity(s *Subject) []float64 {
	if s.Activity == nil {
		return nil
	}
	bins := s.Activity.Bins
	var anorm float64
	for _, x := range bins {
		anorm += x * x
	}
	if anorm == 0 {
		return nil
	}
	inv := 1 / math.Sqrt(anorm)
	out := make([]float64, len(bins))
	for i, x := range bins {
		out[i] = x * inv
	}
	return out
}

// norm returns the concatenated-vector norm of b under w.
func (b *blocks) norm(w Weights) float64 {
	n := 0.0
	if b.grams.Len() > 0 {
		n += 1
	}
	if b.freq != nil {
		n += w.Freq * w.Freq
	}
	if b.act != nil {
		n += w.Activity * w.Activity
	}
	return math.Sqrt(n)
}

func denseDot(a, b []float64) float64 {
	if a == nil || b == nil {
		return 0
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// similarity is the cosine of the two concatenated weighted vectors.
func similarity(u, v *blocks, w Weights) float64 {
	nu, nv := u.norm(w), v.norm(w)
	if nu == 0 || nv == 0 {
		return 0
	}
	dot := sparse.Dot(u.grams, v.grams) +
		w.Freq*w.Freq*denseDot(u.freq, v.freq) +
		w.Activity*w.Activity*denseDot(u.act, v.act)
	return dot / (nu * nv)
}

// CompositeVector builds the full block-normalised concatenated feature
// vector of a subject: unit-norm n-gram block, frequency block scaled to
// w.Freq, activity block scaled to w.Activity, overall L2-normalised.
// Exported for the baselines package so the Koppel random-subspace method
// operates on exactly the feature space of the main method — otherwise the
// raw frequency magnitudes dominate its subspaces and the comparison is
// unfair.
func CompositeVector(s *Subject, vocab *features.Vocabulary, cfg features.Config, w Weights) sparse.Vector {
	doc := features.Extract(s.Text, cfg)
	b := buildBlocksFromDoc(doc, s, vocab)
	vec := b.grams.Clone()
	if b.freq != nil && w.Freq != 0 {
		fv := sparse.FromDense(b.freq).Scale(w.Freq)
		vec = sparse.Concat(vec, fv, vocab.FreqOffset())
	}
	if b.act != nil && w.Activity != 0 {
		av := sparse.FromDense(b.act).Scale(w.Activity)
		vec = sparse.Concat(vec, av, vocab.ActivityOffset())
	}
	return vec.Normalize()
}
