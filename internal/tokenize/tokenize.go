// Package tokenize breaks forum text into linguistic units: words, numbers,
// punctuation, symbols, URLs, email addresses, and emoji. Forum text is
// messy — inconsistent spacing, slang, ASCII art, armored PGP keys — so the
// tokeniser is hand-written rather than a regexp pile: one pass, no
// backtracking, Unicode-aware.
//
// The token stream drives both the polishing pipeline (URL normalisation,
// mail tagging, emoji stripping) and feature extraction (word and character
// n-grams, punctuation/digit/special-character frequencies).
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind int

// Token kinds. KindWord covers alphabetic runs with internal apostrophes
// and hyphens ("don't", "e-mail"); KindNumber covers digit runs with
// internal separators ("1,000", "3.14"); KindEmoji covers emoji and other
// pictographic code points.
const (
	KindWord Kind = iota + 1
	KindNumber
	KindPunct
	KindSymbol
	KindURL
	KindEmail
	KindEmoji
)

var kindNames = [...]string{"", "word", "number", "punct", "symbol", "url", "email", "emoji"}

// String returns the lowercase kind name.
func (k Kind) String() string {
	if k >= 1 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Token is one unit of text with its classification and byte offset into
// the original string.
type Token struct {
	Text string
	Kind Kind
	Pos  int
}

// Tokenize splits text into tokens. Whitespace never appears in the output.
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case isSchemeStart(text[i:]):
			tok, adv := scanURL(text, i)
			toks = append(toks, tok)
			i += adv
		case isWordRune(r):
			tok, adv := scanWordish(text, i)
			toks = append(toks, tok)
			i += adv
		case unicode.IsDigit(r):
			tok, adv := scanNumber(text, i)
			toks = append(toks, tok)
			i += adv
		case IsEmoji(r):
			toks = append(toks, Token{Text: text[i : i+size], Kind: KindEmoji, Pos: i})
			i += size
		case unicode.IsPunct(r):
			toks = append(toks, Token{Text: text[i : i+size], Kind: KindPunct, Pos: i})
			i += size
		default:
			toks = append(toks, Token{Text: text[i : i+size], Kind: KindSymbol, Pos: i})
			i += size
		}
	}
	return toks
}

// Words returns only the word tokens of text, lowercased. It is the common
// fast path for n-gram extraction.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == KindWord {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

func isWordRune(r rune) bool { return unicode.IsLetter(r) || r == '_' }

// scanWordish consumes a run starting with a letter. It may turn out to be
// a plain word, or an email address ("name@example.com"), or a bare domain
// ("www.reddit.com") which we classify as a URL.
func scanWordish(text string, start int) (Token, int) {
	i := start
	n := len(text)
	hasAt := false
	hasDot := false
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case isWordRune(r) || unicode.IsDigit(r):
			i += size
		case r == '\'' || r == '-':
			// Internal only: require a word rune after.
			if i+size < n {
				nr, _ := utf8.DecodeRuneInString(text[i+size:])
				if isWordRune(nr) || unicode.IsDigit(nr) {
					i += size
					continue
				}
			}
			return classifyWordish(text[start:i], start, hasAt, hasDot), i - start
		case r == '@':
			// Possible email: require something word-like after.
			if i+size < n {
				nr, _ := utf8.DecodeRuneInString(text[i+size:])
				if isWordRune(nr) || unicode.IsDigit(nr) {
					hasAt = true
					i += size
					continue
				}
			}
			return classifyWordish(text[start:i], start, hasAt, hasDot), i - start
		case r == '.':
			// Internal dot: domain or email continuation.
			if i+size < n {
				nr, _ := utf8.DecodeRuneInString(text[i+size:])
				if isWordRune(nr) || unicode.IsDigit(nr) {
					hasDot = true
					i += size
					continue
				}
			}
			return classifyWordish(text[start:i], start, hasAt, hasDot), i - start
		default:
			return classifyWordish(text[start:i], start, hasAt, hasDot), i - start
		}
	}
	return classifyWordish(text[start:i], start, hasAt, hasDot), i - start
}

func classifyWordish(s string, pos int, hasAt, hasDot bool) Token {
	switch {
	case hasAt && hasDot:
		return Token{Text: s, Kind: KindEmail, Pos: pos}
	case hasAt:
		// "user@host" without a dot — still treat as email-like handle.
		return Token{Text: s, Kind: KindEmail, Pos: pos}
	case hasDot && looksLikeDomain(s):
		return Token{Text: s, Kind: KindURL, Pos: pos}
	case hasDot:
		// Sentence glued together ("end.Start"); keep as a word, callers
		// that care can re-split. Feature extraction lowercases anyway.
		return Token{Text: s, Kind: KindWord, Pos: pos}
	default:
		return Token{Text: s, Kind: KindWord, Pos: pos}
	}
}

// knownTLDs is the set of top-level domains we accept for bare-domain URL
// detection. Deliberately short: false positives turn words into URLs and
// damage stylometric features.
var knownTLDs = map[string]bool{
	"com": true, "org": true, "net": true, "edu": true, "gov": true,
	"io": true, "co": true, "uk": true, "de": true, "fr": true,
	"onion": true, "info": true, "biz": true, "me": true, "tv": true,
}

func looksLikeDomain(s string) bool {
	if strings.HasPrefix(strings.ToLower(s), "www.") {
		return true
	}
	dot := strings.LastIndexByte(s, '.')
	if dot < 0 || dot == len(s)-1 {
		return false
	}
	return knownTLDs[strings.ToLower(s[dot+1:])]
}

func isSchemeStart(s string) bool {
	lower := s
	if len(lower) > 10 {
		lower = lower[:10]
	}
	lower = strings.ToLower(lower)
	return strings.HasPrefix(lower, "http://") || strings.HasPrefix(lower, "https://") ||
		strings.HasPrefix(lower, "ftp://")
}

// scanURL consumes a scheme-prefixed URL up to whitespace or a terminal
// punctuation character that is conventionally not part of URLs.
func scanURL(text string, start int) (Token, int) {
	i := start
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	// Trim trailing punctuation that belongs to the sentence: ")," etc.
	end := i
	for end > start {
		r, size := decodeLastRune(text[start:end])
		if strings.ContainsRune(".,;:!?)('\"]>", r) {
			end -= size
			continue
		}
		break
	}
	return Token{Text: text[start:end], Kind: KindURL, Pos: start}, end - start
}

func decodeLastRune(s string) (rune, int) {
	return utf8.DecodeLastRuneInString(s)
}

// scanNumber consumes a digit run with internal '.' ',' ':' separators
// (quantities, prices, times).
func scanNumber(text string, start int) (Token, int) {
	i := start
	n := len(text)
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsDigit(r):
			i += size
		case r == '.' || r == ',' || r == ':':
			if i+size < n {
				nr, _ := utf8.DecodeRuneInString(text[i+size:])
				if unicode.IsDigit(nr) {
					i += size
					continue
				}
			}
			return Token{Text: text[start:i], Kind: KindNumber, Pos: start}, i - start
		default:
			return Token{Text: text[start:i], Kind: KindNumber, Pos: start}, i - start
		}
	}
	return Token{Text: text[start:i], Kind: KindNumber, Pos: start}, i - start
}

// IsEmoji reports whether the rune is an emoji or pictographic symbol.
// Covers the main Unicode emoji blocks plus variation selectors and
// zero-width joiners used in emoji sequences.
func IsEmoji(r rune) bool {
	switch {
	case r >= 0x1F300 && r <= 0x1FAFF: // misc pictographs … symbols extended-A
		return true
	case r >= 0x1F000 && r <= 0x1F2FF: // mahjong, dominoes, enclosed ideographs
		return true
	case r >= 0x2600 && r <= 0x27BF: // misc symbols, dingbats
		return true
	case r >= 0x2B00 && r <= 0x2BFF: // arrows/symbols used as emoji
		return true
	case r == 0x200D || r == 0xFE0E || r == 0xFE0F: // ZWJ, variation selectors
		return true
	case r >= 0x1F1E6 && r <= 0x1F1FF: // regional indicators (flags)
		return true
	default:
		return false
	}
}

// StripEmoji removes all emoji runes (and emoji joiners) from s.
func StripEmoji(s string) string {
	if !strings.ContainsFunc(s, IsEmoji) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if !IsEmoji(r) {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// pgpHeaders are the armored block delimiters stripped by polishing step 11.
const (
	pgpBegin        = "-----BEGIN PGP"
	pgpEnd          = "-----END PGP"
	pgpEndLineClose = "-----"
)

// StripPGP removes armored PGP blocks (public keys, signatures, signed
// message wrappers) from the text. An unterminated block is removed to the
// end of the text — dark-web posts are routinely truncated mid-key.
func StripPGP(s string) string {
	for {
		begin := strings.Index(s, pgpBegin)
		if begin < 0 {
			return s
		}
		endIdx := strings.Index(s[begin:], pgpEnd)
		if endIdx < 0 {
			return strings.TrimRight(s[:begin], " \t\n")
		}
		end := begin + endIdx
		// Consume to the end of the END line.
		rest := s[end+len(pgpEnd):]
		if close := strings.Index(rest, pgpEndLineClose); close >= 0 {
			end = end + len(pgpEnd) + close + len(pgpEndLineClose)
		} else if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			end = end + len(pgpEnd) + nl
		} else {
			end = len(s)
		}
		s = s[:begin] + s[end:]
	}
}

// ContainsPGP reports whether the text contains an armored PGP delimiter.
func ContainsPGP(s string) bool { return strings.Contains(s, pgpBegin) }
