package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
)

// Corpus is what a Loader hands the service: the known subjects to index
// and (optionally) a query corpus that by-alias requests resolve against.
// When Query is nil the known set doubles as the query corpus.
type Corpus struct {
	Known []attribution.Subject
	Query []attribution.Subject
	// Matcher, when non-nil, is a pre-built index over exactly Known — for
	// example one cold-started from an internal/store snapshot — and is
	// installed as-is instead of re-indexing Known. The Options the matcher
	// was built with win over Config.Options.
	Matcher *attribution.Matcher
	// LastJournalSeq, when non-nil, is the last applied journal sequence of
	// the store the corpus was loaded from; healthz surfaces it so an
	// operator can line the serving snapshot up against the writer's
	// journal position. Loaders without a durable store leave it nil.
	LastJournalSeq *uint64
}

// Loader produces the corpus. It runs once at startup and again on every
// Reload (SIGHUP in cmd/attributed), so it should re-read its sources.
type Loader func(ctx context.Context) (*Corpus, error)

// Config assembles a Service.
type Config struct {
	// Loader supplies the corpus; required.
	Loader Loader
	// Options configure the matcher (zero value: attribution defaults).
	Options attribution.Options
	// Subjects configures inline-subject construction. Pass the same
	// options the corpus was built with (darklight.Pipeline.SubjectOptions)
	// so inline queries and batch queries share one code path.
	Subjects attribution.SubjectOptions
	// APIKeys enables auth when non-empty: requests must carry one of
	// these in the X-API-Key header.
	APIKeys []string
	// RatePerSec enables the per-client token-bucket limiter when > 0.
	RatePerSec float64
	// Burst is the bucket size (minimum 1).
	Burst int
	// MaxBody caps request bodies in bytes (default DefaultMaxBody).
	MaxBody int64
	// Clock defaults to SystemClock. Tests inject a fake.
	Clock Clock
	// Registry receives the per-endpoint metrics (default obs.Default()).
	Registry *obs.Registry
	// Trace, when non-nil, enables request tracing: every request gets a
	// traceparent and request id stamped on the response, flows through a
	// per-stage span tree, and is reported to the recorder's sinks (access
	// log, sampled-trace ring). nil disables tracing entirely — response
	// bodies are bit-identical either way (TestTraceBitIdentity pins it).
	Trace *reqtrace.Recorder
}

// state is one immutable index snapshot. Handlers load it once per request
// through an atomic pointer, so a concurrent Reload is invisible to
// in-flight queries: every response is computed entirely against a single
// version and stamps that version into its body.
type state struct {
	version int
	matcher *attribution.Matcher
	known   []attribution.Subject
	// knownSet validates rescore candidate names.
	knownSet map[string]struct{}
	// query resolves by-alias subjects; duplicate names resolve to the
	// last occurrence (the matcher's own byName rule).
	query map[string]*attribution.Subject
	// lastSeq is the loader-reported journal sequence this snapshot was
	// built from (nil when the corpus has no durable store behind it).
	lastSeq *uint64
}

// Service is the attribution daemon's handler layer: it owns the index
// snapshot, the middleware chain (auth, rate limit, drain gate, metrics),
// and the /v1 endpoint handlers. Safe for concurrent use.
type Service struct {
	cfg     Config
	clock   Clock
	keys    map[string]struct{}
	limiter *rateLimiter
	met     *metrics
	// quant feeds the rolling-window p50/p99 latency gauges; always on
	// (the gauges do not require tracing to be enabled).
	quant *reqtrace.Window

	state atomic.Pointer[state]

	// reloadCount is how many snapshots install has published (the initial
	// load counts); healthz reports it. Kept on the Service rather than
	// read back from the metrics counter so a registry shared between
	// services cannot cross-contaminate the number.
	reloadCount atomic.Int64

	reloadMu sync.Mutex // serialises Reload; swaps stay atomic for readers

	draining atomic.Bool
	inflight sync.WaitGroup

	// hookInflight, when set by a test, runs after a request is counted
	// in-flight and before it is handled — the drain tests use it to hold
	// a request open deterministically.
	hookInflight func(endpoint string)
}

// metrics is the per-endpoint observability surface, registered on the
// configured registry (idempotently, so many Services can share one).
type metrics struct {
	requests   *obs.CounterVec   // serve_requests_total{endpoint,code}
	latency    *obs.HistogramVec // serve_request_seconds{endpoint}
	inflight   *obs.Gauge        // serve_inflight_requests
	reloads    *obs.Counter      // serve_index_reloads_total
	reloadErrs *obs.Counter      // serve_index_reload_failures_total
	version    *obs.Gauge        // serve_index_version
	known      *obs.Gauge        // serve_known_subjects
	// prefilterLat tracks stage-1 latency by the pre-filter mode that
	// actually ran, for requests that set the /v1/rank "prefilter" knob.
	prefilterLat *obs.HistogramVec // serve_prefilter_seconds{mode}
	// p50/p99 are rolling-window request-latency quantiles, refreshed by a
	// registry collector from the service's quantile window at exposition
	// time — unlike the cumulative latency histogram, they answer "how slow
	// is the server right now".
	p50 *obs.Gauge // serve_request_seconds_p50
	p99 *obs.Gauge // serve_request_seconds_p99
}

// latencyBuckets spans sub-millisecond handler hits through slow seconds.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		requests:   r.CounterVec("serve_requests_total", "requests served by endpoint and status code", "endpoint", "code"),
		latency:    r.HistogramVec("serve_request_seconds", "request latency by endpoint", latencyBuckets, "endpoint"),
		inflight:   r.Gauge("serve_inflight_requests", "requests currently being handled"),
		reloads:    r.Counter("serve_index_reloads_total", "successful index reloads (the initial load counts)"),
		reloadErrs: r.Counter("serve_index_reload_failures_total", "failed index reloads (the previous index stays live)"),
		version:    r.Gauge("serve_index_version", "version of the live index snapshot"),
		known:      r.Gauge("serve_known_subjects", "known subjects in the live index"),
		prefilterLat: r.HistogramVec("serve_prefilter_seconds",
			"stage-1 latency by pre-filter mode for /v1/rank requests that set the knob",
			latencyBuckets, "mode"),
		p50: r.Gauge("serve_request_seconds_p50", "rolling-window request latency median"),
		p99: r.Gauge("serve_request_seconds_p99", "rolling-window request latency 99th percentile"),
	}
}

// quantWindow/quantSlices/quantCap shape the rolling latency window: one
// minute in ten-second slices, up to 512 retained observations per slice
// (reservoir-sampled beyond that).
const (
	quantWindow = time.Minute
	quantSlices = 6
	quantCap    = 512
)

// ErrDrainTimeout is returned by Drain when in-flight requests do not
// complete within the deadline.
var ErrDrainTimeout = fmt.Errorf("serve: drain deadline exceeded with requests still in flight")

// New builds a Service and performs the initial index load (version 1).
func New(ctx context.Context, cfg Config) (*Service, error) {
	if cfg.Loader == nil {
		return nil, fmt.Errorf("serve: Config.Loader is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Options.K == 0 && cfg.Options.Threshold == 0 {
		cfg.Options = attribution.DefaultOptions()
	}
	s := &Service{
		cfg:     cfg,
		clock:   cfg.Clock,
		limiter: newRateLimiter(cfg.RatePerSec, cfg.Burst, cfg.Clock),
		met:     newMetrics(cfg.Registry),
		quant:   reqtrace.NewWindow(quantWindow, quantSlices, quantCap, 0),
	}
	cfg.Registry.RegisterCollector("serve_request_quantiles", func() {
		now := s.clock.Now()
		s.met.p50.Set(s.quant.Quantile(now, 0.5))
		s.met.p99.Set(s.quant.Quantile(now, 0.99))
	})
	if len(cfg.APIKeys) > 0 {
		s.keys = make(map[string]struct{}, len(cfg.APIKeys))
		for _, k := range cfg.APIKeys {
			s.keys[k] = struct{}{}
		}
	}
	st, err := s.build(ctx, 1)
	if err != nil {
		return nil, err
	}
	s.install(st)
	return s, nil
}

// build loads the corpus and constructs one immutable snapshot.
func (s *Service) build(ctx context.Context, version int) (*state, error) {
	c, err := s.cfg.Loader(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: load corpus: %w", err)
	}
	m := c.Matcher
	if m == nil {
		m, err = attribution.NewMatcherContext(ctx, c.Known, s.cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("serve: index corpus: %w", err)
		}
	}
	st := &state{
		version:  version,
		matcher:  m,
		known:    c.Known,
		knownSet: make(map[string]struct{}, len(c.Known)),
	}
	if c.LastJournalSeq != nil {
		seq := *c.LastJournalSeq // copy: the loader may reuse its corpus struct
		st.lastSeq = &seq
	}
	for i := range c.Known {
		st.knownSet[c.Known[i].Name] = struct{}{}
	}
	qs := c.Query
	if qs == nil {
		qs = c.Known
	}
	st.query = make(map[string]*attribution.Subject, len(qs))
	for i := range qs {
		st.query[qs[i].Name] = &qs[i]
	}
	return st, nil
}

// install publishes a snapshot and updates the index gauges.
func (s *Service) install(st *state) {
	s.state.Store(st)
	s.met.version.Set(float64(st.version))
	s.met.known.Set(float64(len(st.known)))
	s.met.reloads.Inc()
	s.reloadCount.Add(1)
}

// Reload re-runs the loader and atomically swaps in the new index. In-flight
// queries keep the snapshot they started with; a failed reload leaves the
// live index untouched and returns the error.
func (s *Service) Reload(ctx context.Context) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	st, err := s.build(ctx, s.state.Load().version+1)
	if err != nil {
		s.met.reloadErrs.Inc()
		return err
	}
	s.install(st)
	return nil
}

// Version reports the live index version.
func (s *Service) Version() int { return s.state.Load().version }

// Draining reports whether Drain has been initiated.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain initiates a graceful shutdown of the handler layer: new requests
// are refused with a 503 "draining" envelope (healthz stays up, reporting
// the drain), and Drain blocks until every in-flight request has completed
// or the timeout elapses on the service clock, returning ErrDrainTimeout
// in the latter case. The caller is responsible for closing its listener —
// typically before calling Drain, so new *connections* are refused too.
func (s *Service) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-s.clock.After(timeout):
		return ErrDrainTimeout
	}
}

// Handler returns the /v1 API mux. Mount it at "/" (it owns its full
// paths); observability surfaces (/metrics, /debug/pprof) mount beside it.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/rank", s.endpoint("rank", postJSON, s.handleRank))
	mux.Handle("/v1/rescore", s.endpoint("rescore", postJSON, s.handleRescore))
	mux.Handle("/v1/match", s.endpoint("match", postJSON, s.handleMatch))
	mux.Handle("/v1/healthz", s.endpoint("healthz", getOpen, s.handleHealthz))
	return mux
}
