package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestServeStop is the goleak regression: Serve's goroutine used to run
// until process exit with no way to stop it. The returned stop function
// must shut the server down, wait for the serving goroutine to finish,
// and be safe to call twice.
func TestServeStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "requests seen").Inc()

	addr, stop, err := Serve("127.0.0.1:0", reg, t.Logf)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics while serving: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close /metrics body: %v", err)
	}
	if !strings.Contains(string(body), "test_requests_total") {
		t.Fatalf("metrics output missing registered counter:\n%s", body)
	}

	// stop must not return before the serving goroutine has exited, and
	// calling it again must be a no-op rather than a panic or deadlock.
	stop()
	stop()

	if conn, err := net.Dial("tcp", addr); err == nil {
		if cerr := conn.Close(); cerr != nil {
			t.Errorf("closing probe connection: %v", cerr)
		}
		t.Fatalf("listener on %s still accepting connections after stop", addr)
	}
}

// TestServeBadAddr pins the error path: an unusable address reports an
// error instead of returning a nil stop that callers would defer.
func TestServeBadAddr(t *testing.T) {
	if _, stop, err := Serve("256.256.256.256:0", nil, nil); err == nil {
		stop()
		t.Fatal("Serve on an invalid address succeeded")
	}
}
