package features

import (
	"fmt"
	"reflect"
	"testing"
)

// shardTestDocs extracts documents from synthetic texts varied enough to
// produce frequency ties (which the deterministic gram-id tiebreak must
// resolve identically however the counts were accumulated).
func shardTestDocs(n int) []*Doc {
	cfg := ReductionConfig()
	texts := []string{
		"the quick brown fox jumps over the lazy dog near the river bank",
		"shipping was fast and the quality was exactly as described would buy again",
		"payment sent yesterday please confirm the order and update the tracking",
		"does anyone know a reliable vendor for this kind of product around here",
		"the package arrived safely and the stealth was better than expected thanks",
	}
	docs := make([]*Doc, n)
	for i := range docs {
		docs[i] = Extract(fmt.Sprintf("%s extra token%d", texts[i%len(texts)], i%7), cfg)
	}
	return docs
}

// TestVocabShardMergeMatchesSequential pins shard-then-Merge to the single
// sequential builder: identical builder state (counters and doc counts) and
// an identical built Vocabulary, for several shard counts and regardless of
// merge order.
func TestVocabShardMergeMatchesSequential(t *testing.T) {
	cfg := ReductionConfig()
	docs := shardTestDocs(53)

	seq := NewVocabBuilder(cfg)
	for _, d := range docs {
		seq.Add(d)
	}
	want := seq.Build()

	for _, shards := range []int{2, 3, 8} {
		builders := make([]*VocabBuilder, shards)
		for s := range builders {
			builders[s] = NewVocabBuilder(cfg)
		}
		for i, d := range docs {
			builders[i%shards].Add(d)
		}
		merged := builders[0]
		for _, b := range builders[1:] {
			merged.Merge(b)
		}
		if !reflect.DeepEqual(merged.words, seq.words) || !reflect.DeepEqual(merged.chars, seq.chars) {
			t.Errorf("shards=%d: merged gram stats diverge from sequential", shards)
		}
		if merged.NumDocs() != seq.NumDocs() {
			t.Errorf("shards=%d: NumDocs = %d, want %d", shards, merged.NumDocs(), seq.NumDocs())
		}
		if got := merged.Build(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: merged vocabulary diverges from sequential", shards)
		}
	}

	// Reverse merge order: sums commute, so the result must not change.
	builders := []*VocabBuilder{NewVocabBuilder(cfg), NewVocabBuilder(cfg), NewVocabBuilder(cfg)}
	for i, d := range docs {
		builders[i%3].Add(d)
	}
	rev := builders[2]
	rev.Merge(builders[1])
	rev.Merge(builders[0])
	if got := rev.Build(); !reflect.DeepEqual(got, want) {
		t.Errorf("reverse merge order diverges from sequential build")
	}
}

// TestVocabMergeEmpty checks the degenerate shards: merging an empty
// builder is a no-op, and merging into an empty builder copies the other.
func TestVocabMergeEmpty(t *testing.T) {
	cfg := ReductionConfig()
	docs := shardTestDocs(5)

	seq := NewVocabBuilder(cfg)
	for _, d := range docs {
		seq.Add(d)
	}
	want := seq.Build()

	withEmpty := NewVocabBuilder(cfg)
	for _, d := range docs {
		withEmpty.Add(d)
	}
	withEmpty.Merge(NewVocabBuilder(cfg))
	if got := withEmpty.Build(); !reflect.DeepEqual(got, want) {
		t.Errorf("merging an empty builder changed the result")
	}

	intoEmpty := NewVocabBuilder(cfg)
	intoEmpty.Merge(withEmpty)
	if got := intoEmpty.Build(); !reflect.DeepEqual(got, want) {
		t.Errorf("merging into an empty builder diverges")
	}
}
