package scraper

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darklight/internal/darkweb"
	"darklight/internal/obs"
)

// failuresByClass reads the current scraper_failures_total series from the
// default registry, keyed by class label.
func failuresByClass(t *testing.T) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, fam := range obs.Default().Snapshot() {
		if fam.Name != "scraper_failures_total" {
			continue
		}
		for _, s := range fam.Series {
			out[s.Labels["class"]] = s.Value
		}
	}
	return out
}

// TestFailureClassTagging pins the satellite contract from ISSUE 5: every
// CrawlError carries the retry class it failed with, and the
// scraper_failures_total{class} counters advance by exactly the classes
// Errors() reports — the two views can never disagree because both derive
// from the same errors.Is check at record time.
func TestFailureClassTagging(t *testing.T) {
	original := sampleDataset() // threads t0, t1, t2 on board garden
	srv := darkweb.NewServer(original.Name, original, darkweb.Options{})
	inner := srv.Handler()
	poisoned := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/thread/t1":
			http.NotFound(w, r) // permanent: fails fast, no retries
		case "/thread/t2":
			http.Error(w, "flaky", http.StatusInternalServerError) // transient: retried until exhausted
		default:
			inner.ServeHTTP(w, r)
		}
	})
	ts := httptest.NewServer(poisoned)
	t.Cleanup(ts.Close)

	before := failuresByClass(t)

	sc := New(ts.URL, Options{MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	if _, err := sc.Scrape(context.Background(), "tagged", original.Platform); err != nil {
		t.Fatalf("partial failures must not abort the crawl: %v", err)
	}

	errs := sc.Errors()
	if len(errs) != 2 {
		t.Fatalf("got %d crawl errors, want 2: %v", len(errs), errs)
	}
	gotClasses := make(map[string]string) // thread -> class
	for _, ce := range errs {
		gotClasses[ce.Thread] = ce.Class
		// The class must agree with the sentinel wrapped in the error.
		switch {
		case errors.Is(ce.Err, errPermanent):
			if ce.Class != ClassPermanent {
				t.Errorf("thread %s: class %q but error is permanent", ce.Thread, ce.Class)
			}
		case errors.Is(ce.Err, errGiveUp):
			if ce.Class != ClassTransientExhausted {
				t.Errorf("thread %s: class %q but error is transient-exhausted", ce.Thread, ce.Class)
			}
		}
	}
	if gotClasses["t1"] != ClassPermanent {
		t.Errorf("t1 class = %q, want %q", gotClasses["t1"], ClassPermanent)
	}
	if gotClasses["t2"] != ClassTransientExhausted {
		t.Errorf("t2 class = %q, want %q", gotClasses["t2"], ClassTransientExhausted)
	}

	// The String() rendering surfaces the class for operators.
	for _, ce := range errs {
		if got := ce.String(); !strings.Contains(got, "["+ce.Class+"]") {
			t.Errorf("CrawlError.String() = %q, want the [%s] tag", got, ce.Class)
		}
	}

	// Metric deltas must match the per-class tally from Errors() exactly.
	after := failuresByClass(t)
	wantDelta := map[string]float64{ClassPermanent: 1, ClassTransientExhausted: 1}
	for class, want := range wantDelta {
		if got := after[class] - before[class]; got != want {
			t.Errorf("scraper_failures_total{class=%q} advanced by %v, want %v", class, got, want)
		}
	}
	if got := after[ClassInternal] - before[ClassInternal]; got != 0 {
		t.Errorf("scraper_failures_total{class=%q} advanced by %v, want 0", ClassInternal, got)
	}
}
