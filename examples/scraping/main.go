// Scraping: the data-collection story of §III-B end to end, in-process. A
// synthetic Dream-Market-style forum is served over HTTP with the full
// hostile-circuit repertoire — latency, transient 503s, 429 rate-limit
// pushback with Retry-After, truncated bodies, per-page flakiness — and
// the concurrent polite scraper crawls it thread by thread over a worker
// pool, journaling completed threads to a checkpoint as it goes. The
// result round-trips losslessly into the polishing pipeline.
//
//	go run ./examples/scraping
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"darklight"
	"darklight/internal/darkweb"
	"darklight/internal/forum"
	"darklight/internal/scraper"
)

func main() {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 3, Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	original := world.DM
	fmt.Printf("serving synthetic Dream Market: %d aliases, %d messages\n",
		original.Len(), original.TotalMessages())

	// A hidden service with a slow, flaky, rate-limiting circuit that
	// occasionally tears responses mid-body.
	srv := darkweb.NewServer("dream-market", original, darkweb.Options{
		Latency:        2 * time.Millisecond,
		FailureRate:    0.05,
		RetryAfterRate: 0.03,
		RetryAfter:     time.Second, // the scraper caps the wait at BackoffMax
		TruncateRate:   0.03,
		FailFirstN:     1, // every page flakes once before it loads
		Seed:           99,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ckptDir, err := os.MkdirTemp("", "darklight-scrape")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckpt := filepath.Join(ckptDir, "dm.ckpt")

	sc := scraper.New(ts.URL, scraper.Options{
		RequestInterval: time.Millisecond,
		Workers:         8,
		MaxRetries:      8,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		CheckpointPath:  ckpt,
	})
	start := time.Now()
	scraped, err := sc.Scrape(context.Background(), "DM", forum.PlatformDreamMarket)
	if err != nil {
		log.Fatal(err)
	}
	st := sc.Stats()
	fmt.Printf("scraped %d aliases / %d posts from %d threads on %d boards "+
		"(%d requests, %d retries after 503s/429s/truncations) in %s\n",
		scraped.Len(), st.Posts, st.Threads, st.Boards,
		st.Requests, st.Retries, time.Since(start).Round(time.Millisecond))
	for _, ce := range sc.Errors() {
		fmt.Println("gave up on", ce.String())
	}

	if scraped.TotalMessages() != original.TotalMessages() {
		log.Fatalf("lost messages: scraped %d, original %d",
			scraped.TotalMessages(), original.TotalMessages())
	}
	fmt.Println("scrape is lossless ✓")

	// Run again with the same checkpoint: every thread restores from the
	// journal — this is what resuming an interrupted crawl looks like.
	resume := scraper.New(ts.URL, scraper.Options{
		RequestInterval: time.Millisecond,
		Workers:         8,
		MaxRetries:      8,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
		CheckpointPath:  ckpt,
	})
	start = time.Now()
	again, err := resume.Scrape(context.Background(), "DM", forum.PlatformDreamMarket)
	if err != nil {
		log.Fatal(err)
	}
	rst := resume.Stats()
	fmt.Printf("resume from checkpoint: %d/%d threads restored, %d requests, %d posts in %s\n",
		rst.Resumed, rst.Threads, rst.Requests, again.TotalMessages(),
		time.Since(start).Round(time.Millisecond))

	// Hand the scrape to the analysis pipeline, as cmd/scrape + cmd/darklight
	// would via JSONL files.
	report := darklight.NewPipeline().Polish(scraped)
	fmt.Println("\npolishing the scrape:")
	fmt.Print(report.String())
	fmt.Printf("ready for attribution: %d aliases, %d messages\n",
		scraped.Len(), scraped.TotalMessages())
}
