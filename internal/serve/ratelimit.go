package serve

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter. Each client (API key,
// or remote host when auth is disabled) owns one bucket refilled at rate
// tokens/second up to burst. Refill is computed from the injected Clock,
// so the limiter is fully deterministic under a fake clock.
type rateLimiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64
	clock Clock

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter, or nil when rate <= 0 (unlimited).
func newRateLimiter(rate float64, burst int, clock Clock) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clock:   clock,
		buckets: make(map[string]*bucket),
	}
}

// allow consumes one token from key's bucket. When the bucket is empty it
// reports false plus the wait until the next token accrues (the
// Retry-After hint).
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweep(now)
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// idleWindow is how long an untouched bucket takes to refill completely
// from empty: burst/rate seconds. A bucket idle at least that long is
// indistinguishable from a fresh one, so evicting it is lossless — the
// next request recreates it at full burst, exactly what refill would have
// produced.
func (l *rateLimiter) idleWindow() time.Duration {
	return time.Duration(l.burst / l.rate * float64(time.Second))
}

// sweep evicts buckets idle for at least one full refill window. It runs
// at most once per window so the cost is amortised: the map is bounded by
// the number of distinct clients seen during any single window, not the
// lifetime of the daemon. Called with l.mu held.
func (l *rateLimiter) sweep(now time.Time) {
	idle := l.idleWindow()
	if l.lastSweep.IsZero() {
		l.lastSweep = now
		return
	}
	if now.Sub(l.lastSweep) < idle {
		return
	}
	l.lastSweep = now
	for key, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, key)
		}
	}
}

// numBuckets reports the current map size (test hook).
func (l *rateLimiter) numBuckets() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
