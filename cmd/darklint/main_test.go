package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestJSONGolden pins the -json contract byte-for-byte against a
// fixture module: field names, ordering, the suppressed flag on waived
// findings, and the exit code that counts only unsuppressed ones.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runLint([]string{"-C", "testdata/module", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one unsuppressed finding)\nstderr: %s", code, stderr.String())
	}

	golden, err := os.ReadFile("testdata/json.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("-json output mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The output must stay parseable with the documented field names.
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	for _, f := range findings {
		for _, k := range []string{"file", "line", "col", "analyzer", "message", "suppressed"} {
			if _, ok := f[k]; !ok {
				t.Errorf("finding %v missing key %q", f, k)
			}
		}
	}
	if findings[0]["suppressed"] != false || findings[1]["suppressed"] != true {
		t.Errorf("suppressed flags = %v, %v; want false, true",
			findings[0]["suppressed"], findings[1]["suppressed"])
	}
}

// TestJSONCleanTree is the zero-findings contract: an empty JSON array
// (not null) and exit 0 when only clean analyzers are selected.
func TestJSONCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runLint([]string{"-C", "testdata/module", "-json", "-only=wallclock", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean-tree -json output = %q, want []", got)
	}
}

// TestTextOutput keeps the human-readable mode stable: suppressed
// findings are omitted, the rest render as file:line:col.
func TestTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := runLint([]string{"-C", "testdata/module", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	want := "testdata/module/internal/serve/serve.go:19:3: r.mu.Lock() is not released on every path " +
		"to this return; unlock on all exits or defer the unlock (lockbalance)\n"
	if got := stdout.String(); got != want {
		t.Errorf("text output = %q, want %q", got, want)
	}
}

// TestUnknownAnalyzer pins the usage-error exit code.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runLint([]string{"-only=nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want mention of unknown analyzer", stderr.String())
	}
}
