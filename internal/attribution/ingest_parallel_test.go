package attribution

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"darklight/internal/activity"
	"darklight/internal/forum"
)

// TestNewMatcherWorkerInvariance pins the sharded index build to the
// sequential one: for any worker count the matcher must hold bit-identical
// state — vocabulary, inverted index (posting order included: stage 1
// accumulates float32 dot products in posting order, so a reordering would
// change scores), dense blocks — and produce identical Match results.
func TestNewMatcherWorkerInvariance(t *testing.T) {
	authors := makeAuthors(t, 30, 400)
	known := make([]Subject, len(authors))
	probes := make([]Subject, len(authors))
	for i, a := range authors {
		known[i] = a.known
		probes[i] = a.probe
	}

	opts := testOptions()
	opts.Workers = 1
	seq, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3, 8, 64} {
		opts.Workers = workers
		par, err := NewMatcher(known, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.vocab, seq.vocab) {
			t.Errorf("Workers=%d: vocabulary diverges from sequential build", workers)
		}
		if !reflect.DeepEqual(par.postings, seq.postings) {
			t.Errorf("Workers=%d: inverted index diverges from sequential build", workers)
		}
		if !reflect.DeepEqual(par.mask, seq.mask) ||
			!reflect.DeepEqual(par.freqs, seq.freqs) ||
			!reflect.DeepEqual(par.acts, seq.acts) {
			t.Errorf("Workers=%d: dense blocks diverge from sequential build", workers)
		}
		if !reflect.DeepEqual(par.fwdIdx, seq.fwdIdx) ||
			!reflect.DeepEqual(par.fwdVal, seq.fwdVal) ||
			!reflect.DeepEqual(par.maxContrib, seq.maxContrib) {
			t.Errorf("Workers=%d: pre-filter structures diverge from sequential build", workers)
		}
		for i := 0; i < len(probes); i += 7 {
			got, want := par.Match(&probes[i]), seq.Match(&probes[i])
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Workers=%d: Match(%s) diverges:\n%+v\nvs\n%+v", workers, probes[i].Name, got, want)
			}
		}
	}
}

// TestBuildSubjectsWorkerInvariance pins parallel subject construction to
// the sequential result: same order, same documents, same profiles.
func TestBuildSubjectsWorkerInvariance(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	day := time.Date(2017, 6, 5, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 37; i++ {
		a := forum.Alias{Name: fmt.Sprintf("user%02d", i)}
		// Some aliases get too few messages for an activity profile.
		msgs := 40
		if i%5 == 0 {
			msgs = 3
		}
		for j := 0; j < msgs; j++ {
			a.Messages = append(a.Messages, forum.Message{
				ID:       fmt.Sprintf("%d-%d", i, j),
				Author:   a.Name,
				Body:     strings.Repeat(fmt.Sprintf("word%d ", (i+j)%13), 30),
				PostedAt: day.Add(time.Duration(i*100+j) * time.Hour),
			})
		}
		d.Add(a)
	}

	opts := SubjectOptions{WordBudget: 200, WithActivity: true, Activity: activity.Options{ExcludeWeekends: true}, Workers: 1}
	seq, err := BuildSubjects(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 100} {
		opts.Workers = workers
		par, err := BuildSubjects(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Errorf("Workers=%d: subjects diverge from sequential build", workers)
		}
	}
}
