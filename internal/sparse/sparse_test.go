package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func vec(pairs ...float64) Vector {
	v := Vector{}
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Idx = append(v.Idx, uint32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFromMapSorted(t *testing.T) {
	v := FromMap(map[uint32]float64{5: 1, 1: 2, 9: 0, 3: -1})
	if !v.IsSorted() {
		t.Fatal("FromMap must produce sorted vector")
	}
	if v.Len() != 3 {
		t.Errorf("zero entry must be dropped; len = %d", v.Len())
	}
	if v.Get(5) != 1 || v.Get(1) != 2 || v.Get(3) != -1 || v.Get(9) != 0 {
		t.Error("Get values wrong")
	}
}

func TestFromDense(t *testing.T) {
	v := FromDense([]float64{0, 1.5, 0, 2})
	if v.Len() != 2 || v.Get(1) != 1.5 || v.Get(3) != 2 {
		t.Errorf("FromDense = %v", v)
	}
}

func TestSortMergesDuplicates(t *testing.T) {
	v := vec(3, 1, 1, 2, 3, 4, 2, 8)
	v.Sort()
	if !v.IsSorted() {
		t.Fatal("not sorted")
	}
	if v.Len() != 3 {
		t.Fatalf("duplicates not merged: %v", v)
	}
	if v.Get(3) != 5 {
		t.Errorf("duplicate values must sum: Get(3) = %v", v.Get(3))
	}
}

func TestDotAndCosine(t *testing.T) {
	a := vec(0, 1, 2, 2, 5, 3)
	b := vec(1, 4, 2, 5, 5, 6)
	if got := Dot(a, b); got != 2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	// Orthogonal.
	if got := Cosine(vec(0, 1), vec(1, 1)); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	// Identical.
	if got := Cosine(a, a); !almostEqual(got, 1) {
		t.Errorf("self cosine = %v", got)
	}
	// Zero vector.
	if got := Cosine(a, Vector{}); got != 0 {
		t.Errorf("zero cosine = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := vec(0, 3, 1, 4)
	v.Normalize()
	if !almostEqual(v.Norm(), 1) {
		t.Errorf("norm after Normalize = %v", v.Norm())
	}
	z := Vector{}
	z.Normalize() // must not panic
}

func TestConcat(t *testing.T) {
	a := vec(0, 1, 2, 2)
	b := vec(0, 5, 3, 6)
	c := Concat(a, b, 10)
	if !c.IsSorted() || c.Len() != 4 {
		t.Fatalf("Concat = %v", c)
	}
	if c.Get(10) != 5 || c.Get(13) != 6 {
		t.Error("offset not applied")
	}
	defer func() {
		if recover() == nil {
			t.Error("Concat with bad offset must panic")
		}
	}()
	Concat(a, b, 1)
}

func TestAdd(t *testing.T) {
	a := vec(0, 1, 2, 2)
	b := vec(2, 3, 4, 4)
	c := Add(a, b)
	if c.Get(0) != 1 || c.Get(2) != 5 || c.Get(4) != 4 {
		t.Errorf("Add = %v", c)
	}
	// Cancellation drops the entry.
	d := Add(vec(1, 2), vec(1, -2))
	if d.Len() != 0 {
		t.Errorf("cancelled entry kept: %v", d)
	}
}

func TestProject(t *testing.T) {
	v := vec(1, 10, 3, 30, 5, 50)
	p := Project(v, []uint32{3, 4, 5})
	if p.Len() != 2 || p.Get(3) != 30 || p.Get(5) != 50 {
		t.Errorf("Project = %v", p)
	}
}

func TestClone(t *testing.T) {
	a := vec(1, 2)
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] != 2 {
		t.Error("Clone must deep-copy")
	}
}

func TestString(t *testing.T) {
	if got := vec(1, 2.5).String(); got != "{1:2.5}" {
		t.Errorf("String = %q", got)
	}
}

// --- properties ---

func toVec(m map[uint32]float64) Vector { return FromMap(m) }

func TestCosineProperties(t *testing.T) {
	f := func(am, bm map[uint32]float64) bool {
		// Restrict to non-negative values (our feature space).
		for k, v := range am {
			am[k] = math.Abs(v)
			if math.IsInf(am[k], 0) || math.IsNaN(am[k]) {
				delete(am, k)
			}
		}
		for k, v := range bm {
			bm[k] = math.Abs(v)
			if math.IsInf(bm[k], 0) || math.IsNaN(bm[k]) {
				delete(bm, k)
			}
		}
		a, b := toVec(am), toVec(bm)
		cab, cba := Cosine(a, b), Cosine(b, a)
		if !almostEqual(cab, cba) {
			return false // symmetry
		}
		return cab >= -1e-9 && cab <= 1+1e-9 // bounded for non-negative vectors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDotMatchesMapCrossCheck(t *testing.T) {
	f := func(am, bm map[uint32]float64) bool {
		for k, v := range am {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				delete(am, k)
			}
		}
		for k, v := range bm {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				delete(bm, k)
			}
		}
		want := 0.0
		for k, v := range am {
			want += v * bm[k]
		}
		got := Dot(toVec(am), toVec(bm))
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortIdempotent(t *testing.T) {
	f := func(idx []uint32, vals []float64) bool {
		n := len(idx)
		if len(vals) < n {
			n = len(vals)
		}
		v := Vector{Idx: append([]uint32(nil), idx[:n]...), Val: append([]float64(nil), vals[:n]...)}
		v.Sort()
		if !v.IsSorted() {
			return false
		}
		before := v.Clone()
		v.Sort()
		if v.Len() != before.Len() {
			return false
		}
		for i := range v.Idx {
			if v.Idx[i] != before.Idx[i] || v.Val[i] != before.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(am, bm map[uint32]float64) bool {
		for k, v := range am {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				delete(am, k)
			}
		}
		for k, v := range bm {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				delete(bm, k)
			}
		}
		ab := Add(toVec(am), toVec(bm))
		ba := Add(toVec(bm), toVec(am))
		if ab.Len() != ba.Len() {
			return false
		}
		for i := range ab.Idx {
			if ab.Idx[i] != ba.Idx[i] || ab.Val[i] != ba.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// referenceSort is the packed comparison sort Sort used before the radix
// path existed, kept as the executable spec: sort (index, position) pairs,
// then sum duplicate indices in position order.
func referenceSort(v *Vector) {
	packed := make([]uint64, len(v.Idx))
	for k, i := range v.Idx {
		packed[k] = uint64(i)<<32 | uint64(uint32(k))
	}
	sort.Slice(packed, func(a, b int) bool { return packed[a] < packed[b] })
	vals := make([]float64, len(v.Val))
	copy(vals, v.Val)
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for _, p := range packed {
		i := uint32(p >> 32)
		x := vals[uint32(p)]
		if n := len(v.Idx); n > 0 && v.Idx[n-1] == i {
			v.Val[n-1] += x
			continue
		}
		v.Idx = append(v.Idx, i)
		v.Val = append(v.Val, x)
	}
}

// TestSortMatchesReference drives both Sort paths (small comparison sort
// and large radix sort) across random vectors with heavy index collisions
// and asserts bit-identical output — including the float summation order
// of duplicate indices.
func TestSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(600) // spans both the <128 and the radix path
		var got, want Vector
		maxIdx := uint32(1)
		switch trial % 3 {
		case 0:
			maxIdx = 40 // dense collisions
		case 1:
			maxIdx = 1 << 17 // vocabulary-scale indices
		case 2:
			maxIdx = math.MaxUint32 // full-width indices: all radix passes
		}
		for i := 0; i < n; i++ {
			idx := uint32(rng.Uint64()) % maxIdx
			val := rng.NormFloat64()
			got.Idx = append(got.Idx, idx)
			got.Val = append(got.Val, val)
			want.Idx = append(want.Idx, idx)
			want.Val = append(want.Val, val)
		}
		got.Sort()
		referenceSort(&want)
		if len(got.Idx) != len(want.Idx) {
			t.Fatalf("trial %d (n=%d): length %d != %d", trial, n, len(got.Idx), len(want.Idx))
		}
		for k := range got.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("trial %d (n=%d) entry %d: got (%d,%v) want (%d,%v)",
					trial, n, k, got.Idx[k], got.Val[k], want.Idx[k], want.Val[k])
			}
		}
		if !got.IsSorted() {
			t.Fatalf("trial %d: result not strictly sorted", trial)
		}
	}
}
