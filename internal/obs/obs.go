// Package obs is the pipeline's observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms with Prometheus
// text-format and JSON exposition), a hierarchical span tracer, and the
// per-run manifest artifact (run.json) that makes a table reproduction
// auditable.
//
// The layer is built stdlib-only and designed around one invariant: the
// pipeline's *output* must be bit-identical with telemetry on or off.
// Three rules follow:
//
//   - Metric values are derived from counts (messages, postings, retries,
//     bytes), never from wall time, so a metric snapshot embedded in a
//     manifest is reproducible. Durations live exclusively in spans, which
//     are timings by definition and never feed back into pipeline output.
//   - Tracing degrades to zero-cost no-ops: obs.Start on a context without
//     a Tracer returns the context unchanged and a nil *Span, and every
//     Span method is nil-safe, so uninstrumented runs pay one pointer
//     context lookup per stage — not per item.
//   - internal/obs is the only non-I/O package on the darklint wallclock
//     allowlist: span start/end timestamps are the sanctioned timing
//     call-sites, and nothing in this package lets a caller read them back
//     into pipeline code (spans expose durations only at export time).
//
// Counters and gauges are registered once at package init of the
// instrumented package and shared process-wide via Default(); tests that
// need isolation construct their own Registry.
package obs

import "sync"

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry the pipeline's instrumented
// packages register their metrics on.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}
