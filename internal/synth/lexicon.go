package synth

// The lexicon is the raw material of the generator: real English word
// pools, so that generated messages pass the character-n-gram language
// detector and produce realistic word/char n-gram distributions. Topic
// lexicons mirror Table I of the paper (the 12 labelled Reddit topics plus
// the dark-web drug domain the forums share).

// Topic labels, matching Table I.
const (
	TopicCulture       = "Culture"
	TopicCrypto        = "Cryptocurrencies"
	TopicDrugs         = "Drugs"
	TopicEntertainment = "Entertainment"
	TopicFinancial     = "Financial"
	TopicLifestyle     = "Lifestyle/Sports"
	TopicNews          = "News"
	TopicPlaces        = "Places"
	TopicPolitics      = "Politics"
	TopicR18           = "R18+"
	TopicPsych         = "Psychological help"
	TopicTech          = "Tech/Tor"
	TopicVideogame     = "Videogame"
)

// Topics lists every topic label in Table I order.
var Topics = []string{
	TopicCulture, TopicCrypto, TopicDrugs, TopicEntertainment,
	TopicFinancial, TopicLifestyle, TopicNews, TopicPlaces, TopicPolitics,
	TopicR18, TopicPsych, TopicTech, TopicVideogame,
}

// subredditsByTopic gives each topic a handful of board names, the most
// popular first (mirroring Table I's "popular subreddit" column).
var subredditsByTopic = map[string][]string{
	TopicCulture:       {"science", "books", "history", "philosophy", "art"},
	TopicCrypto:        {"bitcoin", "cryptocurrency", "ethereum", "monero", "btc"},
	TopicDrugs:         {"DarkNetMarkets", "drugs", "LSD", "MDMA", "opiates", "trees", "researchchemicals"},
	TopicEntertainment: {"pics", "funny", "movies", "television", "music", "videos"},
	TopicFinancial:     {"personalfinance", "investing", "frugal", "stocks"},
	TopicLifestyle:     {"LifeProTips", "fitness", "running", "cooking", "soccer", "nba"},
	TopicNews:          {"worldnews", "news", "UpliftingNews"},
	TopicPlaces:        {"canada", "unitedkingdom", "australia", "europe", "nyc"},
	TopicPolitics:      {"politics", "PoliticalDiscussion", "libertarian"},
	TopicR18:           {"sex", "gonewild", "nsfw"},
	TopicPsych:         {"GetMotivated", "depression", "anxiety", "decidingtobebetter"},
	TopicTech:          {"technology", "TOR", "privacy", "netsec", "linux", "programming"},
	TopicVideogame:     {"gaming", "pcgaming", "leagueoflegends", "fallout", "GlobalOffensive"},
}

// topicPopularity skews how often the population posts about each topic.
// Mirrors Table I's message distribution: the dataset is built from
// DarkNetMarkets commenters, so Drugs dominates (33.7%), Entertainment is
// second (22.4%), and the rest share the remainder.
var topicPopularity = map[string]float64{
	TopicCulture:       0.55,
	TopicCrypto:        1.6,
	TopicDrugs:         5.5,
	TopicEntertainment: 4.5,
	TopicFinancial:     0.25,
	TopicLifestyle:     2.8,
	TopicNews:          1.2,
	TopicPlaces:        0.8,
	TopicPolitics:      1.6,
	TopicR18:           1.2,
	TopicPsych:         0.14,
	TopicTech:          1.0,
	TopicVideogame:     2.2,
}

// topicNouns are the content-noun pools per topic.
var topicNouns = map[string][]string{
	TopicCulture: {
		"book", "novel", "author", "painting", "museum", "theory", "study",
		"research", "culture", "language", "history", "philosophy", "idea",
		"science", "experiment", "paper", "article", "professor", "poem",
		"writer", "chapter", "library", "exhibit", "civilization", "century",
	},
	TopicCrypto: {
		"bitcoin", "wallet", "blockchain", "transaction", "exchange", "coin",
		"price", "market", "fee", "address", "key", "ledger", "mining",
		"miner", "block", "satoshi", "monero", "ethereum", "token", "chart",
		"volume", "escrow", "confirmation", "node", "fork", "altcoin",
	},
	TopicDrugs: {
		"vendor", "shipping", "package", "stealth", "quality", "gram",
		"dose", "tab", "batch", "order", "product", "sample", "review",
		"market", "listing", "acid", "molly", "mushroom", "weed", "strain",
		"powder", "crystal", "pill", "capsule", "tolerance", "trip",
		"experience", "comedown", "substance", "chemical", "scale", "bag",
		"drop", "pickup", "tracking", "refund", "reship", "scammer",
	},
	TopicEntertainment: {
		"movie", "film", "show", "episode", "season", "actor", "scene",
		"trailer", "album", "song", "band", "concert", "meme", "video",
		"channel", "series", "director", "soundtrack", "picture", "camera",
	},
	TopicFinancial: {
		"money", "budget", "saving", "account", "bank", "loan", "debt",
		"credit", "interest", "salary", "income", "tax", "investment",
		"fund", "retirement", "expense", "payment", "mortgage", "stock",
	},
	TopicLifestyle: {
		"workout", "gym", "diet", "recipe", "meal", "protein", "run",
		"race", "team", "game", "match", "season", "coach", "training",
		"habit", "routine", "sleep", "goal", "kitchen", "garden",
	},
	TopicNews: {
		"government", "country", "report", "statement", "official",
		"police", "investigation", "law", "court", "case", "crisis",
		"economy", "minister", "agency", "border", "attack", "protest",
	},
	TopicPlaces: {
		"city", "town", "neighborhood", "street", "bar", "restaurant",
		"park", "train", "bus", "airport", "rent", "apartment", "weather",
		"winter", "summer", "festival", "downtown", "traffic", "museum",
	},
	TopicPolitics: {
		"election", "vote", "candidate", "party", "senate", "congress",
		"president", "policy", "bill", "debate", "campaign", "media",
		"supporter", "left", "right", "freedom", "right", "tax", "reform",
	},
	TopicR18: {
		"relationship", "partner", "date", "dating", "marriage", "advice",
		"experience", "confidence", "body", "feeling", "attraction",
	},
	TopicPsych: {
		"therapy", "therapist", "anxiety", "depression", "motivation",
		"mood", "feeling", "mind", "stress", "habit", "progress", "help",
		"support", "recovery", "medication", "doctor", "session",
	},
	TopicTech: {
		"computer", "laptop", "server", "browser", "network", "relay",
		"node", "encryption", "password", "security", "privacy", "software",
		"update", "linux", "script", "code", "bug", "vpn", "router",
		"keyboard", "screen", "phone", "android", "battery", "firmware",
	},
	TopicVideogame: {
		"game", "player", "level", "boss", "quest", "loot", "server",
		"match", "rank", "team", "weapon", "map", "patch", "update",
		"console", "controller", "graphics", "frame", "lag", "account",
		"skin", "character", "build", "dps", "raid", "lobby",
	},
}

// topicVerbs and topicAdjectives season the shared pools with domain
// colour; they are smaller because verbs/adjectives transfer across topics.
var topicVerbs = map[string][]string{
	TopicCrypto:    {"trade", "transfer", "confirm", "hodl", "withdraw", "deposit"},
	TopicDrugs:     {"ship", "order", "dose", "vend", "test", "weigh", "arrive"},
	TopicTech:      {"install", "configure", "compile", "encrypt", "reboot", "patch"},
	TopicVideogame: {"play", "grind", "spawn", "nerf", "buff", "stream"},
	TopicPolitics:  {"vote", "elect", "protest", "argue", "debate"},
	TopicPsych:     {"cope", "struggle", "improve", "relapse", "meditate"},
}

var topicAdjectives = map[string][]string{
	TopicCrypto:    {"volatile", "decentralized", "bullish", "bearish"},
	TopicDrugs:     {"clean", "pure", "sketchy", "legit", "potent", "mild"},
	TopicTech:      {"secure", "encrypted", "open", "stable", "buggy"},
	TopicVideogame: {"competitive", "casual", "broken", "balanced"},
	TopicPolitics:  {"liberal", "conservative", "corrupt", "partisan"},
	TopicPsych:     {"anxious", "hopeful", "exhausted", "grateful"},
}

// Shared pools.

var commonVerbs = []string{
	"think", "know", "want", "need", "like", "love", "hate", "see", "look",
	"find", "get", "make", "take", "give", "tell", "say", "ask", "try",
	"use", "work", "buy", "sell", "pay", "send", "receive", "wait", "hope",
	"feel", "believe", "remember", "forget", "understand", "agree",
	"recommend", "suggest", "expect", "start", "stop", "keep", "leave",
	"read", "write", "post", "reply", "check", "order", "arrive", "happen",
	"change", "help", "learn", "hear", "talk", "speak", "live", "move",
	"stay", "come", "go", "run", "turn", "show", "share", "follow",
}

var commonAdjectives = []string{
	"good", "bad", "great", "terrible", "nice", "awesome", "awful",
	"new", "old", "big", "small", "long", "short", "high", "low", "fast",
	"slow", "easy", "hard", "cheap", "expensive", "free", "safe",
	"dangerous", "happy", "sad", "angry", "crazy", "weird", "strange",
	"interesting", "boring", "important", "serious", "funny", "real",
	"fake", "honest", "careful", "quick", "solid", "decent", "amazing",
	"horrible", "reliable", "shady", "normal", "different", "similar",
	"early", "late", "right", "wrong", "sure", "certain", "obvious",
}

var commonAdverbs = []string{
	"really", "very", "pretty", "quite", "too", "so", "just", "only",
	"always", "never", "often", "sometimes", "usually", "rarely",
	"probably", "definitely", "honestly", "basically", "literally",
	"actually", "seriously", "totally", "completely", "absolutely",
	"barely", "nearly", "almost", "maybe", "perhaps", "already", "still",
	"again", "soon", "here", "there", "everywhere", "recently", "lately",
}

var genericNouns = []string{
	"thing", "time", "day", "week", "month", "year", "way", "people",
	"person", "guy", "friend", "place", "home", "house", "work", "job",
	"problem", "question", "answer", "reason", "point", "part", "end",
	"side", "case", "fact", "idea", "word", "name", "number", "hour",
	"night", "morning", "money", "price", "post", "thread", "comment",
	"forum", "site", "account", "message", "story", "life", "world",
	"experience", "advice", "opinion", "information", "stuff", "deal",
}

var pronounsSubject = []string{"i", "you", "he", "she", "we", "they", "it"}

var determiners = []string{"the", "a", "this", "that", "my", "your", "some", "any", "every", "each", "another", "his", "her", "their", "our"}

var prepositions = []string{"of", "in", "on", "at", "for", "with", "from", "about", "after", "before", "between", "during", "through", "over", "under", "around", "without"}

var conjunctions = []string{"and", "but", "or", "so", "because", "if", "when", "while", "although", "since", "unless", "though"}

var auxiliaries = []string{"will", "would", "can", "could", "should", "must", "might", "may", "have to", "used to", "going to"}

// slangPool: forum shorthand; each user adopts a subset.
var slangPool = []string{
	"lol", "lmao", "imo", "imho", "tbh", "afaik", "iirc", "btw", "fyi",
	"smh", "ikr", "ffs", "wtf", "omg", "idk", "irl", "dm", "op", "pm",
	"nvm", "thx", "pls", "rn", "af", "fr", "ngl", "yolo", "sus", "meh",
	"welp", "yep", "nope", "yeah", "nah", "dude", "bro", "mate", "folks",
	"kinda", "sorta", "gonna", "wanna", "gotta", "dunno", "lemme", "gimme",
}

// typoPool: characteristic misspellings; each user owns a few and applies
// them consistently — exactly the idiosyncrasy char n-grams catch.
var typoPool = map[string]string{
	"definitely": "definately", "a lot": "alot", "receive": "recieve",
	"separate": "seperate", "weird": "wierd", "believe": "beleive",
	"until": "untill", "tomorrow": "tommorow", "really": "realy",
	"which": "wich", "because": "becuase", "their": "thier",
	"probably": "probly", "going to": "gunna", "should have": "should of",
	"could have": "could of", "you": "u", "your": "ur", "are": "r",
	"to": "2", "for": "4", "please": "plz", "people": "ppl",
	"though": "tho", "through": "thru", "right": "rite", "what": "wat",
	"know": "no", "whether": "wether", "grammar": "grammer",
	"tonight": "tonite", "something": "somethin", "nothing": "nothin",
}

// phrasePool: multi-word habits (word-bigram signatures).
var phrasePool = []string{
	"to be honest", "in my opinion", "at the end of the day",
	"for what it's worth", "as far as i know", "if i remember correctly",
	"long story short", "not gonna lie", "on the other hand",
	"first of all", "last but not least", "believe it or not",
	"needless to say", "correct me if i'm wrong", "just my two cents",
	"your mileage may vary", "take it with a grain of salt",
	"i could be wrong but", "from my experience", "in the long run",
	"at this point", "for the record", "truth be told", "no offense but",
	"i can confirm", "can confirm", "this is the way", "hope this helps",
	"thanks in advance", "stay safe out there", "happy to help",
}

// openerPool starts sentences; per-user preferences are strong signals.
var openerPool = []string{
	"well", "ok so", "honestly", "look", "listen", "anyway", "also",
	"besides", "personally", "frankly", "actually", "so", "yeah",
	"alright", "man", "oh", "hmm", "right", "thing is", "fun fact",
}

// emojiPool: code points the polishing step must strip.
var emojiPool = []string{"😂", "😅", "🙃", "👍", "🔥", "💯", "🙏", "😎", "🤔", "😭", "🚀", "🌿", "🍄", "💊", "⚡", "✌️"}

// nicknameAdjectives and nicknameNouns build alias names.
var nicknameAdjectives = []string{
	"silent", "dark", "happy", "lucky", "crazy", "lazy", "sneaky", "cosmic",
	"electric", "frozen", "golden", "hidden", "iron", "jolly", "mellow",
	"neon", "quantum", "rusty", "shadow", "turbo", "velvet", "wicked",
	"zen", "arctic", "blazing", "chrome", "digital", "emerald", "feral",
}

var nicknameNouns = []string{
	"panda", "wolf", "raven", "fox", "tiger", "ghost", "wizard", "pirate",
	"ninja", "samurai", "viking", "knight", "falcon", "cobra", "dragon",
	"phoenix", "otter", "badger", "walrus", "mongoose", "lynx", "puma",
	"gecko", "mantis", "sparrow", "crow", "owl", "hawk", "jackal", "mole",
}

// mergedLexicon precomputes per-topic merged pools.
type mergedLexicon struct {
	nouns      []string
	verbs      []string
	adjectives []string
}

var topicMerged = func() map[string]mergedLexicon {
	out := make(map[string]mergedLexicon, len(Topics))
	for _, t := range Topics {
		m := mergedLexicon{
			nouns:      append(append([]string{}, topicNouns[t]...), genericNouns...),
			verbs:      append(append([]string{}, topicVerbs[t]...), commonVerbs...),
			adjectives: append(append([]string{}, topicAdjectives[t]...), commonAdjectives...),
		}
		out[t] = m
	}
	return out
}()

// TopicOfBoard maps a board (subreddit) name back to its Table-I topic
// label, "" when unknown. Used by the Table I reproduction harness.
func TopicOfBoard(board string) string {
	for topic, boards := range subredditsByTopic {
		for _, b := range boards {
			if b == board {
				return topic
			}
		}
	}
	return ""
}

// BoardsOfTopic returns the board names of a topic (most popular first).
func BoardsOfTopic(topic string) []string {
	return append([]string(nil), subredditsByTopic[topic]...)
}
