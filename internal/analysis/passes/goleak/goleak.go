// Package goleak flags goroutines started in the long-lived packages —
// the serving layer, the scraper, the store, the telemetry registry —
// that have no reachable stop signal. A goroutine in a daemon must have
// some way to learn it should exit: a receive from a ctx.Done/stop
// channel (alone or in a select), ranging over a work channel that the
// producer closes, or blocking in a Wait that the shutdown path
// releases. A spawn with none of those runs until process exit, which
// in attributed's reload-heavy lifetime means an unbounded goroutine
// (and often memory) leak.
//
// For `go func() {...}()` the literal's body is checked: the candidate
// signals are collected from the AST and then validated against the
// body's control-flow graph — a signal buried in dead code does not
// count. For `go f(x)` the callee is opaque, so the arguments stand in:
// passing a context.Context or a channel is taken as evidence the
// callee can be stopped; passing neither is flagged. Blocking calls
// that are cancelled from outside through non-channel means (closing a
// listener to unblock srv.Serve, for instance) are invisible to the
// pass and carry a typed lint:ignore naming the out-of-band stop.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
	"darklight/internal/analysis/cfg"
)

// DefaultScope lists the long-lived packages: everything that survives
// a single request or a single pipeline run.
const DefaultScope = "internal/serve,internal/scraper,internal/store,internal/obs"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the goleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "goroutines in long-lived packages must have a reachable stop signal: a ctx/done-channel " +
		"receive, a range over a closable channel, or a Wait",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			checkLiteral(pass, g, lit)
			return
		}
		checkOpaque(pass, g)
	})
	return nil, nil
}

// checkLiteral requires a stop signal inside the goroutine body, on a
// path reachable from the spawn.
func checkLiteral(pass *analysis.Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	signals := collectSignals(pass.TypesInfo, lit.Body)
	if len(signals) == 0 {
		report(pass, g)
		return
	}
	graph := cfg.Build(lit.Body)
	reach := graph.Reachable()
	for blk := range reach {
		for _, n := range blk.Nodes {
			for _, pos := range signals {
				if n.Pos() <= pos && pos < n.End() {
					return
				}
			}
		}
	}
	report(pass, g)
}

// collectSignals gathers the positions of every candidate stop signal
// in the body: channel receives (which covers select cases), ranges
// over channel-typed expressions, and calls to a method named Wait.
// Nested function literals are skipped — a signal there belongs to a
// different goroutine or call frame.
func collectSignals(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var signals []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				signals = append(signals, n.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					signals = append(signals, n.X.Pos())
				}
			}
		case *ast.CallExpr:
			if recv, m := astquery.MethodCall(info, n); recv != nil && m == "Wait" {
				signals = append(signals, n.Pos())
			}
		}
		return true
	})
	return signals
}

// checkOpaque handles `go f(...)`: the callee's body is out of reach,
// so accept a context or channel argument as the stop channel.
func checkOpaque(pass *analysis.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok {
			continue
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
			return
		}
		if astquery.IsNamed(tv.Type, "context", "Context") {
			return
		}
	}
	report(pass, g)
}

func report(pass *analysis.Pass, g *ast.GoStmt) {
	pass.Reportf(g.Pos(), "goroutine in a long-lived package has no reachable stop signal "+
		"(ctx/done-channel receive, channel range, or Wait); it will run until process exit")
}
