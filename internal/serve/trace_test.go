package serve

// Request-tracing tests for the serving path: traceparent propagation,
// span-tree capture through the middleware + handler chain, the sampling
// sinks, and — most load-bearing — the bit-identity contract: response
// BODIES are identical with tracing on or off, sequentially and under
// concurrency (run with -race).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
)

// tracedService builds the fixture service with a Trace recorder attached.
func tracedService(t testing.TB, clock Clock, opts reqtrace.Options, mutate func(*Config)) (*Service, *reqtrace.Recorder) {
	t.Helper()
	rec := reqtrace.NewRecorder(opts)
	svc := newTestService(t, clock, func(c *Config) {
		c.Trace = rec
		if mutate != nil {
			mutate(c)
		}
	})
	return svc, rec
}

// findSpan returns the first child (recursively) of d named name.
func findSpan(d *obs.SpanData, name string) *obs.SpanData {
	for i := range d.Children {
		if d.Children[i].Name == name {
			return &d.Children[i]
		}
		if got := findSpan(&d.Children[i], name); got != nil {
			return got
		}
	}
	return nil
}

// TestTraceEndToEnd drives one /v1/rank request with an inbound sampled
// traceparent through the full chain and retrieves the span tree from
// /debug/traces/{id}: the inbound trace id must carry through to the
// response header and the retained trace, the hop must mint a fresh span
// id, and the tree must show every middleware stage plus the handler's
// decision payload.
func TestTraceEndToEnd(t *testing.T) {
	const inboundTrace = "0af7651916cd43dd8448eb211c80319c"
	const inboundSpan = "b7ad6b7169203331"
	svc, rec := tracedService(t, newFakeClock(), reqtrace.Options{}, nil)

	req := httptest.NewRequest(http.MethodPost, "/v1/rank",
		bytes.NewReader([]byte(`{"subject":{"alias":"q_alice"},"k":3}`)))
	req.Header.Set("X-API-Key", "test-key")
	req.Header.Set(reqtrace.Header, "00-"+inboundTrace+"-"+inboundSpan+"-01")
	w := httptest.NewRecorder()
	svc.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("rank: %d %s", w.Code, w.Body.String())
	}

	tp := w.Header().Get(reqtrace.Header)
	if !strings.HasPrefix(tp, "00-"+inboundTrace+"-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("response traceparent %q does not carry the inbound trace id with the sampled flag", tp)
	}
	hopSpan := strings.TrimSuffix(strings.TrimPrefix(tp, "00-"+inboundTrace+"-"), "-01")
	if len(hopSpan) != 16 || hopSpan == inboundSpan {
		t.Fatalf("hop span id %q: want a fresh 16-hex id distinct from the caller's", hopSpan)
	}
	if got := w.Header().Get(reqtrace.RequestIDHeader); got != "r00000001" {
		t.Fatalf("request id %q, want r00000001", got)
	}

	// The inbound sampled flag forces retention: the trace must be
	// retrievable by its id from the debug handler.
	dbg := httptest.NewRecorder()
	rec.Handler().ServeHTTP(dbg, httptest.NewRequest(http.MethodGet, "/debug/traces/"+inboundTrace, nil))
	if dbg.Code != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: %d %s", dbg.Code, dbg.Body.String())
	}
	var tr reqtrace.Trace
	if err := json.Unmarshal(dbg.Body.Bytes(), &tr); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if tr.TraceID != inboundTrace || tr.ParentID != inboundSpan {
		t.Fatalf("trace identity: got (%s parent %s)", tr.TraceID, tr.ParentID)
	}
	if tr.Endpoint != "rank" || tr.Method != http.MethodPost || tr.Code != http.StatusOK {
		t.Fatalf("trace outcome: %+v", tr)
	}
	if tr.Sampled != "inbound" {
		t.Fatalf("sampled reason %q, want inbound", tr.Sampled)
	}
	if tr.Bytes != w.Body.Len() {
		t.Fatalf("trace bytes %d, response body %d", tr.Bytes, w.Body.Len())
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "serve" {
		t.Fatalf("want exactly one root span named serve, got %+v", tr.Spans)
	}
	root := &tr.Spans[0]
	if root.Attrs["endpoint"] != "rank" || root.Attrs["code"] != "200" {
		t.Fatalf("root attrs %v", root.Attrs)
	}
	for _, stage := range []string{"auth", "ratelimit", "decode", "rank"} {
		if findSpan(root, stage) == nil {
			t.Fatalf("stage span %q missing from tree %+v", stage, root)
		}
	}
	rank := findSpan(root, "rank")
	if rank.Attrs["index_version"] != "1" {
		t.Fatalf("rank attrs %v", rank.Attrs)
	}
	if findSpan(rank, "resolve") == nil {
		t.Fatalf("resolve span missing under rank: %+v", rank)
	}
	pf := findSpan(rank, "prefilter")
	if pf == nil {
		t.Fatalf("prefilter span missing under rank: %+v", rank)
	}
	for _, key := range []string{"mode", "candidates", "pruned", "evictions"} {
		if _, ok := pf.Attrs[key]; !ok {
			t.Fatalf("prefilter span lacks %q: %v", key, pf.Attrs)
		}
	}
	if pf.Items == 0 {
		t.Fatal("prefilter span scored zero candidates")
	}

	// The listing names the same trace without its span tree.
	list := httptest.NewRecorder()
	rec.Handler().ServeHTTP(list, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var body struct {
		Retained uint64             `json:"retained"`
		Traces   []reqtrace.Summary `json:"traces"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Retained != 1 || len(body.Traces) != 1 || body.Traces[0].TraceID != inboundTrace {
		t.Fatalf("listing: %s", list.Body.String())
	}
}

// traceIdentityRequests is the request matrix the bit-identity test runs:
// every endpoint, both rank shapes, and representative rejections.
var traceIdentityRequests = []struct {
	name, method, path, key string
	body                    string
}{
	{"rank-legacy", http.MethodPost, "/v1/rank", "test-key", `{"subject":{"alias":"q_alice"},"k":3}`},
	{"rank-knob", http.MethodPost, "/v1/rank", "test-key", `{"subject":{"alias":"q_dave"},"prefilter":"pruned"}`},
	{"rescore", http.MethodPost, "/v1/rescore", "test-key", `{"subject":{"alias":"q_alice"},"candidates":["alice","bob"]}`},
	{"match", http.MethodPost, "/v1/match", "test-key", `{"subject":{"alias":"q_dave"}}`},
	{"healthz", http.MethodGet, "/v1/healthz", "", ``},
	{"unknown-alias", http.MethodPost, "/v1/rank", "test-key", `{"subject":{"alias":"nobody"}}`},
	{"bad-key", http.MethodPost, "/v1/rank", "wrong-key", `{"subject":{"alias":"q_alice"}}`},
	{"bad-method", http.MethodGet, "/v1/rank", "test-key", ``},
	{"bad-json", http.MethodPost, "/v1/match", "test-key", `{"subject":`},
}

// TestTraceBitIdentity pins the zero-observable-cost contract: a traced
// service and an untraced service over the same corpus serve byte-identical
// response bodies for every request shape — only the two trace response
// headers differ. The concurrent pass re-checks the same bodies from racing
// goroutines (meaningful under -race).
func TestTraceBitIdentity(t *testing.T) {
	traced, _ := tracedService(t, newFakeClock(), reqtrace.Options{SampleRate: 1}, nil)
	plain := newTestService(t, newFakeClock(), nil)
	th, ph := traced.Handler(), plain.Handler()

	want := make(map[string]*httptest.ResponseRecorder, len(traceIdentityRequests))
	for _, rq := range traceIdentityRequests {
		pw := do(ph, rq.method, rq.path, rq.key, []byte(rq.body))
		tw := do(th, rq.method, rq.path, rq.key, []byte(rq.body))
		if tw.Code != pw.Code || tw.Body.String() != pw.Body.String() {
			t.Fatalf("%s: traced (%d) %q vs untraced (%d) %q",
				rq.name, tw.Code, tw.Body.String(), pw.Code, pw.Body.String())
		}
		if pw.Header().Get(reqtrace.Header) != "" || pw.Header().Get(reqtrace.RequestIDHeader) != "" {
			t.Fatalf("%s: untraced response grew trace headers", rq.name)
		}
		if tw.Header().Get(reqtrace.Header) == "" || tw.Header().Get(reqtrace.RequestIDHeader) == "" {
			t.Fatalf("%s: traced response lacks trace headers", rq.name)
		}
		want[rq.name] = pw
	}

	var wg sync.WaitGroup
	var diverged atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rq := traceIdentityRequests[i%len(traceIdentityRequests)]
				tw := do(th, rq.method, rq.path, rq.key, []byte(rq.body))
				pw := want[rq.name]
				if tw.Code != pw.Code || tw.Body.String() != pw.Body.String() {
					diverged.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := diverged.Load(); n != 0 {
		t.Fatalf("%d concurrent traced responses diverged from the untraced bodies", n)
	}
}

// TestTraceSlowSampling checks the always-keep-slow rule end to end: with
// probabilistic sampling off, only the request whose (fake-clock) duration
// crosses Options.Slow lands in the ring, tagged "slow".
func TestTraceSlowSampling(t *testing.T) {
	clock := newFakeClock()
	var stall atomic.Int64 // milliseconds the next request takes
	svc, rec := tracedService(t, clock, reqtrace.Options{Slow: 100 * time.Millisecond}, nil)
	svc.hookInflight = func(string) {
		clock.Advance(time.Duration(stall.Load()) * time.Millisecond)
	}

	stall.Store(5)
	if w := do(svc.Handler(), http.MethodPost, "/v1/rank", "test-key", []byte(`{"subject":{"alias":"q_alice"}}`)); w.Code != 200 {
		t.Fatalf("fast request: %d", w.Code)
	}
	stall.Store(200)
	slow := do(svc.Handler(), http.MethodPost, "/v1/match", "test-key", []byte(`{"subject":{"alias":"q_dave"}}`))
	if slow.Code != 200 {
		t.Fatalf("slow request: %d", slow.Code)
	}

	list := httptest.NewRecorder()
	rec.Handler().ServeHTTP(list, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var body struct {
		Retained uint64             `json:"retained"`
		Traces   []reqtrace.Summary `json:"traces"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Retained != 1 || len(body.Traces) != 1 {
		t.Fatalf("want exactly the slow request retained, got %s", list.Body.String())
	}
	got := body.Traces[0]
	if got.Sampled != "slow" || got.Endpoint != "match" || got.DurNS != (200*time.Millisecond).Nanoseconds() {
		t.Fatalf("retained trace %+v", got)
	}
}

// TestHealthzProvenance checks the reload counter and the store journal
// sequence surface through /v1/healthz: the initial load counts as reload
// 1, a Reload bumps it, and the loader's LastJournalSeq is copied (not
// aliased) into each snapshot.
func TestHealthzProvenance(t *testing.T) {
	seq := uint64(41)
	corpus := testCorpus(t)
	svc := newTestService(t, newFakeClock(), func(c *Config) {
		c.Loader = func(context.Context) (*Corpus, error) {
			return &Corpus{Known: corpus.Known, Query: corpus.Query, LastJournalSeq: &seq}, nil
		}
	})

	check := func(wantReloads int, wantSeq uint64) {
		t.Helper()
		w := do(svc.Handler(), http.MethodGet, "/v1/healthz", "", nil)
		var h HealthResponse
		if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		if h.Reloads != wantReloads {
			t.Fatalf("reloads %d, want %d", h.Reloads, wantReloads)
		}
		if h.LastJournalSeq == nil || *h.LastJournalSeq != wantSeq {
			t.Fatalf("last_journal_seq %v, want %d", h.LastJournalSeq, wantSeq)
		}
		if !strings.Contains(w.Body.String(), `"last_journal_seq":`+fmt.Sprint(wantSeq)) {
			t.Fatalf("wire body lacks the journal seq: %s", w.Body.String())
		}
	}
	check(1, 41)
	seq = 42 // the loader mutating its variable must not leak into the live snapshot...
	check(1, 41)
	if err := svc.Reload(context.Background()); err != nil { // ...until a reload installs it
		t.Fatal(err)
	}
	check(2, 42)
}

// TestServeAccessLog checks the access-log sink through the real serving
// path: one line per request, id first, the trace id as the correlation
// key, and the per-stage breakdown naming every stage the request ran.
func TestServeAccessLog(t *testing.T) {
	var buf bytes.Buffer
	svc, _ := tracedService(t, newFakeClock(), reqtrace.Options{AccessLog: &buf}, nil)
	if w := do(svc.Handler(), http.MethodPost, "/v1/rank", "test-key", []byte(`{"subject":{"alias":"q_alice"}}`)); w.Code != 200 {
		t.Fatalf("rank: %d", w.Code)
	}

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one JSONL line, got %q", line)
	}
	if !strings.HasPrefix(line, `{"id":"r00000001","trace":"`) {
		t.Fatalf("field order broken: %q", line)
	}
	var entry reqtrace.AccessEntry
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Method != http.MethodPost || entry.Endpoint != "rank" || entry.Code != 200 || entry.Bytes == 0 {
		t.Fatalf("entry %+v", entry)
	}
	var names []string
	for _, s := range entry.Stages {
		names = append(names, s.Name)
	}
	want := []string{"auth", "decode", "prefilter", "rank", "ratelimit", "resolve", "serve"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("stages %v, want %v (name-sorted)", names, want)
	}
}

// TestQuantileGauges drives requests with injected durations 1..100 ms and
// checks the rolling-window p50/p99 gauges the registry collector refreshes
// at exposition time. The gauges must work with tracing disabled — they are
// fed by the always-on window, not the recorder.
func TestQuantileGauges(t *testing.T) {
	clock := newFakeClock()
	var reg *obs.Registry
	svc := newTestService(t, clock, func(c *Config) { reg = c.Registry })
	var i atomic.Int64
	svc.hookInflight = func(string) {
		clock.Advance(time.Duration(i.Add(1)) * time.Millisecond)
	}
	h := svc.Handler()
	for n := 0; n < 100; n++ {
		if w := do(h, http.MethodGet, "/v1/healthz", "", nil); w.Code != 200 {
			t.Fatalf("healthz: %d", w.Code)
		}
	}

	gauge := func(name string) float64 {
		t.Helper()
		for _, fam := range reg.Snapshot() {
			if fam.Name == name {
				return fam.Series[0].Value
			}
		}
		t.Fatalf("gauge %s not in registry", name)
		return 0
	}
	const eps = 1e-9
	if got := gauge("serve_request_seconds_p50"); got < 0.050-eps || got > 0.050+eps {
		t.Fatalf("p50 %v, want 0.050", got)
	}
	if got := gauge("serve_request_seconds_p99"); got < 0.099-eps || got > 0.099+eps {
		t.Fatalf("p99 %v, want 0.099", got)
	}
}
