package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/forum"
)

// Cold-start benchmarks: the whole point of the snapshot is that loading
// it beats rebuilding the index from the corpus. StoreRebuild measures
// the from-scratch path (subject derivation + extraction + both build
// passes); StoreLoad measures reading, digest-verifying, and reassembling
// the same index from disk; StoreSave measures producing the snapshot.
// cmd/benchdiff's store suite records all three and gates the
// rebuild/load ratio at the largest N.

type storeBenchWorld struct {
	ds       *forum.Dataset
	idx      *Index
	raw      []byte
	opts     attribution.Options
	subjOpts attribution.SubjectOptions
}

var (
	storeBenchWorlds   = map[int]*storeBenchWorld{}
	storeBenchWorldsMu sync.Mutex
)

// storeBenchDataset keeps per-alias text modest (two ~20-word messages)
// so the 100k world stays buildable in a CI smoke run while extraction
// still dominates the rebuild the way it does on real corpora.
func storeBenchDataset(rng *rand.Rand, n int) *forum.Dataset {
	ds := forum.NewDataset("bench", forum.PlatformTheMajesticGarden)
	t0 := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("user%06d", i)
		a := forum.Alias{Name: name}
		for m := 0; m < 2; m++ {
			a.Messages = append(a.Messages, forum.Message{
				ID:       fmt.Sprintf("m%06d-%d", i, m),
				Author:   name,
				Body:     testBody(rng, 20),
				PostedAt: t0.Add(time.Duration(rng.Intn(60*24)) * time.Hour),
			})
		}
		ds.Add(a)
	}
	return ds
}

func getStoreBenchWorld(tb testing.TB, n int) *storeBenchWorld {
	tb.Helper()
	storeBenchWorldsMu.Lock()
	defer storeBenchWorldsMu.Unlock()
	if w, ok := storeBenchWorlds[n]; ok {
		return w
	}
	rng := rand.New(rand.NewSource(int64(8800 + n)))
	ds := storeBenchDataset(rng, n)
	opts := attribution.DefaultOptions()
	subjOpts := attribution.SubjectOptions{WithActivity: true}
	idx, err := BuildIndex(context.Background(), ds, opts, subjOpts)
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := encodeIndex(idx)
	if err != nil {
		tb.Fatal(err)
	}
	w := &storeBenchWorld{ds: ds, idx: idx, raw: raw, opts: opts, subjOpts: subjOpts}
	storeBenchWorlds[n] = w
	return w
}

// storeBenchSizes skips the 100k world under -short, mirroring the
// prefilter benches.
func storeBenchSizes() []int {
	if testing.Short() {
		return []int{1000, 10000}
	}
	return []int{1000, 10000, 100000}
}

func BenchmarkStoreSave(b *testing.B) {
	for _, n := range storeBenchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := getStoreBenchWorld(b, n)
			st, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(w.raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Save(w.idx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreLoad(b *testing.B) {
	for _, n := range storeBenchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := getStoreBenchWorld(b, n)
			st, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Save(w.idx); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(w.raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, err := st.Load()
				if err != nil {
					b.Fatal(err)
				}
				if idx.Matcher == nil {
					b.Fatal("load returned no matcher")
				}
			}
		})
	}
}

func BenchmarkStoreRebuild(b *testing.B) {
	for _, n := range storeBenchSizes() {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := getStoreBenchWorld(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, err := BuildIndex(context.Background(), w.ds, w.opts, w.subjOpts)
				if err != nil {
					b.Fatal(err)
				}
				if idx.Matcher == nil {
					b.Fatal("rebuild returned no matcher")
				}
			}
		})
	}
}
