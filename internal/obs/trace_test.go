package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanNesting verifies that spans started under a parent context nest
// under that parent, and siblings started from the same context become
// siblings in the exported tree.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	rctx, root := Start(ctx, "pipeline")
	_, a := Start(rctx, "stage.a")
	a.AddItems(3)
	a.AddBytes(10)
	a.End()
	bctx, b := Start(rctx, "stage.b")
	_, inner := Start(bctx, "stage.b.inner")
	inner.End()
	b.End()
	root.End()

	forest := tr.Snapshot()
	if len(forest) != 1 {
		t.Fatalf("got %d roots, want 1", len(forest))
	}
	r := forest[0]
	if r.Name != "pipeline" || len(r.Children) != 2 {
		t.Fatalf("root = %q with %d children, want pipeline with 2", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "stage.a" || r.Children[1].Name != "stage.b" {
		t.Errorf("children = %q, %q", r.Children[0].Name, r.Children[1].Name)
	}
	if got := r.Children[0]; got.Items != 3 || got.Bytes != 10 {
		t.Errorf("stage.a items=%d bytes=%d, want 3 and 10", got.Items, got.Bytes)
	}
	if len(r.Children[1].Children) != 1 || r.Children[1].Children[0].Name != "stage.b.inner" {
		t.Errorf("stage.b subtree wrong: %+v", r.Children[1])
	}
	if r.DurNS <= 0 {
		t.Error("ended root span has zero duration")
	}
}

// TestConcurrentChildren starts many children of one parent from parallel
// goroutines; run under -race this doubles as the tracer's race test.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	pctx, parent := Start(ctx, "fanout")

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, s := Start(pctx, "fanout.worker")
			s.SetWorker(w)
			s.AddItems(1)
			parent.AddItems(1)
			s.End()
		}(w)
	}
	wg.Wait()
	parent.End()

	forest := tr.Snapshot()
	if len(forest) != 1 || len(forest[0].Children) != workers {
		t.Fatalf("got %d roots / %d children, want 1 / %d", len(forest), len(forest[0].Children), workers)
	}
	if forest[0].Items != workers {
		t.Errorf("parent items=%d, want %d", forest[0].Items, workers)
	}
	st := tr.Stages()
	if len(st) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(st), st)
	}
	// Stages sort by name: "fanout" < "fanout.worker".
	if st[0].Name != "fanout" || st[0].Count != 1 {
		t.Errorf("stage 0 = %+v", st[0])
	}
	if st[1].Name != "fanout.worker" || st[1].Count != workers || st[1].Items != workers {
		t.Errorf("stage 1 = %+v", st[1])
	}
}

// TestDisabledTracingIsNilSafe: without a tracer on the context, Start
// returns an unchanged context and a nil span whose every method is a
// no-op — the zero-cost disabled contract the pipeline relies on.
func TestDisabledTracingIsNilSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "anything")
	if ctx2 != ctx {
		t.Error("Start without a tracer should return the context unchanged")
	}
	if s != nil {
		t.Fatal("Start without a tracer should return a nil span")
	}
	// All of these must not panic on the nil receiver.
	s.End()
	s.AddItems(5)
	s.AddBytes(5)
	s.SetAttr("k", "v")
	s.SetWorker(3)
	if TracerFrom(ctx) != nil {
		t.Error("TracerFrom on a bare context should be nil")
	}
}

// TestWriteJSONL checks the trace export: depth-first ids, parent links,
// and one valid JSON object per line.
func TestWriteJSONL(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "root")
	_, c1 := Start(rctx, "child1")
	c1.End()
	_, c2 := Start(rctx, "child2")
	c2.SetAttr("k", "v")
	c2.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	type line struct {
		ID     int               `json:"id"`
		Parent int               `json:"parent"`
		Name   string            `json:"name"`
		Attrs  map[string]string `json:"attrs"`
	}
	var ls []line
	for _, raw := range lines {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("bad JSONL line %q: %v", raw, err)
		}
		ls = append(ls, l)
	}
	if ls[0].Name != "root" || ls[0].ID != 1 || ls[0].Parent != 0 {
		t.Errorf("line 0 = %+v", ls[0])
	}
	if ls[1].Name != "child1" || ls[1].Parent != 1 {
		t.Errorf("line 1 = %+v", ls[1])
	}
	if ls[2].Name != "child2" || ls[2].Parent != 1 || ls[2].Attrs["k"] != "v" {
		t.Errorf("line 2 = %+v", ls[2])
	}

	tr.Reset()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Errorf("Reset left %d roots", len(got))
	}
}
