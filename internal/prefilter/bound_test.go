package prefilter

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMaxContribNoteMergeGet(t *testing.T) {
	a := NewMaxContrib(8)
	a.Note(2, 0.5)
	a.Note(2, 0.25) // lower: ignored
	a.Note(7, 1.0)
	b := NewMaxContrib(8)
	b.Note(2, 0.75)
	b.Note(3, 0.1)
	a.Merge(b)
	want := map[uint32]float32{0: 0, 2: 0.75, 3: 0.1, 7: 1.0}
	for idx, v := range want {
		if got := a.Get(idx); got != v {
			t.Errorf("Get(%d) = %v, want %v", idx, got, v)
		}
	}
	if got := a.Get(100); got != 0 {
		t.Errorf("out-of-range Get = %v, want 0", got)
	}
	if a.Dims() != 8 {
		t.Errorf("Dims = %d, want 8", a.Dims())
	}
}

func TestMaxContribMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*MaxContrib, 4)
	for s := range shards {
		shards[s] = NewMaxContrib(32)
		for j := 0; j < 50; j++ {
			shards[s].Note(uint32(rng.Intn(32)), rng.Float32())
		}
	}
	fwd := NewMaxContrib(32)
	for _, s := range shards {
		fwd.Merge(s)
	}
	rev := NewMaxContrib(32)
	for i := len(shards) - 1; i >= 0; i-- {
		rev.Merge(shards[i])
	}
	for i := 0; i < 32; i++ {
		if fwd.Get(uint32(i)) != rev.Get(uint32(i)) {
			t.Fatalf("merge order changed feature %d: %v vs %v", i, fwd.Get(uint32(i)), rev.Get(uint32(i)))
		}
	}
}

func TestOrderTermsByImpact(t *testing.T) {
	imp := []float64{0.5, 2, 0.5, 3, 0}
	order := OrderTermsByImpact(imp, nil)
	want := []int{3, 1, 0, 2, 4} // desc impact, ties by ascending position
	if len(order) != len(want) {
		t.Fatalf("len = %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBoundHeapPopsDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := make(BoundHeap, 0, 200)
	for i := 0; i < 200; i++ {
		// Coarse values force UB ties, exercising the id tie-break.
		h = append(h, Bound{UB: float64(rng.Intn(10)), ID: int32(i)})
	}
	ref := make([]Bound, len(h))
	copy(ref, h)
	sort.Slice(ref, func(a, b int) bool { return better(ref[a], ref[b]) })
	h.Init()
	for i := range ref {
		got := h.Pop()
		if got != ref[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got, ref[i])
		}
	}
}
