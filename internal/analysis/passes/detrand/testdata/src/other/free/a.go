// Out-of-scope package: detrand must stay silent here even though the
// same calls would be findings inside internal/synth.
package free

import "math/rand"

func draws() int { return rand.Intn(6) }
