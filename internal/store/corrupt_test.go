package store

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"darklight/internal/attribution"
	"darklight/internal/prefilter"
)

// snapshotLayout walks the framing and returns, per section, the offset
// of a byte in the middle of its payload — the walker is deliberately
// independent of the reader type so a framing bug cannot hide itself.
func snapshotLayout(t testing.TB, raw []byte) map[string]int {
	t.Helper()
	off := len(magic)
	u32 := func() int {
		v := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		return int(v)
	}
	u64 := func() int {
		v := binary.LittleEndian.Uint64(raw[off:])
		off += 8
		return int(v)
	}
	if v := u32(); v != formatVersion {
		t.Fatalf("layout walker: format version %d", v)
	}
	count := u32()
	off += 8 + 8 + digestLen // index version, last seq, corpus digest
	layout := make(map[string]int, count)
	for i := 0; i < count; i++ {
		nameLen := u32()
		name := string(raw[off : off+nameLen])
		off += nameLen
		payloadLen := u64()
		off += digestLen
		layout[name] = off + payloadLen/2
		off += payloadLen
	}
	if off != len(raw) {
		t.Fatalf("layout walker consumed %d of %d bytes", off, len(raw))
	}
	return layout
}

func smallSnapshot(t testing.TB) []byte {
	rng := rand.New(rand.NewSource(8400))
	ds := testDataset(rng, "c", 10)
	opts, subjOpts := testBuildOptions()
	idx, err := BuildIndex(context.Background(), ds, opts, subjOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Touch LSH so every section, including secLSH, has real content.
	idx.Matcher.RankDetailed(&idx.Subjects[0], attribution.MatchOptions{K: 3, Mode: prefilter.ModeLSH})
	raw, err := encodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCorruptionNamesEverySection: flip one byte in the middle of each
// section's payload; the load must fail with a *CorruptError naming
// exactly that section — never a panic, never a silently wrong index.
func TestCorruptionNamesEverySection(t *testing.T) {
	raw := smallSnapshot(t)
	layout := snapshotLayout(t, raw)
	wantSections := []string{
		secOptions, secCorpus, secSubjects, secVocab, secStats,
		secDocs, secProfiles, secPostings, secMaxContrib, secLSH,
	}
	if len(layout) != len(wantSections) {
		t.Fatalf("snapshot has %d sections, want %d", len(layout), len(wantSections))
	}
	for _, name := range wantSections {
		off, ok := layout[name]
		if !ok {
			t.Fatalf("section %q missing from snapshot", name)
		}
		mutated := append([]byte(nil), raw...)
		mutated[off] ^= 0x40
		_, err := decodeIndex(mutated)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("section %q: flipped byte returned %v, want *CorruptError", name, err)
			continue
		}
		if ce.Section != name {
			t.Errorf("section %q: error names section %q: %v", name, ce.Section, ce)
		}
	}
}

// TestCorruptionHeaderAndTruncation covers the non-payload failure modes:
// a damaged magic/header, truncation at every region boundary, and
// trailing garbage. All must produce structured errors.
func TestCorruptionHeaderAndTruncation(t *testing.T) {
	raw := smallSnapshot(t)

	mutated := append([]byte(nil), raw...)
	mutated[0] ^= 0x40 // magic
	var ce *CorruptError
	if _, err := decodeIndex(mutated); !errors.As(err, &ce) || ce.Section != "header" {
		t.Errorf("bad magic: got %v, want header CorruptError", mutatedErr(err))
	}
	mutated = append([]byte(nil), raw...)
	mutated[len(magic)] ^= 0xFF // format version
	if _, err := decodeIndex(mutated); !errors.As(err, &ce) || ce.Section != "header" {
		t.Errorf("bad version: got %v, want header CorruptError", mutatedErr(err))
	}

	for _, cut := range []int{0, 4, len(magic) + 9, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := decodeIndex(raw[:cut]); !errors.As(err, &ce) {
			t.Errorf("truncation at %d: got %v, want *CorruptError", cut, err)
		}
	}

	if _, err := decodeIndex(append(append([]byte(nil), raw...), 0xAB)); !errors.As(err, &ce) || ce.Section != "trailer" {
		t.Errorf("trailing byte: got %v, want trailer CorruptError", mutatedErr(err))
	}

	// And the pristine bytes still decode — the mutations above worked on
	// copies.
	if _, err := decodeIndex(raw); err != nil {
		t.Fatalf("pristine snapshot no longer decodes: %v", err)
	}
}

func mutatedErr(err error) error {
	if err == nil {
		return errors.New("<nil: snapshot accepted>")
	}
	return err
}

// TestLoadFillsPath: corruption surfaced through Store.Load carries the
// snapshot path for the operator.
func TestLoadFillsPath(t *testing.T) {
	raw := smallSnapshot(t)
	layout := snapshotLayout(t, raw)
	raw[layout[secVocab]] ^= 0x01
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(st.SnapshotPath(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Load()
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Path != st.SnapshotPath() || ce.Section != secVocab {
		t.Fatalf("Load on corrupt snapshot: %v, want vocab CorruptError with path", err)
	}
}
