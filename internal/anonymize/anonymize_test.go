package anonymize

import (
	"context"
	"strings"
	"testing"
	"time"

	"darklight/internal/activity"
	"darklight/internal/attribution"
	"darklight/internal/corpus"
	"darklight/internal/forum"
	"darklight/internal/normalize"
	"darklight/internal/synth"
)

func TestTextTransforms(t *testing.T) {
	a := New(DefaultOptions())
	tests := []struct{ name, in, want string }{
		{
			name: "misspellings fixed",
			in:   "i definately recieve alot of packages",
			want: "I definitely receive a lot of packages",
		},
		{
			name: "slang expanded",
			in:   "imo this vendor is legit tbh",
			want: "In my opinion this vendor is legit to be honest",
		},
		{
			name: "shouting lowercased",
			in:   "this is VERY IMPORTANT stuff",
			want: "This is very important stuff",
		},
		{
			name: "punctuation runs collapsed",
			in:   "wait... what?? no!!",
			want: "Wait. What? No!",
		},
		{
			name: "emphasis stripped",
			in:   "this is *really* ~important~",
			want: "This is really important",
		},
		{
			name: "opener dropped",
			in:   "honestly the quality was quite good this time",
			want: "The quality was quite good this time",
		},
		{
			name: "emoji stripped",
			in:   "great stuff 🔥 thanks friend",
			want: "Great stuff thanks friend",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Text(tt.in); got != tt.want {
				t.Errorf("Text(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestTextPreservesContentWords(t *testing.T) {
	a := New(DefaultOptions())
	in := "the shipping took nine days and the crystals were pure"
	out := strings.ToLower(a.Text(in))
	for _, w := range []string{"shipping", "nine", "days", "crystals", "pure"} {
		if !strings.Contains(out, w) {
			t.Errorf("content word %q lost: %q", w, out)
		}
	}
}

func TestReschedulingDestroysProfile(t *testing.T) {
	// Build an alias with a sharp 21:00 habit.
	in := forum.Alias{Name: "night_owl"}
	day := time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		in.Messages = append(in.Messages, forum.Message{
			ID: "m", Author: "night_owl", Body: "some words here",
			PostedAt: day.AddDate(0, 0, i).Add(21 * time.Hour),
		})
	}
	before, err := activity.Build(in.Timestamps(), activity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := New(DefaultOptions()).Alias(in)
	after, err := activity.Build(out.Timestamps(), activity.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Entropy() > 0.1 {
		t.Fatalf("setup: original profile should be sharp, entropy %v", before.Entropy())
	}
	if after.Entropy() < 2 {
		t.Errorf("rescheduled profile entropy = %v, want near-uniform", after.Entropy())
	}
	if activity.Cosine(before, after) > 0.6 {
		t.Errorf("profiles still similar after rescheduling: %v", activity.Cosine(before, after))
	}
}

func TestDatasetCopyIsDeep(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	d.Add(forum.Alias{Name: "x", Messages: []forum.Message{{ID: "1", Author: "x", Body: "imo great", PostedAt: time.Now()}}})
	out := New(DefaultOptions()).Dataset(d)
	if d.Aliases[0].Messages[0].Body != "imo great" {
		t.Error("original dataset mutated")
	}
	if out.Aliases[0].Messages[0].Body == "imo great" {
		t.Error("copy not anonymised")
	}
}

// TestCountermeasureDegradesAttack is the §VI validation: anonymising the
// unknown side of an alter-ego experiment must cut the pipeline's linking
// accuracy substantially, without making the text unrecognisable.
func TestCountermeasureDegradesAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end countermeasure test is slow")
	}
	cfg := synth.DefaultConfig().Scaled(0.02)
	cfg.Seed = 17
	world, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	world.AlignUTC()
	normalize.NewPipeline().Run(world.Reddit)
	actOpts := activity.PaperOptions(2017)
	refined := corpus.Refine(world.Reddit, corpus.RefineOptions{Activity: actOpts})
	main, ae := corpus.SplitAlterEgos(refined, corpus.AlterEgoOptions{Activity: actOpts, Seed: 17})
	if ae.Len() < 20 {
		t.Skipf("only %d alter-egos at this scale", ae.Len())
	}
	if ae.Len() > 60 {
		ae.Aliases = ae.Aliases[:60]
	}

	subjOpts := attribution.SubjectOptions{Activity: actOpts, WithActivity: true}
	mainSubs, err := attribution.BuildSubjects(main, subjOpts)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := attribution.NewMatcher(mainSubs, attribution.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	accuracy := func(d *forum.Dataset) float64 {
		probes, err := attribution.BuildSubjects(d, subjOpts)
		if err != nil {
			t.Fatal(err)
		}
		results, err := matcher.MatchAll(context.Background(), probes)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, r := range results {
			if r.Best.Name == r.Unknown {
				hits++
			}
		}
		return float64(hits) / float64(len(probes))
	}

	baseline := accuracy(ae)
	protected := accuracy(New(DefaultOptions()).Dataset(ae))
	t.Logf("attack accuracy: %.1f%% raw → %.1f%% anonymised", 100*baseline, 100*protected)
	if baseline < 0.5 {
		t.Fatalf("setup: attack should work on raw alter-egos, got %.2f", baseline)
	}
	if protected > baseline-0.2 {
		t.Errorf("anonymisation cut accuracy only %.2f → %.2f; want a substantial drop", baseline, protected)
	}
}
