package serve

// Drain semantics, pinned with a deterministic fake clock and the
// hookInflight test hook (which holds a request open inside the handler):
//
//   - in-flight requests complete with correct results after Drain begins
//   - new requests are refused with the structured 503 "draining" envelope
//   - healthz keeps answering 200 and reports the drain
//   - Drain returns nil once the last request finishes, with no real sleeping
//   - Drain returns ErrDrainTimeout when the fake clock crosses the deadline
//     while a request is still held open

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"darklight/internal/attribution"
)

// holdFirstMatch arms svc so the first /v1/match request blocks inside the
// handler (counted in-flight) until release is closed. entered is closed
// once the request is holding.
func holdFirstMatch(svc *Service) (entered, release chan struct{}) {
	entered = make(chan struct{})
	release = make(chan struct{})
	var hits atomic.Int32
	svc.hookInflight = func(endpoint string) {
		if endpoint == "match" && hits.Add(1) == 1 {
			close(entered)
			<-release
		}
	}
	return entered, release
}

// expectedMatchBody computes the correct version-1 /v1/match body for the
// fixture query alias, sequentially, outside the service.
func expectedMatchBody(t *testing.T, alias string) string {
	t.Helper()
	c := testCorpus(t)
	m, err := attribution.NewMatcherContext(context.Background(), c.Known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Query {
		if c.Query[i].Name == alias {
			res := m.Match(&c.Query[i])
			return encodeBody(t, matchResponse(1, &res, testOptions().Threshold))
		}
	}
	t.Fatalf("fixture has no query alias %q", alias)
	return ""
}

func TestDrainGraceful(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, nil)
	h := svc.Handler()
	entered, release := holdFirstMatch(svc)

	// Hold one request open inside the handler.
	inflightDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflightDone <- do(h, "POST", "/v1/match", "test-key", []byte(`{"subject":{"alias":"q_alice"}}`))
	}()
	<-entered

	// Start the drain; it must block on the held request.
	drainErr := make(chan error, 1)
	go func() { drainErr <- svc.Drain(time.Minute) }()
	for !svc.Draining() {
		runtime.Gosched()
	}

	// New API requests are refused with the draining envelope.
	rec := do(h, "POST", "/v1/match", "test-key", []byte(`{"subject":{"alias":"q_dave"}}`))
	if rec.Code != 503 {
		t.Fatalf("request during drain: status %d, want 503 (body %s)", rec.Code, rec.Body.Bytes())
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil || env.Error.Code != CodeDraining {
		t.Fatalf("request during drain: want %q envelope, got %s", CodeDraining, rec.Body.Bytes())
	}

	// healthz stays up and reports the drain.
	hrec := do(h, "GET", "/v1/healthz", "", nil)
	if hrec.Code != 200 {
		t.Fatalf("healthz during drain: status %d", hrec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "draining" || !hr.Draining {
		t.Errorf("healthz during drain reported %+v", hr)
	}

	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	default:
	}

	// Release the held request: it must complete correctly, and Drain must
	// then return nil without the clock ever advancing.
	close(release)
	got := <-inflightDone
	if got.Code != 200 {
		t.Fatalf("held request: status %d (body %s)", got.Code, got.Body.Bytes())
	}
	if want := expectedMatchBody(t, "q_alice"); got.Body.String() != want {
		t.Errorf("held request completed with wrong body:\n got: %s\nwant: %s", got.Body.Bytes(), want)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, nil)
	h := svc.Handler()
	entered, release := holdFirstMatch(svc)

	inflightDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflightDone <- do(h, "POST", "/v1/match", "test-key", []byte(`{"subject":{"alias":"q_alice"}}`))
	}()
	<-entered

	drainErr := make(chan error, 1)
	go func() { drainErr <- svc.Drain(5 * time.Second) }()
	// Wait for Drain to arm its deadline timer, then cross it.
	for clock.pending() == 0 {
		runtime.Gosched()
	}
	clock.Advance(5 * time.Second)

	if err := <-drainErr; !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Drain = %v, want ErrDrainTimeout", err)
	}

	// The abandoned request still finishes once released; drain timing out
	// refuses to wait, it does not corrupt the handler.
	close(release)
	if got := <-inflightDone; got.Code != 200 {
		t.Fatalf("released request: status %d (body %s)", got.Code, got.Body.Bytes())
	}
}
