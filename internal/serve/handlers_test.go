package serve

// Table-driven handler tests: every endpoint crossed with the request
// shapes a hostile or sloppy client can produce, each pinned to a golden
// response body. Regenerate goldens with:
//
//	go test ./internal/serve -run TestHandlerTable -update

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden response bodies")

func TestHandlerTable(t *testing.T) {
	shared := newTestService(t, newFakeClock(), nil)
	sharedHandler := shared.Handler()

	// limited: burst-1 limiter for the rate-limited rows. A fresh service
	// per row keeps the bucket state independent of row order. noAuth
	// drops the API-key allowlist, the open-deployment configuration the
	// bypass row exercises.
	newLimited := func(t *testing.T, noAuth bool) http.Handler {
		svc := newTestService(t, newFakeClock(), func(c *Config) {
			c.RatePerSec = 1
			c.Burst = 1
			if noAuth {
				c.APIKeys = nil
			}
		})
		return svc.Handler()
	}

	validSubject := `{"alias":"q_alice"}`
	inlineSubject := `{"name":"visitor","messages":[{"body":"shipment arrived with stealth packaging and escrow finalize quality tracking","time":"2017-03-04T10:00:00Z"}]}`
	bigBody := `{"subject":{"alias":"q_alice"},"k":` + strings.Repeat("1", 4096) + `}`

	type row struct {
		name       string
		endpoint   string // path under /v1/
		method     string
		apiKey     string
		body       string
		rateLimit  bool   // run against a fresh burst-1 service, second request
		noAuth     bool   // rateLimit service runs without an API-key allowlist
		primeKey   string // API key for the priming request; "" = apiKey
		wantStatus int
		wantRetry  string // expected Retry-After header, "" = none
	}
	rows := []row{
		// /v1/rank
		{name: "rank_valid", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `}`, wantStatus: 200},
		{name: "rank_valid_k2", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"k":2}`, wantStatus: 200},
		{name: "rank_inline_subject", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + inlineSubject + `,"k":3}`, wantStatus: 200},
		{name: "rank_malformed_json", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":`, wantStatus: 400},
		{name: "rank_unknown_field", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"topk":5}`, wantStatus: 400},
		{name: "rank_missing_auth", endpoint: "rank", method: "POST", apiKey: "", body: `{"subject":` + validSubject + `}`, wantStatus: 401},
		{name: "rank_bad_api_key", endpoint: "rank", method: "POST", apiKey: "wrong-key", body: `{"subject":` + validSubject + `}`, wantStatus: 403},
		{name: "rank_rate_limited", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `}`, rateLimit: true, wantStatus: 429, wantRetry: "1"},
		// With auth disabled, minting a fresh X-API-Key per request must NOT
		// mint a fresh bucket: both requests land on the remote-host bucket,
		// so the second is refused. (The old code keyed the limiter on the
		// unvalidated header, letting any caller bypass the limit.)
		{name: "rank_rate_limit_bypass", endpoint: "rank", method: "POST", apiKey: "minted-key-2", primeKey: "minted-key-1", body: `{"subject":` + validSubject + `}`, rateLimit: true, noAuth: true, wantStatus: 429, wantRetry: "1"},
		{name: "rank_oversized_body", endpoint: "rank", method: "POST", apiKey: "test-key", body: bigBody, wantStatus: 413},
		{name: "rank_unknown_alias", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":{"alias":"nobody"}}`, wantStatus: 404},
		{name: "rank_negative_k", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"k":-1}`, wantStatus: 400},
		{name: "rank_ambiguous_subject", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":{"alias":"q_alice","name":"visitor"}}`, wantStatus: 400},
		{name: "rank_empty_subject", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":{}}`, wantStatus: 400},
		{name: "rank_trailing_data", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `}{"x":1}`, wantStatus: 400},
		{name: "rank_wrong_method", endpoint: "rank", method: "GET", apiKey: "test-key", body: "", wantStatus: 405},
		// The prefilter knob: stats appear only when it is set, "pruned"
		// candidates must be byte-identical to the legacy (exact-result)
		// golden's, and unknown modes are rejected before subject
		// resolution.
		{name: "rank_prefilter_exact", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"prefilter":"exact"}`, wantStatus: 200},
		{name: "rank_prefilter_pruned", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"prefilter":"pruned"}`, wantStatus: 200},
		{name: "rank_prefilter_lsh", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"prefilter":"lsh"}`, wantStatus: 200},
		{name: "rank_prefilter_unknown", endpoint: "rank", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"prefilter":"fuzzy"}`, wantStatus: 400},

		// /v1/rescore
		{name: "rescore_valid", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"candidates":["alice","bob","frank"]}`, wantStatus: 200},
		{name: "rescore_malformed_json", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `not json`, wantStatus: 400},
		{name: "rescore_unknown_field", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"candidates":["alice"],"limit":3}`, wantStatus: 400},
		{name: "rescore_missing_auth", endpoint: "rescore", method: "POST", apiKey: "", body: `{"subject":` + validSubject + `,"candidates":["alice"]}`, wantStatus: 401},
		{name: "rescore_bad_api_key", endpoint: "rescore", method: "POST", apiKey: "wrong-key", body: `{"subject":` + validSubject + `,"candidates":["alice"]}`, wantStatus: 403},
		{name: "rescore_rate_limited", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"candidates":["alice"]}`, rateLimit: true, wantStatus: 429, wantRetry: "1"},
		{name: "rescore_oversized_body", endpoint: "rescore", method: "POST", apiKey: "test-key", body: bigBody, wantStatus: 413},
		{name: "rescore_unknown_candidate", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"candidates":["alice","nobody"]}`, wantStatus: 404},
		{name: "rescore_unknown_subject", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":{"alias":"nobody"},"candidates":["alice"]}`, wantStatus: 404},
		{name: "rescore_no_candidates", endpoint: "rescore", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"candidates":[]}`, wantStatus: 400},

		// /v1/match
		{name: "match_valid", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `}`, wantStatus: 200},
		{name: "match_valid_second_query", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":{"alias":"q_dave"}}`, wantStatus: 200},
		{name: "match_inline_subject", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":` + inlineSubject + `}`, wantStatus: 200},
		{name: "match_malformed_json", endpoint: "match", method: "POST", apiKey: "test-key", body: `[1,2`, wantStatus: 400},
		{name: "match_unknown_field", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `,"verbose":true}`, wantStatus: 400},
		{name: "match_missing_auth", endpoint: "match", method: "POST", apiKey: "", body: `{"subject":` + validSubject + `}`, wantStatus: 401},
		{name: "match_bad_api_key", endpoint: "match", method: "POST", apiKey: "wrong-key", body: `{"subject":` + validSubject + `}`, wantStatus: 403},
		{name: "match_rate_limited", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":` + validSubject + `}`, rateLimit: true, wantStatus: 429, wantRetry: "1"},
		{name: "match_oversized_body", endpoint: "match", method: "POST", apiKey: "test-key", body: bigBody, wantStatus: 413},
		{name: "match_unknown_alias", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":{"alias":"nobody"}}`, wantStatus: 404},
		{name: "match_bad_timestamp", endpoint: "match", method: "POST", apiKey: "test-key", body: `{"subject":{"name":"visitor","messages":[{"body":"hello there","time":"yesterday"}]}}`, wantStatus: 400},

		// /v1/healthz (unauthenticated by design; POST is refused)
		{name: "healthz_valid", endpoint: "healthz", method: "GET", apiKey: "", body: "", wantStatus: 200},
		{name: "healthz_wrong_method", endpoint: "healthz", method: "POST", apiKey: "", body: `{}`, wantStatus: 405},
	}

	for _, tc := range rows {
		t.Run(tc.name, func(t *testing.T) {
			h := sharedHandler
			if tc.rateLimit {
				h = newLimited(t, tc.noAuth)
				// Burn the single burst token; the recorded request is the
				// refused second one.
				primeKey := tc.primeKey
				if primeKey == "" {
					primeKey = tc.apiKey
				}
				first := do(h, tc.method, "/v1/"+tc.endpoint, primeKey, []byte(tc.body))
				if first.Code != 200 {
					t.Fatalf("priming request: status %d, want 200 (body %s)", first.Code, first.Body.Bytes())
				}
			}
			rec := do(h, tc.method, "/v1/"+tc.endpoint, tc.apiKey, []byte(tc.body))
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.Bytes())
			}
			if got := rec.Header().Get("Retry-After"); got != tc.wantRetry {
				t.Errorf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if tc.wantStatus != 200 {
				assertEnvelope(t, rec.Body.Bytes(), tc.wantStatus)
			}
			checkGolden(t, tc.name, rec.Body.Bytes())
		})
	}
}

// assertEnvelope verifies every rejection carries the structured error
// envelope with all fields populated and the status echoed.
func assertEnvelope(t *testing.T, body []byte, status int) {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("rejection body is not an error envelope: %v (%s)", err, body)
	}
	if env.Error == nil || env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error envelope incomplete: %s", body)
	}
	if env.Error.Status != status {
		t.Errorf("envelope status %d != HTTP status %d", env.Error.Status, status)
	}
}

// checkGolden compares body to testdata/golden/<name>.json, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != string(body) {
		t.Errorf("response differs from golden %s:\n got: %s\nwant: %s", path, body, want)
	}
}
