package reqtrace

import (
	"encoding/json"
	"strconv"
	"sync"

	"darklight/internal/obs"
)

// AccessEntry is one access-log line. Field order is fixed by this struct
// (encoding/json emits struct fields in declaration order), so the JSONL
// output is deterministic and grep/jq-stable: id first, then the trace
// correlation key, then the request shape, then timing, then the
// per-stage breakdown. The hot path renders the same bytes by hand (see
// appendAccessLine, pinned equal to encoding/json by test); this struct
// is the schema of record.
type AccessEntry struct {
	ID       string             `json:"id"`
	Trace    string             `json:"trace"`
	Method   string             `json:"method"`
	Endpoint string             `json:"endpoint"`
	Code     int                `json:"code"`
	DurNS    int64              `json:"dur_ns"`
	Bytes    int                `json:"bytes,omitempty"`
	Stages   []obs.StageSummary `json:"stages,omitempty"`
}

// linePool recycles the per-request line buffer and stage scratch, so a
// steady request stream logs without per-line garbage.
var linePool = sync.Pool{New: func() any { return new(lineScratch) }}

type lineScratch struct {
	buf    []byte
	stages []obs.StageSummary
}

// writeAccessLine renders one request as a single JSONL line. The mutex
// makes each line atomic with respect to concurrent requests — lines may
// interleave in any order, but never mid-line.
func (c *Recorder) writeAccessLine(a *Active, info RequestInfo) {
	s := linePool.Get().(*lineScratch)
	s.stages = a.tracer.AppendStages(s.stages[:0])
	line := appendAccessLine(s.buf[:0], AccessEntry{
		ID:       a.RequestID,
		Trace:    a.TraceID,
		Method:   info.Method,
		Endpoint: info.Endpoint,
		Code:     info.Code,
		DurNS:    info.Duration.Nanoseconds(),
		Bytes:    info.Bytes,
		Stages:   s.stages,
	})
	line = append(line, '\n')
	c.logMu.Lock()
	//lint:ignore errdrop the access log is advisory; a full disk must not fail requests
	c.opts.AccessLog.Write(line)
	c.logMu.Unlock()
	s.buf = line[:0]
	linePool.Put(s)
}

// appendAccessLine renders e exactly as encoding/json would, without the
// reflection walk or intermediate allocations. TestAccessLineMatchesJSON
// pins the equivalence, including omitempty and string-escaping corners.
func appendAccessLine(b []byte, e AccessEntry) []byte {
	b = append(b, `{"id":`...)
	b = appendJSONString(b, e.ID)
	b = append(b, `,"trace":`...)
	b = appendJSONString(b, e.Trace)
	b = append(b, `,"method":`...)
	b = appendJSONString(b, e.Method)
	b = append(b, `,"endpoint":`...)
	b = appendJSONString(b, e.Endpoint)
	b = append(b, `,"code":`...)
	b = strconv.AppendInt(b, int64(e.Code), 10)
	b = append(b, `,"dur_ns":`...)
	b = strconv.AppendInt(b, e.DurNS, 10)
	if e.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, int64(e.Bytes), 10)
	}
	if len(e.Stages) > 0 {
		b = append(b, `,"stages":[`...)
		for i, st := range e.Stages {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = appendJSONString(b, st.Name)
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, st.Count, 10)
			b = append(b, `,"dur_ns":`...)
			b = strconv.AppendInt(b, st.DurNS, 10)
			if st.Items != 0 {
				b = append(b, `,"items":`...)
				b = strconv.AppendInt(b, st.Items, 10)
			}
			if st.Bytes != 0 {
				b = append(b, `,"bytes":`...)
				b = strconv.AppendInt(b, st.Bytes, 10)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendJSONString quotes s the way encoding/json does. The fast path
// covers the plain-ASCII strings this package actually emits (ids, hex,
// methods, URL paths); anything needing escapes — control bytes, quotes,
// backslashes, the HTML-sensitive <>&, or non-ASCII — takes the
// encoding/json slow path so the bytes stay identical either way.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				return append(b, `""`...) // a Go string cannot fail to marshal
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}
