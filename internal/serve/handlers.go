package serve

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/prefilter"
)

// handleRank is POST /v1/rank: stage 1 only — the top-k known subjects by
// cosine similarity under the server's weights.
func (s *Service) handleRank(r *http.Request, st *state, body []byte) (any, *Error) {
	var req RankRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	if req.K < 0 {
		return nil, errInvalidRequest("k must be >= 0")
	}
	mode, err := prefilter.ParseMode(req.Prefilter)
	if err != nil {
		return nil, errInvalidRequest(err.Error())
	}
	sub, apiErr := s.resolveSubject(st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	resp := &RankResponse{
		IndexVersion: st.version,
		Subject:      sub.Name,
	}
	if req.Prefilter == "" {
		resp.Candidates = candidates(st.matcher.Rank(sub, req.K))
		return resp, nil
	}
	start := s.clock.Now()
	scored, pst := st.matcher.RankDetailed(sub, attribution.MatchOptions{K: req.K, Mode: mode})
	s.met.prefilterLat.With(pst.Mode.String()).Observe(s.clock.Now().Sub(start).Seconds())
	resp.Candidates = candidates(scored)
	resp.Prefilter = &PrefilterInfo{
		Mode:       pst.Mode.String(),
		Candidates: pst.Candidates,
		Pruned:     pst.Pruned,
	}
	return resp, nil
}

// handleRescore is POST /v1/rescore: stage 2 over an explicit candidate
// list. Every candidate must exist in the live index — a silent drop would
// make "no result" ambiguous between "unknown name" and "scored last".
func (s *Service) handleRescore(r *http.Request, st *state, body []byte) (any, *Error) {
	var req RescoreRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	if len(req.Candidates) == 0 {
		return nil, errInvalidRequest("candidates must name at least one known subject")
	}
	list := make([]attribution.Scored, len(req.Candidates))
	for i, name := range req.Candidates {
		if _, ok := st.knownSet[name]; !ok {
			return nil, errUnknownAlias(name)
		}
		list[i] = attribution.Scored{Name: name}
	}
	sub, apiErr := s.resolveSubject(st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	scored := st.matcher.Rescore(sub, list)
	return &RescoreResponse{
		IndexVersion: st.version,
		Subject:      sub.Name,
		Rescored:     candidates(scored),
	}, nil
}

// handleMatch is POST /v1/match: the full two-stage §IV-I algorithm. The
// body is field-for-field the facade's MatchResult — the concurrency test
// pins the bytes identical to darklight.Pipeline output.
func (s *Service) handleMatch(r *http.Request, st *state, body []byte) (any, *Error) {
	var req MatchRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	sub, apiErr := s.resolveSubject(st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	res := st.matcher.Match(sub)
	return matchResponse(st.version, &res, s.cfg.Options.Threshold), nil
}

// matchResponse converts one MatchResult into the wire form.
func matchResponse(version int, res *attribution.MatchResult, threshold float64) *MatchResponse {
	out := &MatchResponse{
		IndexVersion: version,
		Subject:      res.Unknown,
		Candidates:   candidates(res.Candidates),
		Rescored:     candidates(res.Rescored),
		Accepted:     res.Accepted,
		Threshold:    threshold,
	}
	if res.Best.Name != "" {
		out.Best = &Candidate{Alias: res.Best.Name, Score: res.Best.Score}
	}
	return out
}

// handleHealthz is GET /v1/healthz. It needs no auth and survives the
// drain gate so orchestrators can watch a draining instance go quiet.
func (s *Service) handleHealthz(r *http.Request, st *state, _ []byte) (any, *Error) {
	status := "ok"
	draining := s.draining.Load()
	if draining {
		status = "draining"
	}
	return &HealthResponse{
		Status:        status,
		IndexVersion:  st.version,
		KnownSubjects: len(st.known),
		QuerySubjects: len(st.query),
		Draining:      draining,
	}, nil
}

// candidates converts matcher output to the wire form, re-asserting the
// deterministic order contract: score descending, ties broken by ascending
// alias name. The matcher already emits this order (topKScores and Rescore
// share the comparator); the sort here makes the contract local to the
// response instead of an assumption about a callee. An empty list encodes
// as [] rather than null.
func candidates(scored []attribution.Scored) []Candidate {
	out := make([]Candidate, len(scored))
	for i, c := range scored {
		out[i] = Candidate{Alias: c.Name, Score: c.Score}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Alias < out[j].Alias
	})
	return out
}

// resolveSubject turns a SubjectSpec into a matchable subject: a by-alias
// reference into the snapshot's query corpus, or an inline subject built
// through the exact BuildSubjects path the batch pipeline uses.
func (s *Service) resolveSubject(st *state, spec *SubjectSpec) (*attribution.Subject, *Error) {
	if apiErr := spec.validate(); apiErr != nil {
		return nil, apiErr
	}
	if spec.Alias != "" {
		sub, ok := st.query[spec.Alias]
		if !ok {
			return nil, errUnknownAlias(spec.Alias)
		}
		return sub, nil
	}
	ds := forum.NewDataset("inline", forum.PlatformSynthetic)
	a := forum.Alias{Name: spec.Name, Messages: make([]forum.Message, len(spec.Messages))}
	for i, m := range spec.Messages {
		t, err := time.Parse(time.RFC3339, m.Time)
		if err != nil {
			return nil, errInvalidRequest(fmt.Sprintf("messages[%d].time: %v (want RFC 3339)", i, err))
		}
		// The sequential id makes the longest-first document selection a
		// pure function of the request: length ties keep request order.
		a.Messages[i] = forum.Message{
			ID:       fmt.Sprintf("q%06d", i),
			Author:   spec.Name,
			Body:     m.Body,
			PostedAt: t,
		}
	}
	ds.Add(a)
	subs, err := attribution.BuildSubjects(ds, s.cfg.Subjects)
	if err != nil {
		return nil, &Error{Code: CodeInternal, Message: "building query subject: " + err.Error(), Status: http.StatusInternalServerError}
	}
	return &subs[0], nil
}
