package tokenize

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	tests := []struct {
		name      string
		input     string
		wantText  []string
		wantKinds []Kind
	}{
		{
			name:      "plain words",
			input:     "hello world",
			wantText:  []string{"hello", "world"},
			wantKinds: []Kind{KindWord, KindWord},
		},
		{
			name:      "apostrophe and hyphen stay internal",
			input:     "don't e-mail me",
			wantText:  []string{"don't", "e-mail", "me"},
			wantKinds: []Kind{KindWord, KindWord, KindWord},
		},
		{
			name:      "trailing apostrophe splits off",
			input:     "dogs' bones",
			wantText:  []string{"dogs", "'", "bones"},
			wantKinds: []Kind{KindWord, KindPunct, KindWord},
		},
		{
			name:      "numbers with separators",
			input:     "paid 1,000.50 at 12:30",
			wantText:  []string{"paid", "1,000.50", "at", "12:30"},
			wantKinds: []Kind{KindWord, KindNumber, KindWord, KindNumber},
		},
		{
			name:      "punctuation",
			input:     "wait... what?!",
			wantText:  []string{"wait", ".", ".", ".", "what", "?", "!"},
			wantKinds: []Kind{KindWord, KindPunct, KindPunct, KindPunct, KindWord, KindPunct, KindPunct},
		},
		{
			name:      "scheme URL",
			input:     "see https://example.com/path?q=1 now",
			wantText:  []string{"see", "https://example.com/path?q=1", "now"},
			wantKinds: []Kind{KindWord, KindURL, KindWord},
		},
		{
			name:      "URL with trailing sentence punctuation",
			input:     "go to http://a.onion/x.",
			wantText:  []string{"go", "to", "http://a.onion/x", "."},
			wantKinds: []Kind{KindWord, KindWord, KindURL, KindPunct},
		},
		{
			name:      "bare domain",
			input:     "www.reddit.com rocks",
			wantText:  []string{"www.reddit.com", "rocks"},
			wantKinds: []Kind{KindURL, KindWord},
		},
		{
			name:      "email",
			input:     "mail me at bob@example.com thanks",
			wantText:  []string{"mail", "me", "at", "bob@example.com", "thanks"},
			wantKinds: []Kind{KindWord, KindWord, KindWord, KindEmail, KindWord},
		},
		{
			name:      "emoji",
			input:     "nice 🔥 stuff",
			wantText:  []string{"nice", "🔥", "stuff"},
			wantKinds: []Kind{KindWord, KindEmoji, KindWord},
		},
		{
			name:      "symbols",
			input:     "a + b = c",
			wantText:  []string{"a", "+", "b", "=", "c"},
			wantKinds: []Kind{KindWord, KindSymbol, KindWord, KindSymbol, KindWord},
		},
		{
			name:      "empty",
			input:     "   \n\t ",
			wantText:  []string{},
			wantKinds: []Kind{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			toks := Tokenize(tt.input)
			gotText, gotKinds := texts(toks), kinds(toks)
			if len(gotText) != len(tt.wantText) {
				t.Fatalf("got %v (%v), want %v", gotText, gotKinds, tt.wantText)
			}
			for i := range tt.wantText {
				if gotText[i] != tt.wantText[i] || gotKinds[i] != tt.wantKinds[i] {
					t.Errorf("token %d = (%q, %v), want (%q, %v)",
						i, gotText[i], gotKinds[i], tt.wantText[i], tt.wantKinds[i])
				}
			}
		})
	}
}

func TestWords(t *testing.T) {
	got := Words("The QUICK brown-ish fox, 42 times! https://x.com")
	want := []string{"the", "quick", "brown-ish", "fox", "times"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Words[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenPositions(t *testing.T) {
	input := "abc déf ghi"
	for _, tok := range Tokenize(input) {
		if !strings.HasPrefix(input[tok.Pos:], tok.Text) {
			t.Errorf("token %q at pos %d does not match source", tok.Text, tok.Pos)
		}
	}
}

func TestStripEmoji(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"hello 😂 world", "hello  world"},
		{"no emoji here", "no emoji here"},
		{"🔥🔥🔥", ""},
		{"flag 🇺🇸 end", "flag  end"},
		{"keep ünïcode", "keep ünïcode"},
	}
	for _, tt := range tests {
		if got := StripEmoji(tt.in); got != tt.want {
			t.Errorf("StripEmoji(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStripPGP(t *testing.T) {
	block := "-----BEGIN PGP PUBLIC KEY BLOCK-----\nVersion: 2\n\nAAAA\nBBBB\n=XX\n-----END PGP PUBLIC KEY BLOCK-----"
	tests := []struct {
		name, in, want string
	}{
		{"block removed", "before\n" + block + "\nafter", "before\n\nafter"},
		{"unterminated removed to end", "text " + "-----BEGIN PGP MESSAGE-----\nAAAA", "text"},
		{"no pgp untouched", "just text", "just text"},
		{"two blocks", block + " mid " + block, " mid "},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StripPGP(tt.in); got != tt.want {
				t.Errorf("StripPGP = %q, want %q", got, tt.want)
			}
		})
	}
	if !ContainsPGP(block) || ContainsPGP("nope") {
		t.Error("ContainsPGP misdetects")
	}
}

// Property: every token's text appears at its recorded position, and
// tokenisation never invents characters not present in the input.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Pos < 0 || tok.Pos >= len(s) {
				return false
			}
			if !strings.HasPrefix(s[tok.Pos:], tok.Text) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: StripEmoji output contains no emoji and is a subsequence of
// the input.
func TestStripEmojiProperty(t *testing.T) {
	f := func(s string) bool {
		out := StripEmoji(s)
		for _, r := range out {
			if IsEmoji(r) {
				return false
			}
		}
		return len(out) <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
