package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/prefilter"
)

var storeWordPool = strings.Fields(`vendor ship product quality stealth pack order track refund escrow
market listing review price gram sample batch pressed lab domestic overnight deal trust feedback account
bitcoin monero address country customs seizure reship policy vouch thread board post message forum admin
rule scam alert warning legit fast clean pure strong cheap bulk retail drop dead link mirror onion`)

func testBody(rng *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = storeWordPool[rng.Intn(len(storeWordPool))]
	}
	return strings.Join(words, " ")
}

// testDataset builds a deterministic corpus of n aliases with enough
// messages and spread-out timestamps that most get activity profiles.
func testDataset(rng *rand.Rand, name string, n int) *forum.Dataset {
	ds := forum.NewDataset(name, forum.PlatformTheMajesticGarden)
	t0 := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		a := forum.Alias{Name: fmt.Sprintf("%s-user%03d", name, i)}
		msgs := 6 + rng.Intn(12)
		for m := 0; m < msgs; m++ {
			a.Messages = append(a.Messages, forum.Message{
				ID:       fmt.Sprintf("%s-%03d-%03d", name, i, m),
				Author:   a.Name,
				Thread:   fmt.Sprintf("t%02d", rng.Intn(8)),
				Body:     testBody(rng, 8+rng.Intn(30)),
				PostedAt: t0.Add(time.Duration(rng.Intn(90*24)) * time.Hour),
			})
		}
		ds.Add(a)
	}
	return ds
}

func testBuildOptions() (attribution.Options, attribution.SubjectOptions) {
	opts := attribution.DefaultOptions()
	opts.Workers = 2
	return opts, attribution.SubjectOptions{WithActivity: true, Workers: 2}
}

// testThread invents one scraped thread: some messages from existing
// authors, some from brand-new ones.
func testThread(rng *rand.Rand, ds *forum.Dataset, id int) forum.ThreadRecord {
	rec := forum.ThreadRecord{Thread: fmt.Sprintf("new-thread-%03d", id)}
	t0 := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	nMsg := 1 + rng.Intn(5)
	for m := 0; m < nMsg; m++ {
		var author string
		if rng.Intn(3) > 0 && ds.Len() > 0 {
			author = ds.Aliases[rng.Intn(ds.Len())].Name
		} else {
			author = fmt.Sprintf("newcomer%02d", rng.Intn(6))
		}
		rec.Messages = append(rec.Messages, forum.Message{
			ID:       fmt.Sprintf("nt%03d-%02d", id, m),
			Thread:   rec.Thread,
			Author:   author,
			Body:     testBody(rng, 6+rng.Intn(25)),
			PostedAt: t0.Add(time.Duration(rng.Intn(20*24)) * time.Hour),
		})
	}
	return rec
}

func cloneDataset(ds *forum.Dataset) *forum.Dataset {
	out := forum.NewDataset(ds.Name, ds.Platform)
	for i := range ds.Aliases {
		a := ds.Aliases[i]
		a.Messages = append([]forum.Message(nil), a.Messages...)
		out.Aliases = append(out.Aliases, a)
	}
	return out
}

// assertIndexesEquivalent requires the two indexes to be observably
// identical: same metadata, same corpus, same subjects, and bit-identical
// matcher output through every query path.
func assertIndexesEquivalent(t *testing.T, got, want *Index, probes []attribution.Subject) {
	t.Helper()
	if got.Version != want.Version || got.LastSeq != want.LastSeq || got.Digest != want.Digest {
		t.Fatalf("metadata diverges: got (v%d seq%d %s), want (v%d seq%d %s)",
			got.Version, got.LastSeq, got.Digest, want.Version, want.LastSeq, want.Digest)
	}
	if !reflect.DeepEqual(got.Dataset, want.Dataset) {
		t.Fatal("dataset diverges")
	}
	if !reflect.DeepEqual(got.Subjects, want.Subjects) {
		t.Fatal("subjects diverge")
	}
	w := attribution.Weights{Freq: 0.2, Activity: 0.7}
	for pi := range probes {
		p := &probes[pi]
		for _, mode := range []prefilter.Mode{prefilter.ModeExact, prefilter.ModePruned, prefilter.ModeLSH} {
			o := attribution.MatchOptions{K: 5, Weights: &w, Mode: mode}
			gr, _ := got.Matcher.RankDetailed(p, o)
			wr, _ := want.Matcher.RankDetailed(p, o)
			if !reflect.DeepEqual(gr, wr) {
				t.Fatalf("probe %d mode %v: rank diverges\ngot  %v\nwant %v", pi, mode, gr, wr)
			}
		}
		cands := want.Matcher.Rank(p, 5)
		if gre, wre := got.Matcher.Rescore(p, cands), want.Matcher.Rescore(p, cands); !reflect.DeepEqual(gre, wre) {
			t.Fatalf("probe %d: rescore diverges\ngot  %v\nwant %v", pi, gre, wre)
		}
	}
	gall, gerr := got.Matcher.MatchAll(context.Background(), probes)
	wall, werr := want.Matcher.MatchAll(context.Background(), probes)
	if gerr != nil || werr != nil {
		t.Fatalf("MatchAll errors: %v / %v", gerr, werr)
	}
	if !reflect.DeepEqual(gall, wall) {
		t.Fatal("MatchAll output diverges")
	}
}

// TestSaveLoadRoundTrip: the snapshot must reassemble an index whose
// output is bit-identical to the in-RAM build, including LSH operating
// points already built, and the loaded index must itself be save-able.
func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8100))
	ds := testDataset(rng, "base", 30)
	probeDS := testDataset(rng, "probe", 6)
	opts, subjOpts := testBuildOptions()
	ctx := context.Background()

	idx, err := BuildIndex(ctx, ds, opts, subjOpts)
	if err != nil {
		t.Fatal(err)
	}
	probes, err := attribution.BuildSubjects(probeDS, subjOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the LSH path so the snapshot has an operating point to carry.
	idx.Matcher.RankDetailed(&probes[0], attribution.MatchOptions{K: 3, Mode: prefilter.ModeLSH})

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st.HasSnapshot() {
		t.Fatal("fresh store claims a snapshot")
	}
	if err := st.Save(idx); err != nil {
		t.Fatal(err)
	}
	if !st.HasSnapshot() {
		t.Fatal("snapshot not visible after Save")
	}
	loaded, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEquivalent(t, loaded, idx, probes)

	// The loaded index must be a full citizen: snapshot-able again and
	// fold-able (the matcher came back incremental).
	if err := st.Save(loaded); err != nil {
		t.Fatalf("re-save of loaded index: %v", err)
	}
	if _, err := loaded.Matcher.Fold(ctx, loaded.Subjects[:1]); err != nil {
		t.Fatalf("fold on loaded index: %v", err)
	}
}

// TestApplyThreads pins the delta semantics: grouping by author, new
// aliases for new authors, canonical order, and no mutation of the input.
func TestApplyThreads(t *testing.T) {
	ds := forum.NewDataset("d", forum.PlatformTheMajesticGarden)
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	ds.Add(forum.Alias{Name: "ann", Messages: []forum.Message{{ID: "a0", Author: "ann", Body: "old post", PostedAt: t0}}})
	ds.Add(forum.Alias{Name: "zed", Messages: []forum.Message{{ID: "z0", Author: "zed", Body: "other", PostedAt: t0}}})
	before := cloneDataset(ds)

	recs := []forum.ThreadRecord{{
		Thread: "t9",
		Messages: []forum.Message{
			{ID: "m1", Author: "zed", Body: "reply one", PostedAt: t0.Add(time.Hour)},
			{ID: "m2", Author: "newguy", Body: "first post", PostedAt: t0.Add(2 * time.Hour)},
			{ID: "m3", Author: "zed", Body: "reply two", PostedAt: t0.Add(3 * time.Hour)},
		},
	}}
	out, changed := ApplyThreads(ds, recs)

	if !reflect.DeepEqual(changed, []string{"newguy", "zed"}) {
		t.Errorf("changed = %v, want [newguy zed]", changed)
	}
	if got := out.Names(); !reflect.DeepEqual(got, []string{"ann", "newguy", "zed"}) {
		t.Errorf("names = %v, want [ann newguy zed]", got)
	}
	z, err := out.Find("zed")
	if err != nil || len(z.Messages) != 3 || z.Messages[1].ID != "m1" || z.Messages[2].ID != "m3" {
		t.Errorf("zed messages wrong: %+v (err %v)", z, err)
	}
	ng, err := out.Find("newguy")
	if err != nil || len(ng.Messages) != 1 || ng.Platform != ds.Platform {
		t.Errorf("newguy wrong: %+v (err %v)", ng, err)
	}
	if !reflect.DeepEqual(ds, before) {
		t.Error("ApplyThreads mutated its input dataset")
	}
}

// TestReplayMatchesRebuild is the crash-recovery equivalence property:
// append threads to the journal, replay them onto the loaded snapshot,
// and the resulting index must be bit-identical to building from scratch
// over the merged corpus. Run with -race, trials in parallel.
func TestReplayMatchesRebuild(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("world%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(8200 + trial)))
			ds := testDataset(rng, "corpus", 15+rng.Intn(15))
			probeDS := testDataset(rng, "probe", 5)
			opts, subjOpts := testBuildOptions()
			opts.Workers = 1 + rng.Intn(3)
			ctx := context.Background()

			idx, err := BuildIndex(ctx, ds, opts, subjOpts)
			if err != nil {
				t.Fatal(err)
			}
			probes, err := attribution.BuildSubjects(probeDS, subjOpts)
			if err != nil {
				t.Fatal(err)
			}

			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Save(idx); err != nil {
				t.Fatal(err)
			}
			nThreads := 1 + rng.Intn(4)
			for i := 0; i < nThreads; i++ {
				seq, err := st.AppendThread(testThread(rng, ds, i))
				if err != nil {
					t.Fatal(err)
				}
				if want := uint64(i + 1); seq != want {
					t.Fatalf("AppendThread seq = %d, want %d", seq, want)
				}
			}

			// Cold start: load the snapshot, replay the journal.
			cold, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			entries, err := st.ReadJournal(cold.LastSeq)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != nThreads {
				t.Fatalf("journal has %d entries, want %d", len(entries), nThreads)
			}
			next, err := Replay(ctx, cold, entries, subjOpts)
			if err != nil {
				t.Fatal(err)
			}
			if next.Version != cold.Version+1 || next.LastSeq != entries[len(entries)-1].Seq {
				t.Fatalf("replayed index at (v%d seq%d)", next.Version, next.LastSeq)
			}

			// Reference: a from-scratch build over the merged corpus.
			rebuilt, err := BuildIndex(ctx, cloneDataset(next.Dataset), opts, subjOpts)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt.Version, rebuilt.LastSeq = next.Version, next.LastSeq
			assertIndexesEquivalent(t, next, rebuilt, probes)

			// Replay is idempotent: entries at or below LastSeq are skipped.
			again, err := Replay(ctx, next, entries, subjOpts)
			if err != nil {
				t.Fatal(err)
			}
			if again != next {
				t.Error("replay of already-folded entries built a new index")
			}

			// Save the new generation, compact, and the journal is empty;
			// a fresh load round-trips the folded index.
			if err := st.Save(next); err != nil {
				t.Fatal(err)
			}
			if err := st.CompactJournal(next.LastSeq); err != nil {
				t.Fatal(err)
			}
			left, err := st.ReadJournal(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(left) != 0 {
				t.Fatalf("journal holds %d entries after compaction", len(left))
			}
			reloaded, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			assertIndexesEquivalent(t, reloaded, next, probes)
		})
	}
}

// TestJournalTornTailDropsOnlyTear: a crash mid-append leaves a partial
// final line; reads drop exactly that line, and Open repairs the file so
// the next append continues the sequence.
func TestJournalTornTailDropsOnlyTear(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8300))
	ds := testDataset(rng, "d", 3)
	for i := 0; i < 3; i++ {
		if _, err := st.AppendThread(testThread(rng, ds, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a kill mid-append: a truncated JSON line with no newline.
	f, err := os.OpenFile(st.JournalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"thread":{"thread":"torn","mess`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := st.ReadJournal(0)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries past a torn tail, want 3", len(entries))
	}

	// Reopen: the tear is repaired and sequence numbering continues.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := st2.AppendThread(testThread(rng, ds, 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("post-repair seq = %d, want 4", seq)
	}
	entries, err = st2.ReadJournal(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("post-repair journal = %d entries, want 4", len(entries))
	}
	if entries[3].Seq != 4 {
		t.Errorf("post-repair last seq = %d, want 4", entries[3].Seq)
	}
}

// TestJournalMidFileCorruptionFails: an undecodable line that is not the
// tail is real corruption and must fail loudly with the journal named.
func TestJournalMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := `{"seq":%d,"thread":{"thread":"t%d","messages":null}}` + "\n"
	raw := fmt.Sprintf(good, 1, 1) + "@@garbage@@\n" + fmt.Sprintf(good, 2, 2)
	if err := os.WriteFile(st.JournalPath(), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.ReadJournal(0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption returned %v, want *CorruptError", err)
	}
	if ce.Section != "journal" || ce.Path != st.JournalPath() {
		t.Errorf("CorruptError = %+v, want section journal with the journal path", ce)
	}
	// Open must refuse the directory too, not silently resurrect it.
	if _, err := Open(dir); !errors.As(err, &ce) {
		t.Errorf("Open on corrupt journal returned %v, want *CorruptError", err)
	}
}

// TestJournalSequenceRegressionFails: sequence numbers must strictly
// increase; a replayed or spliced journal is corruption, not data.
func TestJournalSequenceRegressionFails(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := `{"seq":2,"thread":{"thread":"a","messages":null}}` + "\n" +
		`{"seq":1,"thread":{"thread":"b","messages":null}}` + "\n"
	if err := os.WriteFile(st.JournalPath(), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.ReadJournal(0)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "journal" {
		t.Fatalf("sequence regression returned %v, want journal CorruptError", err)
	}
}
