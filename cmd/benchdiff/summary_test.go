package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSummaryJoinsSuites renders two trajectory files — one with both
// phases and derived ratios, one before-only — and checks the table:
// suites sorted, benchmarks sorted within each, phases formatted as
// durations, missing cells dashed, and the derived-ratio section present.
func TestRunSummaryJoinsSuites(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	serve := write("BENCH_serve.json", `{
		"description": "serve",
		"benchmarks": {
			"ServeRank":    {"before": {"ns_per_op": 1500000, "samples": 3}, "after": {"ns_per_op": 1000000, "p99_ns": 2500000, "samples": 3}, "speedup": 1.5},
			"ServeRankObs": {"after": {"ns_per_op": 1020000, "samples": 3}}
		},
		"overheads": {"ServeRank": 0.02}
	}`)
	matcher := write("BENCH_matcher.json", `{
		"description": "matcher",
		"benchmarks": {"Rank": {"before": {"ns_per_op": 42000, "samples": 5}}}
	}`)

	var out strings.Builder
	if err := runSummary([]string{serve, matcher}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "suite") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// matcher sorts before serve; ServeRank before ServeRankObs.
	var rows []string
	for _, l := range lines[1:] {
		if f := strings.Fields(l); len(f) >= 2 {
			rows = append(rows, f[0]+" "+f[1])
		}
		if strings.TrimSpace(l) == "" {
			break // derived-ratio section follows
		}
	}
	wantRows := []string{"matcher Rank", "serve ServeRank", "serve ServeRankObs"}
	if strings.Join(rows, ",") != strings.Join(wantRows, ",") {
		t.Fatalf("rows %v, want %v\n%s", rows, wantRows, got)
	}
	for _, want := range []string{
		"1.5ms",    // ServeRank before, as a duration
		"1ms",      // ServeRank after
		"1.50x",    // speedup
		"2.5ms",    // p99 from the after phase
		"42µs",     // matcher before
		"overhead", // derived section
		"+2.0%",    // overhead formatting
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary lacks %q:\n%s", want, got)
		}
	}
	// Before-only rows leave after and speedup dashed.
	for _, l := range lines {
		if strings.HasPrefix(l, "matcher") && strings.Count(l, "-") < 2 {
			t.Fatalf("matcher row should dash missing phases: %q", l)
		}
	}
}

// TestRunSummarySkipsUnreadable: a corrupt file is skipped with a stderr
// note; all-corrupt input is an error.
func TestRunSummarySkipsUnreadable(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "BENCH_ok.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":{"X":{"before":{"ns_per_op":100,"samples":1}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runSummary([]string{bad, good}, &out); err != nil {
		t.Fatalf("one good file should succeed: %v", err)
	}
	found := false
	for _, l := range strings.Split(out.String(), "\n") {
		if f := strings.Fields(l); len(f) >= 3 && f[0] == "ok" && f[1] == "X" && f[2] == "100ns" {
			found = true
		}
	}
	if !found {
		t.Fatalf("good suite missing: %s", out.String())
	}
	if err := runSummary([]string{bad}, &out); err == nil {
		t.Fatal("all-unreadable input should error")
	}
}
