package obs

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestManifestRoundTrip writes a populated manifest and reads it back.
func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs").Inc()

	m := NewManifest("testtool")
	m.Config = map[string]any{"scale": 0.5}
	m.AddSeed("world", 42)
	m.AddSeed("split", 7)
	m.Datasets = append(m.Datasets, DatasetDigest{
		Name: "reddit", Aliases: 10, Messages: 100, SHA256: "abc",
	})
	m.Stages = []StageSummary{{Name: "polish", Count: 1, DurNS: 5, Items: 10}}
	m.Metrics = r.Snapshot()
	m.AddResult("tab1", "rendered table")

	if m.GoVersion == "" || m.CreatedUTC == "" {
		t.Fatal("NewManifest left version or timestamp empty")
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "testtool" || got.CreatedUTC != m.CreatedUTC {
		t.Errorf("tool/timestamp mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Seeds, m.Seeds) {
		t.Errorf("seeds: got %v, want %v", got.Seeds, m.Seeds)
	}
	if !reflect.DeepEqual(got.Datasets, m.Datasets) {
		t.Errorf("datasets: got %v, want %v", got.Datasets, m.Datasets)
	}
	if !reflect.DeepEqual(got.Stages, m.Stages) {
		t.Errorf("stages: got %v, want %v", got.Stages, m.Stages)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Name != "runs_total" || got.Metrics[0].Series[0].Value != 1 {
		t.Errorf("metrics did not survive the round trip: %+v", got.Metrics)
	}
	if got.Results["tab1"] != "rendered table" {
		t.Errorf("results: %v", got.Results)
	}
}

// TestReadManifestErrors covers the missing-file and bad-JSON paths.
func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("expected error for a missing manifest")
	}
}
