package reqtrace

import (
	"sort"
	"sync"
	"time"
)

// Window estimates quantiles over a rolling time window using a ring of
// time slices, each holding a bounded reservoir of observations. The
// window "forgets" by slice: when the clock enters a new slice epoch, the
// oldest slice's reservoir is discarded wholesale, so a latency spike
// ages out of the p99 within one window length instead of polluting a
// process-lifetime histogram forever.
//
// Per-slice reservoirs keep memory bounded under load: once a slice has
// Cap observations, new arrivals replace uniformly random slots
// (classic reservoir sampling), so the slice stays an unbiased sample of
// its interval. All times are injected — the Window never reads a clock.
type Window struct {
	mu     sync.Mutex
	slice  time.Duration
	slices []windowSlice
	capN   int
	rng    uint64
}

type windowSlice struct {
	epoch int64 // now.UnixNano() / slice duration; identifies the interval
	seen  int   // observations offered to this slice
	vals  []float64
}

// NewWindow builds a quantile window covering the given duration split
// into slices reservoirs of cap observations each. Panics on
// non-positive arguments — window shape is a programming contract.
func NewWindow(window time.Duration, slices, capacity int, seed uint64) *Window {
	if window <= 0 || slices <= 0 || capacity <= 0 {
		panic("reqtrace: NewWindow needs positive window, slices, and capacity")
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	w := &Window{
		slice:  window / time.Duration(slices),
		slices: make([]windowSlice, slices),
		capN:   capacity,
		rng:    seed,
	}
	for i := range w.slices {
		w.slices[i].epoch = -1
		w.slices[i].vals = make([]float64, 0, capacity)
	}
	return w
}

// Observe records one value at the injected time now.
func (w *Window) Observe(now time.Time, v float64) {
	epoch := now.UnixNano() / int64(w.slice)
	w.mu.Lock()
	defer w.mu.Unlock()
	s := &w.slices[epoch%int64(len(w.slices))]
	if s.epoch != epoch {
		s.epoch = epoch
		s.seen = 0
		s.vals = s.vals[:0]
	}
	s.seen++
	if len(s.vals) < w.capN {
		s.vals = append(s.vals, v)
		return
	}
	if j := int(w.rand64() % uint64(s.seen)); j < w.capN {
		s.vals[j] = v
	}
}

// Quantile returns the q-quantile (nearest-rank, q in [0, 1]) over the
// observations still inside the window at the injected time now. Returns
// 0 when the window is empty — gauges read a quiet server as zero, not
// NaN.
func (w *Window) Quantile(now time.Time, q float64) float64 {
	epoch := now.UnixNano() / int64(w.slice)
	oldest := epoch - int64(len(w.slices)) + 1
	w.mu.Lock()
	var all []float64
	for i := range w.slices {
		if s := &w.slices[i]; s.epoch >= oldest && s.epoch <= epoch {
			all = append(all, s.vals...)
		}
	}
	w.mu.Unlock()
	if len(all) == 0 {
		return 0
	}
	sort.Float64s(all)
	if q <= 0 {
		return all[0]
	}
	idx := int(q*float64(len(all))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(all) {
		idx = len(all) - 1
	}
	return all[idx]
}

// rand64 advances the window's splitmix64 state; callers hold w.mu.
func (w *Window) rand64() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}
