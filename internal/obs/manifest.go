package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Manifest is the per-run audit artifact (run.json): everything needed to
// say what a run computed and whether another machine reproduced it. The
// deterministic fields — config, seeds, dataset digests, metric snapshot,
// results — must match bit-for-bit across reruns of the same inputs;
// CreatedUTC and the stage durations are the only run-specific values.
type Manifest struct {
	// Tool names the command that produced the run.
	Tool string `json:"tool"`
	// GoVersion is the toolchain the run was built with.
	GoVersion string `json:"go_version"`
	// CreatedUTC stamps the run (RFC 3339, UTC).
	CreatedUTC string `json:"created_utc"`
	// Config echoes the run's full configuration struct.
	Config any `json:"config,omitempty"`
	// Seeds lists every RNG seed the run consumed.
	Seeds map[string]int64 `json:"seeds,omitempty"`
	// Datasets digests every input/derived dataset.
	Datasets []DatasetDigest `json:"datasets,omitempty"`
	// Stages summarises the span forest by stage name.
	Stages []StageSummary `json:"stages,omitempty"`
	// Metrics is the final registry snapshot (count-derived values only).
	Metrics []FamilySnapshot `json:"metrics,omitempty"`
	// Results carries the rendered final numbers, keyed by experiment id.
	Results map[string]string `json:"results,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamped now.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		// The manifest records when the run happened; the timestamp never
		// feeds back into pipeline output (internal/obs is the sanctioned
		// wallclock call-site set).
		CreatedUTC: time.Now().UTC().Format(time.RFC3339),
	}
}

// DatasetDigest pins one dataset: its shape and a SHA-256 over its
// canonical JSONL serialisation, so "same corpus" is checkable across
// machines.
type DatasetDigest struct {
	Name     string `json:"name"`
	Aliases  int    `json:"aliases"`
	Messages int    `json:"messages"`
	SHA256   string `json:"sha256"`
}

// AddSeed records one named seed.
func (m *Manifest) AddSeed(name string, seed int64) {
	if m.Seeds == nil {
		m.Seeds = make(map[string]int64)
	}
	m.Seeds[name] = seed
}

// AddResult records one experiment's rendered output.
func (m *Manifest) AddResult(id, rendered string) {
	if m.Results == nil {
		m.Results = make(map[string]string)
	}
	m.Results[id] = rendered
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return &m, nil
}
