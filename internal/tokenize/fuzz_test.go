package tokenize

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize hammers the hand-written scanner with arbitrary input and
// checks its structural invariants: every token is a non-empty substring of
// the input at its recorded offset, offsets strictly increase, kinds are
// valid, and the helper passes (Words, StripEmoji, StripPGP) neither panic
// nor violate their postconditions.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"plain words only",
		"Don't re-tokenize e-mail addresses like bob@example.com, ever.",
		"visit https://www.reddit.com/r/test?x=1) or www.example.onion now",
		"prices: 1,000.50 at 12:30 vs 3.14",
		"emoji \U0001F600\U0001F3F4 mixed ❤️ text",
		"-----BEGIN PGP PUBLIC KEY BLOCK-----\nABCDEF\n-----END PGP PUBLIC KEY BLOCK-----\ntrailing",
		"-----BEGIN PGP MESSAGE-----\ntruncated mid key",
		"unicode wörds größer łódź 東京 привет",
		"weird..dots...everywhere and trailing' apostrophes'",
		"\x00\xff\xfe invalid \x80 utf8 bytes",
		"ftp://host/path, (https://a.b)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		prev := -1
		for i, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("token %d is empty", i)
			}
			if tok.Pos < 0 || tok.Pos+len(tok.Text) > len(text) {
				t.Fatalf("token %d out of range: pos=%d len=%d text-len=%d", i, tok.Pos, len(tok.Text), len(text))
			}
			if text[tok.Pos:tok.Pos+len(tok.Text)] != tok.Text {
				t.Fatalf("token %d is not the substring at its Pos", i)
			}
			if tok.Pos <= prev {
				t.Fatalf("token %d does not advance: pos=%d prev=%d", i, tok.Pos, prev)
			}
			prev = tok.Pos
			if tok.Kind < KindWord || tok.Kind > KindEmoji {
				t.Fatalf("token %d has invalid kind %d", i, tok.Kind)
			}
		}

		words := Words(text)
		for i, w := range words {
			if w != strings.ToLower(w) {
				t.Fatalf("word %d not lowercased: %q", i, w)
			}
		}

		stripped := StripEmoji(text)
		if strings.ContainsFunc(stripped, IsEmoji) {
			t.Fatal("StripEmoji left an emoji rune behind")
		}
		if utf8.ValidString(text) && !utf8.ValidString(stripped) {
			t.Fatal("StripEmoji corrupted valid UTF-8")
		}

		depgp := StripPGP(text)
		if ContainsPGP(depgp) {
			t.Fatal("StripPGP left an armored block delimiter behind")
		}
		// Stripping must converge: a second pass is a no-op.
		if again := StripPGP(depgp); again != depgp {
			t.Fatal("StripPGP is not idempotent")
		}
	})
}
