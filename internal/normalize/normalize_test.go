package normalize

import (
	"strings"
	"testing"
	"time"

	"darklight/internal/forum"
)

var t0 = time.Date(2017, 5, 10, 12, 0, 0, 0, time.UTC)

func dataset(aliases ...forum.Alias) *forum.Dataset {
	d := forum.NewDataset("Test", forum.PlatformReddit)
	for _, a := range aliases {
		d.Add(a)
	}
	return d
}

func alias(name string, bodies ...string) forum.Alias {
	a := forum.Alias{Name: name}
	for i, b := range bodies {
		a.Messages = append(a.Messages, forum.Message{
			ID: name + "-" + string(rune('a'+i)), Author: name, Body: b,
			PostedAt: t0.Add(time.Duration(i) * time.Hour),
		})
	}
	return a
}

const english = "this is a perfectly normal english sentence about shipping and quality with plenty of different words"

func TestDropBots(t *testing.T) {
	d := dataset(alias("tipbot", english), alias("alice", english))
	r := &Report{}
	dropBots(d, r)
	if d.Len() != 1 || d.Aliases[0].Name != "alice" {
		t.Errorf("kept %v", d.Names())
	}
	if r.Steps[0].AliasesRemoved != 1 {
		t.Error("report must count the removed bot")
	}
}

func TestDedupMessages(t *testing.T) {
	a := alias("v", "same exact showcase message", "same exact showcase message", "a different message entirely")
	// Make the duplicate earlier so dedup must keep the earliest timestamp.
	a.Messages[1].PostedAt = t0.Add(-time.Hour)
	d := dataset(a)
	r := &Report{}
	dedupMessages(d, r)
	if len(d.Aliases[0].Messages) != 2 {
		t.Fatalf("kept %d messages", len(d.Aliases[0].Messages))
	}
	if !d.Aliases[0].Messages[0].PostedAt.Equal(t0.Add(-time.Hour)) {
		t.Error("dedup must keep the earliest posting time")
	}
}

func TestNormalizeURLStep(t *testing.T) {
	tests := []struct{ in, want string }{
		{"https://www.reddit.com/r/x/comments/1", "reddit.com"},
		{"http://lchudifyeqm4ldjj.onion/forum?x=1", "lchudifyeqm4ldjj.onion"},
		{"ftp://Files.Example.ORG/pub", "files.example.org"},
	}
	for _, tt := range tests {
		if got := NormalizeURL(tt.in); got != tt.want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	d := dataset(alias("a", "check https://www.reddit.com/r/x/comments/1 it rocks"))
	normalizeURLs(d, &Report{})
	if got := d.Aliases[0].Messages[0].Body; got != "check reddit.com it rocks" {
		t.Errorf("body = %q", got)
	}
}

func TestStripQuotesStep(t *testing.T) {
	tests := []struct{ name, in, want string }{
		{"reddit quote lines", "> quoted stuff\nmy own reply here", "my own reply here"},
		{"bb quote", "[quote=bob]their words[/quote] my words", "my words"},
		{"nested bb", "[quote][quote]deep[/quote]outer[/quote] mine", "mine"},
		{"no quotes", "plain text", "plain text"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StripQuoteText(tt.in); got != tt.want {
				t.Errorf("StripQuoteText = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestStripEditMarks(t *testing.T) {
	d := dataset(alias("bob", "my real content here\nEdit by bob: fixed typo"))
	stripEditMarks(d, &Report{})
	got := d.Aliases[0].Messages[0].Body
	if strings.Contains(got, "Edit") || strings.Contains(got, "bob:") {
		t.Errorf("edit mark survived: %q", got)
	}
	if !strings.Contains(got, "my real content here") {
		t.Errorf("content lost: %q", got)
	}
}

func TestTagMail(t *testing.T) {
	d := dataset(alias("a", "contact me at vendor.supreme+orders@proton-mail.com for info"))
	tagMail(d, &Report{})
	got := d.Aliases[0].Messages[0].Body
	if !strings.Contains(got, MailTag) || strings.Contains(got, "@") {
		t.Errorf("mail not tagged: %q", got)
	}
}

func TestStripPGPStep(t *testing.T) {
	body := "verify my key\n-----BEGIN PGP PUBLIC KEY BLOCK-----\nAAA\n-----END PGP PUBLIC KEY BLOCK-----\nthanks"
	d := dataset(alias("a", body))
	stripPGP(d, &Report{})
	got := d.Aliases[0].Messages[0].Body
	if strings.Contains(got, "PGP") {
		t.Errorf("PGP block survived: %q", got)
	}
}

func TestDropLongWords(t *testing.T) {
	art := strings.Repeat("=", 50)
	d := dataset(alias("a", "before "+art+" after"))
	dropLongWords(d, &Report{})
	got := d.Aliases[0].Messages[0].Body
	if strings.Contains(got, "=") {
		t.Errorf("long token survived: %q", got)
	}
	if got != "before after" {
		t.Errorf("body = %q", got)
	}
}

func TestDropShortAndSpam(t *testing.T) {
	d := dataset(alias("a",
		"short msg",                    // < 10 words
		english,                        // fine
		strings.Repeat("buy now ", 10), // ratio 2/20 = 0.1 → spam
	))
	r := &Report{}
	dropShort(d, r)
	dropSpam(d, r)
	if len(d.Aliases[0].Messages) != 1 {
		t.Fatalf("kept %d messages", len(d.Aliases[0].Messages))
	}
	if d.Aliases[0].Messages[0].Body != english {
		t.Error("wrong message survived")
	}
}

func TestEnglishOnly(t *testing.T) {
	d := dataset(alias("a",
		english,
		"la calidad era buena pero el envío tardó demasiado tiempo esta vez la verdad",
	))
	p := NewPipeline()
	p.englishOnly(d, &Report{})
	if len(d.Aliases[0].Messages) != 1 {
		t.Fatalf("kept %d messages", len(d.Aliases[0].Messages))
	}
	if d.Aliases[0].Messages[0].Body != english {
		t.Error("wrong message survived")
	}
}

func TestFullPipelineIntegration(t *testing.T) {
	raw := dataset(
		alias("modbot", english, english),
		alias("carol",
			"> someone else wrote this\n"+english+" 😂 see https://www.example.com/thing now",
			english+" and more words to be safe",
			"ok", // too short → dropped
		),
	)
	p := NewPipeline()
	rep := p.Run(raw)
	if raw.Len() != 1 {
		t.Fatalf("aliases after pipeline: %v", raw.Names())
	}
	carol := raw.Aliases[0]
	if len(carol.Messages) != 2 {
		t.Fatalf("carol kept %d messages", len(carol.Messages))
	}
	for _, m := range carol.Messages {
		if strings.Contains(m.Body, ">") || strings.Contains(m.Body, "😂") ||
			strings.Contains(m.Body, "https://") {
			t.Errorf("dirty body survived: %q", m.Body)
		}
	}
	if len(rep.Steps) != 13 { // 12 steps + final empty-alias sweep
		t.Errorf("report has %d steps", len(rep.Steps))
	}
	if !strings.Contains(rep.String(), "drop-bots") {
		t.Error("report rendering broken")
	}
}

func TestPipelineStepOrder(t *testing.T) {
	steps := NewPipeline().Steps()
	if len(steps) != 12 {
		t.Fatalf("pipeline has %d steps", len(steps))
	}
	// Mutating steps must precede the filters that measure the text.
	idx := map[string]int{}
	for i, s := range steps {
		idx[s] = i
	}
	for _, mutator := range []string{"strip-quotes", "strip-pgp", "normalize-urls", "strip-emoji"} {
		for _, filter := range []string{"drop-short", "drop-spam", "english-only"} {
			if idx[mutator] > idx[filter] {
				t.Errorf("%s must run before %s", mutator, filter)
			}
		}
	}
}

func TestEmptyDatasetPipeline(t *testing.T) {
	d := forum.NewDataset("Empty", forum.PlatformReddit)
	rep := NewPipeline().Run(d)
	if d.Len() != 0 || rep == nil {
		t.Error("empty dataset must pass through")
	}
}
