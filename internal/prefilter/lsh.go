package prefilter

import "slices"

// Banded MinHash over gram feature-id sets.
//
// Each subject's gram block is reduced to Bands*Rows MinHash values; the
// Rows values of a band fold into one 64-bit bucket key. A query is a
// candidate match for every subject sharing at least one band bucket, so
// the candidate probability follows the usual s-curve 1-(1-s^r)^b in the
// Jaccard similarity s of the two gram sets.
//
// Determinism: the hash family is derived from the seed by iterating
// splitmix64 (no math/rand, no time), subjects are inserted in ascending
// id order, and Candidates sorts its union before returning, so the same
// query against the same index yields the same candidates on every run.

// splitmix64 is the standard 64-bit finalizer/mixer (public domain,
// Vigna); one application fully diffuses a feature id.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFamily is n seeded hash functions over feature ids.
type hashFamily struct {
	seeds []uint64
}

func newHashFamily(n int, seed uint64) hashFamily {
	seeds := make([]uint64, n)
	s := seed
	for i := range seeds {
		s = splitmix64(s)
		seeds[i] = s
	}
	return hashFamily{seeds: seeds}
}

func (f hashFamily) hash(i int, x uint32) uint64 {
	return splitmix64(f.seeds[i] ^ uint64(x))
}

// signature writes the MinHash signature of a non-empty feature set into
// sig (length len(f.seeds)).
func (f hashFamily) signature(set []uint32, sig []uint64) {
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, x := range set {
		for i := range sig {
			if h := f.hash(i, x); h < sig[i] {
				sig[i] = h
			}
		}
	}
}

// bandKey folds one band's Rows minima into a bucket key. The band index
// participates so identical minima in different bands cannot alias when a
// caller compares keys across bands.
func bandKey(band int, mins []uint64) uint64 {
	k := splitmix64(uint64(band) ^ 0x517cc1b727220a95)
	for _, m := range mins {
		k = splitmix64(k ^ m)
	}
	return k
}

// BandSignature computes the per-band bucket keys of one feature set under
// one operating point — the unit FuzzBandHash pins deterministic. An empty
// set has no signature and returns nil (such subjects are never bucketed).
func BandSignature(set []uint32, p LSHParams) []uint64 {
	p = p.WithDefaults()
	if len(set) == 0 {
		return nil
	}
	fam := newHashFamily(p.Bands*p.Rows, p.Seed)
	sig := make([]uint64, p.Bands*p.Rows)
	fam.signature(set, sig)
	keys := make([]uint64, p.Bands)
	for b := 0; b < p.Bands; b++ {
		keys[b] = bandKey(b, sig[b*p.Rows:(b+1)*p.Rows])
	}
	return keys
}

// LSH is one immutable banded-MinHash index over n subjects. Build once,
// query concurrently.
type LSH struct {
	p   LSHParams
	fam hashFamily
	// buckets[band][key] lists subject ids in ascending order (subjects
	// are inserted in id order and never reordered).
	buckets []map[uint64][]int32
}

// BuildLSH indexes subjects 0..n-1; set returns each subject's gram
// feature ids (subjects with empty sets are skipped — they can never be
// LSH candidates, matching their zero Jaccard against any query).
func BuildLSH(n int, set func(i int) []uint32, p LSHParams) *LSH {
	p = p.WithDefaults()
	l := &LSH{
		p:       p,
		fam:     newHashFamily(p.Bands*p.Rows, p.Seed),
		buckets: make([]map[uint64][]int32, p.Bands),
	}
	for b := range l.buckets {
		l.buckets[b] = make(map[uint64][]int32)
	}
	sig := make([]uint64, p.Bands*p.Rows)
	for i := 0; i < n; i++ {
		s := set(i)
		if len(s) == 0 {
			continue
		}
		l.fam.signature(s, sig)
		for b := 0; b < p.Bands; b++ {
			key := bandKey(b, sig[b*p.Rows:(b+1)*p.Rows])
			l.buckets[b][key] = append(l.buckets[b][key], int32(i))
		}
	}
	return l
}

// Params reports the operating point the index was built at.
func (l *LSH) Params() LSHParams { return l.p }

// Candidates returns the subjects sharing at least one band bucket with
// the query set, ascending and deduplicated. buf supplies reusable
// capacity. An empty query set has no candidates.
func (l *LSH) Candidates(set []uint32, buf []int32) []int32 {
	out := buf[:0]
	if len(set) == 0 {
		return out
	}
	sig := make([]uint64, l.p.Bands*l.p.Rows)
	l.fam.signature(set, sig)
	for b := 0; b < l.p.Bands; b++ {
		key := bandKey(b, sig[b*l.p.Rows:(b+1)*l.p.Rows])
		out = append(out, l.buckets[b][key]...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// LSHBandTable is one band's bucket map in canonical CSR form: Keys sorted
// ascending, IDs[Offsets[i]:Offsets[i+1]] the subject ids of Keys[i].
type LSHBandTable struct {
	Keys    []uint64
	Offsets []uint32 // len(Keys)+1
	IDs     []int32
}

// LSHTable is a frozen LSH index as value types. Two indexes built from
// the same subjects at the same operating point emit identical tables
// regardless of map layout, so the serialised form is deterministic.
type LSHTable struct {
	Params LSHParams
	Bands  []LSHBandTable
}

// Table snapshots the index in canonical form.
func (l *LSH) Table() LSHTable {
	t := LSHTable{Params: l.p, Bands: make([]LSHBandTable, len(l.buckets))}
	for b, m := range l.buckets {
		keys := make([]uint64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		total := 0
		for _, ids := range m {
			total += len(ids)
		}
		bt := LSHBandTable{
			Keys:    keys,
			Offsets: make([]uint32, len(keys)+1),
			IDs:     make([]int32, 0, total),
		}
		for i, k := range keys {
			bt.Offsets[i] = uint32(len(bt.IDs))
			bt.IDs = append(bt.IDs, m[k]...)
		}
		bt.Offsets[len(keys)] = uint32(len(bt.IDs))
		t.Bands[b] = bt
	}
	return t
}

// LSHFromTable reconstructs an index from a snapshot; Candidates output is
// identical to the index the table was taken from.
func LSHFromTable(t LSHTable) *LSH {
	p := t.Params.WithDefaults()
	l := &LSH{
		p:       p,
		fam:     newHashFamily(p.Bands*p.Rows, p.Seed),
		buckets: make([]map[uint64][]int32, len(t.Bands)),
	}
	for b, bt := range t.Bands {
		m := make(map[uint64][]int32, len(bt.Keys))
		for i, k := range bt.Keys {
			m[k] = slices.Clone(bt.IDs[bt.Offsets[i]:bt.Offsets[i+1]])
		}
		l.buckets[b] = m
	}
	return l
}
