// Fixture for the atomicmix pass, first file: the blessed sync/atomic
// call sites. The mixed accesses live in b.go — the check is
// package-wide, so a plain access in another file must still be caught.
package serve

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	// typed is safe by construction: its plain methods are the atomic
	// API, so the pass never tracks it.
	typed atomic.Int64
}

func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

var total int64

func bump() {
	atomic.AddInt64(&total, 1)
}

func (c *counters) typedOK() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}
