package darklight

// The ingest-path benchmarks are the perf-regression trajectory for
// everything upstream of a query: polishing (§III-C), vocabulary
// construction (§IV-A), and matcher/index construction (§IV-C).
// cmd/benchdiff -suite ingest runs exactly these four and records
// BENCH_ingest.json; keep their names and shapes stable so before/after
// numbers stay comparable across PRs.
//
// The benchmarks share one raw generated world (scale 0.01, fixed seed).
// Polish mutates message bodies in place, so polishing benchmarks deep-clone
// the raw dataset outside the timer.

import (
	"context"
	"sync"
	"testing"

	"darklight/internal/attribution"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/obs"
)

var (
	ingestOnce sync.Once
	ingestRaw  *Dataset // raw (un-polished) Reddit at scale 0.01
	ingestErr  error
)

func ingestRawReddit(b *testing.B) *Dataset {
	b.Helper()
	ingestOnce.Do(func() {
		var world *World
		world, ingestErr = GenerateWorld(WorldConfig{Seed: 7, Scale: 0.01})
		if ingestErr == nil {
			ingestRaw = world.Reddit
		}
	})
	if ingestErr != nil {
		b.Fatal(ingestErr)
	}
	return ingestRaw
}

// cloneDataset deep-copies a dataset down to the message level so polishing
// one copy cannot leak into the next iteration.
func cloneDataset(d *Dataset) *Dataset {
	out := forum.NewDataset(d.Name, d.Platform)
	out.Aliases = make([]Alias, len(d.Aliases))
	for i := range d.Aliases {
		a := d.Aliases[i]
		a.Messages = append([]Message(nil), a.Messages...)
		out.Aliases[i] = a
	}
	return out
}

// ingestSubjects builds the polished, refined subject set the vocabulary and
// index benchmarks operate on (construction cost excluded from their timers).
func ingestSubjects(b *testing.B) []attribution.Subject {
	b.Helper()
	pipe := NewPipeline()
	d := cloneDataset(ingestRawReddit(b))
	pipe.Polish(d)
	subs, err := pipe.Subjects(pipe.Refine(d))
	if err != nil {
		b.Fatal(err)
	}
	if len(subs) == 0 {
		b.Fatal("ingest benchmarks: no subjects survived refinement")
	}
	return subs
}

// BenchmarkPolish measures the full 12-step §III-C cleaning pipeline over
// the raw corpus.
func BenchmarkPolish(b *testing.B) {
	raw := ingestRawReddit(b)
	pipe := NewPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := cloneDataset(raw)
		b.StartTimer()
		pipe.Polish(d)
	}
}

// BenchmarkVocabBuild measures corpus-statistics accumulation and top-N
// vocabulary selection (§IV-A) over pre-extracted documents, isolating the
// builder from extraction cost.
func BenchmarkVocabBuild(b *testing.B) {
	subs := ingestSubjects(b)
	cfg := features.ReductionConfig()
	docs := make([]*features.Doc, len(subs))
	for i := range subs {
		docs[i] = features.Extract(subs[i].Text, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vb := features.NewVocabBuilder(cfg)
		for _, d := range docs {
			vb.Add(d)
		}
		vb.Build()
	}
}

// BenchmarkIndexBuild measures NewMatcher construction — per-subject
// extraction, vocabulary build, and inverted-index assembly — over the
// refined subject set.
func BenchmarkIndexBuild(b *testing.B) {
	subs := ingestSubjects(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attribution.NewMatcher(subs, attribution.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestEndToEnd measures the whole ingest path: polish → refine →
// subject building → matcher construction. This is the headline number for
// corpus onboarding; the §IV-J batch procedure exists because this cost
// dominates attribution at scale.
func BenchmarkIngestEndToEnd(b *testing.B) {
	raw := ingestRawReddit(b)
	pipe := NewPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := cloneDataset(raw)
		b.StartTimer()
		pipe.Polish(d)
		subs, err := pipe.Subjects(pipe.Refine(d))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attribution.NewMatcher(subs, attribution.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestEndToEndObs is BenchmarkIngestEndToEnd with tracing
// live: each op records polish, vocabulary, and index spans into a fresh
// tracer plus all ingest metrics. cmd/benchdiff -suite obs divides this
// by BenchmarkIngestEndToEnd to guard the telemetry overhead bound.
func BenchmarkIngestEndToEndObs(b *testing.B) {
	raw := ingestRawReddit(b)
	pipe := NewPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := cloneDataset(raw)
		ctx := obs.WithTracer(context.Background(), obs.NewTracer())
		b.StartTimer()
		pipe.PolishContext(ctx, d)
		subs, err := pipe.Subjects(pipe.Refine(d))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attribution.NewMatcherContext(ctx, subs, attribution.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
