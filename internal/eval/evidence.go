package eval

import (
	"sort"

	"darklight/internal/synth"
)

// Verdict is the §V-A manual-inspection outcome for one proposed pair.
type Verdict string

// The four verdict classes of §V-A.
const (
	// VerdictTrue: clear evidence the aliases belong to the same user
	// (self-declared alias, shared unique link or mail address).
	VerdictTrue Verdict = "True"
	// VerdictProbablyTrue: consistent biography without explicit linking
	// evidence (same city + same vendor complaint, same hobbies).
	VerdictProbablyTrue Verdict = "Probably True"
	// VerdictUnclear: no exploitable information on one or both sides.
	VerdictUnclear Verdict = "Unclear"
	// VerdictFalse: the two aliases disclose contradictory information.
	VerdictFalse Verdict = "False"
)

// Inspector simulates the paper's manual pair inspection against the
// generator's ground truth of planted evidence. It never looks at
// GroundTruth.PersonOf — only at what the messages actually revealed —
// so its verdicts behave like a human reading the raw posts.
type Inspector struct {
	truth *synth.GroundTruth
}

// NewInspector wraps the ground truth of a generated world.
func NewInspector(truth *synth.GroundTruth) *Inspector {
	return &Inspector{truth: truth}
}

// Classify inspects one proposed pair of alias keys ("platform/name").
//
// Decision procedure, mirroring §V-A and the examples of §V-C:
//
//  1. Explicit link evidence on either alias that actually connects the two
//     (the planted reference names the other alias / both share the planted
//     link or mail) → True. In ground-truth terms: both aliases belong to
//     one person and at least one side carries link evidence.
//  2. Any contradictory revealed fact (age 20 vs 34, Christian vs Atheist,
//     pro- vs anti-Trump, Poland vs USA) → False.
//  3. Two or more consistent revealed facts — drug preference alone does
//     not count, the paper found it non-discriminative → Probably True.
//  4. Otherwise → Unclear.
func (ins *Inspector) Classify(keyA, keyB string) Verdict {
	t := ins.truth
	samePerson := t.SamePerson(keyA, keyB)
	if samePerson && (len(t.LinkEvidence[keyA]) > 0 || len(t.LinkEvidence[keyB]) > 0) {
		return VerdictTrue
	}

	factsA := t.Revealed[keyA]
	factsB := t.Revealed[keyB]
	consistentKinds := map[synth.FactKind]bool{}
	contradiction := false
	for _, fa := range factsA {
		for _, fb := range factsB {
			switch {
			case synth.Contradicts(fa, fb):
				contradiction = true
			case synth.Consistent(fa, fb):
				consistentKinds[fa.Kind] = true
			}
		}
	}
	if contradiction {
		return VerdictFalse
	}
	delete(consistentKinds, synth.FactDrug) // §V-C: "per se it is not discriminative"
	if len(consistentKinds) >= 2 {
		return VerdictProbablyTrue
	}
	return VerdictUnclear
}

// PairReport is a classified proposed match.
type PairReport struct {
	Unknown   string
	Candidate string
	Score     float64
	Verdict   Verdict
	// Correct is the ground-truth answer (not available to a real analyst;
	// recorded so experiments can measure the inspector itself).
	Correct bool
}

// ClassifyAll inspects every prediction. Keys are built as
// "<platform>/<name>" by the caller-provided key functions.
func (ins *Inspector) ClassifyAll(preds []Prediction, keyOfUnknown, keyOfCandidate func(string) string) []PairReport {
	out := make([]PairReport, 0, len(preds))
	for _, p := range preds {
		ku, kc := keyOfUnknown(p.Unknown), keyOfCandidate(p.Candidate)
		out = append(out, PairReport{
			Unknown:   p.Unknown,
			Candidate: p.Candidate,
			Score:     p.Score,
			Verdict:   ins.Classify(ku, kc),
			Correct:   ins.truth.SamePerson(ku, kc),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// VerdictCounts tallies reports per verdict class — the headline numbers of
// §V-B (7 True / 1 Unclear / 3 False) and §V-C (20/2/20/5).
func VerdictCounts(reports []PairReport) map[Verdict]int {
	out := make(map[Verdict]int, 4)
	for _, r := range reports {
		out[r.Verdict]++
	}
	return out
}
