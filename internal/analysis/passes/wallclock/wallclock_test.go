package wallclock_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "internal/activity", "internal/scraper")
}
