// Command experiments regenerates every table and figure of the paper's
// evaluation on a synthetic world and writes the results to stdout (and
// optionally to a markdown file consumed by EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale 0.12] [-seed 1] [-run tab1,fig3] [-out results.md]
//	            [-manifest run.json] [-trace trace.jsonl] [-obs.addr 127.0.0.1:0]
//
// Experiment ids: tab1..tab6, fig1..fig5, tmgdm, dewhole, profile, batch,
// prefilter.
//
// With -manifest the run writes a run.json audit artifact: configuration,
// seeds, dataset digests, per-stage span summaries, the final metric
// snapshot, and every rendered result. -trace additionally dumps the full
// span forest as JSONL; -obs.addr serves /metrics and /debug/pprof for
// the duration of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darklight/internal/experiments"
	"darklight/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 0.12, "population scale relative to the paper's scrape")
		seed     = flag.Uint64("seed", 1, "world seed")
		only     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		outPath  = flag.String("out", "", "also write results to this markdown file")
		unknowns = flag.Int("unknowns", 0, "cap on alter-ego query sets (0 = default)")
		manifest = flag.String("manifest", "", "write a run.json manifest to this path")
		trace    = flag.String("trace", "", "write the span trace as JSONL to this path")
		obsAddr  = flag.String("obs.addr", "", "serve /metrics and /debug/pprof on this address for the run's duration")
	)
	flag.Parse()

	cfg := experiments.DefaultLabConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	if *unknowns > 0 {
		cfg.MaxUnknowns = *unknowns
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	var out strings.Builder
	emit := func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		out.WriteString(s)
	}

	ctx := context.Background()
	var tracer *obs.Tracer
	if *manifest != "" || *trace != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *obsAddr != "" {
		addr, stop, err := obs.Serve(*obsAddr, obs.Default(), func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		})
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "experiments: observability on http://%s/metrics\n", addr)
	}

	start := time.Now()
	emit("darklight experiment suite — scale %.2f, seed %d, started %s\n\n",
		*scale, *seed, time.Now().Format(time.RFC3339))

	lab, err := experiments.NewLabContext(ctx, cfg)
	if err != nil {
		return err
	}
	emit("lab ready in %s (reddit %d/%d refined, tmg %d/%d, dm %d/%d)\n\n",
		time.Since(start).Round(time.Second),
		lab.Reddit.Len(), lab.RawReddit.Len(),
		lab.TMG.Len(), lab.RawTMG.Len(),
		lab.DM.Len(), lab.RawDM.Len())

	type experiment struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	var crossDark *experiments.CrossForumReport
	list := []experiment{
		{"tab1", func() (fmt.Stringer, error) { return lab.Table1(), nil }},
		{"fig1", func() (fmt.Stringer, error) { return lab.Figure1(), nil }},
		{"tab2", func() (fmt.Stringer, error) { return lab.Table2() }},
		{"tab4", func() (fmt.Stringer, error) { return lab.Table4(), nil }},
		{"tab3", func() (fmt.Stringer, error) { return lab.Table3() }},
		{"fig2", func() (fmt.Stringer, error) { return lab.Figure2() }},
		{"tab5", func() (fmt.Stringer, error) { return lab.Table5() }},
		{"tab6", func() (fmt.Stringer, error) { return lab.Table6() }},
		{"fig5", func() (fmt.Stringer, error) { return lab.Figure5() }},
		{"fig4", func() (fmt.Stringer, error) { return lab.Figure4() }},
		{"fig3", func() (fmt.Stringer, error) { return lab.Figure3() }},
		{"tmgdm", func() (fmt.Stringer, error) { return lab.TMGvsDM() }},
		{"dewhole", func() (fmt.Stringer, error) {
			rep, err := lab.RedditVsDarkWeb()
			crossDark = rep
			return rep, err
		}},
		{"profile", func() (fmt.Stringer, error) {
			if crossDark == nil {
				var err error
				crossDark, err = lab.RedditVsDarkWeb()
				if err != nil {
					return nil, err
				}
			}
			return lab.ProfileBestMatch(crossDark), nil
		}},
		{"batch", func() (fmt.Stringer, error) { return lab.BatchProcedure() }},
		{"prefilter", func() (fmt.Stringer, error) { return lab.Prefilter() }},
	}

	results := make(map[string]string)
	for _, e := range list {
		if !want(e.id) {
			continue
		}
		t0 := time.Now()
		rep, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		emit("===== %s (%s) =====\n", e.id, time.Since(t0).Round(time.Millisecond))
		if rep == nil || (fmt.Stringer)(rep) == nil {
			emit("(no result)\n\n")
			continue
		}
		rendered := rep.String()
		results[e.id] = rendered
		emit("%s\n", rendered)
	}
	emit("total wall clock: %s\n", time.Since(start).Round(time.Second))

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(out.String()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *outPath, err)
		}
	}
	if *manifest != "" {
		man, err := lab.Manifest(tracer)
		if err != nil {
			return err
		}
		for id, rendered := range results {
			man.AddResult(id, rendered)
		}
		if err := man.WriteFile(*manifest); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: manifest written to %s\n", *manifest)
	}
	if *trace != "" {
		if err := writeTrace(*trace, tracer); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: trace written to %s\n", *trace)
	}
	return nil
}

func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		//lint:ignore errdrop the write error is already fatal; the close error cannot add anything
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
