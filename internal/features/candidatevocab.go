package features

import (
	"slices"
	"sync"

	"darklight/internal/sparse"
)

// CandidateVocab is the candidate-set fast path of VocabBuilder +
// Vocabulary: the same top-N-by-corpus-frequency gram selection and
// smoothed IDF, built from id-sorted gram lists with linear merges instead
// of hash maps. Stage 2 rebuilds the vocabulary for every query over only
// ~k documents, and at that scale the map folding, map-backed index, and
// per-gram lookups of the general path dominate the whole rescore; merging
// pre-sorted lists removes all of it.
//
// The produced vectors are bit-identical to what Vocabulary.VectorizeGrams
// yields for the equivalent Docs: selection and index assignment follow
// topN's exact (frequency desc, gram id asc) order, so even the
// summation order of downstream dot products is unchanged.
type CandidateVocab struct {
	numWords int
	numChars int
	// wordByID / charByID hold the selected grams sorted by gram id, each
	// carrying its assigned feature index and IDF weight, so vectorization
	// is a two-pointer merge against a doc's sorted gram list.
	wordByID []cvEntry
	charByID []cvEntry
}

type cvEntry struct {
	id    GramID
	index uint32
	idf   float64
}

// aggEntry is one merged gram: total corpus frequency and document
// frequency across the candidate docs. Aggregate lists are id-sorted.
// int32 keeps the entry at 16 bytes — the merge is memory-bound.
type aggEntry struct {
	id   GramID
	freq int32
	df   int32
}

// aggBuffers is the ping-pong scratch of one vocabulary build, pooled so
// per-query builds stop allocating one slice per merge level.
type aggBuffers struct {
	a, b []aggEntry
}

var aggPool = sync.Pool{New: func() any { return new(aggBuffers) }}

func resizeAgg(s []aggEntry, n int) []aggEntry {
	if cap(s) < n {
		return make([]aggEntry, 0, n)
	}
	return s[:0]
}

// BuildCandidateVocab selects the vocabulary over the given documents
// under cfg's gram budgets. Equivalent to folding the same documents
// through a VocabBuilder and freezing it.
func BuildCandidateVocab(cfg Config, docs []*SortedDoc) *CandidateVocab {
	wordLists := make([][]GramEntry, len(docs))
	charLists := make([][]GramEntry, len(docs))
	for i, d := range docs {
		wordLists[i] = d.WordGrams
		charLists[i] = d.CharGrams
	}
	bufs := aggPool.Get().(*aggBuffers)
	words := selectGrams(mergeGramLists(wordLists, bufs), cfg.MaxWordGrams)
	chars := selectGrams(mergeGramLists(charLists, bufs), cfg.MaxCharGrams)
	aggPool.Put(bufs)

	v := &CandidateVocab{
		numWords: len(words),
		numChars: len(chars),
		wordByID: make([]cvEntry, len(words)),
		charByID: make([]cvEntry, len(chars)),
	}
	n := float64(len(docs))
	for i, e := range words {
		v.wordByID[i] = cvEntry{id: e.id, index: uint32(i), idf: idf(n, float64(e.df))}
	}
	base := uint32(len(words))
	for i, e := range chars {
		v.charByID[i] = cvEntry{id: e.id, index: base + uint32(i), idf: idf(n, float64(e.df))}
	}
	sortCvByID(v.wordByID)
	sortCvByID(v.charByID)
	return v
}

// NumWordGrams returns the size of the word-gram section.
func (v *CandidateVocab) NumWordGrams() int { return v.numWords }

// NumCharGrams returns the size of the char-gram section.
func (v *CandidateVocab) NumCharGrams() int { return v.numChars }

// VectorizeGrams mirrors Vocabulary.VectorizeGrams over a SortedDoc:
// two-pointer merges replace the per-gram map lookups.
func (v *CandidateVocab) VectorizeGrams(d *SortedDoc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams)
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	mergeVectorize(&vec, d.WordGrams, v.wordByID, float64(max(d.WordTotal, 1)))
	mergeVectorize(&vec, d.CharGrams, v.charByID, float64(max(d.CharTotal, 1)))
	vec.Sort()
	return vec
}

func mergeVectorize(vec *sparse.Vector, doc []GramEntry, vocab []cvEntry, den float64) {
	i, j := 0, 0
	for i < len(doc) && j < len(vocab) {
		switch {
		case doc[i].ID < vocab[j].id:
			i++
		case doc[i].ID > vocab[j].id:
			j++
		default:
			vec.Idx = append(vec.Idx, vocab[j].index)
			vec.Val = append(vec.Val, float64(doc[i].Count)/den*vocab[j].idf)
			i++
			j++
		}
	}
}

// mergeGramLists folds the per-doc id-sorted gram lists into one id-sorted
// aggregate by pairwise tournament merging: O(total · log k) comparisons,
// no hashing. Levels ping-pong between the two scratch buffers; the
// returned slice aliases one of them and is only valid until the buffers
// are reused.
func mergeGramLists(lists [][]GramEntry, bufs *aggBuffers) []aggEntry {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	src := resizeAgg(bufs.a, total)
	dst := resizeAgg(bufs.b, total)
	// runs holds the boundaries of the per-doc (later per-merge) sorted
	// runs laid out contiguously in src.
	runs := make([]int, 0, len(lists)+1)
	runs = append(runs, 0)
	for _, l := range lists {
		for _, e := range l {
			src = append(src, aggEntry{id: e.ID, freq: e.Count, df: 1})
		}
		if len(src) > runs[len(runs)-1] {
			runs = append(runs, len(src))
		}
	}
	next := make([]int, 0, len(runs)/2+2)
	for len(runs) > 2 {
		dst = dst[:0]
		next = next[:0]
		next = append(next, 0)
		i := 0
		for ; i+2 < len(runs); i += 2 {
			dst = mergeAggInto(dst, src[runs[i]:runs[i+1]], src[runs[i+1]:runs[i+2]])
			next = append(next, len(dst))
		}
		if i+1 < len(runs) {
			dst = append(dst, src[runs[i]:runs[i+1]]...)
			next = append(next, len(dst))
		}
		src, dst = dst, src
		runs, next = next, runs
	}
	bufs.a, bufs.b = src[:cap(src)][:0], dst[:cap(dst)][:0]
	return src[runs[0]:runs[1]]
}

func mergeAggInto(out, a, b []aggEntry) []aggEntry {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].id < b[j].id:
			out = append(out, a[i])
			i++
		case a[i].id > b[j].id:
			out = append(out, b[j])
			j++
		default:
			out = append(out, aggEntry{id: a[i].id, freq: a[i].freq + b[j].freq, df: a[i].df + b[j].df})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// selectGrams returns the top-n entries in topN's exact order — descending
// frequency, ties by ascending gram id — so index assignment matches the
// map-based path. Negative n keeps everything, like topN.
func selectGrams(agg []aggEntry, n int) []aggEntry {
	if n < 0 || len(agg) <= n {
		out := slices.Clone(agg)
		sortAggByRank(out)
		return out
	}
	if n == 0 {
		return nil
	}
	// Bounded heap selection with the worst kept entry at the root, then a
	// final sort of the n survivors: O(len · log n) instead of a full sort.
	h := make([]aggEntry, 0, n)
	for _, e := range agg {
		if len(h) < n {
			h = append(h, e)
			siftUpAgg(h, len(h)-1)
		} else if aggRankLess(e, h[0]) {
			h[0] = e
			siftDownAgg(h, 0)
		}
	}
	sortAggByRank(h)
	return h
}

// aggRankLess orders by descending frequency, ties by ascending gram id —
// a strict total order because merged gram ids are unique.
func aggRankLess(a, b aggEntry) bool {
	if a.freq != b.freq {
		return a.freq > b.freq
	}
	return a.id < b.id
}

func sortAggByRank(agg []aggEntry) {
	slices.SortFunc(agg, func(a, b aggEntry) int {
		switch {
		case a.id == b.id:
			return 0
		case aggRankLess(a, b):
			return -1
		default:
			return 1
		}
	})
}

func sortCvByID(es []cvEntry) {
	slices.SortFunc(es, func(a, b cvEntry) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
}

// siftUpAgg / siftDownAgg maintain a min-heap whose root is the WORST kept
// entry under aggRankLess (so the next eviction is O(log n)).
func aggWorse(h []aggEntry, i, j int) bool {
	return aggRankLess(h[j], h[i])
}

func siftUpAgg(h []aggEntry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !aggWorse(h, i, p) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDownAgg(h []aggEntry, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		w := l
		if r := l + 1; r < n && aggWorse(h, r, l) {
			w = r
		}
		if !aggWorse(h, w, i) {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}
