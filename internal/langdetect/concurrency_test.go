package langdetect

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

var concurrencyTexts = []string{
	"this is a perfectly normal english sentence about shipping and quality",
	"la calidad era buena pero el envío tardó demasiado tiempo esta vez",
	"die Qualität war gut aber der Versand hat diesmal zu lange gedauert",
	"la qualité était bonne mais la livraison a pris trop de temps",
	"a qualidade era boa mas o envio demorou demasiado tempo desta vez",
	"de kwaliteit was goed maar de verzending duurde deze keer te lang",
	"calitatea a fost bună dar livrarea a durat prea mult de data asta",
	"la qualità era buona ma la spedizione ha impiegato troppo tempo",
	"mixed bag: gracias for the fast shipping, will order again soon",
	"!!!! 12345 ????",
	"",
	"ok",
}

// naiveDetect is the pre-fused-table reference implementation: probe every
// per-language profile map per gram. The fused table must reproduce it
// bit-for-bit — same sums in the same order.
func naiveDetect(d *Detector, text string) []Detection {
	grams := ngrams(normalize(text), d.ngram)
	if len(grams) == 0 {
		return nil
	}
	type scored struct {
		lang Lang
		ll   float64
	}
	scores := make([]scored, 0, len(d.profiles))
	for lang, p := range d.profiles {
		ll := 0.0
		for _, g := range grams {
			if lp, ok := p.logProb[g]; ok {
				ll += lp
			} else {
				ll += p.floorLog
			}
		}
		scores = append(scores, scored{lang, ll / float64(len(grams))})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].ll != scores[j].ll {
			return scores[i].ll > scores[j].ll
		}
		return scores[i].lang < scores[j].lang
	})
	const temperature = 0.05
	best := scores[0].ll
	sum := 0.0
	probs := make([]float64, len(scores))
	for i, s := range scores {
		probs[i] = math.Exp((s.ll - best) / temperature)
		sum += probs[i]
	}
	out := make([]Detection, len(scores))
	for i, s := range scores {
		out[i] = Detection{Lang: s.lang, Prob: probs[i] / sum}
	}
	return out
}

// TestDetectMatchesNaiveReference pins the fused-table scoring path to the
// per-profile reference: identical languages, identical posteriors, exact
// float equality (the fused table stores the very same log-probabilities
// and the additions happen in the same gram order).
func TestDetectMatchesNaiveReference(t *testing.T) {
	d := Default()
	for _, text := range concurrencyTexts {
		got := d.Detect(text)
		want := naiveDetect(d, text)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Detect(%.30q) = %v, naive reference = %v", text, got, want)
		}
	}
}

// TestDetectorConcurrentUse shares one detector across many goroutines and
// checks every result against a serial pass. Run under -race this pins the
// concurrency-safety contract the parallel polishing pipeline depends on:
// a single Detector instance is fanned out over all polish workers.
func TestDetectorConcurrentUse(t *testing.T) {
	d := Default()
	serial := make([][]Detection, len(concurrencyTexts))
	for i, text := range concurrencyTexts {
		serial[i] = d.Detect(text)
	}
	const goroutines = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(concurrencyTexts)
				if got := d.Detect(concurrencyTexts[i]); !reflect.DeepEqual(got, serial[i]) {
					select {
					case errs <- concurrencyTexts[i]:
					default:
					}
					return
				}
				if d.IsEnglish(concurrencyTexts[0], 0.5) != true {
					select {
					case errs <- "IsEnglish diverged":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent Detect diverged from serial result on %q", bad)
	}
}
