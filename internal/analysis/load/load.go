// Package load type-checks packages of this module for analysis. It is
// the bespoke part of the internal/analysis framework: a small,
// dependency-free stand-in for go/packages that resolves module-local
// imports itself and delegates everything else (the standard library) to
// the stdlib source importer.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	Path  string // import path ("darklight/internal/synth")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Config controls loading.
type Config struct {
	// Dir is the module root (the directory holding go.mod). Defaults to
	// the current directory.
	Dir string
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load resolves the patterns against the module rooted at cfg.Dir and
// returns the matching packages, type-checked, in deterministic
// (import-path) order. Supported patterns: "./..." (every package in the
// module), a directory path relative to the module root ("./internal/x"
// or "internal/x"), or a full import path ("darklight/internal/x").
// Test files are not loaded: darklint checks the shipped pipeline, and
// tests routinely use wall-clock time and ad-hoc randomness on purpose.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	root := cfg.Dir
	if root == "" {
		root = "."
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load: not a module root: %w", err)
	}
	m := moduleRE.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("load: no module line in %s/go.mod", root)
	}
	modPath := string(m[1])

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader(modPath, root, dirs)

	want := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for path := range dirs {
				want[path] = true
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			rel = strings.TrimSuffix(rel, "/")
			var path string
			if rel == "." || rel == "" {
				path = modPath
			} else if strings.HasPrefix(rel, modPath+"/") || rel == modPath {
				path = rel
			} else {
				path = modPath + "/" + filepath.ToSlash(rel)
			}
			if _, ok := dirs[path]; !ok {
				return nil, fmt.Errorf("load: no package %q (pattern %q)", path, pat)
			}
			want[path] = true
		}
	}

	paths := make([]string, 0, len(want))
	for p := range want {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package in dir under the given import
// path, resolving imports against the standard library only. It backs
// the analysistest harness, whose testdata packages live outside any
// module.
func LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(importPath, abs, map[string]string{importPath: abs})
	return ld.load(importPath)
}

// packageDirs maps every import path in the module to its directory,
// skipping testdata, vendor, and hidden directories — the same dirs the
// go tool itself ignores.
func packageDirs(root string) (map[string]string, error) {
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := string(moduleRE.FindSubmatch(modBytes)[1])
	dirs := make(map[string]string)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs[imp] = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// loader memoises type-checked packages and resolves imports: module
// paths from its dir map, everything else via the stdlib source
// importer (which type-checks GOROOT packages from source — no compiled
// export data or network needed).
type loader struct {
	modPath string
	root    string
	dirs    map[string]string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(modPath, root string, dirs map[string]string) *loader {
	fset := token.NewFileSet()
	return &loader{
		modPath: modPath,
		root:    root,
		dirs:    dirs,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for the type checker.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
