package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramRejectsNaNAndNegative pins the drop-counter fix: a NaN
// observation must not turn the sum into NaN forever, and a negative
// observation must not land in the lowest bucket and drag the sum down.
// Both fail on the old Observe, which admitted every value.
func TestHistogramRejectsNaNAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "test histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(-3)
	h.Observe(math.Inf(-1))
	h.Observe(2)

	if got := h.Count(); got != 2 {
		t.Errorf("Count = %d, want 2 (NaN/negative must not be counted)", got)
	}
	if got := h.Sum(); math.IsNaN(got) || got != 2.5 {
		t.Errorf("Sum = %v, want 2.5 (NaN/negative must not touch the sum)", got)
	}
	if got := h.Drops(); got != 3 {
		t.Errorf("Drops = %d, want 3", got)
	}
	// The rejected values must not have reached any bucket.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`latency_seconds_bucket{le="1"} 1`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_sum 2.5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestRegisterCollector: collectors run at every Snapshot in registration
// order, and re-registering a name replaces the function instead of
// stacking a second run.
func TestRegisterCollector(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pull_gauge", "refreshed by a collector")
	runs := 0
	r.RegisterCollector("pull", func() {
		runs++
		g.Set(float64(runs))
	})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if runs != 2 {
		t.Fatalf("collector ran %d times, want 2 (once per exposition)", runs)
	}
	if got := snap[0].Series[0].Value; got != 2 {
		t.Errorf("gauge = %v after second collect, want 2", got)
	}
	// Replacement: the old collector must not run again.
	r.RegisterCollector("pull", func() { g.Set(-1) })
	r.Snapshot()
	if runs != 2 {
		t.Errorf("replaced collector still ran (runs = %d)", runs)
	}
	if got := g.Value(); got != -1 {
		t.Errorf("replacement collector did not run (gauge = %v)", got)
	}
}

// TestRegisterRuntime: the runtime families exist and the collector fills
// in live values at exposition time.
func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	RegisterRuntime(r) // idempotent

	byName := map[string]float64{}
	for _, fam := range r.Snapshot() {
		if len(fam.Series) == 1 {
			byName[fam.Name] = fam.Series[0].Value
		}
	}
	for _, name := range []string{
		"runtime_goroutines", "runtime_heap_alloc_bytes", "runtime_heap_sys_bytes",
		"runtime_heap_objects", "runtime_gc_runs_total",
		"runtime_gc_pause_total_seconds", "runtime_gc_last_pause_seconds",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing runtime family %s", name)
		}
	}
	if byName["runtime_goroutines"] < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", byName["runtime_goroutines"])
	}
	if byName["runtime_heap_alloc_bytes"] <= 0 {
		t.Errorf("runtime_heap_alloc_bytes = %v, want > 0", byName["runtime_heap_alloc_bytes"])
	}
}

// TestRegistryConcurrentUse hammers one registry from many goroutines —
// registrations (idempotent re-registrations included), labelled-series
// creation, increments, and expositions all interleaved — then pins the
// final exposition byte-identical to a sequentially built registry. Run
// under -race in CI; the assertion is that exposition depends only on the
// set of events, never on their interleaving.
func TestRegistryConcurrentUse(t *testing.T) {
	const workers = 8
	const perWorker = 50

	feed := func(r *Registry, w int) {
		for i := 0; i < perWorker; i++ {
			r.Counter("shared_total", "shared counter").Inc()
			r.CounterVec("by_worker_total", "per-worker counter", "worker").
				With(string(rune('a' + w))).Inc()
			r.Histogram("obs_seconds", "shared histogram", []float64{1, 10}).
				Observe(float64(i % 3))
			r.Gauge("last_gauge", "whoever writes last wins").Set(42)
		}
	}

	concurrent := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			feed(concurrent, w)
		}(w)
	}
	// Expositions race the writers; they only need to not crash and to
	// render a consistent snapshot.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := concurrent.WritePrometheus(&strings.Builder{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	sequential := NewRegistry()
	for w := 0; w < workers; w++ {
		feed(sequential, w)
	}

	var got, want strings.Builder
	if err := concurrent.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if err := sequential.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("concurrent exposition differs from sequential:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}
}
