package experiments

import (
	"fmt"
	"sort"
	"strings"

	"darklight/internal/attribution"
	"darklight/internal/eval"
	"darklight/internal/forum"
	"darklight/internal/synth"
)

// GlobalThreshold returns the acceptance threshold derived on the W1 split
// (the analogue of the paper's 0.4190).
func (l *Lab) GlobalThreshold() (float64, error) {
	f2, err := l.Figure2()
	if err != nil {
		return 0, err
	}
	return f2.Threshold, nil
}

// -------------------------------------------------- §V-B TMG vs DreamMarket

// CrossForumReport is the outcome of one real cross-forum linking run:
// accepted pairs with their simulated manual-inspection verdicts.
type CrossForumReport struct {
	Title string
	// Pairs are the accepted matches, best score first.
	Pairs []eval.PairReport
	// Counts tallies verdicts (the paper's 7/1/3 and 20/2/20/5 shapes).
	Counts map[eval.Verdict]int
	// PlantedPairs is how many same-person pairs actually exist between
	// the two refined datasets (the oracle recall denominator).
	PlantedPairs int
	// TruePositives counts accepted pairs that are truly the same person.
	TruePositives int
	Threshold     float64
	Unknowns      int
	Known         int
}

// TMGvsDM reproduces §V-B: link aliases across the two Dark Web forums.
// DM users are the unknowns, TMG the known set.
func (l *Lab) TMGvsDM() (*CrossForumReport, error) {
	threshold, err := l.GlobalThreshold()
	if err != nil {
		return nil, err
	}
	known, err := attribution.BuildSubjects(l.TMG, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	unknown, err := attribution.BuildSubjects(l.DM, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	opts := l.MatcherOpts()
	opts.Threshold = threshold
	m, err := attribution.NewMatcher(known, opts)
	if err != nil {
		return nil, err
	}
	results, err := m.MatchAll(l.Context(), unknown)
	if err != nil {
		return nil, err
	}
	return l.classifyCross("TMG vs Dream Market (§V-B)", results, threshold,
		forum.PlatformDreamMarket, forum.PlatformTheMajesticGarden, l.DM, l.TMG)
}

// RedditVsDarkWeb reproduces §V-C: look for TMG and DM users on Reddit.
// Both dark forums are queried against the Reddit matcher and the accepted
// pairs are pooled (the paper reports a single list of 47 candidates).
func (l *Lab) RedditVsDarkWeb() (*CrossForumReport, error) {
	threshold, err := l.GlobalThreshold()
	if err != nil {
		return nil, err
	}
	m, err := l.RedditMatcher()
	if err != nil {
		return nil, err
	}
	ctx := l.Context()

	tmgUnknowns, err := attribution.BuildSubjects(l.TMG, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	dmUnknowns, err := attribution.BuildSubjects(l.DM, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	resT, err := m.MatchAll(ctx, tmgUnknowns)
	if err != nil {
		return nil, err
	}
	resD, err := m.MatchAll(ctx, dmUnknowns)
	if err != nil {
		return nil, err
	}

	ins := eval.NewInspector(l.World.Truth)
	rep := &CrossForumReport{
		Title:     "Reddit vs Dark Web (§V-C)",
		Counts:    make(map[eval.Verdict]int),
		Threshold: threshold,
		Unknowns:  len(tmgUnknowns) + len(dmUnknowns),
		Known:     m.NumKnown(),
	}
	classify := func(results []attribution.MatchResult, p forum.Platform) {
		keyOfUnknown := func(name string) string { return p.String() + "/" + name }
		keyOfCandidate := func(name string) string { return "reddit/" + name }
		var accepted []eval.Prediction
		for _, r := range results {
			if r.Best.Score >= threshold && r.Best.Name != "" {
				accepted = append(accepted, eval.Prediction{Unknown: r.Unknown, Candidate: r.Best.Name, Score: r.Best.Score})
			}
		}
		reports := ins.ClassifyAll(accepted, keyOfUnknown, keyOfCandidate)
		for _, pr := range reports {
			rep.Pairs = append(rep.Pairs, pr)
			rep.Counts[pr.Verdict]++
			if pr.Correct {
				rep.TruePositives++
			}
		}
	}
	classify(resT, forum.PlatformTheMajesticGarden)
	classify(resD, forum.PlatformDreamMarket)
	sort.Slice(rep.Pairs, func(i, j int) bool { return rep.Pairs[i].Score > rep.Pairs[j].Score })

	rep.PlantedPairs = l.plantedPairs(l.TMG, forum.PlatformTheMajesticGarden, l.Reddit, forum.PlatformReddit) +
		l.plantedPairs(l.DM, forum.PlatformDreamMarket, l.Reddit, forum.PlatformReddit)
	return rep, nil
}

// classifyCross converts match results into a classified report.
func (l *Lab) classifyCross(title string, results []attribution.MatchResult, threshold float64, unknownP, knownP forum.Platform, unknownDS, knownDS *forum.Dataset) (*CrossForumReport, error) {
	ins := eval.NewInspector(l.World.Truth)
	var accepted []eval.Prediction
	for _, r := range results {
		if r.Best.Score >= threshold && r.Best.Name != "" {
			accepted = append(accepted, eval.Prediction{Unknown: r.Unknown, Candidate: r.Best.Name, Score: r.Best.Score})
		}
	}
	reports := ins.ClassifyAll(accepted,
		func(name string) string { return unknownP.String() + "/" + name },
		func(name string) string { return knownP.String() + "/" + name })
	rep := &CrossForumReport{
		Title:     title,
		Counts:    make(map[eval.Verdict]int),
		Threshold: threshold,
		Unknowns:  unknownDS.Len(),
		Known:     knownDS.Len(),
	}
	for _, pr := range reports {
		rep.Pairs = append(rep.Pairs, pr)
		rep.Counts[pr.Verdict]++
		if pr.Correct {
			rep.TruePositives++
		}
	}
	rep.PlantedPairs = l.plantedPairs(unknownDS, unknownP, knownDS, knownP)
	return rep, nil
}

// plantedPairs counts the same-person pairs that exist between the two
// refined datasets — how many links an oracle could find.
func (l *Lab) plantedPairs(a *forum.Dataset, ap forum.Platform, b *forum.Dataset, bp forum.Platform) int {
	truth := l.World.Truth
	inB := make(map[int]bool)
	for i := range b.Aliases {
		if id, ok := truth.PersonOf[bp.String()+"/"+b.Aliases[i].Name]; ok {
			inB[id] = true
		}
	}
	n := 0
	for i := range a.Aliases {
		if id, ok := truth.PersonOf[ap.String()+"/"+a.Aliases[i].Name]; ok && inB[id] {
			n++
		}
	}
	return n
}

// String renders the report in the §V style.
func (r *CrossForumReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d unknowns vs %d known, threshold %.4f\n",
		r.Title, r.Unknowns, r.Known, r.Threshold)
	fmt.Fprintf(&b, "matches output: %d (planted cross-forum pairs in refined data: %d; true positives: %d)\n",
		len(r.Pairs), r.PlantedPairs, r.TruePositives)
	for _, v := range []eval.Verdict{eval.VerdictTrue, eval.VerdictProbablyTrue, eval.VerdictUnclear, eval.VerdictFalse} {
		fmt.Fprintf(&b, "  %-14s %d\n", v+":", r.Counts[v])
	}
	shown := len(r.Pairs)
	if shown > 12 {
		shown = 12
	}
	for _, p := range r.Pairs[:shown] {
		fmt.Fprintf(&b, "  %.4f  %-28s -> %-28s %s\n", p.Score, p.Unknown, p.Candidate, p.Verdict)
	}
	if len(r.Pairs) > shown {
		fmt.Fprintf(&b, "  … %d more\n", len(r.Pairs)-shown)
	}
	return b.String()
}

// ------------------------------------------------------ §V-D user profiling

// ProfileReport is the "John Doe" exercise of §V-D: everything the open
// alias of one de-anonymised user leaks.
type ProfileReport struct {
	DarkAlias   string
	OpenAlias   string
	Score       float64
	Facts       []synth.Fact
	LinkKinds   []string
	MessageHint int // messages available on the open platform
}

// ProfileBestMatch builds the profile of the highest-scoring True pair of
// the Reddit-vs-DarkWeb run.
func (l *Lab) ProfileBestMatch(cross *CrossForumReport) *ProfileReport {
	truth := l.World.Truth
	for _, p := range cross.Pairs {
		if p.Verdict != eval.VerdictTrue {
			continue
		}
		openKey := "reddit/" + p.Candidate
		var darkKey string
		for _, pf := range []string{"tmg/", "dm/"} {
			if _, ok := truth.PersonOf[pf+p.Unknown]; ok {
				darkKey = pf + p.Unknown
				break
			}
		}
		rep := &ProfileReport{
			DarkAlias: p.Unknown,
			OpenAlias: p.Candidate,
			Score:     p.Score,
			LinkKinds: truth.LinkEvidence[openKey],
		}
		seen := map[synth.Fact]bool{}
		for _, f := range truth.Revealed[openKey] {
			if !seen[f] {
				seen[f] = true
				rep.Facts = append(rep.Facts, f)
			}
		}
		if darkKey != "" {
			for _, f := range truth.Revealed[darkKey] {
				if !seen[f] {
					seen[f] = true
					rep.Facts = append(rep.Facts, f)
				}
			}
		}
		sort.Slice(rep.Facts, func(i, j int) bool { return rep.Facts[i].Kind < rep.Facts[j].Kind })
		if a, err := l.Reddit.Find(p.Candidate); err == nil {
			rep.MessageHint = len(a.Messages)
		}
		return rep
	}
	return nil
}

// String renders the profile paragraph.
func (r *ProfileReport) String() string {
	if r == nil {
		return "§V-D profile: no True pair available in this run\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§V-D profile — dark alias %q de-anonymised as reddit user %q (score %.4f)\n",
		r.DarkAlias, r.OpenAlias, r.Score)
	if len(r.LinkKinds) > 0 {
		fmt.Fprintf(&b, "  link evidence: %s\n", strings.Join(r.LinkKinds, ", "))
	}
	fmt.Fprintf(&b, "  open-platform messages available: %d\n", r.MessageHint)
	for _, f := range r.Facts {
		fmt.Fprintf(&b, "  %-18s %s\n", string(f.Kind)+":", f.Value)
	}
	return b.String()
}

// ------------------------------------------------------ §IV-J batch process

// BatchReport validates the batched procedure: same data as the baseline
// comparison, B = 100, precision/recall at the global threshold.
type BatchReport struct {
	B                   int
	Precision, Recall   float64
	UnbatchedPrecision  float64
	UnbatchedRecall     float64
	Threshold           float64
	Unknowns, Known     int
	BatchedAgreesWithPc float64 // fraction of unknowns with identical best candidate
}

// BatchProcedure reproduces §IV-J with B=100.
func (l *Lab) BatchProcedure() (*BatchReport, error) {
	threshold, err := l.GlobalThreshold()
	if err != nil {
		return nil, err
	}
	opts := l.SubjectOpts()
	knownAll, err := attribution.BuildSubjects(l.Reddit, opts)
	if err != nil {
		return nil, err
	}
	aeAll, err := attribution.BuildSubjects(l.AEReddit, opts)
	if err != nil {
		return nil, err
	}
	known, unknown := sampleKnownUnknown(knownAll, aeAll,
		l.Cfg.BaselineKnown, l.Cfg.BatchUnknowns, int64(l.Cfg.Seed)+707)

	mopts := l.MatcherOpts()
	mopts.Threshold = threshold
	ctx := l.Context()

	bm, err := attribution.NewBatchMatcher(known, mopts, 100)
	if err != nil {
		return nil, err
	}
	batched, err := bm.MatchAll(ctx, unknown)
	if err != nil {
		return nil, err
	}

	full, err := attribution.NewMatcher(known, mopts)
	if err != nil {
		return nil, err
	}
	direct, err := full.MatchAll(ctx, unknown)
	if err != nil {
		return nil, err
	}

	rep := &BatchReport{B: 100, Threshold: threshold, Unknowns: len(unknown), Known: len(known)}
	rep.Precision, rep.Recall = prAt(batched, threshold)
	rep.UnbatchedPrecision, rep.UnbatchedRecall = prAt(direct, threshold)
	agree := 0
	for i := range batched {
		if batched[i].Best.Name == direct[i].Best.Name {
			agree++
		}
	}
	if len(batched) > 0 {
		rep.BatchedAgreesWithPc = float64(agree) / float64(len(batched))
	}
	return rep, nil
}

// prAt computes precision/recall of accepted pairs at a threshold, with
// same-name ground truth.
func prAt(results []attribution.MatchResult, threshold float64) (precision, recall float64) {
	tp, fp := 0, 0
	for _, r := range results {
		if r.Best.Name == "" || r.Best.Score < threshold {
			continue
		}
		if r.Best.Name == r.Unknown {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if len(results) > 0 {
		recall = float64(tp) / float64(len(results))
	}
	return precision, recall
}

// String renders the report.
func (r *BatchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§IV-J batch procedure — B=%d, %d known, %d unknowns, threshold %.4f\n",
		r.B, r.Known, r.Unknowns, r.Threshold)
	fmt.Fprintf(&b, "  batched:   P=%.1f%% R=%.1f%%\n", 100*r.Precision, 100*r.Recall)
	fmt.Fprintf(&b, "  unbatched: P=%.1f%% R=%.1f%%\n", 100*r.UnbatchedPrecision, 100*r.UnbatchedRecall)
	fmt.Fprintf(&b, "  best-candidate agreement: %.1f%%\n", 100*r.BatchedAgreesWithPc)
	return b.String()
}
