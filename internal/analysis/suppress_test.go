package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressSrc = `package p

func f() {
	g() //lint:ignore errdrop same-line reason
	//lint:ignore errdrop,wallclock line-above reason
	g()
	//lint:ignore errdrop
	g()
	//lint:ignore all blanket reason
	g()
	g()
}

func g() {}
`

func TestSuppressor(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSuppressor(fset, []*ast.File{f})

	posAtLine := func(line int) token.Pos {
		tf := fset.File(f.Pos())
		return tf.LineStart(line)
	}

	cases := []struct {
		line     int
		analyzer string
		want     bool
		why      string
	}{
		{4, "errdrop", true, "same-line directive"},
		{6, "errdrop", true, "directive on the line above"},
		{6, "wallclock", true, "multi-analyzer directive"},
		{6, "maporder", false, "analyzer not named"},
		{8, "errdrop", false, "directive without a reason is inert"},
		{10, "maporder", true, "all matches every analyzer"},
		{11, "errdrop", false, "no directive in range"},
	}
	for _, c := range cases {
		if got := sup.Suppressed(c.analyzer, posAtLine(c.line)); got != c.want {
			t.Errorf("line %d, %s: Suppressed = %v, want %v (%s)", c.line, c.analyzer, got, c.want, c.why)
		}
	}
}
