// Package maporder flags map iterations whose bodies leak Go's
// randomized map order into results: appending to a slice that outlives
// the loop, accumulating floating-point sums (float addition does not
// commute bit-for-bit), or writing straight into an ordered sink. Any
// such site silently breaks the "bit-identical for any worker count"
// guarantees the ingest and matcher equivalence tests pin in features,
// attribution, and normalize.
//
// A finding is waived when the loop's effect is made deterministic right
// afterwards: the appended slice is passed to a sort.*/slices.* call
// later in the same enclosing block. Anything subtler — merging in shard
// order, key-sorted re-walks — carries a lint:ignore with its reason.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultScope lists the packages under bit-identical output
// guarantees: the ingest/matcher trio the worker-invariance tests pin,
// plus every seed-driven package whose output feeds the experiment
// tables, plus the snapshot store whose serialised form must be
// byte-stable across saves of the same index.
const DefaultScope = "internal/features,internal/attribution,internal/normalize," +
	"internal/synth,internal/corpus,internal/anonymize,internal/experiments,internal/eval," +
	"internal/prefilter,internal/store"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map-order-dependent loops (append to outer slice, float accumulation, ordered-sink " +
		"writes) unless the result is sorted immediately after",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkBody(pass, rng, enclosingBlock(stack))
		return true
	})
	return nil, nil
}

// enclosingBlock returns the innermost block containing the node the
// stack ends at (the stack's last element is the RangeStmt itself).
func enclosingBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, block *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map iteration is flagged by its own visit; don't
			// double-report its body from here.
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rng, block, n)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on a channel inside map iteration publishes values in random order")
		case *ast.CallExpr:
			checkSinkCall(pass, rng, n)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, block *ast.BlockStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	// Compound float accumulation: sum += x, sum -= x, sum *= x …
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE && len(as.Lhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := astquery.ObjectOf(info, id); obj != nil &&
				astquery.IsFloat(obj.Type()) && astquery.DeclaredOutside(info, id, rng, rng) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation over map order is not bit-stable; iterate sorted keys instead")
			}
		}
		return
	}
	// s = append(s, …) onto a slice declared outside the loop.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isAppend(info, call) || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || !astquery.DeclaredOutside(info, id, rng, rng) {
			continue
		}
		if sortedAfter(info, block, rng, astquery.ObjectOf(info, id)) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside map iteration orders it randomly; sort it afterwards or iterate sorted keys", id.Name)
	}
	// sum = sum + x spelled without the compound token.
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) {
				if obj := astquery.ObjectOf(info, id); obj != nil &&
					astquery.IsFloat(obj.Type()) && astquery.DeclaredOutside(info, id, rng, rng) &&
					mentions(bin, id.Name) {
					pass.Reportf(as.Pos(),
						"floating-point accumulation over map order is not bit-stable; iterate sorted keys instead")
				}
			}
		}
	}
}

// checkSinkCall flags writes into ordered sinks (io.Writer-ish methods
// and fmt.Fprint*) whose destination outlives the loop.
func checkSinkCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	if pkg, name := astquery.PkgFunc(info, call); pkg == "fmt" &&
		(name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
		pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits lines in random order", name)
		return
	}
	recv, name := astquery.MethodCall(info, call)
	if recv == nil {
		return
	}
	switch name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && astquery.DeclaredOutside(info, id, rng, rng) {
				pass.Reportf(call.Pos(),
					"%s.%s inside map iteration writes in random order; buffer per key and sort first", id.Name, name)
			}
		}
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a statement after the range loop in the
// same block passes obj to a sort.* or slices.Sort* call.
func sortedAfter(info *types.Info, block *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if block == nil || obj == nil {
		return false
	}
	after := false
	for _, st := range block.List {
		if st == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if argMentionsObj(info, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognises sort.*, slices.Sort*, and local helpers whose
// name starts with "sort" (the repo's sortStrings-style wrappers).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name := astquery.PkgFunc(info, call); pkg != "" {
		return pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		lower := strings.ToLower(id.Name)
		return strings.HasPrefix(lower, "sort")
	}
	return false
}

func argMentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && astquery.ObjectOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
