package store

import (
	"testing"
)

// FuzzLoadSnapshot drives the full verify-and-decode path over mutated
// headers and sections. The invariant is the corruption contract: any
// input either decodes to a usable index or returns an error — never a
// panic, never a runaway allocation.
func FuzzLoadSnapshot(f *testing.F) {
	raw := smallSnapshot(f)
	layout := snapshotLayout(f, raw)
	// Seed with the valid snapshot plus structured damage: truncations at
	// interesting boundaries and a flipped byte inside each section.
	f.Add(raw)
	f.Add(raw[:len(magic)])
	f.Add(raw[:len(magic)+8])
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:len(raw)-1])
	f.Add([]byte{})
	f.Add([]byte("DLIXSNP1 not really a snapshot"))
	for _, off := range []int{len(magic), len(magic) + 4, len(magic) + 8, len(magic) + 16} {
		m := append([]byte(nil), raw...)
		m[off] ^= 0xFF
		f.Add(m)
	}
	for _, off := range layout {
		m := append([]byte(nil), raw...)
		m[off] ^= 0x40
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := decodeIndex(data)
		if err == nil && (idx == nil || idx.Matcher == nil || idx.Dataset == nil) {
			t.Fatal("decodeIndex returned neither an index nor an error")
		}
	})
}
