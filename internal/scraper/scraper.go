// Package scraper crawls a darkweb-style forum into a dataset. It is the
// data-collection stage of the paper (§III-B): board index → thread
// listings → paginated posts, with the defensive behaviours scraping a
// hidden service demands — polite rate limiting, bounded retries with
// exponential backoff, and context cancellation.
package scraper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"darklight/internal/forum"
)

// Options configure a crawl.
type Options struct {
	// RequestInterval is the minimum delay between requests (politeness).
	RequestInterval time.Duration
	// MaxRetries bounds retry attempts per page (default 4).
	MaxRetries int
	// BackoffBase is the initial retry delay, doubled per attempt
	// (default 100ms).
	BackoffBase time.Duration
	// MaxPagesPerThread bounds deep threads (0 = unlimited).
	MaxPagesPerThread int
	// Boards restricts the crawl to the listed boards (nil = all).
	Boards []string
	// Client overrides the HTTP client (default http.DefaultClient with a
	// 30 s timeout).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Stats summarise a crawl.
type Stats struct {
	Requests int
	Retries  int
	Boards   int
	Threads  int
	Posts    int
}

// Scraper crawls one forum base URL.
type Scraper struct {
	base  string
	opts  Options
	stats Stats
	last  time.Time
}

// New returns a scraper for the forum at base (e.g. "http://127.0.0.1:8989").
func New(base string, opts Options) *Scraper {
	return &Scraper{base: strings.TrimRight(base, "/"), opts: opts.withDefaults()}
}

// Stats returns crawl statistics (valid after Scrape).
func (s *Scraper) Stats() Stats { return s.stats }

// Scrape crawls the whole forum and groups posts into a dataset.
func (s *Scraper) Scrape(ctx context.Context, name string, platform forum.Platform) (*forum.Dataset, error) {
	boards, err := s.boards(ctx)
	if err != nil {
		return nil, fmt.Errorf("scraper: board index: %w", err)
	}
	if s.opts.Boards != nil {
		want := make(map[string]bool, len(s.opts.Boards))
		for _, b := range s.opts.Boards {
			want[b] = true
		}
		filtered := boards[:0]
		for _, b := range boards {
			if want[b] {
				filtered = append(filtered, b)
			}
		}
		boards = filtered
	}
	s.stats.Boards = len(boards)

	byAuthor := make(map[string][]forum.Message)
	for _, board := range boards {
		threads, err := s.threads(ctx, board)
		if err != nil {
			return nil, fmt.Errorf("scraper: board %q: %w", board, err)
		}
		s.stats.Threads += len(threads)
		s.logf("board %s: %d threads", board, len(threads))
		for _, thread := range threads {
			posts, err := s.posts(ctx, thread)
			if err != nil {
				return nil, fmt.Errorf("scraper: thread %q: %w", thread, err)
			}
			for _, p := range posts {
				byAuthor[p.Author] = append(byAuthor[p.Author], p)
				s.stats.Posts++
			}
		}
	}

	names := make([]string, 0, len(byAuthor))
	for a := range byAuthor {
		names = append(names, a)
	}
	sort.Strings(names)
	d := forum.NewDataset(name, platform)
	for _, a := range names {
		d.Aliases = append(d.Aliases, forum.Alias{Name: a, Platform: platform, Messages: byAuthor[a]})
	}
	return d, nil
}

func (s *Scraper) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// boards fetches the board index.
func (s *Scraper) boards(ctx context.Context) ([]string, error) {
	page, err := s.fetch(ctx, s.base+"/")
	if err != nil {
		return nil, err
	}
	var boards []string
	for _, href := range extractHrefs(page, "board") {
		boards = append(boards, strings.TrimPrefix(href, "/board/"))
	}
	return boards, nil
}

// threads walks a board's pagination and returns every thread id.
func (s *Scraper) threads(ctx context.Context, board string) ([]string, error) {
	var threads []string
	next := s.base + "/board/" + url.PathEscape(board)
	for next != "" {
		page, err := s.fetch(ctx, next)
		if err != nil {
			return nil, err
		}
		for _, href := range extractHrefs(page, "thread") {
			threads = append(threads, strings.TrimPrefix(href, "/thread/"))
		}
		next = s.nextURL(page)
	}
	return threads, nil
}

// posts walks a thread's pagination and parses every post.
func (s *Scraper) posts(ctx context.Context, thread string) ([]forum.Message, error) {
	var posts []forum.Message
	next := s.base + "/thread/" + url.PathEscape(thread)
	pages := 0
	for next != "" {
		if s.opts.MaxPagesPerThread > 0 && pages >= s.opts.MaxPagesPerThread {
			break
		}
		page, err := s.fetch(ctx, next)
		if err != nil {
			return nil, err
		}
		parsed, err := ParsePosts(page)
		if err != nil {
			return nil, err
		}
		for i := range parsed {
			parsed[i].Thread = thread
		}
		posts = append(posts, parsed...)
		next = s.nextURL(page)
		pages++
	}
	return posts, nil
}

// nextURL extracts the "next page" link, absolute-ified against the base.
func (s *Scraper) nextURL(page string) string {
	for _, href := range extractHrefs(page, "next") {
		return s.base + href
	}
	return ""
}

// errGiveUp wraps the last failure after retries are exhausted.
var errGiveUp = errors.New("scraper: retries exhausted")

// fetch gets one URL with politeness and retries.
func (s *Scraper) fetch(ctx context.Context, rawURL string) (string, error) {
	var lastErr error
	for attempt := 0; attempt <= s.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			s.stats.Retries++
			delay := s.opts.BackoffBase << (attempt - 1)
			if err := sleepCtx(ctx, delay); err != nil {
				return "", err
			}
		}
		if err := s.politeWait(ctx); err != nil {
			return "", err
		}
		body, err := s.get(ctx, rawURL)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
	}
	return "", fmt.Errorf("%w: %s: %v", errGiveUp, rawURL, lastErr)
}

// politeWait enforces the minimum inter-request interval.
func (s *Scraper) politeWait(ctx context.Context) error {
	if s.opts.RequestInterval <= 0 {
		return nil
	}
	if wait := s.opts.RequestInterval - time.Since(s.last); wait > 0 {
		if err := sleepCtx(ctx, wait); err != nil {
			return err
		}
	}
	s.last = time.Now()
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *Scraper) get(ctx context.Context, rawURL string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return "", err
	}
	s.stats.Requests++
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}
