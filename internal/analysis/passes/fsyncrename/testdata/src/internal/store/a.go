// Fixture for the fsyncrename pass: files written and renamed with and
// without a Sync in between. The PR 8 compaction regression lives in
// compact.go — the harness matches want-comments across all files of
// the fixture package.
package store

import (
	"fmt"
	"os"
)

// The blessed shape: write, sync, close, rename.
func atomicOK(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "ok-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(name, path)
}

// Write then rename with no Sync anywhere: the core finding. Close does
// not flush to disk.
func renameUnsynced(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "bad-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(name, path) // want `os\.Rename of tmp without Sync\(\) on every path since its last write`
}

// Sync on only one branch: the must-join demotes the merged state, so
// the rename is still flagged.
func syncOneBranchOnly(path string, data []byte, flush bool) error {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	tmp.Write(data)
	if flush {
		tmp.Sync()
	}
	return os.Rename(tmp.Name(), path) // want `os\.Rename of tmp without Sync\(\) on every path`
}

// Sync on every branch is fine even without the straight-line shape.
func syncBothBranches(path string, data []byte, wide bool) error {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if wide {
		tmp.Write(data)
		tmp.Sync()
	} else {
		tmp.WriteString("narrow")
		tmp.Sync()
	}
	return os.Rename(tmp.Name(), path)
}

// Passing the file to another writer counts as a write: whatever
// fmt.Fprintf buffered or wrote, the file is no longer clean.
func fprintfIsAWrite(path string) error {
	tmp, err := os.CreateTemp(".", "log-*")
	if err != nil {
		return err
	}
	fmt.Fprintf(tmp, "entry\n")
	tmp.Close()
	return os.Rename(tmp.Name(), path) // want `os\.Rename of tmp without Sync\(\)`
}

// A write after the Sync dirties the file again.
func writeAfterSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "late-*")
	if err != nil {
		return err
	}
	tmp.Write(data)
	tmp.Sync()
	tmp.WriteString("trailer")
	return os.Rename(tmp.Name(), path) // want `os\.Rename of tmp without Sync\(\) on every path since its last write`
}

// Nothing was ever written, so there is nothing to flush: renaming a
// clean file is fine (the caller is just claiming the name).
func renameCleanFile(path string) error {
	tmp, err := os.CreateTemp(".", "claim-*")
	if err != nil {
		return err
	}
	tmp.Close()
	return os.Rename(tmp.Name(), path)
}

// Renames whose source is not a file created here are out of scope:
// intraprocedurally there is nothing to prove about plain paths.
func renameForeign(from, to string) error {
	return os.Rename(from, to)
}

// A justified waiver: the sync happens in a helper the analysis cannot
// see into.
func renameSyncedElsewhere(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "ext-*")
	if err != nil {
		return err
	}
	tmp.Write(data)
	flushAndClose(tmp)
	//lint:ignore fsyncrename fixture: flushAndClose syncs before closing
	return os.Rename(tmp.Name(), path)
}

func flushAndClose(f *os.File) {
	f.Sync()
	f.Close()
}
