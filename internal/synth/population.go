package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"darklight/internal/forum"
	"darklight/internal/timeutil"
)

// Config controls world generation: population sizes, cross-forum overlap,
// text volume, style/schedule signal strength, and noise rates. The
// defaults reproduce the proportions of the paper's datasets (§III,
// Table IV).
type Config struct {
	// Seed drives all randomness; equal seeds give identical worlds.
	Seed uint64
	// Person tunes trait distributions.
	Person PersonConfig

	// Population sizes (collected aliases, before polishing).
	RedditUsers int
	TMGUsers    int
	DMUsers     int

	// Cross-forum persons: how many people hold aliases on two platforms.
	TMGDMOverlap    int // dark↔dark (§V-B)
	RedditTMGOveral int // open↔dark (§V-C)
	RedditDMOverlap int

	// DomainDrift is the style shift between the open and the dark
	// personas of the same person (0 = identical style everywhere).
	DomainDrift float64

	// Per-forum total-words-per-alias lognormal parameters. Dark-web users
	// write far less than redditors (Fig. 1, Table IV).
	RedditWordsMu, RedditWordsSigma float64
	TMGWordsMu, TMGWordsSigma       float64
	DMWordsMu, DMWordsSigma         float64

	// Words-per-message lognormal parameters; TMG messages are "longer
	// than average and more digressive" (§III-B2).
	WordsPerMsgMu, WordsPerMsgSigma float64
	TMGWordsPerMsgMu                float64

	// Noise rates (per message unless stated).
	BotFraction     float64 // per forum, fraction of extra bot aliases
	ForeignFraction float64 // fraction of users who sometimes post non-English
	ForeignRate     float64 // per-message rate for those users
	SpamRate        float64
	ShortRate       float64
	QuoteRate       float64
	PGPRate         float64
	MailRate        float64
	URLRate         float64
	EditRate        float64
	ASCIIArtRate    float64

	// CrossForumWordBoost raises the lognormal μ of a cross-forum person's
	// word budget on dark forums: the users the paper could link are by
	// construction the prolific ones who clear the refinement thresholds
	// on both platforms.
	CrossForumWordBoost float64

	// Evidence planting.
	RevealRateOpen   float64 // per-message fact reveal rate on Reddit
	RevealRateDark   float64 // per-message fact reveal rate on dark forums
	LinkEvidenceFrac float64 // fraction of cross-forum persons with explicit link evidence
	VendorFraction   float64 // fraction of dark aliases that are vendors

	// Sampling window for timestamps.
	Start, End time.Time
}

// DefaultConfig returns a world calibrated to the paper's dataset shapes at
// full scale (16,567 Reddit users; 4,709 TMG; 6,348 DM).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Person:          DefaultPersonConfig(),
		RedditUsers:     16567,
		TMGUsers:        4709,
		DMUsers:         6348,
		TMGDMOverlap:    24,
		RedditTMGOveral: 30,
		RedditDMOverlap: 28,
		DomainDrift:     0.25,

		RedditWordsMu: 8.2, RedditWordsSigma: 1.1,
		TMGWordsMu: 5.9, TMGWordsSigma: 1.4,
		DMWordsMu: 5.2, DMWordsSigma: 1.4,

		WordsPerMsgMu: 3.3, WordsPerMsgSigma: 0.55,
		TMGWordsPerMsgMu: 3.9,

		BotFraction:     0.015,
		ForeignFraction: 0.06,
		ForeignRate:     0.5,
		SpamRate:        0.01,
		ShortRate:       0.08,
		QuoteRate:       0.10,
		PGPRate:         0.01,
		MailRate:        0.01,
		URLRate:         0.05,
		EditRate:        0.04,
		ASCIIArtRate:    0.005,

		CrossForumWordBoost: 2.8,

		RevealRateOpen:   0.035,
		RevealRateDark:   0.012,
		LinkEvidenceFrac: 0.45,
		VendorFraction:   0.12,

		Start: Year2017Start,
		End:   Year2017End,
	}
}

// Scaled returns a copy with the population counts multiplied by f
// (minimum 1 where the original is positive). Cross-forum overlap counts
// shrink by √f instead (with a floor of 6): they are the plantable pairs
// every §V experiment looks for, and scaling them linearly leaves a small
// world with nothing to find. Noise and signal parameters are untouched.
func (c Config) Scaled(f float64) Config {
	scale := func(n int) int {
		if n <= 0 {
			return n
		}
		s := int(float64(n) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	gentle := func(n int) int {
		if n <= 0 {
			return n
		}
		s := int(float64(n) * math.Sqrt(f))
		if s < 6 {
			s = 6
		}
		if s > n && f <= 1 {
			s = n
		}
		return s
	}
	c.RedditUsers = scale(c.RedditUsers)
	c.TMGUsers = scale(c.TMGUsers)
	c.DMUsers = scale(c.DMUsers)
	c.TMGDMOverlap = gentle(c.TMGDMOverlap)
	c.RedditTMGOveral = gentle(c.RedditTMGOveral)
	c.RedditDMOverlap = gentle(c.RedditDMOverlap)
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TMGDMOverlap+c.RedditTMGOveral > c.TMGUsers {
		return fmt.Errorf("synth: TMG overlaps (%d) exceed TMG users (%d)",
			c.TMGDMOverlap+c.RedditTMGOveral, c.TMGUsers)
	}
	if c.TMGDMOverlap+c.RedditDMOverlap > c.DMUsers {
		return fmt.Errorf("synth: DM overlaps (%d) exceed DM users (%d)",
			c.TMGDMOverlap+c.RedditDMOverlap, c.DMUsers)
	}
	if c.RedditTMGOveral+c.RedditDMOverlap > c.RedditUsers {
		return fmt.Errorf("synth: Reddit overlaps (%d) exceed Reddit users (%d)",
			c.RedditTMGOveral+c.RedditDMOverlap, c.RedditUsers)
	}
	if !c.End.After(c.Start) {
		return fmt.Errorf("synth: empty sampling window [%v, %v)", c.Start, c.End)
	}
	return nil
}

// GroundTruth records who is who — the oracle the paper lacked and had to
// reconstruct by manual inspection.
type GroundTruth struct {
	// PersonOf maps alias key ("platform/name") to person ID. Bots and
	// other non-person aliases are absent.
	PersonOf map[string]int
	// AliasesOf maps person ID to all their alias keys.
	AliasesOf map[int][]string
	// Facts is each person's full biography.
	Facts map[int][]Fact
	// Revealed lists the facts actually leaked by each alias's messages.
	Revealed map[string][]Fact
	// LinkEvidence lists explicit linking evidence planted on an alias:
	// "self-reference", "shared-link", "shared-mail", "brand-reuse".
	LinkEvidence map[string][]string
	// Vendors flags vendor persons (they reuse their brand nickname).
	Vendors map[int]bool
}

func newGroundTruth() *GroundTruth {
	return &GroundTruth{
		PersonOf:     make(map[string]int),
		AliasesOf:    make(map[int][]string),
		Facts:        make(map[int][]Fact),
		Revealed:     make(map[string][]Fact),
		LinkEvidence: make(map[string][]string),
		Vendors:      make(map[int]bool),
	}
}

// SamePerson reports whether two alias keys belong to one person.
func (g *GroundTruth) SamePerson(a, b string) bool {
	pa, oka := g.PersonOf[a]
	pb, okb := g.PersonOf[b]
	return oka && okb && pa == pb
}

// MateOn returns the alias key the same person holds on the given platform,
// if any.
func (g *GroundTruth) MateOn(key string, p forum.Platform) (string, bool) {
	id, ok := g.PersonOf[key]
	if !ok {
		return "", false
	}
	prefix := p.String() + "/"
	for _, k := range g.AliasesOf[id] {
		if k != key && strings.HasPrefix(k, prefix) {
			return k, true
		}
	}
	return "", false
}

// World is a generated universe: three forums plus ground truth.
type World struct {
	Reddit *forum.Dataset
	TMG    *forum.Dataset
	DM     *forum.Dataset
	Truth  *GroundTruth
	Config Config
}

// forumSpec describes per-forum generation parameters.
type forumSpec struct {
	id          string
	platform    forum.Platform
	wordsMu     float64
	wordsSigma  float64
	wpmMu       float64
	wpmSigma    float64
	topics      []string
	boards      []string
	revealRate  float64
	utcOffset   int // minutes; the scraper sees forum-local times
	isDark      bool
	driftFactor float64 // multiplier on cfg.DomainDrift for this forum
}

var darkTopics = []string{TopicDrugs, TopicCrypto, TopicTech, TopicPsych}

// Generate builds the world. Generation is deterministic in cfg.Seed.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{Truth: newGroundTruth(), Config: cfg}

	specs := map[string]forumSpec{
		"reddit": {
			id: "reddit", platform: forum.PlatformReddit,
			wordsMu: cfg.RedditWordsMu, wordsSigma: cfg.RedditWordsSigma,
			wpmMu: cfg.WordsPerMsgMu, wpmSigma: cfg.WordsPerMsgSigma,
			topics: Topics, revealRate: cfg.RevealRateOpen,
			utcOffset: 0, driftFactor: 1, // Reddit is the "open" persona
		},
		"tmg": {
			id: "tmg", platform: forum.PlatformTheMajesticGarden,
			wordsMu: cfg.TMGWordsMu, wordsSigma: cfg.TMGWordsSigma,
			wpmMu: cfg.TMGWordsPerMsgMu, wpmSigma: cfg.WordsPerMsgSigma,
			topics: darkTopics, revealRate: cfg.RevealRateDark,
			boards:    []string{"vendor-threads", "psychedelic-literature", "drug-cooking", "general-discussion"},
			utcOffset: TMGUTCOffsetMinutes, isDark: true, driftFactor: 0.15,
		},
		"dm": {
			id: "dm", platform: forum.PlatformDreamMarket,
			wordsMu: cfg.DMWordsMu, wordsSigma: cfg.DMWordsSigma,
			wpmMu: cfg.WordsPerMsgMu, wpmSigma: cfg.WordsPerMsgSigma,
			topics: darkTopics, revealRate: cfg.RevealRateDark,
			boards:    []string{"products-and-vendor-reviews", "marketplace-discussions", "advertising-and-promotions", "scams"},
			utcOffset: DMUTCOffsetMinutes, isDark: true, driftFactor: 0.15,
		},
	}

	// --- assign persons to forums ---
	// Person IDs are dense. Overlap persons come first so their indices are
	// predictable: [0, TMGDMOverlap) on TMG+DM, then Reddit+TMG, then
	// Reddit+DM, then singles.
	type membership struct{ forums []string }
	var members []membership
	for i := 0; i < cfg.TMGDMOverlap; i++ {
		members = append(members, membership{[]string{"tmg", "dm"}})
	}
	for i := 0; i < cfg.RedditTMGOveral; i++ {
		members = append(members, membership{[]string{"reddit", "tmg"}})
	}
	for i := 0; i < cfg.RedditDMOverlap; i++ {
		members = append(members, membership{[]string{"reddit", "dm"}})
	}
	singles := map[string]int{
		"reddit": cfg.RedditUsers - cfg.RedditTMGOveral - cfg.RedditDMOverlap,
		"tmg":    cfg.TMGUsers - cfg.TMGDMOverlap - cfg.RedditTMGOveral,
		"dm":     cfg.DMUsers - cfg.TMGDMOverlap - cfg.RedditDMOverlap,
	}
	for _, f := range []string{"reddit", "tmg", "dm"} {
		for i := 0; i < singles[f]; i++ {
			members = append(members, membership{[]string{f}})
		}
	}

	datasets := map[string]*forum.Dataset{
		"reddit": forum.NewDataset("Reddit", forum.PlatformReddit),
		"tmg":    forum.NewDataset("TMG", forum.PlatformTheMajesticGarden),
		"dm":     forum.NewDataset("DM", forum.PlatformDreamMarket),
	}
	usedNames := map[string]map[string]bool{
		"reddit": {}, "tmg": {}, "dm": {},
	}

	for id, m := range members {
		person := NewPerson(cfg.Seed, id, cfg.Person)
		w.Truth.Facts[id] = person.generateFacts()
		vendorRand := subRand(person.Seed, "vendor")
		isVendor := false
		for _, f := range m.forums {
			if specs[f].isDark && vendorRand.Float64() < cfg.VendorFraction {
				isVendor = true
			}
		}
		if isVendor {
			w.Truth.Vendors[id] = true
		}
		crossForum := len(m.forums) > 1
		linkEvidence := ""
		if crossForum {
			er := subRand(person.Seed, "evidence")
			if isVendor {
				linkEvidence = "brand-reuse"
			} else if er.Float64() < cfg.LinkEvidenceFrac {
				linkEvidence = []string{"self-reference", "shared-link", "shared-mail"}[er.Intn(3)]
			}
		}

		// Pre-compute every nickname so self-references can point at the
		// alias on the *other* platform. Nicknames must be unique per
		// forum: a collision would merge two people's ground truth.
		nicknames := make(map[string]string, len(m.forums))
		collided := false
		for _, f := range m.forums {
			if usedNames[f][person.Nickname(f, isVendor)] {
				collided = true
			}
		}
		for _, f := range m.forums {
			name := person.Nickname(f, isVendor)
			if collided {
				// Suffix on every forum so a vendor's brand stays equal
				// across platforms.
				name = fmt.Sprintf("%s_%d", name, id)
			}
			usedNames[f][name] = true
			nicknames[f] = name
		}

		for _, f := range m.forums {
			spec := specs[f]
			other := ""
			for _, g := range m.forums {
				if g != f {
					other = g
				}
			}
			alias := generateAlias(w.Truth, person, spec, cfg, aliasContext{
				nickname:      nicknames[f],
				otherNickname: nicknames[other],
				otherForum:    other,
				linkEvidence:  linkEvidence,
				isVendor:      isVendor && spec.isDark,
				crossForum:    crossForum,
			})
			key := alias.Key()
			w.Truth.PersonOf[key] = id
			w.Truth.AliasesOf[id] = append(w.Truth.AliasesOf[id], key)
			datasets[f].Aliases = append(datasets[f].Aliases, alias)
		}
	}

	// --- bots ---
	for _, f := range []string{"reddit", "tmg", "dm"} {
		spec := specs[f]
		n := int(float64(datasets[f].Len()) * cfg.BotFraction)
		for i := 0; i < n; i++ {
			datasets[f].Aliases = append(datasets[f].Aliases, generateBot(cfg, spec, i))
		}
	}

	w.Reddit, w.TMG, w.DM = datasets["reddit"], datasets["tmg"], datasets["dm"]
	return w, nil
}

type aliasContext struct {
	nickname      string
	otherNickname string
	otherForum    string
	linkEvidence  string
	isVendor      bool
	crossForum    bool
}

// generateAlias produces one alias's full message stream on one forum.
func generateAlias(truth *GroundTruth, p *Person, spec forumSpec, cfg Config, ctx aliasContext) forum.Alias {
	r := subRand(p.Seed, "messages/"+spec.id)
	style := p.NewStyle(spec.id, cfg.DomainDrift*spec.driftFactor)

	wordsMu := spec.wordsMu
	if ctx.crossForum && spec.isDark {
		wordsMu += cfg.CrossForumWordBoost
	}
	totalWords := lognormal(r, wordsMu, spec.wordsSigma)
	if totalWords < 30 {
		totalWords = 30
	}
	if totalWords > 40000 {
		totalWords = 40000
	}

	isForeign := r.Float64() < cfg.ForeignFraction && !spec.isDark

	alias := forum.Alias{Name: ctx.nickname, Platform: spec.platform}
	key := spec.platform.String() + "/" + ctx.nickname
	facts := truth.Facts[p.ID]

	// Vendors repost a showcase message (dedup fodder).
	var showcase string
	if ctx.isVendor {
		showcase = "OFFICIAL " + strings.ToUpper(ctx.nickname) + " THREAD. " +
			style.GenerateMessage(r, TopicDrugs, 60) +
			" all orders ship within 48 hours, check the price list below."
	}

	written := 0.0
	msgIdx := 0
	evidencePlanted := false
	for written < totalWords {
		topic := p.PickTopic(r, spec.topics)
		board := boardFor(r, spec, topic)
		target := int(lognormal(r, spec.wpmMu, spec.wpmSigma))
		if target < 3 {
			target = 3
		}
		if target > 400 {
			target = 400
		}

		var body string
		switch x := r.Float64(); {
		case x < cfg.SpamRate:
			body = spamBody(r)
		case x < cfg.SpamRate+cfg.ShortRate:
			body = shortBody(r)
		case isForeign && r.Float64() < cfg.ForeignRate:
			body = foreignSentences[r.Intn(len(foreignSentences))]
		case ctx.isVendor && msgIdx > 0 && msgIdx%17 == 0:
			body = showcase // verbatim repost
		default:
			body = style.GenerateMessage(r, topic, target)
			body = injectNoise(r, style, cfg, topic, ctx.nickname, body)
			body = injectEvidence(truth, r, spec, ctx, key, facts, body, msgIdx, &evidencePlanted)
		}

		ts := p.SampleTimestamps(r, 1, cfg.Start, cfg.End)[0]
		// The forum records local wall-clock time; the activity stage
		// aligns it back using the forum's offset.
		localTS := ts.Add(time.Duration(spec.utcOffset) * time.Minute)
		alias.Messages = append(alias.Messages, forum.Message{
			ID:       fmt.Sprintf("%s-%d-%d", spec.id, p.ID, msgIdx),
			Author:   ctx.nickname,
			Board:    board,
			Thread:   fmt.Sprintf("%s-t%d", board, r.Intn(500)),
			Body:     body,
			PostedAt: localTS,
		})
		written += float64(len(strings.Fields(body)))
		msgIdx++
	}
	return alias
}

// injectNoise adds the per-message noise artefacts.
func injectNoise(r *rand.Rand, style *Style, cfg Config, topic, nickname, body string) string {
	if r.Float64() < cfg.QuoteRate {
		body = quotedLines(r, style, topic) + body
	}
	if r.Float64() < cfg.URLRate {
		body += urlSnippet(r)
	}
	if r.Float64() < cfg.MailRate {
		body += mailSnippet(r, nickname)
	}
	if r.Float64() < cfg.EditRate {
		body += editMark(r, nickname)
	}
	if r.Float64() < cfg.PGPRate {
		body += "\nmy key follows, always verify before ordering\n" + fakePGPBlock(r)
	}
	if r.Float64() < cfg.ASCIIArtRate {
		body += " " + asciiArtToken(r)
	}
	return body
}

// injectEvidence plants fact reveals and explicit link evidence, recording
// both in the ground truth.
func injectEvidence(truth *GroundTruth, r *rand.Rand, spec forumSpec, ctx aliasContext, key string, facts []Fact, body string, msgIdx int, planted *bool) string {
	if r.Float64() < spec.revealRate {
		f := facts[r.Intn(len(facts))]
		body += " " + factSentence(r, f)
		truth.Revealed[key] = append(truth.Revealed[key], f)
	}
	// Explicit link evidence fires once, on the first regular message past
	// the first few, on both sides of the pair.
	if ctx.linkEvidence != "" && !*planted && msgIdx >= 3 {
		*planted = true
		switch ctx.linkEvidence {
		case "self-reference":
			body += " btw i also post as " + ctx.otherNickname + " over on " + ctx.otherForum + "."
		case "shared-link":
			// The same referral URL (containing the person's stable brand
			// fragment) appears on both platforms.
			body += " if you sign up use my link " + referralURL(ctx.nickname) + " helps me out."
		case "shared-mail":
			body += mailSnippet(r, "the.real."+strings.ToLower(ctx.otherNickname))
		case "brand-reuse":
			body += " yes i am the same " + ctx.nickname + " you know from the other market, same pgp same service."
		}
		truth.LinkEvidence[key] = append(truth.LinkEvidence[key], ctx.linkEvidence)
	}
	return body
}

func boardFor(r *rand.Rand, spec forumSpec, topic string) string {
	if spec.isDark {
		return spec.boards[r.Intn(len(spec.boards))]
	}
	subs := subredditsByTopic[topic]
	if len(subs) == 0 {
		return "misc"
	}
	// Zipf-ish: first boards get most traffic.
	for i := range subs {
		if r.Float64() < 0.45 || i == len(subs)-1 {
			return subs[i]
		}
	}
	return subs[0]
}

// generateBot creates a bot alias: "bot" nickname, tiny fixed repertoire
// repeated verbatim, metronomic posting hour.
func generateBot(cfg Config, spec forumSpec, i int) forum.Alias {
	r := subRand(hash2(cfg.Seed, hashString(spec.id+"/bot")), fmt.Sprint(i))
	name := fmt.Sprintf("%s_bot%d", nicknameNouns[r.Intn(len(nicknameNouns))], i)
	if r.Intn(2) == 0 {
		name = fmt.Sprintf("bot_%s%d", nicknameAdjectives[r.Intn(len(nicknameAdjectives))], i)
	}
	alias := forum.Alias{Name: name, Platform: spec.platform}
	bodies := botBodies(r)
	n := 40 + r.Intn(200)
	days := int(cfg.End.Sub(cfg.Start).Hours() / 24)
	hour := r.Intn(24)
	for m := 0; m < n; m++ {
		day := cfg.Start.AddDate(0, 0, r.Intn(days))
		ts := time.Date(day.Year(), day.Month(), day.Day(), hour, r.Intn(10), r.Intn(60), 0, time.UTC)
		alias.Messages = append(alias.Messages, forum.Message{
			ID:       fmt.Sprintf("%s-bot%d-%d", spec.id, i, m),
			Author:   name,
			Board:    "announcements",
			Body:     bodies[m%len(bodies)],
			PostedAt: ts,
		})
	}
	return alias
}

// Forum-local clock offsets (minutes from UTC) used when stamping
// messages: the scraper sees each forum's own wall-clock time, and §IV-B's
// UTC alignment must undo exactly these.
const (
	RedditUTCOffsetMinutes = 0
	TMGUTCOffsetMinutes    = -300
	DMUTCOffsetMinutes     = 60
)

// UTCOffsetMinutes returns the forum-local clock offset of a platform.
func UTCOffsetMinutes(p forum.Platform) int {
	switch p {
	case forum.PlatformTheMajesticGarden:
		return TMGUTCOffsetMinutes
	case forum.PlatformDreamMarket:
		return DMUTCOffsetMinutes
	default:
		return RedditUTCOffsetMinutes
	}
}

// AlignUTC converts every message timestamp of all three forums from
// forum-local time to UTC, in place — the §IV-B alignment step ("since
// each forum reports a time aligned on a different time-zone, we align the
// timestamps by adjusting all the profiles to UTC"). Skipping it shifts a
// cross-forum pair's daily-activity profiles against each other and breaks
// exactly the cross-forum experiments, while leaving same-forum alter-ego
// results untouched.
func (w *World) AlignUTC() {
	for _, d := range []*forum.Dataset{w.Reddit, w.TMG, w.DM} {
		offset := UTCOffsetMinutes(d.Platform)
		if offset == 0 {
			continue
		}
		for i := range d.Aliases {
			for j := range d.Aliases[i].Messages {
				m := &d.Aliases[i].Messages[j]
				m.PostedAt = timeutil.AlignUTC(m.PostedAt, offset)
			}
		}
	}
}
