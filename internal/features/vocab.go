package features

import (
	"math"
	"sort"

	"darklight/internal/sparse"
)

// VocabBuilder accumulates corpus-wide n-gram statistics over a stream of
// Docs, then freezes a Vocabulary: the top-N word grams and top-N char
// grams by total corpus frequency (§IV-A: "we order the n-grams by their
// frequency across the dataset [and] select the top N features").
type VocabBuilder struct {
	cfg      Config
	wordFreq map[GramID]int
	charFreq map[GramID]int
	wordDF   map[GramID]int
	charDF   map[GramID]int
	numDocs  int
	freqSeen [NumFreqFeatures]int
}

// NewVocabBuilder returns a builder for the given configuration.
func NewVocabBuilder(cfg Config) *VocabBuilder {
	return &VocabBuilder{
		cfg:      cfg,
		wordFreq: make(map[GramID]int),
		charFreq: make(map[GramID]int),
		wordDF:   make(map[GramID]int),
		charDF:   make(map[GramID]int),
	}
}

// Add folds one document's counts into the corpus statistics. The doc can
// be discarded afterwards.
func (b *VocabBuilder) Add(d *Doc) {
	b.numDocs++
	for g, c := range d.WordGrams {
		b.wordFreq[g] += c
		b.wordDF[g]++
	}
	for g, c := range d.CharGrams {
		b.charFreq[g] += c
		b.charDF[g]++
	}
	for i, f := range d.Freq {
		if f > 0 {
			b.freqSeen[i]++
		}
	}
}

// NumDocs returns the number of documents added so far.
func (b *VocabBuilder) NumDocs() int { return b.numDocs }

// Build freezes the vocabulary. The builder can keep accumulating and be
// rebuilt; Build itself does not mutate the builder.
func (b *VocabBuilder) Build() *Vocabulary {
	words := topN(b.wordFreq, b.cfg.MaxWordGrams)
	chars := topN(b.charFreq, b.cfg.MaxCharGrams)

	v := &Vocabulary{
		cfg:       b.cfg,
		wordIndex: make(map[GramID]uint32, len(words)),
		charIndex: make(map[GramID]uint32, len(chars)),
		wordIDF:   make([]float64, len(words)),
		charIDF:   make([]float64, len(chars)),
		numDocs:   b.numDocs,
	}
	n := float64(b.numDocs)
	for i, g := range words {
		v.wordIndex[g] = uint32(i)
		v.wordIDF[i] = idf(n, float64(b.wordDF[g]))
	}
	base := uint32(len(words))
	for i, g := range chars {
		v.charIndex[g] = base + uint32(i)
		v.charIDF[i] = idf(n, float64(b.charDF[g]))
	}
	return v
}

// idf is the smoothed inverse document frequency: ln((1+N)/(1+df)).
// Corpus-universal grams (df = N) weigh ≈ 0, which is what makes TF-IDF
// discriminate: without it the high-frequency function-word grams dominate
// every vector's norm and all users look alike (§IV-A: TF-IDF "gives more
// importance to features that are frequently used by only one user and
// less importance to popular features such as stop-words").
func idf(n, df float64) float64 {
	return math.Log((1 + n) / (1 + df))
}

// topN returns the n highest-frequency grams, ties broken by gram id so
// vocabulary construction is deterministic.
func topN(freq map[GramID]int, n int) []GramID {
	grams := make([]GramID, 0, len(freq))
	for g := range freq {
		grams = append(grams, g)
	}
	sort.Slice(grams, func(i, j int) bool {
		fi, fj := freq[grams[i]], freq[grams[j]]
		if fi != fj {
			return fi > fj
		}
		return grams[i] < grams[j]
	})
	if n >= 0 && len(grams) > n {
		grams = grams[:n]
	}
	return grams
}

// Vocabulary maps n-grams to feature indices and carries the IDF weights.
// Immutable after Build; safe for concurrent use.
//
// Index layout (dense, no gaps):
//
//	[0, W)                word n-grams, by descending corpus frequency
//	[W, W+C)              char n-grams
//	[W+C, W+C+42)         frequency features (punct, digits, specials)
//	[W+C+42, W+C+42+24)   reserved for the daily activity profile,
//	                      appended by the attribution layer
type Vocabulary struct {
	cfg       Config
	wordIndex map[GramID]uint32
	charIndex map[GramID]uint32
	wordIDF   []float64
	charIDF   []float64
	numDocs   int
}

// NumWordGrams returns the size of the word-gram section.
func (v *Vocabulary) NumWordGrams() int { return len(v.wordIndex) }

// NumCharGrams returns the size of the char-gram section.
func (v *Vocabulary) NumCharGrams() int { return len(v.charIndex) }

// NumDocs returns the corpus size the vocabulary was built from.
func (v *Vocabulary) NumDocs() int { return v.numDocs }

// FreqOffset is the index of the first frequency feature.
func (v *Vocabulary) FreqOffset() uint32 {
	return uint32(len(v.wordIndex) + len(v.charIndex))
}

// ActivityOffset is the index of the first daily-activity dimension.
func (v *Vocabulary) ActivityOffset() uint32 {
	off := v.FreqOffset()
	if v.cfg.IncludeFreq {
		off += uint32(NumFreqFeatures)
	}
	return off
}

// Dims is the total dimensionality including the 24 activity slots.
func (v *Vocabulary) Dims() int { return int(v.ActivityOffset()) + 24 }

// Vectorize converts a document into a TF-IDF weighted sparse vector in
// this vocabulary's index space. Grams outside the vocabulary are ignored.
// Term frequency is the gram count normalised by the document's total gram
// count of the same family, so documents of different lengths remain
// comparable.
func (v *Vocabulary) Vectorize(d *Doc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams) + NumFreqFeatures
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	wordDen := float64(max(d.WordTotal, 1))
	for g, c := range d.WordGrams {
		if i, ok := v.wordIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/wordDen*v.wordIDF[i])
		}
	}
	charDen := float64(max(d.CharTotal, 1))
	base := uint32(len(v.wordIndex))
	for g, c := range d.CharGrams {
		if i, ok := v.charIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/charDen*v.charIDF[i-base])
		}
	}
	if v.cfg.IncludeFreq {
		off := v.FreqOffset()
		for i, f := range d.Freq {
			if f != 0 {
				vec.Idx = append(vec.Idx, off+uint32(i))
				vec.Val = append(vec.Val, f)
			}
		}
	}
	vec.Sort()
	return vec
}

// VectorizeGrams is Vectorize restricted to the n-gram sections — the
// frequency features are omitted. The attribution layer keeps frequency
// and activity blocks separate so it can re-weight them at query time.
func (v *Vocabulary) VectorizeGrams(d *Doc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams)
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	wordDen := float64(max(d.WordTotal, 1))
	for g, c := range d.WordGrams {
		if i, ok := v.wordIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/wordDen*v.wordIDF[i])
		}
	}
	charDen := float64(max(d.CharTotal, 1))
	base := uint32(len(v.wordIndex))
	for g, c := range d.CharGrams {
		if i, ok := v.charIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/charDen*v.charIDF[i-base])
		}
	}
	vec.Sort()
	return vec
}
