// Package activity builds the daily activity profiles of §IV-B: a 24-bin
// histogram of the hours of the day in which a user posts, eq. (1):
//
//	P_u[h] = Σ_d a_u(d,h) / Σ_{d,h'} a_u(d,h')
//
// where a_u(d,h) is 1 iff user u posted at least once in hour h of day d.
// Timestamps are aligned to UTC, weekends and holidays are excluded (habits
// change on those days), and a profile requires at least MinTimestamps
// usable posts — both choices follow the paper, which follows La Morgia et
// al., "Time-zone geolocation of crowds in the dark web" (ICDCS 2018).
package activity

import (
	"errors"
	"fmt"
	"math"
	"time"

	"darklight/internal/sparse"
	"darklight/internal/timeutil"
)

// MinTimestamps is the minimum number of usable timestamps required to
// build a profile (paper: 30).
const MinTimestamps = 30

// Hours is the profile dimensionality.
const Hours = 24

// ErrInsufficientTimestamps is returned when, after exclusions, fewer than
// the required minimum timestamps remain.
var ErrInsufficientTimestamps = errors.New("activity: not enough usable timestamps")

// Options configure profile construction. The zero value gives the paper's
// behaviour with no holiday exclusion; use WithUSHolidays for the full rule.
type Options struct {
	// ForumUTCOffsetMinutes is the fixed offset of forum-local timestamps
	// from UTC. 0 means timestamps are already UTC.
	ForumUTCOffsetMinutes int
	// ExcludeWeekends drops Saturday/Sunday posts.
	ExcludeWeekends bool
	// Holidays, when non-nil, drops posts on the listed days.
	Holidays *timeutil.HolidayCalendar
	// MinTimestamps overrides the default minimum when > 0.
	MinTimestamps int
}

// PaperOptions returns the configuration used throughout the paper's
// experiments: UTC alignment, weekend exclusion, US holidays for the years
// the timestamps span.
func PaperOptions(years ...int) Options {
	cal := timeutil.NewHolidayCalendar()
	for _, y := range years {
		for k, v := range holidayDays(y) {
			cal.Add(k.Year(), k.Month(), k.Day(), v)
		}
	}
	return Options{ExcludeWeekends: true, Holidays: cal}
}

func holidayDays(year int) map[time.Time]string {
	c := timeutil.USHolidays(year)
	out := make(map[time.Time]string)
	for d := time.Date(year, 1, 1, 12, 0, 0, 0, time.UTC); d.Year() == year; d = d.AddDate(0, 0, 1) {
		if name, ok := c.Name(d); ok {
			out[d] = name
		}
	}
	return out
}

// Profile is a normalised 24-bin activity histogram.
type Profile struct {
	// Bins sums to 1 over the 24 hours (unless the profile is empty).
	Bins [Hours]float64
	// Samples is the number of usable timestamps the profile was built on.
	Samples int
	// ActiveBins is the number of distinct (day, hour) cells with activity
	// — the denominator of eq. (1).
	ActiveBins int
}

// Build constructs the profile from raw timestamps.
func Build(timestamps []time.Time, opts Options) (*Profile, error) {
	minTS := opts.MinTimestamps
	if minTS <= 0 {
		minTS = MinTimestamps
	}
	seen := make(map[timeutil.DayHour]struct{})
	var hourCounts [Hours]int
	usable := 0
	for _, ts := range timestamps {
		utc := timeutil.AlignUTC(ts, opts.ForumUTCOffsetMinutes)
		if opts.ExcludeWeekends && timeutil.IsWeekend(utc) {
			continue
		}
		if opts.Holidays.Contains(utc) {
			continue
		}
		usable++
		bin := timeutil.BinUTC(utc)
		if _, dup := seen[bin]; dup {
			continue // a_u(d,h) is binary: one post per (day,hour) counts
		}
		seen[bin] = struct{}{}
		hourCounts[bin.Hour]++
	}
	if usable < minTS {
		return nil, fmt.Errorf("%w: %d usable of %d required", ErrInsufficientTimestamps, usable, minTS)
	}
	p := &Profile{Samples: usable, ActiveBins: len(seen)}
	total := float64(len(seen))
	if total > 0 {
		for h, c := range hourCounts {
			p.Bins[h] = float64(c) / total
		}
	}
	return p, nil
}

// Vector returns the profile as a sparse vector over indices [0, 24).
// The attribution layer concatenates it after the text features.
func (p *Profile) Vector() sparse.Vector {
	return sparse.FromDense(p.Bins[:])
}

// Cosine returns the cosine similarity between two profiles — the paper's
// first measure for whether two aliases on different forums belong to the
// same person.
func Cosine(a, b *Profile) float64 {
	return sparse.Cosine(a.Vector(), b.Vector())
}

// PeakHour returns the hour with maximal activity; ties resolve to the
// earliest hour.
func (p *Profile) PeakHour() int {
	best := 0
	for h := 1; h < Hours; h++ {
		if p.Bins[h] > p.Bins[best] {
			best = h
		}
	}
	return best
}

// Entropy returns the Shannon entropy of the profile in bits. Uniform
// posting gives log2(24) ≈ 4.58; a bot posting at one fixed hour gives 0.
func (p *Profile) Entropy() float64 {
	e := 0.0
	for _, b := range p.Bins {
		if b > 0 {
			e -= b * math.Log2(b)
		}
	}
	return e
}
