package eval

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"darklight/internal/attribution"
)

func sweepMatcher(t *testing.T) (*attribution.Matcher, []attribution.Subject) {
	t.Helper()
	known, queries := PrefilterWorld(PrefilterWorldConfig{})
	opts := attribution.DefaultOptions()
	opts.Workers = 2
	m, err := attribution.NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, queries
}

func TestPrefilterWorldDeterministic(t *testing.T) {
	k1, q1 := PrefilterWorld(PrefilterWorldConfig{})
	k2, q2 := PrefilterWorld(PrefilterWorldConfig{})
	if !reflect.DeepEqual(k1, k2) || !reflect.DeepEqual(q1, q2) {
		t.Fatal("PrefilterWorld is not deterministic for a fixed config")
	}
	cfg := PrefilterWorldConfig{}.WithDefaults()
	if len(k1) != cfg.Communities*cfg.PerCommunity {
		t.Fatalf("got %d known, want %d", len(k1), cfg.Communities*cfg.PerCommunity)
	}
	if len(q1) != cfg.Communities*cfg.QueriesPer {
		t.Fatalf("got %d queries, want %d", len(q1), cfg.Communities*cfg.QueriesPer)
	}
}

// TestSweepPrefilterDefaultGrid is the operating-point sweep the manifest
// emits, pinned at its two load-bearing properties: every pruned point is
// lossless (recall exactly 1), and the default LSH point clears the 0.95
// recall floor the README advertises while scoring a small fraction of
// the known set.
func TestSweepPrefilterDefaultGrid(t *testing.T) {
	m, queries := sweepMatcher(t)
	table, err := SweepPrefilter(m, queries, 10, DefaultSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	if table.Known != 72 || table.Queries != len(queries) || table.K != 10 {
		t.Fatalf("table header off: %+v", table)
	}
	var sawPrunedDefault, sawLSHDefault bool
	for _, row := range table.Rows {
		switch row.Point.Mode {
		case "pruned":
			if row.Recall != 1 {
				t.Errorf("%s: pruned recall = %v, want exactly 1 (lossless)", row.Point.Label(), row.Recall)
			}
			if row.Point == (PrefilterPoint{Mode: "pruned"}) {
				sawPrunedDefault = true
				if row.Work >= 1 {
					t.Errorf("pruned default scored the whole known set (work=%.2f): no pruning happened", row.Work)
				}
			}
		case "lsh":
			if row.Point == (PrefilterPoint{Mode: "lsh"}) {
				sawLSHDefault = true
				// The satellite recall floor: the default operating point
				// must recover >= 95% of the true top-10 on the world it is
				// designed for, while examining far fewer candidates than
				// the exact scan.
				if row.Recall < 0.95 {
					t.Errorf("lsh default recall = %.3f, want >= 0.95", row.Recall)
				}
				if row.Work > 0.5 {
					t.Errorf("lsh default work = %.2f, want <= 0.5 of the exact scan", row.Work)
				}
			}
		}
		if row.Candidates < 0 || row.Work < 0 {
			t.Errorf("%s: negative work metrics: %+v", row.Point.Label(), row)
		}
	}
	if !sawPrunedDefault || !sawLSHDefault {
		t.Fatalf("default grid missing default points (pruned=%v lsh=%v)", sawPrunedDefault, sawLSHDefault)
	}

	s := table.String()
	for _, want := range []string{"recall", "candidates", "lsh 32x3", "pruned"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering missing %q:\n%s", want, s)
		}
	}
}

// TestSweepPrefilterDeterministic pins the whole table: same matcher,
// same queries, bit-identical rows on every run (work metrics are counts,
// never timings).
func TestSweepPrefilterDeterministic(t *testing.T) {
	m, queries := sweepMatcher(t)
	a, err := SweepPrefilter(m, queries, 5, DefaultSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepPrefilter(m, queries, 5, DefaultSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic:\n%v\nvs\n%v", a, b)
	}
	for _, row := range a.Rows {
		if math.IsNaN(row.Recall) || math.IsNaN(row.Work) {
			t.Fatalf("NaN in row %+v", row)
		}
	}
}

func TestSweepPrefilterErrors(t *testing.T) {
	m, queries := sweepMatcher(t)
	if _, err := SweepPrefilter(m, queries, 0, DefaultSweepPoints()); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := SweepPrefilter(m, nil, 5, DefaultSweepPoints()); err == nil {
		t.Error("no queries should error")
	}
	if _, err := SweepPrefilter(m, queries, 5, []PrefilterPoint{{Mode: "bogus"}}); err == nil {
		t.Error("unknown mode should error")
	}
}
