package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/prefilter"
)

// handleRank is POST /v1/rank: stage 1 only — the top-k known subjects by
// cosine similarity under the server's weights.
//
// Both the legacy path (no "prefilter" knob) and the knob path go through
// RankDetailed — Rank is literally RankDetailed with the stats dropped, so
// the response bytes are unchanged — which lets the rank span carry the
// pre-filter decision payload (mode, candidates examined, heap evictions)
// for every request, not just opted-in ones. The response shape still
// only grows the "prefilter" object when the request set the knob.
func (s *Service) handleRank(r *http.Request, st *state, body []byte) (any, *Error) {
	ctx, span := obs.Start(r.Context(), "rank")
	defer span.End()
	span.SetAttr("index_version", strconv.Itoa(st.version))
	var req RankRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	if req.K < 0 {
		return nil, errInvalidRequest("k must be >= 0")
	}
	mode, err := prefilter.ParseMode(req.Prefilter)
	if err != nil {
		return nil, errInvalidRequest(err.Error())
	}
	sub, apiErr := s.resolveSubject(ctx, st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	resp := &RankResponse{
		IndexVersion: st.version,
		Subject:      sub.Name,
	}
	start := s.clock.Now()
	_, psp := obs.Start(ctx, "prefilter")
	scored, pst := st.matcher.RankDetailed(sub, attribution.MatchOptions{K: req.K, Mode: mode})
	psp.SetAttr("mode", pst.Mode.String())
	psp.SetAttr("candidates", strconv.Itoa(pst.Candidates))
	psp.SetAttr("pruned", strconv.Itoa(pst.Pruned))
	psp.SetAttr("evictions", strconv.Itoa(pst.Evictions))
	psp.AddItems(int64(pst.Scored))
	psp.End()
	resp.Candidates = candidates(scored)
	if req.Prefilter == "" {
		return resp, nil
	}
	s.met.prefilterLat.With(pst.Mode.String()).Observe(s.clock.Now().Sub(start).Seconds())
	resp.Prefilter = &PrefilterInfo{
		Mode:       pst.Mode.String(),
		Candidates: pst.Candidates,
		Pruned:     pst.Pruned,
	}
	return resp, nil
}

// handleRescore is POST /v1/rescore: stage 2 over an explicit candidate
// list. Every candidate must exist in the live index — a silent drop would
// make "no result" ambiguous between "unknown name" and "scored last".
func (s *Service) handleRescore(r *http.Request, st *state, body []byte) (any, *Error) {
	ctx, span := obs.Start(r.Context(), "rescore")
	defer span.End()
	span.SetAttr("index_version", strconv.Itoa(st.version))
	var req RescoreRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	if len(req.Candidates) == 0 {
		return nil, errInvalidRequest("candidates must name at least one known subject")
	}
	list := make([]attribution.Scored, len(req.Candidates))
	for i, name := range req.Candidates {
		if _, ok := st.knownSet[name]; !ok {
			return nil, errUnknownAlias(name)
		}
		list[i] = attribution.Scored{Name: name}
	}
	sub, apiErr := s.resolveSubject(ctx, st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	span.AddItems(int64(len(list)))
	scored := st.matcher.Rescore(sub, list)
	return &RescoreResponse{
		IndexVersion: st.version,
		Subject:      sub.Name,
		Rescored:     candidates(scored),
	}, nil
}

// handleMatch is POST /v1/match: the full two-stage §IV-I algorithm. The
// body is field-for-field the facade's MatchResult — the concurrency test
// pins the bytes identical to darklight.Pipeline output.
func (s *Service) handleMatch(r *http.Request, st *state, body []byte) (any, *Error) {
	ctx, span := obs.Start(r.Context(), "match")
	defer span.End()
	span.SetAttr("index_version", strconv.Itoa(st.version))
	var req MatchRequest
	if apiErr := decodeRequest(body, 0, &req); apiErr != nil {
		return nil, apiErr
	}
	sub, apiErr := s.resolveSubject(ctx, st, &req.Subject)
	if apiErr != nil {
		return nil, apiErr
	}
	res := st.matcher.Match(sub)
	span.SetAttr("accepted", strconv.FormatBool(res.Accepted))
	return matchResponse(st.version, &res, s.cfg.Options.Threshold), nil
}

// matchResponse converts one MatchResult into the wire form.
func matchResponse(version int, res *attribution.MatchResult, threshold float64) *MatchResponse {
	out := &MatchResponse{
		IndexVersion: version,
		Subject:      res.Unknown,
		Candidates:   candidates(res.Candidates),
		Rescored:     candidates(res.Rescored),
		Accepted:     res.Accepted,
		Threshold:    threshold,
	}
	if res.Best.Name != "" {
		out.Best = &Candidate{Alias: res.Best.Name, Score: res.Best.Score}
	}
	return out
}

// handleHealthz is GET /v1/healthz. It needs no auth and survives the
// drain gate so orchestrators can watch a draining instance go quiet. The
// body carries the live snapshot's provenance — index version, reload
// count, and (for store-backed corpora) the journal sequence the snapshot
// was built from — so "is it up" and "is it current" are one probe.
func (s *Service) handleHealthz(r *http.Request, st *state, _ []byte) (any, *Error) {
	status := "ok"
	draining := s.draining.Load()
	if draining {
		status = "draining"
	}
	return &HealthResponse{
		Status:         status,
		IndexVersion:   st.version,
		KnownSubjects:  len(st.known),
		QuerySubjects:  len(st.query),
		Reloads:        int(s.reloadCount.Load()),
		LastJournalSeq: st.lastSeq,
		Draining:       draining,
	}, nil
}

// candidates converts matcher output to the wire form, re-asserting the
// deterministic order contract: score descending, ties broken by ascending
// alias name. The matcher already emits this order (topKScores and Rescore
// share the comparator); the sort here makes the contract local to the
// response instead of an assumption about a callee. An empty list encodes
// as [] rather than null.
func candidates(scored []attribution.Scored) []Candidate {
	out := make([]Candidate, len(scored))
	for i, c := range scored {
		out[i] = Candidate{Alias: c.Name, Score: c.Score}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Alias < out[j].Alias
	})
	return out
}

// resolveSubject turns a SubjectSpec into a matchable subject: a by-alias
// reference into the snapshot's query corpus, or an inline subject built
// through the exact BuildSubjects path the batch pipeline uses. The
// "resolve" span separates cheap alias lookups from expensive inline
// subject builds in a retained trace.
func (s *Service) resolveSubject(ctx context.Context, st *state, spec *SubjectSpec) (*attribution.Subject, *Error) {
	_, span := obs.Start(ctx, "resolve")
	defer span.End()
	if apiErr := spec.validate(); apiErr != nil {
		return nil, apiErr
	}
	if spec.Alias != "" {
		span.SetAttr("source", "alias")
		sub, ok := st.query[spec.Alias]
		if !ok {
			return nil, errUnknownAlias(spec.Alias)
		}
		return sub, nil
	}
	span.SetAttr("source", "inline")
	span.AddItems(int64(len(spec.Messages)))
	ds := forum.NewDataset("inline", forum.PlatformSynthetic)
	a := forum.Alias{Name: spec.Name, Messages: make([]forum.Message, len(spec.Messages))}
	for i, m := range spec.Messages {
		t, err := time.Parse(time.RFC3339, m.Time)
		if err != nil {
			return nil, errInvalidRequest(fmt.Sprintf("messages[%d].time: %v (want RFC 3339)", i, err))
		}
		// The sequential id makes the longest-first document selection a
		// pure function of the request: length ties keep request order.
		a.Messages[i] = forum.Message{
			ID:       fmt.Sprintf("q%06d", i),
			Author:   spec.Name,
			Body:     m.Body,
			PostedAt: t,
		}
	}
	ds.Add(a)
	subs, err := attribution.BuildSubjects(ds, s.cfg.Subjects)
	if err != nil {
		return nil, &Error{Code: CodeInternal, Message: "building query subject: " + err.Error(), Status: http.StatusInternalServerError}
	}
	return &subs[0], nil
}
