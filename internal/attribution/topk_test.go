package attribution

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"darklight/internal/features"
)

// referenceTopK is the historical sort-based selection (full index
// permutation, O(n log n)) that topKScores replaced. It is kept here as the
// executable specification: the heap must reproduce it bit for bit,
// including the name tiebreak.
func referenceTopK(known []Subject, scores []float64, k int) []Scored {
	if k > len(scores) {
		k = len(scores)
	}
	if k < 0 {
		k = 0
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return known[idx[a]].Name < known[idx[b]].Name
	})
	out := make([]Scored, 0, k)
	for _, i := range idx[:k] {
		out = append(out, Scored{Name: known[i].Name, Score: scores[i]})
	}
	return out
}

// TestTopKMatchesReferenceSort drives the heap selection against the sort
// reference on randomized score vectors. Scores are drawn from a tiny
// discrete set so ties — where only the name tiebreak separates candidates
// — occur constantly, and k sweeps the degenerate cases (0, 1, n, > n).
func TestTopKMatchesReferenceSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(60)
		known := make([]Subject, n)
		scores := make([]float64, n)
		for i := range known {
			// Duplicate names across some entries to exercise equal
			// (score, name) pairs too.
			known[i] = Subject{Name: fmt.Sprintf("s%02d", r.Intn(n+1))}
			scores[i] = float64(r.Intn(5)) / 4
			if r.Intn(4) == 0 {
				scores[i] = 0 // heavy mass on the zero-score tie
			}
		}
		for _, k := range []int{0, 1, 2, 10, n - 1, n, n + 7} {
			got, evictions := topKScores(known, scores, k, nil)
			want := referenceTopK(known, scores, k)
			// Every push either grows the heap or (at most) evicts once, so
			// evictions can never exceed the candidates beyond the first k.
			if max := n - len(want); evictions > max || evictions < 0 {
				t.Fatalf("trial %d k=%d: evictions %d out of range [0, %d]", trial, k, evictions, max)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d, want %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d pos %d: got %+v, want %+v\nfull got  %v\nfull want %v",
						trial, k, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestTopKScratchReuse runs many selections through one shared scratch
// buffer (the MatchAll worker pattern) and checks results stay identical to
// fresh-buffer selections — a dirty heap must never leak across queries.
func TestTopKScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var scratch []heapEntry
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		known := make([]Subject, n)
		scores := make([]float64, n)
		for i := range known {
			known[i] = Subject{Name: fmt.Sprintf("name%03d", r.Intn(50))}
			scores[i] = r.Float64()
		}
		k := 1 + r.Intn(n+3)
		got, gotEv := topKScores(known, scores, k, &scratch)
		want, wantEv := topKScores(known, scores, k, nil)
		if !reflect.DeepEqual(got, want) || gotEv != wantEv {
			t.Fatalf("trial %d: scratch-reuse selection diverged:\ngot  %v (ev %d)\nwant %v (ev %d)", trial, got, gotEv, want, wantEv)
		}
	}
}

// referenceRescore is the pre-hoist Rescore: byName rebuilt per call,
// candidate documents re-extracted per call. The production path must
// return identical output from its matcher-lifetime caches.
func referenceRescore(m *Matcher, unknown *Subject, candidates []Scored) []Scored {
	byName := make(map[string]*Subject, len(m.known))
	for i := range m.known {
		byName[m.known[i].Name] = &m.known[i]
	}
	subjects := make([]*Subject, 0, len(candidates))
	for _, c := range candidates {
		if s, ok := byName[c.Name]; ok {
			subjects = append(subjects, s)
		}
	}
	vb := features.NewVocabBuilder(m.opts.Final)
	docs := make([]*features.Doc, len(subjects))
	for i, s := range subjects {
		docs[i] = features.Extract(s.Text, m.opts.Final)
		vb.Add(docs[i])
	}
	vocab := vb.Build()

	w := m.opts.weights()
	ub := buildBlocks(unknown, vocab, m.opts.Final)
	out := make([]Scored, 0, len(subjects))
	for i, s := range subjects {
		cb := buildBlocksFromDoc(docs[i], s, vocab)
		out = append(out, Scored{Name: s.Name, Score: similarity(&ub, &cb, w)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// TestRescoreUnchangedByHoistedIndex pins the byName/doc-cache hoist:
// Rescore must produce exactly the scores the per-call implementation did,
// on first call (cold cache) and on repeat calls (warm cache), including
// candidates that are not in the known set at all.
func TestRescoreUnchangedByHoistedIndex(t *testing.T) {
	authors := makeAuthors(t, 12, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for p := range probes[:4] {
			cands := m.Rank(&probes[p], 6)
			// Inject an unknown name: both paths must skip it.
			cands = append(cands, Scored{Name: "no-such-alias", Score: 0.9})
			got := m.Rescore(&probes[p], cands)
			want := referenceRescore(m, &probes[p], cands)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d probe %d: Rescore diverged from reference:\ngot  %v\nwant %v",
					round, p, got, want)
			}
		}
	}
}

// TestMatchSharedExtractionEquivalence checks the Match fast path (one
// extraction shared by both stages) against the public two-call
// composition, which extracts separately per stage.
func TestMatchSharedExtractionEquivalence(t *testing.T) {
	authors := makeAuthors(t, 10, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.sameExtract {
		t.Fatal("paper configs must share extraction (budgets differ, nothing else)")
	}
	for p := range probes {
		got := m.Match(&probes[p])
		wantCands := m.Rank(&probes[p], m.opts.K)
		wantRescored := m.Rescore(&probes[p], wantCands)
		if !reflect.DeepEqual(got.Candidates, wantCands) {
			t.Fatalf("probe %d: Match candidates diverge from Rank", p)
		}
		if !reflect.DeepEqual(got.Rescored, wantRescored) {
			t.Fatalf("probe %d: Match rescoring diverges from Rescore", p)
		}
	}

	// And when the configs do NOT share extraction, Match must fall back to
	// a per-stage extraction and still agree with the composition.
	opts := testOptions()
	opts.Final.Lemmatize = false
	m2, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.sameExtract {
		t.Fatal("lemmatisation toggle must break extraction sharing")
	}
	got := m2.Match(&probes[0])
	want := m2.Rescore(&probes[0], m2.Rank(&probes[0], m2.opts.K))
	if !reflect.DeepEqual(got.Rescored, want) {
		t.Fatal("non-shared-extraction Match diverges from Rank+Rescore composition")
	}
}

// TestMatchAllWorkerCountInvariant runs the same workload with Workers=1
// and Workers=8 and requires byte-identical result slices — scoring must
// not depend on scheduling, buffer reuse, or cache warm-up order.
func TestMatchAllWorkerCountInvariant(t *testing.T) {
	authors := makeAuthors(t, 14, 300)
	known, probes := split(authors)

	run := func(workers int) []MatchResult {
		opts := DefaultOptions()
		opts.Workers = workers
		m, err := NewMatcher(known, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.MatchAll(context.Background(), probes)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("MatchAll results depend on worker count:\nworkers=1 %+v\nworkers=8 %+v", serial, parallel)
	}
	// The textual form must match too ("byte-identical"): DeepEqual and
	// formatting agree unless a NaN sneaks in, which this also rejects.
	if fmt.Sprintf("%+v", serial) != fmt.Sprintf("%+v", parallel) {
		t.Fatal("MatchAll textual output differs between worker counts")
	}
}
