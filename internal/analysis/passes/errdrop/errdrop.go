// Package errdrop flags silently discarded errors — the exact bug class
// behind the PR 2 BuildSubjects fix, where a worker swallowed every
// non-ErrInsufficientTimestamps failure and the pipeline shipped partial
// subject sets as if they were complete. Two shapes are flagged: a call
// whose error result is assigned to the blank identifier (`_ = f()`,
// `v, _ := g()`), and a bare call statement that returns an error.
//
// Exemptions (deliberate, documented):
//   - deferred and go'd calls (`defer f.Close()`): the error has nowhere
//     to go; sites that must observe Close errors do so inline.
//   - fmt.Print/Printf/Println to stdout: best-effort by convention.
//   - methods on strings.Builder and bytes.Buffer, documented to never
//     return a non-nil error.
//
// Anything else that must drop an error carries a
// `//lint:ignore errdrop <reason>` directive.
package errdrop

import (
	"go/ast"
	"go/types"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultScope covers the whole pipeline under internal/ plus the
// public facade and commands.
const DefaultScope = "internal,cmd,darklight"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error returns (blank assignment or bare call); suppress legitimate sites with lint:ignore",
	Run:  run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// The deferred/spawned call itself is exempt; its argument
			// expressions and function-literal body are still walked.
			if call := callOf(n); call != nil {
				for _, arg := range call.Args {
					walkExempt(pass, arg)
				}
				if lit, ok := call.Fun.(*ast.FuncLit); ok {
					walkExempt(pass, lit.Body)
				}
			}
			return false
		case *ast.ExprStmt:
			checkBareCall(pass, n)
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
		return true
	})
	return nil, nil
}

func callOf(n ast.Node) *ast.CallExpr {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return n.Call
	case *ast.GoStmt:
		return n.Call
	}
	return nil
}

// walkExempt re-enters the normal checks for subtrees of an exempted
// defer/go statement (closure bodies must not hide dropped errors).
func walkExempt(pass *analysis.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.ExprStmt:
			checkBareCall(pass, n)
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
		return true
	})
}

func checkBareCall(pass *analysis.Pass, st *ast.ExprStmt) {
	call, ok := st.X.(*ast.CallExpr)
	if !ok || exempt(pass, call) {
		return
	}
	if len(astquery.ErrorResults(pass.TypesInfo, call)) > 0 {
		pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or lint:ignore with a reason", calleeName(call))
	}
}

func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	info := pass.TypesInfo
	// Multi-value form: v, _ := g() — one call, tuple results.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			return
		}
		for _, i := range astquery.ErrorResults(info, call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Pos(), "error result of %s assigned to _; handle it or lint:ignore with a reason", calleeName(call))
				return
			}
		}
		return
	}
	// Parallel form: _ = f(), possibly mixed with other assignments.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			continue
		}
		res := astquery.ErrorResults(info, call)
		if len(res) == 1 && res[0] == 0 {
			pass.Reportf(as.Pos(), "error result of %s assigned to _; handle it or lint:ignore with a reason", calleeName(call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exempt reports whether the callee is on the best-effort list:
// fmt.Print* (stdout by convention), fmt.Fprint* into sinks that cannot
// fail or whose failure is unobservable (strings.Builder, bytes.Buffer,
// os.Stdout/Stderr, http.ResponseWriter), methods on those same sinks,
// and (*flag.FlagSet).Parse, whose ExitOnError default never returns.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	if pkg, name := astquery.PkgFunc(info, call); pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && infallibleSink(pass, call.Args[0])
		}
	}
	if recv, name := astquery.MethodCall(info, call); recv != nil {
		if astquery.IsNamed(recv, "strings", "Builder") || astquery.IsNamed(recv, "bytes", "Buffer") ||
			astquery.IsNamed(recv, "net/http", "ResponseWriter") {
			return true
		}
		if name == "Parse" && astquery.IsNamed(recv, "flag", "FlagSet") {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isStdStream(info, sel.X) {
			return true
		}
	}
	return false
}

// infallibleSink reports whether the expression is a writer whose Write
// never fails or whose failure cannot be acted on.
func infallibleSink(pass *analysis.Pass, e ast.Expr) bool {
	info := pass.TypesInfo
	if isStdStream(info, e) {
		return true
	}
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	return astquery.IsNamed(t, "strings", "Builder") ||
		astquery.IsNamed(t, "bytes", "Buffer") ||
		astquery.IsNamed(t, "net/http", "ResponseWriter")
}

func isStdStream(info *types.Info, e ast.Expr) bool {
	return astquery.IsPkgSelector(info, e, "os", "Stdout") ||
		astquery.IsPkgSelector(info, e, "os", "Stderr")
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
