package main

// -summary joins every recorded trajectory file (BENCH_*.json) into one
// aligned table so the whole perf surface — matcher, ingest, obs
// overhead, serving tail latency, pre-filter and cold-start speedups —
// reads in a single glance instead of six JSON files. It is read-only:
// no benchmarks run, nothing is rewritten.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// runSummary renders the trajectory files at paths as one table. Files
// that fail to parse are reported and skipped — a summary over five of
// six suites still beats no summary.
func runSummary(paths []string, w io.Writer) error {
	sort.Strings(paths)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	//lint:ignore errdrop tabwriter buffers; write errors surface at the checked Flush
	fmt.Fprintln(tw, "suite\tbenchmark\tbefore\tafter\tspeedup\tp99")
	type ratio struct {
		suite, kind, key string
		v                float64
	}
	var ratios []ratio
	seen := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping %s: %v\n", path, err)
			continue
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping unreadable %s: %v\n", path, err)
			continue
		}
		seen++
		suiteName := strings.TrimSuffix(strings.TrimPrefix(trimDir(path), "BENCH_"), ".json")
		names := make([]string, 0, len(f.Benchmarks))
		for n := range f.Benchmarks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := f.Benchmarks[n]
			//lint:ignore errdrop tabwriter buffers; write errors surface at the checked Flush
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
				suiteName, n, fmtNs(e.Before), fmtNs(e.After), fmtSpeedup(e.Speedup), fmtP99(e))
		}
		for key, v := range f.Overheads {
			ratios = append(ratios, ratio{suiteName, "overhead", key, v})
		}
		for key, v := range f.PrefilterSpeedups {
			ratios = append(ratios, ratio{suiteName, "prefilter-speedup", key, v})
		}
		for key, v := range f.ColdStartSpeedups {
			ratios = append(ratios, ratio{suiteName, "cold-start-speedup", key, v})
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if seen == 0 {
		return fmt.Errorf("no readable trajectory files among %d candidates", len(paths))
	}
	if len(ratios) > 0 {
		sort.Slice(ratios, func(i, j int) bool {
			a, b := ratios[i], ratios[j]
			if a.suite != b.suite {
				return a.suite < b.suite
			}
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			return a.key < b.key
		})
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		tw = tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
		//lint:ignore errdrop tabwriter buffers; write errors surface at the checked Flush
		fmt.Fprintln(tw, "suite\tderived\tpair\tvalue")
		for _, r := range ratios {
			val := fmt.Sprintf("%.2fx", r.v)
			if r.kind == "overhead" {
				val = fmt.Sprintf("%+.1f%%", r.v*100)
			}
			//lint:ignore errdrop tabwriter buffers; write errors surface at the checked Flush
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.suite, r.kind, r.key, val)
		}
		return tw.Flush()
	}
	return nil
}

// trimDir strips any directory prefix so suite naming works for paths
// like ./BENCH_serve.json too.
func trimDir(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// fmtNs renders one phase's ns/op as a duration ("-" for a phase not yet
// recorded).
func fmtNs(m *Metrics) string {
	if m == nil || m.NsPerOp == 0 {
		return "-"
	}
	return time.Duration(m.NsPerOp).Round(10 * time.Nanosecond).String()
}

// fmtSpeedup renders before÷after ("-" until both phases exist).
func fmtSpeedup(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", v)
}

// fmtP99 renders the most recent phase's p99-ns metric, preferring after.
func fmtP99(e *Entry) string {
	m := e.After
	if m == nil || m.P99Ns == 0 {
		m = e.Before
	}
	if m == nil || m.P99Ns == 0 {
		return "-"
	}
	return time.Duration(m.P99Ns).Round(10 * time.Nanosecond).String()
}
