package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// On-disk snapshot layout (all integers little-endian):
//
//	header:
//	  magic            8 bytes  "DLIXSNP1"
//	  format version   u32
//	  section count    u32
//	  index version    u64      snapshot generation, bumps on every Save
//	  last seq         u64      journal sequence already folded in
//	  corpus digest    32 bytes sha-256 of the canonical corpus JSONL
//	sections, back to back:
//	  name             u32 length + bytes
//	  payload length   u64
//	  payload digest   32 bytes sha-256 of the payload
//	  payload
//
// Every section is digest-verified on load before a single byte of it is
// decoded, so a flipped bit anywhere surfaces as a CorruptError naming
// the section — never a panic or a silently wrong index. Within a
// payload, decoding is bounds-checked (reader.fail) and every section
// must be consumed exactly, so a structurally mangled payload that
// happens to carry a fresh digest still fails loudly.

const (
	magic         = "DLIXSNP1"
	formatVersion = 1
	digestLen     = sha256.Size
)

// CorruptError reports a structurally invalid or digest-mismatched
// snapshot or journal. Section names the part that failed verification.
type CorruptError struct {
	Path    string
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: %s: section %q: %s", e.Path, e.Section, e.Reason)
}

// corrupt builds a CorruptError; path is filled in by the loader.
func corrupt(section, format string, args ...any) *CorruptError {
	return &CorruptError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// header is the decoded fixed header.
type header struct {
	IndexVersion uint64
	LastSeq      uint64
	CorpusDigest [digestLen]byte
}

// section is one named, digest-carrying payload.
type section struct {
	name    string
	payload []byte
}

// encodeSnapshot frames the sections behind the fixed header.
func encodeSnapshot(h header, sections []section) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], formatVersion)
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(sections)))
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:], h.IndexVersion)
	buf.Write(tmp[:])
	binary.LittleEndian.PutUint64(tmp[:], h.LastSeq)
	buf.Write(tmp[:])
	buf.Write(h.CorpusDigest[:])
	for _, s := range sections {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(s.name)))
		buf.Write(tmp[:4])
		buf.WriteString(s.name)
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(s.payload)))
		buf.Write(tmp[:])
		digest := sha256.Sum256(s.payload)
		buf.Write(digest[:])
		buf.Write(s.payload)
	}
	return buf.Bytes()
}

// decodeSnapshot verifies the header and every section digest, returning
// the sections in file order. All errors are *CorruptError (Path unset).
func decodeSnapshot(raw []byte) (header, []section, error) {
	var h header
	r := &reader{b: raw}
	if got := r.bytes(len(magic)); r.fail || string(got) != magic {
		return h, nil, corrupt("header", "bad magic (not a snapshot file)")
	}
	if v := r.u32(); r.fail || v != formatVersion {
		return h, nil, corrupt("header", "format version %d, want %d", v, formatVersion)
	}
	count := int(r.u32())
	h.IndexVersion = r.u64()
	h.LastSeq = r.u64()
	copy(h.CorpusDigest[:], r.bytes(digestLen))
	if r.fail {
		return h, nil, corrupt("header", "truncated header")
	}
	const maxSections = 1 << 10
	if count < 0 || count > maxSections {
		return h, nil, corrupt("header", "implausible section count %d", count)
	}
	sections := make([]section, 0, count)
	for i := 0; i < count; i++ {
		nameLen := int(r.u32())
		if r.fail || nameLen > 256 {
			return h, nil, corrupt("header", "section %d: bad name length", i)
		}
		name := string(r.bytes(nameLen))
		payloadLen := r.u64()
		if r.fail || payloadLen > uint64(len(raw)) {
			return h, nil, corrupt(name, "implausible payload length %d", payloadLen)
		}
		var want [digestLen]byte
		copy(want[:], r.bytes(digestLen))
		payload := r.bytes(int(payloadLen))
		if r.fail {
			return h, nil, corrupt(name, "truncated section")
		}
		if got := sha256.Sum256(payload); got != want {
			return h, nil, corrupt(name, "digest mismatch (corrupt payload)")
		}
		sections = append(sections, section{name: name, payload: payload})
	}
	if r.off != len(raw) {
		return h, nil, corrupt("trailer", "%d trailing bytes after the last section", len(raw)-r.off)
	}
	return h, sections, nil
}

// writer is a little-endian append-only encoder.
type writer struct {
	b []byte
}

func (w *writer) u8(v uint8)    { w.b = append(w.b, v) }
func (w *writer) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *writer) blob(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}

// reader is the bounds-checked little-endian decoder. After the first
// out-of-bounds read, fail latches and every value returned is zero; the
// caller checks fail (or done) once at the end of the payload.
type reader struct {
	b    []byte
	off  int
	fail bool
}

func (r *reader) bytes(n int) []byte {
	if r.fail || n < 0 || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	p := r.bytes(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u32() uint32 {
	p := r.bytes(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.bytes(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) str() string  { return string(r.bytes(int(r.u32()))) }
func (r *reader) blob() []byte { return r.bytes(int(r.u32())) }
func (r *reader) done() bool   { return !r.fail && r.off == len(r.b) }
func (r *reader) length() int  { return r.lengthBound(0) }

// lengthBound reads a u32 element count and sanity-bounds it against the
// remaining payload so a hostile count cannot drive a giant allocation.
func (r *reader) lengthBound(elemSize int) int {
	n := int(r.u32())
	// A hostile length must not drive a giant allocation: every element
	// costs at least elemSize (or 1) byte of remaining payload.
	per := elemSize
	if per < 1 {
		per = 1
	}
	if r.fail || n < 0 || n > (len(r.b)-r.off)/per+1 {
		r.fail = true
		return 0
	}
	return n
}
