package synth

import (
	"math"
	"math/rand"
	"time"
)

// The circadian model: a person posts according to a two-peak wrapped
// Gaussian mixture over local hours plus a uniform background, shifted by
// the person's timezone. This is the signal the daily-activity profile of
// §IV-B exploits; its strength (peak widths, uniform fraction) controls how
// much the activity feature helps attribution — Fig. 4 of the paper.

// SampleHourLocal draws a local posting hour (continuous, in [0, 24)).
func (p *Person) SampleHourLocal(r *rand.Rand) float64 {
	x := r.Float64()
	switch {
	case x < p.uniformProb:
		return 24 * r.Float64()
	case x < p.uniformProb+p.secondProb:
		return wrap24(p.secondPeak + p.secondWidth*r.NormFloat64())
	default:
		return wrap24(p.peakHour + p.peakWidth*r.NormFloat64())
	}
}

func wrap24(h float64) float64 {
	h = math.Mod(h, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// SampleTimestamps draws n posting timestamps for the person within
// [start, end), expressed in UTC. Posting days are drawn uniformly
// (weekend posting happens too — polishing is what excludes it later),
// hours from the circadian model, then the local time is converted to UTC
// using the person's timezone.
func (p *Person) SampleTimestamps(r *rand.Rand, n int, start, end time.Time) []time.Time {
	if n <= 0 || !end.After(start) {
		return nil
	}
	days := int(end.Sub(start).Hours() / 24)
	if days < 1 {
		days = 1
	}
	out := make([]time.Time, n)
	for i := range out {
		day := start.AddDate(0, 0, r.Intn(days))
		h := p.SampleHourLocal(r)
		hour := int(h)
		minute := int((h - float64(hour)) * 60)
		second := r.Intn(60)
		local := time.Date(day.Year(), day.Month(), day.Day(), hour, minute, second, 0, time.UTC)
		// local is the person's wall clock; UTC = local − offset.
		out[i] = local.Add(-time.Duration(p.TZOffsetMinutes) * time.Minute)
	}
	return out
}

// Year2017 is the sampling window used by default: the paper notes that
// "almost all the posts in the datasets were written in the same year,
// 2017".
var (
	Year2017Start = time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	Year2017End   = time.Date(2017, 12, 30, 0, 0, 0, 0, time.UTC)
)
