// Seeded violations for the wallclock analyzer: internal/activity is a
// pipeline package, not on the wall-clock allowlist — a time.Now() here
// would leak the run's clock into the 24-bin activity profiles.
package activity

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock outside the allowlist`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since reads the wall clock outside the allowlist`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock outside the allowlist`
}

// Pure calendar arithmetic is fine: no clock read.
func good(t time.Time) time.Time {
	return t.UTC().Truncate(time.Hour)
}

func suppressed() time.Time {
	//lint:ignore wallclock demo: progress log timestamp, never enters a profile
	return time.Now()
}
