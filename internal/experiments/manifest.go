package experiments

import (
	"fmt"

	"darklight/internal/forum"
	"darklight/internal/obs"
)

// Manifest assembles the run.json audit artifact for one experiment run:
// the lab configuration and seeds, a SHA-256 digest of every prepared
// dataset, the stage summaries of the run's tracer (pass nil for an
// untraced run), and the final metric snapshot. Everything except
// CreatedUTC and the stage durations is reproducible: two runs of the
// same config on any machine produce identical digests, metric values,
// and results. Per-experiment results are added by the caller via
// AddResult as they render.
func (l *Lab) Manifest(tracer *obs.Tracer) (*obs.Manifest, error) {
	m := obs.NewManifest("experiments")
	m.Config = l.Cfg
	m.AddSeed("world", int64(l.Cfg.Seed))
	m.AddSeed("alter-ego-split", int64(l.Cfg.Seed))
	for _, d := range []*forum.Dataset{l.Reddit, l.AEReddit, l.TMG, l.AETMG, l.DM, l.AEDM} {
		if d == nil {
			continue
		}
		sum, err := forum.DigestJSONL(d)
		if err != nil {
			return nil, fmt.Errorf("experiments: digest %s: %w", d.Name, err)
		}
		m.Datasets = append(m.Datasets, obs.DatasetDigest{
			Name:     d.Name,
			Aliases:  d.Len(),
			Messages: d.TotalMessages(),
			SHA256:   sum,
		})
	}
	if tracer != nil {
		m.Stages = tracer.Stages()
	}
	m.Metrics = obs.Default().Snapshot()
	return m, nil
}
