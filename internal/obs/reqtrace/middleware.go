package reqtrace

import (
	"net/http"
	"time"
)

// Middleware wraps any http.Handler with request tracing: inbound
// traceparent honoured, response stamped with this hop's traceparent and
// request id, a root "serve" span covering the handler, and the finished
// request fed to the Recorder's sinks. now is the caller's clock (the
// daemons pass time.Now; tests pass a fake). A nil Recorder returns next
// unchanged — zero wrapping, zero cost.
//
// internal/serve has its own deeper integration (per-stage spans inside
// its middleware chain); this generic wrapper is for handlers that are
// opaque to us, like forumd's mirror tree.
func Middleware(next http.Handler, rec *Recorder, now func() time.Time) http.Handler {
	if rec == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := now()
		act := rec.Begin(r.Header.Get(Header))
		w.Header().Set(Header, act.Traceparent())
		w.Header().Set(RequestIDHeader, act.RequestID)
		cw := &countingWriter{ResponseWriter: w, code: http.StatusOK}
		ctx, span := act.Start(r.Context(), "serve")
		span.SetAttr("path", r.URL.Path)
		next.ServeHTTP(cw, r.WithContext(ctx))
		span.End()
		rec.Finish(act, RequestInfo{
			Endpoint: r.URL.Path,
			Method:   r.Method,
			Code:     cw.code,
			Duration: now().Sub(start),
			Bytes:    cw.bytes,
		})
	})
}

// countingWriter records the status code and body size as they pass
// through. Flush is forwarded so streaming handlers (forumd's stall mode
// trickles bytes) keep working under the wrapper.
type countingWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *countingWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
