// Seeded violations for the maporder analyzer: this fake package's
// import path ("internal/features") is inside the bit-identical scope.
package features

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
	}
	return keys
}

func goodSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map order`
	}
	return sum
}

func badFloatSumSpelled(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation over map order`
	}
	return sum
}

// Integer accumulation commutes exactly; no finding.
func goodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A loop-local slice never leaks iteration order past the loop body.
func goodLocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func badBuilderWrite(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside map iteration writes in random order`
	}
}

func badFprint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration emits lines in random order`
	}
}

func badSend(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `send on a channel inside map iteration`
	}
}

// A package-local sort helper (the repo's sortStrings idiom) waives the
// finding just like sort.Strings would.
func goodLocalSortHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore maporder demo: the caller sorts the merged result
		keys = append(keys, k)
	}
	return keys
}
