// Package darkweb serves a forum dataset over HTTP the way a hidden
// service would: board index, paginated thread listings, paginated thread
// pages with posts. It is the test double for the paper's data-collection
// targets ("these sites do not have open APIs; we had to scrape the
// content of the forums", §III-B) — the scraper package crawls it exactly
// as it would crawl the real thing, including slow responses and transient
// errors.
package darkweb

import (
	"fmt"
	"html"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"darklight/internal/forum"
)

// PostsPerPage is the thread pagination size.
const PostsPerPage = 20

// ThreadsPerPage is the board pagination size.
const ThreadsPerPage = 25

// Options tune the server's failure injection.
type Options struct {
	// Latency delays every response (simulated Tor circuit time).
	Latency time.Duration
	// FailureRate is the probability of answering 503 instead of content
	// (the scraper must retry). 0 disables.
	FailureRate float64
	// Seed drives failure injection.
	Seed int64
}

// Server renders one dataset as a forum.
type Server struct {
	name string
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	boards  []string
	threads map[string][]string        // board → thread ids (sorted)
	posts   map[string][]forum.Message // thread id → posts by time
}

// NewServer indexes the dataset into boards and threads. Messages without
// a thread are grouped into a per-board "general" thread.
func NewServer(name string, d *forum.Dataset, opts Options) *Server {
	s := &Server{
		name:    name,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		threads: make(map[string][]string),
		posts:   make(map[string][]forum.Message),
	}
	boardSet := make(map[string]map[string]bool)
	for i := range d.Aliases {
		for _, m := range d.Aliases[i].Messages {
			board := m.Board
			if board == "" {
				board = "general"
			}
			thread := m.Thread
			if thread == "" {
				thread = board + "-general"
			}
			if boardSet[board] == nil {
				boardSet[board] = make(map[string]bool)
			}
			if !boardSet[board][thread] {
				boardSet[board][thread] = true
				s.threads[board] = append(s.threads[board], thread)
			}
			s.posts[thread] = append(s.posts[thread], m)
		}
	}
	for board, threads := range s.threads {
		sort.Strings(threads)
		s.threads[board] = threads
		s.boards = append(s.boards, board)
	}
	sort.Strings(s.boards)
	for _, posts := range s.posts {
		sort.Slice(posts, func(i, j int) bool {
			if !posts[i].PostedAt.Equal(posts[j].PostedAt) {
				return posts[i].PostedAt.Before(posts[j].PostedAt)
			}
			return posts[i].ID < posts[j].ID
		})
	}
	return s
}

// Boards returns the board names.
func (s *Server) Boards() []string { return append([]string(nil), s.boards...) }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.withChaos(s.handleIndex))
	mux.HandleFunc("/board/", s.withChaos(s.handleBoard))
	mux.HandleFunc("/thread/", s.withChaos(s.handleThread))
	return mux
}

// withChaos applies latency and failure injection.
func (s *Server) withChaos(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.Latency > 0 {
			time.Sleep(s.opts.Latency)
		}
		if s.opts.FailureRate > 0 {
			s.mu.Lock()
			fail := s.rng.Float64() < s.opts.FailureRate
			s.mu.Unlock()
			if fail {
				http.Error(w, "circuit collapsed, try again", http.StatusServiceUnavailable)
				return
			}
		}
		h(w, r)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", html.EscapeString(s.name))
	fmt.Fprintf(&b, "<h1>%s</h1>\n<ul class=\"boards\">\n", html.EscapeString(s.name))
	for _, board := range s.boards {
		fmt.Fprintf(&b, "<li><a class=\"board\" href=\"/board/%s\">%s</a> (%d threads)</li>\n",
			board, html.EscapeString(board), len(s.threads[board]))
	}
	b.WriteString("</ul></body></html>\n")
	writeHTML(w, b.String())
}

func (s *Server) handleBoard(w http.ResponseWriter, r *http.Request) {
	board := strings.TrimPrefix(r.URL.Path, "/board/")
	threads, ok := s.threads[board]
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := pageOf(r)
	start, end, last := paginate(len(threads), ThreadsPerPage, page)
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h2>board: %s</h2>\n<ul class=\"threads\">\n", html.EscapeString(board))
	for _, t := range threads[start:end] {
		fmt.Fprintf(&b, "<li><a class=\"thread\" href=\"/thread/%s\">%s</a> (%d posts)</li>\n",
			t, html.EscapeString(t), len(s.posts[t]))
	}
	b.WriteString("</ul>\n")
	if page < last {
		fmt.Fprintf(&b, "<a class=\"next\" href=\"/board/%s?page=%d\">next</a>\n", board, page+1)
	}
	b.WriteString("</body></html>\n")
	writeHTML(w, b.String())
}

func (s *Server) handleThread(w http.ResponseWriter, r *http.Request) {
	thread := strings.TrimPrefix(r.URL.Path, "/thread/")
	posts, ok := s.posts[thread]
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := pageOf(r)
	start, end, last := paginate(len(posts), PostsPerPage, page)
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h2>thread: %s</h2>\n", html.EscapeString(thread))
	for _, p := range posts[start:end] {
		fmt.Fprintf(&b,
			"<article class=\"post\" data-id=%q data-author=%q data-board=%q data-time=%q>\n%s\n</article>\n",
			p.ID, p.Author, p.Board, p.PostedAt.Format(time.RFC3339),
			html.EscapeString(p.Body))
	}
	if page < last {
		fmt.Fprintf(&b, "<a class=\"next\" href=\"/thread/%s?page=%d\">next</a>\n", thread, page+1)
	}
	b.WriteString("</body></html>\n")
	writeHTML(w, b.String())
}

func writeHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(body))
}

func pageOf(r *http.Request) int {
	p, err := strconv.Atoi(r.URL.Query().Get("page"))
	if err != nil || p < 0 {
		return 0
	}
	return p
}

// paginate returns the [start, end) slice bounds of a page and the last
// valid page index.
func paginate(total, perPage, page int) (start, end, last int) {
	if total == 0 {
		return 0, 0, 0
	}
	last = (total - 1) / perPage
	if page > last {
		page = last
	}
	start = page * perPage
	end = start + perPage
	if end > total {
		end = total
	}
	return start, end, last
}
