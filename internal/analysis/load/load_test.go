package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadSinglePackage(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := Load(Config{Dir: root}, "./internal/timeutil")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "darklight/internal/timeutil" {
		t.Errorf("Path = %q", p.Path)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatal("package not type-checked")
	}
	if p.Types.Scope().Lookup("AlignUTC") == nil {
		t.Error("AlignUTC not found in package scope")
	}
	// Test files must be excluded: darklint checks shipped code only.
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if filepath.Base(name) == "timeutil_test.go" {
			t.Errorf("test file %s loaded", name)
		}
	}
}

func TestLoadResolvesModuleImports(t *testing.T) {
	root := moduleRoot(t)
	// corpus imports darklight/internal/{activity,forum,timeutil}; loading
	// it proves module-local import resolution works transitively.
	pkgs, err := Load(Config{Dir: root}, "internal/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "darklight/internal/corpus" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	root := moduleRoot(t)
	if _, err := Load(Config{Dir: root}, "./internal/nonexistent"); err == nil {
		t.Fatal("expected error for unknown package")
	}
}
