package scraper

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"darklight"
	"darklight/internal/darkweb"
	"darklight/internal/forum"
)

// countingServer answers every request with the given status (and
// optional headers) and counts hits.
func countingServer(t *testing.T, status int, header http.Header, okAfter int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if okAfter > 0 && int(n) > okAfter {
			w.Write([]byte("<html></html>"))
			return
		}
		for k, vs := range header {
			for _, v := range vs {
				w.Header().Set(k, v)
			}
		}
		http.Error(w, "no", status)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestFetchPermanentFailureCostsOneRequest(t *testing.T) {
	for _, status := range []int{http.StatusNotFound, http.StatusForbidden, http.StatusGone} {
		ts, hits := countingServer(t, status, nil, 0)
		sc := New(ts.URL, Options{MaxRetries: 5, BackoffBase: time.Millisecond})
		_, err := sc.fetch(context.Background(), ts.URL+"/board/missing")
		if !errors.Is(err, errPermanent) {
			t.Errorf("status %d: err = %v, want errPermanent", status, err)
		}
		if got := hits.Load(); got != 1 {
			t.Errorf("status %d burned %d requests, want exactly 1", status, got)
		}
		if sc.Stats().Retries != 0 {
			t.Errorf("status %d: retries = %d, want 0", status, sc.Stats().Retries)
		}
	}
}

func TestFetchRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusInternalServerError, http.StatusServiceUnavailable, http.StatusRequestTimeout, http.StatusTooManyRequests} {
		ts, hits := countingServer(t, status, nil, 0)
		sc := New(ts.URL, Options{MaxRetries: 3, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
		_, err := sc.fetch(context.Background(), ts.URL+"/")
		if !errors.Is(err, errGiveUp) {
			t.Errorf("status %d: err = %v, want errGiveUp", status, err)
		}
		if got := hits.Load(); got != 4 { // 1 attempt + 3 retries
			t.Errorf("status %d: requests = %d, want 4", status, got)
		}
	}
}

func TestFetchRecoversAfterTransientFailures(t *testing.T) {
	ts, hits := countingServer(t, http.StatusBadGateway, nil, 2)
	sc := New(ts.URL, Options{MaxRetries: 5, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	if _, err := sc.fetch(context.Background(), ts.URL+"/"); err != nil {
		t.Fatalf("fetch after transient failures: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
}

func TestFetchHonoursRetryAfter(t *testing.T) {
	hdr := http.Header{"Retry-After": []string{"1"}}
	ts, _ := countingServer(t, http.StatusTooManyRequests, hdr, 1)
	sc := New(ts.URL, Options{MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Second})
	start := time.Now()
	if _, err := sc.fetch(context.Background(), ts.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("Retry-After: 1 ignored, fetch took only %v", elapsed)
	}
}

func TestFetchCapsRetryAfterAtBackoffMax(t *testing.T) {
	hdr := http.Header{"Retry-After": []string{"30"}}
	ts, _ := countingServer(t, http.StatusServiceUnavailable, hdr, 1)
	sc := New(ts.URL, Options{MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond})
	start := time.Now()
	if _, err := sc.fetch(context.Background(), ts.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Retry-After wish not capped at BackoffMax, fetch took %v", elapsed)
	}
}

func TestBackoffCappedAndOverflowSafe(t *testing.T) {
	sc := New("http://x", Options{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	for _, attempt := range []int{0, 5, 31, 40, 200} {
		d := sc.backoff(attempt, nil)
		if d <= 0 || d > time.Second {
			t.Errorf("backoff(attempt=%d) = %v, want in (0, 1s]", attempt, d)
		}
	}
	// Server-directed delays are exact (no jitter) but capped.
	if d := sc.backoff(0, &statusError{code: 429, retryAfter: 700 * time.Millisecond}); d != 700*time.Millisecond {
		t.Errorf("retry-after delay = %v, want 700ms", d)
	}
	if d := sc.backoff(0, &statusError{code: 503, retryAfter: time.Hour}); d != time.Second {
		t.Errorf("huge retry-after = %v, want the 1s cap", d)
	}
}

// TestJitterSeedPinsBackoffSchedule pins the injectable jitter RNG
// (ISSUE 4): the same JitterSeed must reproduce the exact backoff
// schedule, so fault tests can assert on retry timing, while different
// seeds decorrelate.
func TestJitterSeedPinsBackoffSchedule(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		sc := New("http://x", Options{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second, JitterSeed: seed})
		out := make([]time.Duration, 0, 8)
		for attempt := 0; attempt < 8; attempt++ {
			out = append(out, sc.backoff(attempt, nil))
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	// Every delay stays inside the jitter envelope [base/2, cap].
	for i, d := range a {
		if d <= 0 || d > time.Second {
			t.Errorf("pinned backoff[%d] = %v, want in (0, 1s]", i, d)
		}
	}
	if c := schedule(8); reflect.DeepEqual(a, c) {
		t.Errorf("different seeds produced identical 8-draw schedules: %v", a)
	}
}

func TestZeroRetriesIsExpressible(t *testing.T) {
	if got := (Options{MaxRetries: NoRetries}).withDefaults().MaxRetries; got != 0 {
		t.Fatalf("MaxRetries = %d, want 0", got)
	}
	if got := (Options{}).withDefaults().MaxRetries; got != 4 {
		t.Fatalf("default MaxRetries = %d, want 4", got)
	}
	ts, hits := countingServer(t, http.StatusServiceUnavailable, nil, 0)
	sc := New(ts.URL, Options{MaxRetries: NoRetries, BackoffBase: time.Millisecond})
	if _, err := sc.fetch(context.Background(), ts.URL+"/"); !errors.Is(err, errGiveUp) {
		t.Errorf("err = %v, want errGiveUp", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("NoRetries made %d requests, want exactly 1", got)
	}
}

// hostileDataset exercises every byte class that breaks naive URL
// handling in board and thread ids.
func hostileDataset() *forum.Dataset {
	d := forum.NewDataset("hostile", forum.PlatformSynthetic)
	t0 := time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)
	var msgs []forum.Message
	for i, board := range []string{"spaced board", "sla/sh", `quo"te`, "q?mark", "a&b", "50%off", "uni↯code"} {
		msgs = append(msgs, forum.Message{
			ID: "h" + string(rune('a'+i)), Author: "eve", Board: board, Thread: board + "!thread",
			Body: "post on " + board, PostedAt: t0.Add(time.Duration(i) * time.Hour),
		})
	}
	d.Add(forum.Alias{Name: "eve", Messages: msgs})
	return d
}

func TestScrapeHostileNamesRoundTrip(t *testing.T) {
	original := hostileDataset()
	ts := serveDataset(t, original, darkweb.Options{})
	sc := New(ts.URL, Options{})
	got, err := sc.Scrape(context.Background(), "hostile", forum.PlatformSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	if errs := sc.Errors(); len(errs) != 0 {
		t.Fatalf("crawl errors: %v", errs)
	}
	eve, err := got.Find("eve")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := original.Find("eve")
	if len(eve.Messages) != len(orig.Messages) {
		t.Fatalf("messages = %d, want %d", len(eve.Messages), len(orig.Messages))
	}
	byID := make(map[string]forum.Message)
	for _, m := range eve.Messages {
		byID[m.ID] = m
	}
	for _, want := range orig.Messages {
		m, ok := byID[want.ID]
		if !ok {
			t.Errorf("message %s lost in round trip", want.ID)
			continue
		}
		if m.Board != want.Board || m.Thread != want.Thread || m.Body != want.Body {
			t.Errorf("message %s = board %q thread %q body %q, want %q %q %q",
				want.ID, m.Board, m.Thread, m.Body, want.Board, want.Thread, want.Body)
		}
	}
}

func TestScrapeDegradesOnBrokenThread(t *testing.T) {
	original := sampleDataset() // threads t0, t1, t2 on board garden
	srv := darkweb.NewServer(original.Name, original, darkweb.Options{})
	inner := srv.Handler()
	poisoned := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/thread/t1" {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(poisoned)
	t.Cleanup(ts.Close)

	sc := New(ts.URL, Options{MaxRetries: 5, BackoffBase: time.Millisecond})
	got, err := sc.Scrape(context.Background(), "partial", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatalf("one broken thread must not abort the crawl: %v", err)
	}
	errs := sc.Errors()
	if len(errs) != 1 || errs[0].Thread != "t1" || !errors.Is(errs[0].Err, errPermanent) {
		t.Fatalf("error summary = %v, want one permanent failure for t1", errs)
	}
	if st := sc.Stats(); st.Failed != 1 {
		t.Errorf("Stats.Failed = %d, want 1", st.Failed)
	}
	for i := range got.Aliases {
		for _, m := range got.Aliases[i].Messages {
			if m.Thread == "t1" {
				t.Fatal("posts from the broken thread leaked into the dataset")
			}
		}
	}
	wantPosts := 0
	for i := range original.Aliases {
		for _, m := range original.Aliases[i].Messages {
			if m.Thread != "t1" {
				wantPosts++
			}
		}
	}
	if got.TotalMessages() != wantPosts {
		t.Errorf("partial dataset has %d posts, want %d (everything outside t1)", got.TotalMessages(), wantPosts)
	}
}

func TestScrapeStalledResponsesTimeOut(t *testing.T) {
	ts := serveDataset(t, sampleDataset(), darkweb.Options{StallRate: 1, StallFor: 300 * time.Millisecond})
	sc := New(ts.URL, Options{
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Client:      &http.Client{Timeout: 30 * time.Millisecond},
	})
	_, err := sc.Scrape(context.Background(), "x", forum.PlatformSynthetic)
	if !errors.Is(err, errGiveUp) {
		t.Fatalf("stalled index must exhaust retries, got %v", err)
	}
	if sc.Stats().Retries != 2 {
		t.Errorf("retries = %d, want 2", sc.Stats().Retries)
	}
}

// messageKey flattens everything a message must preserve byte-for-byte
// across the serve→scrape round trip.
func messageKey(m forum.Message) [4]string {
	return [4]string{m.Author, m.Body, m.PostedAt.Format(time.RFC3339), m.Board}
}

// TestScrapeChaosRoundTrip is the §III-B property test: a synth-generated
// dataset served with every fault mode enabled scrapes back identical —
// same aliases, same message bytes — over a concurrent worker pool. CI
// runs this under -race.
func TestScrapeChaosRoundTrip(t *testing.T) {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	original := world.DM
	ts := serveDataset(t, original, darkweb.Options{
		FailureRate:    0.08,
		RetryAfterRate: 0.04,
		RetryAfter:     time.Second, // scraper caps the wait at BackoffMax
		TruncateRate:   0.05,
		FailFirstN:     1,
		Seed:           7,
	})
	sc := New(ts.URL, Options{
		Workers:     8,
		MaxRetries:  12,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	got, err := sc.Scrape(context.Background(), original.Name, original.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if errs := sc.Errors(); len(errs) != 0 {
		t.Fatalf("chaos crawl gave up on %d units: %v", len(errs), errs)
	}
	if got.Len() != original.Len() {
		t.Fatalf("aliases = %d, want %d", got.Len(), original.Len())
	}
	if got.TotalMessages() != original.TotalMessages() {
		t.Fatalf("messages = %d, want %d", got.TotalMessages(), original.TotalMessages())
	}
	wantByID := make(map[string]forum.Message, original.TotalMessages())
	for i := range original.Aliases {
		for _, m := range original.Aliases[i].Messages {
			wantByID[m.ID] = m
		}
	}
	for i := range got.Aliases {
		for _, m := range got.Aliases[i].Messages {
			want, ok := wantByID[m.ID]
			if !ok {
				t.Fatalf("scraped message %s not in original", m.ID)
			}
			if messageKey(m) != messageKey(want) {
				t.Fatalf("message %s mutated in round trip:\ngot  %v\nwant %v", m.ID, messageKey(m), messageKey(want))
			}
		}
	}
	if sc.Stats().Retries == 0 {
		t.Error("chaos crawl reported zero retries — fault injection did not engage")
	}
}

// TestScrapeResumesFromCheckpoint is the acceptance test: a crawl killed
// mid-run by context cancellation resumes from its checkpoint journal and
// produces a dataset identical to an uninterrupted crawl of the same
// chaos-mode server.
func TestScrapeResumesFromCheckpoint(t *testing.T) {
	original := sampleDataset()
	chaos := darkweb.Options{FailureRate: 0.2, Seed: 5, Latency: 2 * time.Millisecond}
	ts := serveDataset(t, original, chaos)
	ckpt := filepath.Join(t.TempDir(), "crawl.jsonl")

	newScraper := func(path string) *Scraper {
		return New(ts.URL, Options{
			Workers:        2,
			MaxRetries:     10,
			BackoffBase:    time.Millisecond,
			BackoffMax:     5 * time.Millisecond,
			CheckpointPath: path,
		})
	}

	// Reference: an uninterrupted crawl (no checkpoint).
	ref := New(ts.URL, Options{Workers: 2, MaxRetries: 10, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	want, err := ref.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}

	// First crawl: kill it as soon as the journal holds one thread.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	first := newScraper(ckpt)
	go func() {
		_, err := first.Scrape(ctx, "scraped", forum.PlatformTheMajesticGarden)
		errc <- err
	}()
	var firstErr error
	var sawRecord bool
poll:
	for {
		select {
		case firstErr = <-errc:
			break poll
		case <-time.After(time.Millisecond):
			if raw, err := os.ReadFile(ckpt); err == nil {
				if recs, err := forum.ReadCheckpoint(strings.NewReader(string(raw))); err == nil && len(recs) > 0 {
					sawRecord = true
					cancel()
					firstErr = <-errc
					break poll
				}
			}
		}
	}
	cancel()

	if sawRecord && !errors.Is(firstErr, context.Canceled) {
		t.Fatalf("killed crawl returned %v, want context.Canceled", firstErr)
	}

	// Resume: a fresh scraper on the same journal completes the crawl.
	second := newScraper(ckpt)
	got, err := second.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed dataset differs from uninterrupted crawl:\ngot  %d aliases / %d posts\nwant %d aliases / %d posts",
			got.Len(), got.TotalMessages(), want.Len(), want.TotalMessages())
	}
	if sawRecord {
		st, refSt := second.Stats(), ref.Stats()
		if st.Resumed == 0 {
			t.Error("resumed crawl refetched every thread — checkpoint ignored")
		}
		// Compare first attempts (Requests net of chaos retries): the
		// resumed crawl must fetch exactly Resumed fewer pages. Every
		// sample thread is a single page, so pages saved == threads saved.
		gotAttempts, refAttempts := st.Requests-st.Retries, refSt.Requests-refSt.Retries
		if gotAttempts != refAttempts-st.Resumed {
			t.Errorf("resume fetched %d pages, full crawl %d with %d threads resumed — checkpoint saved nothing",
				gotAttempts, refAttempts, st.Resumed)
		}
	}
}

func TestScrapeResumeToleratesTornJournal(t *testing.T) {
	original := sampleDataset()
	ts := serveDataset(t, original, darkweb.Options{})
	ckpt := filepath.Join(t.TempDir(), "crawl.jsonl")

	// Build a journal with one intact record, then tear its tail the way
	// a kill mid-append would.
	full := New(ts.URL, Options{CheckpointPath: ckpt})
	want, err := full.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal has %d records, need ≥ 2", len(lines))
	}
	torn := lines[0] + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	sc := New(ts.URL, Options{CheckpointPath: ckpt})
	got, err := sc.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("crawl resumed from a torn journal diverged")
	}
	if st := sc.Stats(); st.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1 (the intact record)", st.Resumed)
	}
}

func TestCheckpointCompactionIsAtomic(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.jsonl")
	t0 := time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)
	recs := []forum.ThreadRecord{
		{Thread: "t0", Messages: []forum.Message{{ID: "m0", Author: "eve", Thread: "t0", Body: "first record", PostedAt: t0}}},
		{Thread: "t1", Messages: []forum.Message{{ID: "m1", Author: "mallory", Thread: "t1", Body: "second record", PostedAt: t0.Add(time.Hour)}}},
	}
	var clean bytes.Buffer
	for i := range recs {
		if err := forum.WriteThreadRecord(&clean, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A kill mid-append leaves a torn final line after the intact records.
	torn := append(append([]byte{}, clean.Bytes()...), []byte(`{"thread":"t2","mess`)...)
	if err := os.WriteFile(ckpt, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	sc := New("http://unused.invalid", Options{CheckpointPath: ckpt})
	done, closeCkpt, err := sc.openCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer closeCkpt()
	if len(done) != 2 || done["t0"] == nil || done["t1"] == nil {
		t.Fatalf("resume loaded %d threads, want the 2 intact records", len(done))
	}

	// The compacted journal must have been renamed into place, not
	// truncated and rewritten through the live inode: an in-place rewrite
	// means a crash mid-write destroys every record, not just the tear.
	after, err := os.Stat(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if os.SameFile(before, after) {
		t.Error("compaction rewrote the journal in place (same inode); want sibling tmp + atomic rename")
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean.Bytes()) {
		t.Errorf("compacted journal is not exactly the intact records:\ngot  %q\nwant %q", got, clean.Bytes())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("compaction left stray siblings behind: %v", names)
	}
}

func TestScrapeResumeSurvivesCrashMidCompaction(t *testing.T) {
	original := sampleDataset()
	ts := serveDataset(t, original, darkweb.Options{})
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.jsonl")

	full := New(ts.URL, Options{CheckpointPath: ckpt})
	want, err := full.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// The crash window of the atomic protocol: the sibling tmp exists,
	// partially written, and the rename never happened. The journal itself
	// is untouched, so a resume must still see every record — under the
	// old in-place rewrite the same crash left a truncated journal and
	// lost the whole crawl state.
	stray := filepath.Join(dir, "crawl.jsonl.tmp-12345")
	if err := os.WriteFile(stray, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	sc := New(ts.URL, Options{CheckpointPath: ckpt})
	got, err := sc.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("crawl resumed across a simulated crash mid-compaction diverged")
	}
	if st := sc.Stats(); st.Resumed == 0 {
		t.Error("intact journal ignored after simulated crash mid-compaction")
	}
}
