// Package wallclock restricts time.Now() to an explicit allowlist. The
// pipeline's outputs — refined datasets, activity profiles, match
// scores, experiment tables — must be pure functions of (input corpus,
// seed, options); a time.Now() anywhere on those paths leaks the run's
// wall clock into results that are supposed to be reproducible. Places
// that legitimately need the clock stay on the allowlist: the obs
// telemetry layer (span durations and manifest timestamps — durations
// are exported as timings and never feed back into pipeline output),
// the scraper's politeness limiter and retry backoff, the
// fault-injecting darkweb server, and CLI/example progress timers. The
// obs/reqtrace subpackage is carved back OUT of the obs allowance with a
// "!" exclusion: request latencies arrive from the caller's injected
// clock, so the tracing layer itself must never read the wall clock. A
// single call site elsewhere can carry `//lint:ignore wallclock
// <reason>` instead of widening the allowlist.
package wallclock

import (
	"go/ast"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultAllow lists the packages allowed to read the wall clock.
const DefaultAllow = "internal/obs,!internal/obs/reqtrace,internal/scraper,internal/darkweb,cmd,examples"

var allow = analysis.NewScope(DefaultAllow)

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "restrict time.Now()/time.Since()/time.Until() to allowlisted packages so wall-clock time " +
		"cannot leak into pipeline output",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&allow, "allow", "comma-separated package patterns allowed to call time.Now")
}

func run(pass *analysis.Pass) (any, error) {
	if allow.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if pkg, name := astquery.PkgFunc(pass.TypesInfo, call); pkg == "time" &&
			(name == "Now" || name == "Since" || name == "Until") {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock outside the allowlist; inject timestamps or lint:ignore with a reason", name)
		}
	})
	return nil, nil
}
