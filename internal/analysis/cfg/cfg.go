// Package cfg builds per-function control-flow graphs over go/ast and
// runs forward dataflow analyses over them to a fixpoint. It is the
// path-sensitivity layer under darklint's concurrency and durability
// passes (lockbalance, goleak, fsyncrename): where the original
// AST-shape passes could only ask "does this call appear somewhere",
// the CFG passes ask "does it appear on every path between two events",
// which is the actual invariant — every Lock released on every exit,
// every written temp file Synced on every path into its Rename.
//
// The graph is deliberately statement-granular and intraprocedural:
// each Block holds the statements (and controlling expressions) that
// execute unconditionally together, Succs carry the branch structure,
// and a single virtual Exit block collects every return, panic, and the
// implicit fall-off-the-end. Function literals are not inlined — each
// FuncLit body is its own graph, built by whichever pass walks it —
// and calls are opaque, which is the main soundness trade-off DESIGN
// §12 spells out.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes with a single entry
// at the top and branching only at the bottom.
type Block struct {
	Index int
	// Nodes are the statements and controlling expressions of the block
	// in execution order. Compound statements never appear whole: an if
	// contributes its Init and Cond here and its branches elsewhere, a
	// range loop contributes only its X expression to the loop head.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is virtual: it holds no nodes, and every return statement,
	// panic call, and the implicit end of the body has an edge to it.
	Exit *Block
}

// Build constructs the graph of one function body (a FuncDecl.Body or
// FuncLit.Body). It never descends into nested function literals.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit)
	b.resolveGotos()
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// IsPanicCall reports whether the node is a statement-level call to the
// panic builtin (matched by name; shadowing panic defeats it).
func IsPanicCall(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Terminator classifies how a block transfers control to Exit.
type Terminator int

const (
	// NotExit: the block has no edge to Exit.
	NotExit Terminator = iota
	// Return: the block ends in an explicit return statement.
	Return
	// Panic: the block ends in a statement-level panic(...) call.
	Panic
	// FallOff: the block reaches the implicit end of the function body.
	FallOff
)

// ExitKind reports whether (and how) the block exits the function.
func (b *Block) ExitKind(exit *Block) Terminator {
	toExit := false
	for _, s := range b.Succs {
		if s == exit {
			toExit = true
			break
		}
	}
	if !toExit {
		return NotExit
	}
	if n := len(b.Nodes); n > 0 {
		if _, ok := b.Nodes[n-1].(*ast.ReturnStmt); ok {
			return Return
		}
		if IsPanicCall(b.Nodes[n-1]) {
			return Panic
		}
	}
	return FallOff
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block // nil when the current path has terminated

	targets      []target
	labels       map[string]*Block
	gotos        []pendingGoto
	pendingLabel string
	fallTo       []*Block // fallthrough destinations, one per enclosing switch
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// ensure returns the current block, starting a fresh (unreachable) one
// when the path has terminated — dead code is still analyzed.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// jump links the live current block to the destination and terminates
// the current path.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		link(b.cur, to)
		b.cur = nil
	}
}

func link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// takeLabel consumes the label of an enclosing LabeledStmt, if the very
// next statement is the loop/switch/select it names.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.ensure()
		after := b.newBlock()
		thenB := b.newBlock()
		link(cond, thenB)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			link(cond, elseB)
		} else {
			link(cond, after)
		}
		b.cur = thenB
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		b.add(s.Cond)
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, after)
		}
		continueTo := head
		if s.Post != nil {
			post := b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			link(post, head)
			continueTo = post
		}
		b.targets = append(b.targets, target{label: label, breakTo: after, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(continueTo)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		b.add(s.X)
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		link(head, after)
		b.targets = append(b.targets, target{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		b.targets = append(b.targets, target{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			link(head, cb)
			if cc.Comm != nil {
				cb.Nodes = append(cb.Nodes, cc.Comm)
			}
			b.cur = cb
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.targets = b.targets[:len(b.targets)-1]
		// A select{} with no cases blocks forever: head keeps no
		// successors, and after becomes an unreachable dead-code block.
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.jump(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.jump(t.breakTo)
			} else {
				b.jump(b.g.Exit) // malformed input; keep the graph closed
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.jump(t.continueTo)
			} else {
				b.jump(b.g.Exit)
			}
		case token.GOTO:
			if s.Label != nil {
				if lb, ok := b.labels[s.Label.Name]; ok {
					b.jump(lb)
				} else if b.cur != nil {
					b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
					b.cur = nil
				}
			}
		case token.FALLTHROUGH:
			if n := len(b.fallTo); n > 0 && b.fallTo[n-1] != nil {
				b.jump(b.fallTo[n-1])
			} else {
				b.cur = nil
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if IsPanicCall(s) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt:
		// straight-line nodes.
		b.add(s)
	}
}

// switchStmt builds expression and type switches. head evaluates Init,
// Tag (or the type-switch Assign); every case clause branches from it,
// and a missing default adds the skip edge straight to after.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFall bool) {
	label := b.takeLabel()
	b.add(init)
	if tag != nil {
		b.add(tag)
	}
	b.add(assign)
	head := b.ensure()
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, breakTo: after})

	var caseBlocks []*Block
	var bodies [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		cb := b.newBlock()
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		link(head, cb)
		caseBlocks = append(caseBlocks, cb)
		bodies = append(bodies, cc.Body)
	}
	if !hasDefault {
		link(head, after)
	}
	for i := range caseBlocks {
		fall := (*Block)(nil)
		if allowFall && i+1 < len(caseBlocks) {
			fall = caseBlocks[i+1]
		}
		b.fallTo = append(b.fallTo, fall)
		b.cur = caseBlocks[i]
		b.stmtList(bodies[i])
		b.jump(after)
		b.fallTo = b.fallTo[:len(b.fallTo)-1]
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// findTarget resolves a break/continue, innermost-first. An unlabeled
// continue wants the nearest loop; break takes any enclosing construct.
func (b *builder) findTarget(label *ast.Ident, isContinue bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if isContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, pg := range b.gotos {
		if lb, ok := b.labels[pg.label]; ok {
			link(pg.from, lb)
		} else {
			link(pg.from, b.g.Exit)
		}
	}
}
