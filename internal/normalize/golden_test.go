package normalize

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"darklight/internal/forum"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestPolishPipelineGolden runs the full 12-step pipeline over a small
// committed fixture that exercises every step at least once, and compares
// the exact per-step Report counts (plus the surviving dataset shape)
// against a golden file. Any change to step order, step behaviour, or the
// filters' view of mutated text shows up as a diff here.
//
// Regenerate with: go test ./internal/normalize/ -run Golden -update
func TestPolishPipelineGolden(t *testing.T) {
	f, err := os.Open("testdata/polish_fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := forum.ReadJSONL(f, "fixture", forum.PlatformSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewPipeline().Run(d)

	var b strings.Builder
	b.WriteString(rep.String())
	b.WriteString("---\nsurviving aliases:\n")
	for i := range d.Aliases {
		a := &d.Aliases[i]
		fmt.Fprintf(&b, "%s: %d messages\n", a.Name, len(a.Messages))
	}
	got := b.String()

	const golden = "testdata/polish_report.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("polish report diverged from golden file (run with -update after verifying the change is intended):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
