package synth

import (
	"strings"
	"testing"
	"time"

	"darklight/internal/forum"
)

func tinyConfig() Config {
	cfg := DefaultConfig().Scaled(0.005) // ~80 reddit, ~23 tmg, ~31 dm
	cfg.TMGDMOverlap = 3
	cfg.RedditTMGOveral = 3
	cfg.RedditDMOverlap = 3
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w1.Reddit.Len() != w2.Reddit.Len() {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range w1.Reddit.Aliases {
		a1, a2 := w1.Reddit.Aliases[i], w2.Reddit.Aliases[i]
		if a1.Name != a2.Name || len(a1.Messages) != len(a2.Messages) {
			t.Fatal("alias stream differs across identical seeds")
		}
		if len(a1.Messages) > 0 && a1.Messages[0].Body != a2.Messages[0].Body {
			t.Fatal("message bodies differ across identical seeds")
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg1 := tinyConfig()
	cfg2 := tinyConfig()
	cfg2.Seed = 999
	w1, _ := Generate(cfg1)
	w2, _ := Generate(cfg2)
	same := 0
	n := w1.Reddit.Len()
	if w2.Reddit.Len() < n {
		n = w2.Reddit.Len()
	}
	for i := 0; i < n; i++ {
		if w1.Reddit.Aliases[i].Name == w2.Reddit.Aliases[i].Name {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical alias names")
	}
}

func TestValidateRejectsImpossibleOverlaps(t *testing.T) {
	cfg := tinyConfig()
	cfg.TMGDMOverlap = cfg.TMGUsers + 1
	if _, err := Generate(cfg); err == nil {
		t.Error("overlap larger than population must be rejected")
	}
	cfg = tinyConfig()
	cfg.End = cfg.Start
	if _, err := Generate(cfg); err == nil {
		t.Error("empty time window must be rejected")
	}
}

func TestGroundTruthCrossForum(t *testing.T) {
	w, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := w.Truth
	// Count cross-forum persons in ground truth.
	crossTMGDM, crossRedditDark := 0, 0
	for id, keys := range truth.AliasesOf {
		platforms := map[string]bool{}
		for _, k := range keys {
			platforms[strings.SplitN(k, "/", 2)[0]] = true
		}
		if platforms["tmg"] && platforms["dm"] {
			crossTMGDM++
		}
		if platforms["reddit"] && (platforms["tmg"] || platforms["dm"]) {
			crossRedditDark++
		}
		if len(keys) > 2 {
			t.Errorf("person %d has %d aliases, max 2 expected", id, len(keys))
		}
	}
	if crossTMGDM != 3 {
		t.Errorf("TMG∩DM persons = %d, want 3", crossTMGDM)
	}
	if crossRedditDark != 6 {
		t.Errorf("Reddit∩dark persons = %d, want 6", crossRedditDark)
	}
	// SamePerson and MateOn agree.
	for _, keys := range truth.AliasesOf {
		if len(keys) == 2 {
			if !truth.SamePerson(keys[0], keys[1]) {
				t.Error("SamePerson false for one person's aliases")
			}
			p, _ := forum.ParsePlatform(strings.SplitN(keys[1], "/", 2)[0])
			mate, ok := truth.MateOn(keys[0], p)
			if !ok || mate != keys[1] {
				t.Errorf("MateOn(%s) = %s, %v; want %s", keys[0], mate, ok, keys[1])
			}
		}
	}
}

func TestEveryAliasInTruth(t *testing.T) {
	w, _ := Generate(tinyConfig())
	for _, d := range []*forum.Dataset{w.Reddit, w.TMG, w.DM} {
		for i := range d.Aliases {
			a := &d.Aliases[i]
			if a.IsLikelyBot() {
				if _, ok := w.Truth.PersonOf[a.Key()]; ok {
					t.Errorf("bot %s must not map to a person", a.Name)
				}
				continue
			}
			if _, ok := w.Truth.PersonOf[a.Key()]; !ok {
				t.Errorf("alias %s missing from ground truth", a.Key())
			}
		}
	}
}

func TestTimestampsWithinWindow(t *testing.T) {
	cfg := tinyConfig()
	w, _ := Generate(cfg)
	// Allow slack for forum-local clock offsets (±14h) around the window.
	lo := cfg.Start.Add(-15 * time.Hour)
	hi := cfg.End.Add(15 * time.Hour)
	for _, d := range []*forum.Dataset{w.Reddit, w.TMG, w.DM} {
		for i := range d.Aliases {
			for _, m := range d.Aliases[i].Messages {
				if m.PostedAt.Before(lo) || m.PostedAt.After(hi) {
					t.Fatalf("timestamp %v outside window", m.PostedAt)
				}
			}
		}
	}
}

func TestNoiseArtifactsPresent(t *testing.T) {
	w, _ := Generate(tinyConfig())
	var sawPGP, sawMail, sawURL, sawQuote, sawEmoji, sawBot bool
	for _, d := range []*forum.Dataset{w.Reddit, w.TMG, w.DM} {
		for i := range d.Aliases {
			if d.Aliases[i].IsLikelyBot() {
				sawBot = true
			}
			for _, m := range d.Aliases[i].Messages {
				if strings.Contains(m.Body, "BEGIN PGP") {
					sawPGP = true
				}
				if strings.Contains(m.Body, "@") {
					sawMail = true
				}
				if strings.Contains(m.Body, "http") {
					sawURL = true
				}
				if strings.HasPrefix(m.Body, "> ") {
					sawQuote = true
				}
				for _, r := range m.Body {
					if r >= 0x1F300 {
						sawEmoji = true
					}
				}
			}
		}
	}
	for name, saw := range map[string]bool{
		"pgp": sawPGP, "mail": sawMail, "url": sawURL,
		"quote": sawQuote, "emoji": sawEmoji, "bot": sawBot,
	} {
		if !saw {
			t.Errorf("noise class %q never generated", name)
		}
	}
}

func TestFactsConsistentPerPerson(t *testing.T) {
	w, _ := Generate(tinyConfig())
	for key, facts := range w.Truth.Revealed {
		id := w.Truth.PersonOf[key]
		bio := map[FactKind]string{}
		for _, f := range w.Truth.Facts[id] {
			bio[f.Kind] = f.Value
		}
		for _, f := range facts {
			if bio[f.Kind] != f.Value {
				t.Errorf("alias %s revealed %v=%q but biography says %q", key, f.Kind, f.Value, bio[f.Kind])
			}
		}
	}
}

func TestLinkEvidencePlantedOnBothSides(t *testing.T) {
	w, _ := Generate(tinyConfig())
	for key, kinds := range w.Truth.LinkEvidence {
		if len(kinds) == 0 {
			continue
		}
		id, ok := w.Truth.PersonOf[key]
		if !ok {
			t.Errorf("link evidence on unknown alias %s", key)
			continue
		}
		if len(w.Truth.AliasesOf[id]) != 2 {
			t.Errorf("link evidence on single-forum person %d", id)
		}
	}
}

func TestVendorBrandReuse(t *testing.T) {
	w, _ := Generate(tinyConfig())
	for id, isVendor := range w.Truth.Vendors {
		if !isVendor {
			continue
		}
		keys := w.Truth.AliasesOf[id]
		if len(keys) != 2 {
			continue
		}
		n1 := strings.SplitN(keys[0], "/", 2)[1]
		n2 := strings.SplitN(keys[1], "/", 2)[1]
		if n1 != n2 {
			t.Errorf("vendor %d uses different brands: %s vs %s", id, n1, n2)
		}
	}
}

func TestPersonCircadianProperties(t *testing.T) {
	p := NewPerson(1, 7, DefaultPersonConfig())
	r := subRand(p.Seed, "test")
	for i := 0; i < 1000; i++ {
		h := p.SampleHourLocal(r)
		if h < 0 || h >= 24 {
			t.Fatalf("hour %v outside [0,24)", h)
		}
	}
	stamps := p.SampleTimestamps(r, 100, Year2017Start, Year2017End)
	if len(stamps) != 100 {
		t.Fatalf("stamps = %d", len(stamps))
	}
}

func TestStyleGenerationShape(t *testing.T) {
	p := NewPerson(1, 3, DefaultPersonConfig())
	style := p.NewStyle("reddit", 0.2)
	r := subRand(p.Seed, "gen")
	msg := style.GenerateMessage(r, TopicDrugs, 120)
	words := len(strings.Fields(msg))
	if words < 120 || words > 200 {
		t.Errorf("message has %d words, want ≈120", words)
	}
	// Deterministic for same rand stream.
	r2 := subRand(p.Seed, "gen")
	style2 := p.NewStyle("reddit", 0.2)
	if style2.GenerateMessage(r2, TopicDrugs, 120) != msg {
		t.Error("generation must be deterministic")
	}
}

func TestNicknameStability(t *testing.T) {
	p := NewPerson(1, 5, DefaultPersonConfig())
	if p.Nickname("reddit", false) == p.Nickname("tmg", false) {
		t.Error("non-vendor nicknames must differ across forums")
	}
	if p.Nickname("reddit", true) != p.Nickname("tmg", true) {
		t.Error("brand nicknames must be identical across forums")
	}
	if p.Nickname("reddit", false) != p.Nickname("reddit", false) {
		t.Error("nicknames must be stable")
	}
}

func TestTopicOfBoardRoundtrip(t *testing.T) {
	for _, topic := range Topics {
		for _, b := range BoardsOfTopic(topic) {
			if got := TopicOfBoard(b); got != topic {
				t.Errorf("TopicOfBoard(%s) = %q, want %q", b, got, topic)
			}
		}
	}
	if TopicOfBoard("not-a-board") != "" {
		t.Error("unknown board must map to empty topic")
	}
}

func TestScaled(t *testing.T) {
	base := DefaultConfig()
	half := base.Scaled(0.5)
	if half.RedditUsers != base.RedditUsers/2 {
		t.Errorf("Scaled reddit = %d", half.RedditUsers)
	}
	tiny := base.Scaled(0.00001)
	if tiny.RedditUsers < 1 {
		t.Error("Scaled must keep at least one user")
	}
}

func TestContradictsAndConsistent(t *testing.T) {
	a := Fact{FactAge, "20"}
	b := Fact{FactAge, "34"}
	c := Fact{FactCity, "miami"}
	if !Contradicts(a, b) || Contradicts(a, c) || Contradicts(a, a) {
		t.Error("Contradicts wrong")
	}
	if !Consistent(a, a) || Consistent(a, b) || Consistent(a, c) {
		t.Error("Consistent wrong")
	}
}
