package obs

import "runtime"

// RegisterRuntime installs live Go-runtime telemetry on the registry:
// goroutine count, heap occupancy, and garbage-collection activity,
// refreshed by a collector at every exposition. The serving daemons
// (attributed, forumd) register this so an operator watching /metrics can
// separate "the matcher is slow" from "the process is drowning in GC" —
// the batch commands leave it off because runtime values are
// wall-clock-shaped and would make manifest metric snapshots
// irreproducible.
//
// Registration is idempotent per registry (gauge schemas are fixed and
// the collector replaces itself by name).
func RegisterRuntime(r *Registry) {
	goroutines := r.Gauge("runtime_goroutines", "goroutines currently live")
	heapAlloc := r.Gauge("runtime_heap_alloc_bytes", "bytes of allocated heap objects")
	heapSys := r.Gauge("runtime_heap_sys_bytes", "bytes of heap memory obtained from the OS")
	heapObjects := r.Gauge("runtime_heap_objects", "allocated heap objects")
	gcRuns := r.Gauge("runtime_gc_runs_total", "completed GC cycles since process start")
	gcPauseTotal := r.Gauge("runtime_gc_pause_total_seconds", "cumulative stop-the-world GC pause time")
	gcLastPause := r.Gauge("runtime_gc_last_pause_seconds", "duration of the most recent GC pause")
	r.RegisterCollector("runtime", func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		heapObjects.Set(float64(ms.HeapObjects))
		gcRuns.Set(float64(ms.NumGC))
		gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
		if ms.NumGC > 0 {
			gcLastPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
		}
	})
}
