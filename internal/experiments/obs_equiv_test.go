package experiments

import (
	"context"
	"reflect"
	"testing"

	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/obs"
)

// TestTelemetryEquivalence pins the central observability contract: a run
// with tracing enabled produces byte-identical pipeline output — polished
// datasets, per-step reports including byte deltas, and match results —
// to an untraced run. The traced lab additionally must have produced
// spans for every major stage, or the equivalence would hold vacuously.
func TestTelemetryEquivalence(t *testing.T) {
	cfg := DefaultLabConfig()
	cfg.Scale = 0.015
	cfg.MaxUnknowns = 30

	plain, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	traced, err := NewLabContext(obs.WithTracer(context.Background(), tracer), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.PolishReports, traced.PolishReports) {
		t.Errorf("polish reports diverge with tracing on:\noff: %v\non:  %v",
			plain.PolishReports["reddit"], traced.PolishReports["reddit"])
	}

	pairs := [][2]*forum.Dataset{
		{plain.Reddit, traced.Reddit}, {plain.AEReddit, traced.AEReddit},
		{plain.TMG, traced.TMG}, {plain.AETMG, traced.AETMG},
		{plain.DM, traced.DM}, {plain.AEDM, traced.AEDM},
	}
	for _, p := range pairs {
		a, err := forum.DigestJSONL(p[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := forum.DigestJSONL(p[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("dataset %s digest diverges with tracing on: %s vs %s", p[0].Name, a, b)
		}
	}

	runAll := func(l *Lab) []attribution.MatchResult {
		m, err := l.RedditMatcher()
		if err != nil {
			t.Fatal(err)
		}
		unknowns, err := attribution.BuildSubjects(l.AEReddit, l.SubjectOpts())
		if err != nil {
			t.Fatal(err)
		}
		unknowns = sampleSubjects(unknowns, cfg.MaxUnknowns, 42)
		res, err := m.MatchAll(l.Context(), unknowns)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := runAll(plain), runAll(traced)
	if !reflect.DeepEqual(off, on) {
		t.Error("matcher scores diverge with tracing on")
	}

	got := make(map[string]bool)
	for _, s := range tracer.Stages() {
		got[s.Name] = true
	}
	for _, want := range []string{"polish", "matcher.vocab", "matcher.index", "match.all", "match.rank", "match.rescore"} {
		if !got[want] {
			t.Errorf("traced run emitted no %q span (stages: %v)", want, tracer.Stages())
		}
	}

	// A traced manifest and an untraced one agree on every deterministic
	// field that derives from the corpus.
	mOn, err := traced.Manifest(tracer)
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := plain.Manifest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mOn.Datasets, mOff.Datasets) {
		t.Error("manifest dataset digests diverge with tracing on")
	}
	if len(mOn.Stages) == 0 {
		t.Error("traced manifest has no stage summaries")
	}
}
