// Package lockbalance proves, per function, that every sync mutex
// acquisition is released on every path out of the function — by a
// deferred unlock or by an explicit unlock on each return — and that no
// path re-acquires a mutex it definitely still holds (a self-deadlock).
// The serving layer's limiter map, the scraper's stats mutex, and the
// store's journal lock are all correct today by hand-maintained
// discipline; this pass turns the discipline into a machine-checked
// invariant before ROADMAP's scatter-gather work multiplies the lock
// surface.
//
// The analysis runs on the control-flow graph (internal/analysis/cfg)
// with one fact per mutex: an interval [lo, hi] of how many
// acquisitions may/must be outstanding, joined across converging paths,
// plus the same interval net of deferred releases. A leak is reported
// when the net interval can be positive at a return or at the implicit
// function end; a double acquisition is reported only when the mutex is
// definitely held (lo > 0), so conditional lock/unlock pairs do not
// false-positive. Panic exits are exempt: a panicking goroutine is not
// expected to leave its mutexes tidy. Intraprocedural only — helpers
// that intentionally return holding a lock need a typed lint:ignore
// with the reason.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
	"darklight/internal/analysis/cfg"
)

// DefaultScope applies the check everywhere: a leaked or double-held
// mutex is a bug in any package.
const DefaultScope = "all"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the lockbalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "prove every sync Lock/RLock is released on all paths out of the function and never " +
		"re-acquired while definitely held",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

// lkey identifies one mutex within one function: the receiver
// expression's root object plus its printed path, and whether the
// acquisition is the read side of an RWMutex.
type lkey struct {
	root types.Object
	path string
	read bool
}

// span is a saturating [lo, hi] interval of outstanding acquisitions.
// lo is the count every path guarantees, hi the count some path may
// reach. Saturation at spanCap keeps the lattice finite for loops that
// acquire without releasing.
type span struct{ lo, hi int }

const spanCap = 2

func (s span) inc() span {
	return span{min(s.lo+1, spanCap), min(s.hi+1, spanCap)}
}

func (s span) dec() span {
	return span{max(s.lo-1, 0), max(s.hi-1, 0)}
}

// fact maps each mutex to two intervals: held ignores defers (it drives
// the double-lock check, since a deferred unlock releases nothing until
// the function exits) and net subtracts deferred releases (it drives
// the leak-at-exit check).
type fact struct {
	held map[lkey]span
	net  map[lkey]span
}

func (f fact) get(m map[lkey]span, k lkey) span {
	if m == nil {
		return span{}
	}
	return m[k]
}

// set returns a copy-on-write update; facts are shared across paths and
// must never be mutated in place.
func set(m map[lkey]span, k lkey, v span) map[lkey]span {
	out := make(map[lkey]span, len(m)+1)
	for kk, vv := range m {
		out[kk] = vv
	}
	if v == (span{}) {
		delete(out, k)
	} else {
		out[k] = v
	}
	return out
}

type locks struct {
	pass *analysis.Pass
	// report is nil during the fixpoint and set during the final
	// reporting walk, so diagnostics fire exactly once per node.
	report bool
}

func (l *locks) Entry() fact { return fact{} }

func (l *locks) Join(a, b fact) fact {
	return fact{held: joinMap(a.held, b.held), net: joinMap(a.net, b.net)}
}

func joinMap(a, b map[lkey]span) map[lkey]span {
	out := make(map[lkey]span, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if have, ok := out[k]; ok {
			out[k] = span{min(have.lo, v.lo), max(have.hi, v.hi)}
		} else {
			out[k] = span{0, v.hi}
		}
	}
	for k, v := range out {
		if _, ok := b[k]; !ok {
			out[k] = span{0, v.hi}
		}
		if out[k] == (span{}) {
			delete(out, k)
		}
	}
	return out
}

func (l *locks) Equal(a, b fact) bool {
	return mapsEqual(a.held, b.held) && mapsEqual(a.net, b.net)
}

func mapsEqual(a, b map[lkey]span) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (l *locks) Transfer(n ast.Node, in fact) fact {
	f := in
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal's locks are its own function's problem
		case *ast.GoStmt:
			return false // runs concurrently; not on this path
		case *ast.DeferStmt:
			f = l.deferred(n, f)
			return false
		case *ast.CallExpr:
			if k, acquire, ok := lockOp(l.pass.TypesInfo, n); ok {
				f = l.apply(n, k, acquire, f)
			}
		}
		return true
	})
	return f
}

func (l *locks) apply(call *ast.CallExpr, k lkey, acquire bool, f fact) fact {
	if acquire {
		if l.report {
			if f.get(f.held, k).lo > 0 {
				l.pass.Reportf(call.Pos(), "%s.%s() on a path where %s is already held (self-deadlock)",
					k.path, methodName(k, true), k.path)
			} else if other := (lkey{k.root, k.path, !k.read}); f.get(f.held, other).lo > 0 {
				l.pass.Reportf(call.Pos(), "%s.%s() while %s.%s() is held on the same path (self-deadlock)",
					k.path, methodName(k, true), k.path, methodName(other, true))
			}
		}
		return fact{
			held: set(f.held, k, f.get(f.held, k).inc()),
			net:  set(f.net, k, f.get(f.net, k).inc()),
		}
	}
	return fact{
		held: set(f.held, k, f.get(f.held, k).dec()),
		net:  set(f.net, k, f.get(f.net, k).dec()),
	}
}

// deferred credits unlocks scheduled with defer — either a direct
// `defer mu.Unlock()` or releases inside a deferred function literal —
// against the net interval only: they run at exit, not here.
func (l *locks) deferred(d *ast.DeferStmt, f fact) fact {
	credit := func(k lkey) {
		f = fact{held: f.held, net: set(f.net, k, f.get(f.net, k).dec())}
	}
	if k, acquire, ok := lockOp(l.pass.TypesInfo, d.Call); ok && !acquire {
		credit(k)
		return f
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, isCall := n.(*ast.CallExpr); isCall {
				if k, acquire, ok := lockOp(l.pass.TypesInfo, call); ok && !acquire {
					credit(k)
				}
			}
			return true
		})
	}
	return f
}

// checkExit reports every mutex whose net interval can still be
// positive when the path leaves the function.
func (l *locks) checkExit(f fact, pos token.Pos, via string) {
	keys := make([]lkey, 0, len(f.net))
	for k, v := range f.net {
		if v.hi > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].read
	})
	for _, k := range keys {
		l.pass.Reportf(pos, "%s.%s() is not released on every path to this %s; unlock on all exits or defer the unlock",
			k.path, methodName(k, true), via)
	}
}

func methodName(k lkey, acquire bool) string {
	switch {
	case k.read && acquire:
		return "RLock"
	case k.read:
		return "RUnlock"
	case acquire:
		return "Lock"
	default:
		return "Unlock"
	}
}

// lockOp classifies a call as a sync acquisition or release. Matching
// goes through the method's origin object, so promoted methods of an
// embedded sync.Mutex and sync.Locker interface calls both resolve;
// TryLock/TryRLock are deliberately ignored (their acquisition is
// conditional and the result-guarded unlock pattern is fine).
func lockOp(info *types.Info, call *ast.CallExpr) (k lkey, acquire bool, ok bool) {
	fn := astquery.MethodFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lkey{}, false, false
	}
	var read bool
	switch fn.Name() {
	case "Lock":
		acquire, read = true, false
	case "Unlock":
		acquire, read = false, false
	case "RLock":
		acquire, read = true, true
	case "RUnlock":
		acquire, read = false, true
	default:
		return lkey{}, false, false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	root := rootObject(info, sel.X)
	if root == nil {
		return lkey{}, false, false
	}
	return lkey{root: root, path: types.ExprString(sel.X), read: read}, acquire, true
}

// rootObject resolves the leftmost identifier of a selector chain; a
// receiver that is not a chain of plain selections (an index, a call)
// is not tracked.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return astquery.ObjectOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.EachFuncBody(func(body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap gate: skip the graph entirely for lock-free functions.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, isLock := lockOp(pass.TypesInfo, call); isLock {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	g := cfg.Build(body)
	an := &locks{pass: pass}
	in := cfg.Forward[fact](g, an)

	// Reporting walk over the converged facts: double-locks fire at
	// their acquisition site, leaks at each return and at the implicit
	// end of the body. Panic exits are exempt.
	an.report = true
	for _, b := range g.Blocks {
		f := in[b]
		kind := b.ExitKind(g.Exit)
		for i, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet && kind == cfg.Return && i == len(b.Nodes)-1 {
				an.checkExit(f, ret.Pos(), "return")
			}
			f = an.Transfer(n, f)
		}
		if kind == cfg.FallOff {
			an.checkExit(f, body.End(), "function end")
		}
	}
	an.report = false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
