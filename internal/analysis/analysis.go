// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's own linters
// (cmd/darklint). The pipeline's correctness rests on invariants nothing
// in the type system expresses — bit-identical output for any worker
// count, UTC-aligned timestamps for the 24-bin activity profiles (paper
// §III-C), seed-driven randomness, no silently dropped errors — so we
// encode them as analyzers and run them in CI.
//
// The API deliberately mirrors x/tools (Analyzer, Pass, Diagnostic, a
// testdata-driven analysistest harness) so the suite can be rebased onto
// the upstream framework without touching analyzer logic; only the
// package loader (internal/analysis/load) is bespoke, built on go/parser
// + go/types + the stdlib source importer, because this module vendors no
// third-party dependencies.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// lint:ignore directives. Must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text: what invariant the analyzer
	// enforces and why the pipeline needs it.
	Doc string

	// Flags holds analyzer-specific configuration. The darklint driver
	// exposes each flag as -<name>.<flag>.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver and the analysistest
	// harness install sinks that apply lint:ignore suppression.
	Report func(Diagnostic)
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name, filled in by the sink if empty
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder visits every node of every file in depth-first preorder,
// calling fn for nodes whose concrete type matches one of the given
// example nodes (or all nodes when types is empty). It is the moral
// equivalent of the x/tools inspect.Analyzer's Preorder.
func (p *Pass) Preorder(nodeTypes []ast.Node, fn func(ast.Node)) {
	want := make(map[string]bool, len(nodeTypes))
	for _, n := range nodeTypes {
		want[fmt.Sprintf("%T", n)] = true
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if len(want) == 0 || want[fmt.Sprintf("%T", n)] {
				fn(n)
			}
			return true
		})
	}
}

// EachFuncBody visits every function body in the package: declared
// functions and every function literal. A literal's body is delivered
// in its own visit, so CFG-based passes analyze it as a separate
// function rather than inlining it into its enclosing declaration.
func (p *Pass) EachFuncBody(fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// WithStack visits every node of every file in preorder, passing the
// stack of ancestor nodes (outermost first, ending at the node itself).
// Returning false from fn prunes the subtree below the node.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Pruned: Inspect will not deliver the matching nil, so
				// pop here.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
