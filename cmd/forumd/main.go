// Command forumd serves a forum over HTTP — either a synthetic one
// generated on the fly or a dataset loaded from a JSONL file. It is the
// stand-in hidden service the scraper collects from.
//
// Usage:
//
//	forumd -listen :8989 -forum tmg -scale 0.02 [-latency 20ms] [-failures 0.05]
//	forumd -listen :8989 -load dataset.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"darklight"
	"darklight/internal/darkweb"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8989", "listen address")
		which      = flag.String("forum", "tmg", "synthetic forum to serve: reddit, tmg, or dm")
		scale      = flag.Float64("scale", 0.02, "synthetic population scale")
		seed       = flag.Uint64("seed", 1, "generator seed")
		load       = flag.String("load", "", "serve this JSONL dataset instead of generating")
		latency    = flag.Duration("latency", 0, "artificial per-request latency")
		failures   = flag.Float64("failures", 0, "probability of a 503 per request")
		rateLimits = flag.Float64("ratelimits", 0, "probability of a 429 with Retry-After per request")
		truncate   = flag.Float64("truncate", 0, "probability of a torn (truncated) response body")
		stall      = flag.Float64("stall", 0, "probability of a response stalling mid-body")
		flaky      = flag.Int("failfirst", 0, "every page 503s its first N requests, then succeeds")
		accessLog  = flag.String("access-log", "", "append one JSON line per request to this file (empty: no access log)")
	)
	flag.Parse()

	dataset, err := pickDataset(*load, *which, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forumd:", err)
		os.Exit(1)
	}

	srv := darkweb.NewServer(dataset.Name, dataset, darkweb.Options{
		Latency:        *latency,
		FailureRate:    *failures,
		RetryAfterRate: *rateLimits,
		TruncateRate:   *truncate,
		StallRate:      *stall,
		FailFirstN:     *flaky,
		Seed:           int64(*seed),
	})
	log.Printf("forumd: serving %s (%d aliases, %d messages, boards %v) on http://%s",
		dataset.Name, dataset.Len(), dataset.TotalMessages(), srv.Boards(), *listen)

	// The forum pages mount at /; the observability surfaces (/metrics,
	// /debug/vars, /debug/pprof/) mount beside them — ServeMux routes the
	// longer patterns first. With -access-log, the page tree is wrapped in
	// the generic request-tracing middleware: every response carries a
	// traceparent + request id and the log gets one JSON line per request.
	var pages http.Handler = srv.Handler()
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("forumd: -access-log: %v", err)
		}
		defer f.Close()
		rec := reqtrace.NewRecorder(reqtrace.Options{AccessLog: f})
		pages = reqtrace.Middleware(pages, rec, time.Now)
	}
	mux := http.NewServeMux()
	mux.Handle("/", pages)
	obs.AttachDebug(mux, obs.Default())
	obs.RegisterRuntime(obs.Default())

	server := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := server.ListenAndServe(); err != nil {
		log.Fatalf("forumd: %v", err)
	}
}

func pickDataset(load, which string, scale float64, seed uint64) (*forum.Dataset, error) {
	if load != "" {
		return darklight.LoadJSONL(load, "loaded", forum.PlatformSynthetic)
	}
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: seed, Scale: scale})
	if err != nil {
		return nil, err
	}
	switch which {
	case "reddit":
		return world.Reddit, nil
	case "tmg":
		return world.TMG, nil
	case "dm":
		return world.DM, nil
	default:
		return nil, fmt.Errorf("unknown forum %q (want reddit, tmg, or dm)", which)
	}
}
