package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"darklight/internal/activity"
	"darklight/internal/attribution"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/prefilter"
)

// Index is one immutable generation of the attribution state: the corpus
// it was built from, the subjects derived from it, the fully-built
// matcher, and the journal position already folded in. A Store persists
// and reloads it; Replay derives the next generation from it.
type Index struct {
	// Version is the snapshot generation, bumped on every Save.
	Version uint64
	// LastSeq is the journal sequence number already folded into this
	// index; replay skips entries at or below it.
	LastSeq uint64
	// Dataset is the full corpus in canonical (name-sorted) order.
	Dataset *forum.Dataset
	// Subjects are the attribution subjects built from Dataset, aligned
	// with the matcher's known set.
	Subjects []attribution.Subject
	// Matcher is the built (incremental) index over Subjects.
	Matcher *attribution.Matcher
	// Digest is the hex SHA-256 of the canonical corpus JSONL.
	Digest string
}

// Section names, in file order.
const (
	secOptions    = "options"
	secCorpus     = "corpus"
	secSubjects   = "subjects"
	secVocab      = "vocab"
	secStats      = "stats"
	secDocs       = "docs"
	secProfiles   = "profiles"
	secPostings   = "postings"
	secMaxContrib = "maxcontrib"
	secLSH        = "lsh"
)

// encodeIndex serialises the index to the framed snapshot format.
func encodeIndex(idx *Index) ([]byte, error) {
	st, err := idx.Matcher.State()
	if err != nil {
		return nil, err
	}
	optsJSON, err := json.Marshal(st.Opts)
	if err != nil {
		return nil, err
	}
	var corpus bytes.Buffer
	if err := forum.WriteJSONL(&corpus, idx.Dataset); err != nil {
		return nil, err
	}

	var sections []section
	add := func(name string, payload []byte) {
		sections = append(sections, section{name: name, payload: payload})
	}

	add(secOptions, optsJSON)

	var cw writer
	cw.str(idx.Dataset.Name)
	cw.str(idx.Dataset.Platform.String())
	cw.blob(corpus.Bytes())
	add(secCorpus, cw.b)

	var sw writer
	sw.u32(uint32(len(idx.Subjects)))
	for i := range idx.Subjects {
		s := &idx.Subjects[i]
		sw.str(s.Name)
		sw.str(s.Text)
		sw.u32(uint32(len(s.Timestamps)))
		for _, ts := range s.Timestamps {
			sw.i64(ts.UnixNano())
		}
		if p := s.Activity; p != nil {
			sw.u8(1)
			for _, b := range p.Bins {
				sw.f64(b)
			}
			sw.i64(int64(p.Samples))
			sw.i64(int64(p.ActiveBins))
		} else {
			sw.u8(0)
		}
	}
	add(secSubjects, sw.b)

	vocabJSON, err := json.Marshal(st.Vocab.Config)
	if err != nil {
		return nil, err
	}
	var vw writer
	vw.blob(vocabJSON)
	vw.i64(int64(st.Vocab.NumDocs))
	vw.u32(uint32(len(st.Vocab.Words)))
	for _, g := range st.Vocab.Words {
		vw.u64(uint64(g))
	}
	for _, f := range st.Vocab.WordIDF {
		vw.f64(f)
	}
	vw.u32(uint32(len(st.Vocab.Chars)))
	for _, g := range st.Vocab.Chars {
		vw.u64(uint64(g))
	}
	for _, f := range st.Vocab.CharIDF {
		vw.f64(f)
	}
	add(secVocab, vw.b)

	statsJSON, err := json.Marshal(st.Stats.Config)
	if err != nil {
		return nil, err
	}
	var tw writer
	tw.blob(statsJSON)
	tw.i64(int64(st.Stats.NumDocs))
	for _, c := range st.Stats.FreqSeen {
		tw.i64(int64(c))
	}
	writeGramCounts := func(gcs []features.GramCount) {
		tw.u32(uint32(len(gcs)))
		for _, gc := range gcs {
			tw.u64(uint64(gc.ID))
			tw.i64(gc.Freq)
			tw.i64(gc.DF)
		}
	}
	writeGramCounts(st.Stats.Words)
	writeGramCounts(st.Stats.Chars)
	add(secStats, tw.b)

	var dw writer
	dw.u32(uint32(len(st.Docs)))
	for _, d := range st.Docs {
		dw.u32(uint32(len(d.WordGrams)))
		for _, e := range d.WordGrams {
			dw.u64(uint64(e.ID))
			dw.u32(uint32(e.Count))
		}
		dw.u32(uint32(len(d.CharGrams)))
		for _, e := range d.CharGrams {
			dw.u64(uint64(e.ID))
			dw.u32(uint32(e.Count))
		}
		dw.i64(int64(d.WordTotal))
		dw.i64(int64(d.CharTotal))
		for _, f := range d.Freq {
			dw.f64(f)
		}
		dw.i64(int64(d.TotalChars))
	}
	add(secDocs, dw.b)

	var pw writer
	pw.u32(uint32(len(st.Mask)))
	for i := range st.Mask {
		pw.u8(st.Mask[i])
		writeDense := func(v []float64) {
			if v == nil {
				pw.u8(0)
				return
			}
			pw.u8(1)
			pw.u32(uint32(len(v)))
			for _, f := range v {
				pw.f64(f)
			}
		}
		writeDense(st.Freqs[i])
		writeDense(st.Acts[i])
	}
	add(secProfiles, pw.b)

	var fw writer
	fw.u32(uint32(len(st.FwdIdx)))
	for i := range st.FwdIdx {
		fw.u32(uint32(len(st.FwdIdx[i])))
		for _, id := range st.FwdIdx[i] {
			fw.u32(id)
		}
		for _, v := range st.FwdVal[i] {
			fw.f32(v)
		}
	}
	add(secPostings, fw.b)

	var mw writer
	mw.u32(uint32(len(st.MaxContrib)))
	for _, v := range st.MaxContrib {
		mw.f32(v)
	}
	add(secMaxContrib, mw.b)

	var lw writer
	lw.u32(uint32(len(st.LSH)))
	for _, t := range st.LSH {
		lw.i64(int64(t.Params.Bands))
		lw.i64(int64(t.Params.Rows))
		lw.u64(t.Params.Seed)
		lw.u32(uint32(len(t.Bands)))
		for _, bt := range t.Bands {
			lw.u32(uint32(len(bt.Keys)))
			for _, k := range bt.Keys {
				lw.u64(k)
			}
			for _, o := range bt.Offsets {
				lw.u32(o)
			}
			lw.u32(uint32(len(bt.IDs)))
			for _, id := range bt.IDs {
				lw.u32(uint32(id))
			}
		}
	}
	add(secLSH, lw.b)

	corpusDigest := sha256.Sum256(corpus.Bytes())
	h := header{IndexVersion: idx.Version, LastSeq: idx.LastSeq, CorpusDigest: corpusDigest}
	return encodeSnapshot(h, sections), nil
}

// decodeIndex parses and verifies a snapshot. Every structural failure is
// a *CorruptError naming the offending section.
func decodeIndex(raw []byte) (*Index, error) {
	h, sections, err := decodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	byName := make(map[string][]byte, len(sections))
	for _, s := range sections {
		byName[s.name] = s.payload
	}
	need := func(name string) ([]byte, error) {
		p, ok := byName[name]
		if !ok {
			return nil, corrupt(name, "section missing")
		}
		return p, nil
	}

	var st attribution.IndexState
	optsRaw, err := need(secOptions)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(optsRaw, &st.Opts); err != nil {
		return nil, corrupt(secOptions, "bad options JSON: %v", err)
	}

	corpusRaw, err := need(secCorpus)
	if err != nil {
		return nil, err
	}
	cr := &reader{b: corpusRaw}
	dsName := cr.str()
	platName := cr.str()
	corpusJSONL := cr.blob()
	if !cr.done() {
		return nil, corrupt(secCorpus, "malformed payload")
	}
	if got := sha256.Sum256(corpusJSONL); got != h.CorpusDigest {
		return nil, corrupt(secCorpus, "corpus digest disagrees with header")
	}
	platform, err := forum.ParsePlatform(platName)
	if err != nil {
		return nil, corrupt(secCorpus, "unknown platform %q", platName)
	}
	ds, err := forum.ReadJSONL(bytes.NewReader(corpusJSONL), dsName, platform)
	if err != nil {
		return nil, corrupt(secCorpus, "corpus JSONL: %v", err)
	}

	subjRaw, err := need(secSubjects)
	if err != nil {
		return nil, err
	}
	sr := &reader{b: subjRaw}
	nSubj := sr.lengthBound(8)
	subjects := make([]attribution.Subject, nSubj)
	for i := range subjects {
		s := &subjects[i]
		s.Name = sr.str()
		s.Text = sr.str()
		nts := sr.lengthBound(8)
		if nts > 0 {
			s.Timestamps = make([]time.Time, nts)
			for j := range s.Timestamps {
				s.Timestamps[j] = time.Unix(0, sr.i64()).UTC()
			}
		}
		if sr.u8() != 0 {
			p := &activity.Profile{}
			for j := range p.Bins {
				p.Bins[j] = sr.f64()
			}
			p.Samples = int(sr.i64())
			p.ActiveBins = int(sr.i64())
			s.Activity = p
		}
	}
	if !sr.done() {
		return nil, corrupt(secSubjects, "malformed payload")
	}

	vocabRaw, err := need(secVocab)
	if err != nil {
		return nil, err
	}
	vr := &reader{b: vocabRaw}
	if cfg := vr.blob(); cfg != nil {
		if err := json.Unmarshal(cfg, &st.Vocab.Config); err != nil {
			return nil, corrupt(secVocab, "bad config JSON: %v", err)
		}
	}
	st.Vocab.NumDocs = int(vr.i64())
	nw := vr.lengthBound(16)
	st.Vocab.Words = make([]features.GramID, nw)
	for i := range st.Vocab.Words {
		st.Vocab.Words[i] = features.GramID(vr.u64())
	}
	st.Vocab.WordIDF = make([]float64, nw)
	for i := range st.Vocab.WordIDF {
		st.Vocab.WordIDF[i] = vr.f64()
	}
	nc := vr.lengthBound(16)
	st.Vocab.Chars = make([]features.GramID, nc)
	for i := range st.Vocab.Chars {
		st.Vocab.Chars[i] = features.GramID(vr.u64())
	}
	st.Vocab.CharIDF = make([]float64, nc)
	for i := range st.Vocab.CharIDF {
		st.Vocab.CharIDF[i] = vr.f64()
	}
	if !vr.done() {
		return nil, corrupt(secVocab, "malformed payload")
	}

	statsRaw, err := need(secStats)
	if err != nil {
		return nil, err
	}
	tr := &reader{b: statsRaw}
	if cfg := tr.blob(); cfg != nil {
		if err := json.Unmarshal(cfg, &st.Stats.Config); err != nil {
			return nil, corrupt(secStats, "bad config JSON: %v", err)
		}
	}
	st.Stats.NumDocs = int(tr.i64())
	for i := range st.Stats.FreqSeen {
		st.Stats.FreqSeen[i] = int(tr.i64())
	}
	readGramCounts := func() []features.GramCount {
		n := tr.lengthBound(24)
		out := make([]features.GramCount, n)
		for i := range out {
			out[i] = features.GramCount{ID: features.GramID(tr.u64()), Freq: tr.i64(), DF: tr.i64()}
		}
		return out
	}
	st.Stats.Words = readGramCounts()
	st.Stats.Chars = readGramCounts()
	if !tr.done() {
		return nil, corrupt(secStats, "malformed payload")
	}

	docsRaw, err := need(secDocs)
	if err != nil {
		return nil, err
	}
	dr := &reader{b: docsRaw}
	nDocs := dr.lengthBound(32)
	st.Docs = make([]*features.SortedDoc, nDocs)
	for i := range st.Docs {
		d := &features.SortedDoc{}
		d.WordGrams = make([]features.GramEntry, dr.lengthBound(12))
		for j := range d.WordGrams {
			d.WordGrams[j] = features.GramEntry{ID: features.GramID(dr.u64()), Count: int32(dr.u32())}
		}
		d.CharGrams = make([]features.GramEntry, dr.lengthBound(12))
		for j := range d.CharGrams {
			d.CharGrams[j] = features.GramEntry{ID: features.GramID(dr.u64()), Count: int32(dr.u32())}
		}
		d.WordTotal = int(dr.i64())
		d.CharTotal = int(dr.i64())
		for j := range d.Freq {
			d.Freq[j] = dr.f64()
		}
		d.TotalChars = int(dr.i64())
		st.Docs[i] = d
	}
	if !dr.done() {
		return nil, corrupt(secDocs, "malformed payload")
	}

	profRaw, err := need(secProfiles)
	if err != nil {
		return nil, err
	}
	pr := &reader{b: profRaw}
	nProf := pr.lengthBound(3)
	st.Mask = make([]uint8, nProf)
	st.Freqs = make([][]float64, nProf)
	st.Acts = make([][]float64, nProf)
	for i := 0; i < nProf; i++ {
		st.Mask[i] = pr.u8()
		readDense := func() []float64 {
			if pr.u8() == 0 {
				return nil
			}
			n := pr.lengthBound(8)
			out := make([]float64, n)
			for j := range out {
				out[j] = pr.f64()
			}
			return out
		}
		st.Freqs[i] = readDense()
		st.Acts[i] = readDense()
	}
	if !pr.done() {
		return nil, corrupt(secProfiles, "malformed payload")
	}

	postRaw, err := need(secPostings)
	if err != nil {
		return nil, err
	}
	fr := &reader{b: postRaw}
	nFwd := fr.lengthBound(4)
	st.FwdIdx = make([][]uint32, nFwd)
	st.FwdVal = make([][]float32, nFwd)
	for i := 0; i < nFwd; i++ {
		n := fr.lengthBound(8)
		ids := make([]uint32, n)
		for j := range ids {
			ids[j] = fr.u32()
		}
		vals := make([]float32, n)
		for j := range vals {
			vals[j] = fr.f32()
		}
		st.FwdIdx[i] = ids
		st.FwdVal[i] = vals
	}
	if !fr.done() {
		return nil, corrupt(secPostings, "malformed payload")
	}

	mcRaw, err := need(secMaxContrib)
	if err != nil {
		return nil, err
	}
	mr := &reader{b: mcRaw}
	st.MaxContrib = make([]float32, mr.lengthBound(4))
	for i := range st.MaxContrib {
		st.MaxContrib[i] = mr.f32()
	}
	if !mr.done() {
		return nil, corrupt(secMaxContrib, "malformed payload")
	}

	lshRaw, err := need(secLSH)
	if err != nil {
		return nil, err
	}
	lr := &reader{b: lshRaw}
	nTables := lr.lengthBound(20)
	st.LSH = make([]prefilter.LSHTable, nTables)
	for i := range st.LSH {
		t := &st.LSH[i]
		t.Params = prefilter.LSHParams{Bands: int(lr.i64()), Rows: int(lr.i64()), Seed: lr.u64()}
		t.Bands = make([]prefilter.LSHBandTable, lr.lengthBound(8))
		for b := range t.Bands {
			bt := &t.Bands[b]
			nk := lr.lengthBound(12)
			bt.Keys = make([]uint64, nk)
			for j := range bt.Keys {
				bt.Keys[j] = lr.u64()
			}
			bt.Offsets = make([]uint32, nk+1)
			for j := range bt.Offsets {
				bt.Offsets[j] = lr.u32()
			}
			bt.IDs = make([]int32, lr.lengthBound(4))
			for j := range bt.IDs {
				bt.IDs[j] = int32(lr.u32())
			}
		}
	}
	if !lr.done() {
		return nil, corrupt(secLSH, "malformed payload")
	}

	matcher, err := attribution.NewMatcherFromState(subjects, st)
	if err != nil {
		return nil, corrupt("index", "state rejected: %v", err)
	}
	return &Index{
		Version:  h.IndexVersion,
		LastSeq:  h.LastSeq,
		Dataset:  ds,
		Subjects: subjects,
		Matcher:  matcher,
		Digest:   hex.EncodeToString(h.CorpusDigest[:]),
	}, nil
}
