package serve

// FuzzDecodeRequest hammers the strict request decoder with hostile bodies.
// Invariants: it never panics, and every rejection is a complete structured
// envelope (stable code, non-empty message, 4xx/5xx status) that itself
// marshals cleanly. CI runs this as a short fuzz smoke; longer local runs:
//
//	go test ./internal/serve -fuzz FuzzDecodeRequest -fuzztime 60s

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"subject":{"alias":"q_alice"},"k":3}`), int64(0))
	f.Add([]byte(`{"subject":{"name":"x","messages":[{"body":"hi","time":"2017-03-04T10:00:00Z"}]}}`), int64(1<<20))
	f.Add([]byte("{\"subject\":{\"alias\":\"a\x00b\"}}"), int64(0))
	f.Add([]byte(`{"subject":{"alias":"日本語🧅"},"k":-9999999}`), int64(64))
	f.Add([]byte(`{"subject":{"alias":"q"},"topk":5}`), int64(0))
	f.Add([]byte(`{"subject":`), int64(0))
	f.Add([]byte(`{"subject":{"alias":"q"}}{"x":1}`), int64(0))
	f.Add([]byte(`[{"subject":{}},null,0.1e308]`), int64(16))
	f.Add([]byte(strings.Repeat(`{"k":`, 512)), int64(0))
	f.Add([]byte(`{"subject":{"alias":"`+strings.Repeat("A", 10<<20)+`"}}`), int64(1024))

	f.Fuzz(func(t *testing.T, data []byte, limit int64) {
		for _, dst := range []any{new(RankRequest), new(RescoreRequest), new(MatchRequest)} {
			apiErr := decodeRequest(data, limit, dst)
			if apiErr == nil {
				continue
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("rejection with incomplete envelope: %+v (input %q)", apiErr, truncate(data))
			}
			if apiErr.Status < 400 || apiErr.Status > 599 {
				t.Fatalf("rejection with non-error status %d (input %q)", apiErr.Status, truncate(data))
			}
			if _, err := json.Marshal(errorEnvelope{Error: apiErr}); err != nil {
				t.Fatalf("error envelope does not marshal: %v", err)
			}
			if limit > 0 && int64(len(data)) > limit && apiErr.Code != CodePayloadTooLarge {
				t.Fatalf("over-limit body (%d > %d) rejected as %s, want %s", len(data), limit, apiErr.Code, CodePayloadTooLarge)
			}
		}
	})
}

func truncate(b []byte) string {
	if len(b) > 128 {
		return string(b[:128]) + "..."
	}
	return string(b)
}
