// Package normalize implements the data-polishing pipeline of §III-C of
// the paper — the twelve steps that turn raw scraped forum data into
// analysable text:
//
//  1. drop accounts whose nickname starts or ends with "bot"
//  2. drop duplicate messages (vendor reposts, Reddit cross-posts)
//  3. normalise URLs to their hostname
//  4. strip emoji
//  5. drop messages shorter than 10 words
//  6. drop messages whose distinct-word ratio is below 0.5 (spam)
//  7. keep only messages written in English
//  8. strip quoted text (keep only what the account holder wrote)
//  9. strip "Edit by <username>" markers
//  10. replace mail addresses with the "_mail_" tag
//  11. strip armored PGP keys
//  12. drop words longer than 34 characters (ASCII art, unarmored keys)
//
// Each step is a named Step value so callers can run the full paper
// pipeline, a subset, or interleave their own steps; the Report records
// what every step removed, which the tests and the experiment harness use.
package normalize

import (
	"fmt"
	"net/url"
	"regexp"
	"strings"

	"darklight/internal/forum"
	"darklight/internal/langdetect"
	"darklight/internal/tokenize"
)

// Defaults for the paper's thresholds.
const (
	// MinWords is the minimum message length in words (step 5).
	MinWords = 10
	// MinDistinctRatio is the spam threshold of step 6.
	MinDistinctRatio = 0.5
	// MaxWordLen is the longest token kept by step 12.
	MaxWordLen = 34
	// MailTag replaces email addresses (step 10).
	MailTag = "_mail_"
	// MinEnglishProb is the language-detector confidence needed to keep a
	// message as English (step 7).
	MinEnglishProb = 0.50
)

// Step is one polishing stage. Apply mutates the dataset in place and adds
// its effect to the report.
type Step struct {
	// Name identifies the step ("strip-emoji").
	Name string
	// Paper is the step number in §III-C, 0 for extensions.
	Paper int
	// Apply runs the step.
	Apply func(d *forum.Dataset, r *Report)
}

// Report accumulates per-step statistics.
type Report struct {
	// Steps lists per-step effects in execution order.
	Steps []StepReport
}

// StepReport describes what one step changed.
type StepReport struct {
	Name             string
	AliasesRemoved   int
	MessagesRemoved  int
	MessagesModified int
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "%-18s aliases-removed=%-5d messages-removed=%-6d modified=%d\n",
			s.Name, s.AliasesRemoved, s.MessagesRemoved, s.MessagesModified)
	}
	return b.String()
}

func (r *Report) add(s StepReport) { r.Steps = append(r.Steps, s) }

// Pipeline is an ordered list of steps.
type Pipeline struct {
	steps    []Step
	detector *langdetect.Detector
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithDetector overrides the language detector (the default is the
// embedded-profile detector).
func WithDetector(d *langdetect.Detector) Option {
	return func(p *Pipeline) { p.detector = d }
}

// NewPipeline returns the full 12-step paper pipeline.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{detector: langdetect.Default()}
	for _, o := range opts {
		o(p)
	}
	p.steps = []Step{
		{Name: "drop-bots", Paper: 1, Apply: dropBots},
		{Name: "dedup-messages", Paper: 2, Apply: dedupMessages},
		{Name: "strip-quotes", Paper: 8, Apply: stripQuotes},
		{Name: "strip-edit-marks", Paper: 9, Apply: stripEditMarks},
		{Name: "strip-pgp", Paper: 11, Apply: stripPGP},
		{Name: "tag-mail", Paper: 10, Apply: tagMail},
		{Name: "normalize-urls", Paper: 3, Apply: normalizeURLs},
		{Name: "strip-emoji", Paper: 4, Apply: stripEmoji},
		{Name: "drop-long-words", Paper: 12, Apply: dropLongWords},
		{Name: "english-only", Paper: 7, Apply: p.englishOnly},
		{Name: "drop-short", Paper: 5, Apply: dropShort},
		{Name: "drop-spam", Paper: 6, Apply: dropSpam},
	}
	return p
}

// Steps returns the step names in execution order.
func (p *Pipeline) Steps() []string {
	names := make([]string, len(p.steps))
	for i, s := range p.steps {
		names[i] = s.Name
	}
	return names
}

// Run executes every step in order and returns the report. The dataset is
// modified in place; aliases left with zero messages are removed at the end.
//
// The execution order differs from the paper's listing order: text-mutating
// steps (quotes, PGP, mail, URLs, emoji) run before the filters that
// measure length, spam ratio, and language, so the filters see the text the
// feature extractor will see.
func (p *Pipeline) Run(d *forum.Dataset) *Report {
	r := &Report{}
	for _, s := range p.steps {
		s.Apply(d, r)
	}
	// Final sweep: drop aliases that lost all messages.
	before := d.Len()
	kept := d.Filter(func(a *forum.Alias) bool { return len(a.Messages) > 0 })
	d.Aliases = kept.Aliases
	r.add(StepReport{Name: "drop-empty-aliases", AliasesRemoved: before - d.Len()})
	return r
}

// --- step 1: bots ---

func dropBots(d *forum.Dataset, r *Report) {
	before := d.Len()
	msgs := 0
	kept := d.Aliases[:0]
	for i := range d.Aliases {
		if d.Aliases[i].IsLikelyBot() {
			msgs += len(d.Aliases[i].Messages)
			continue
		}
		kept = append(kept, d.Aliases[i])
	}
	d.Aliases = kept
	r.add(StepReport{Name: "drop-bots", AliasesRemoved: before - d.Len(), MessagesRemoved: msgs})
}

// --- step 2: duplicates ---

// dedupMessages removes duplicate bodies per alias (vendors repost their
// showcase; redditors cross-post across subreddits). The first occurrence
// by timestamp wins so activity profiles keep the original posting time.
func dedupMessages(d *forum.Dataset, r *Report) {
	removed := 0
	for i := range d.Aliases {
		a := &d.Aliases[i]
		seen := make(map[string]int, len(a.Messages)) // body → index of kept msg
		kept := a.Messages[:0]
		for _, m := range a.Messages {
			key := strings.TrimSpace(m.Body)
			if j, dup := seen[key]; dup {
				if m.PostedAt.Before(kept[j].PostedAt) {
					kept[j] = m
				}
				removed++
				continue
			}
			seen[key] = len(kept)
			kept = append(kept, m)
		}
		a.Messages = kept
	}
	r.add(StepReport{Name: "dedup-messages", MessagesRemoved: removed})
}

// --- step 3: URLs ---

var schemeURLRe = regexp.MustCompile(`(?i)\b(?:https?|ftp)://[^\s<>"')\]]+`)

// NormalizeURL reduces a URL to its hostname ("https://www.reddit.com/r/x"
// → "reddit"-style hostname per the paper; we keep the full hostname,
// dropping scheme, path, query and the "www." prefix).
func NormalizeURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		// Fall back to manual trimming for malformed URLs.
		s := raw
		if i := strings.Index(s, "://"); i >= 0 {
			s = s[i+3:]
		}
		if i := strings.IndexAny(s, "/?#"); i >= 0 {
			s = s[:i]
		}
		return strings.TrimPrefix(strings.ToLower(s), "www.")
	}
	return strings.TrimPrefix(strings.ToLower(u.Hostname()), "www.")
}

func normalizeURLs(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			out := schemeURLRe.ReplaceAllStringFunc(m.Body, NormalizeURL)
			if out != m.Body {
				m.Body = out
				modified++
			}
		}
	}
	r.add(StepReport{Name: "normalize-urls", MessagesModified: modified})
}

// --- step 4: emoji ---

func stripEmoji(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			out := tokenize.StripEmoji(m.Body)
			if out != m.Body {
				m.Body = out
				modified++
			}
		}
	}
	r.add(StepReport{Name: "strip-emoji", MessagesModified: modified})
}

// --- step 5: short messages ---

func dropShort(d *forum.Dataset, r *Report) {
	removed := 0
	for i := range d.Aliases {
		a := &d.Aliases[i]
		kept := a.Messages[:0]
		for _, m := range a.Messages {
			if m.WordCount() < MinWords {
				removed++
				continue
			}
			kept = append(kept, m)
		}
		a.Messages = kept
	}
	r.add(StepReport{Name: "drop-short", MessagesRemoved: removed})
}

// --- step 6: spam ratio ---

func dropSpam(d *forum.Dataset, r *Report) {
	removed := 0
	for i := range d.Aliases {
		a := &d.Aliases[i]
		kept := a.Messages[:0]
		for _, m := range a.Messages {
			if m.DistinctWordRatio() < MinDistinctRatio {
				removed++
				continue
			}
			kept = append(kept, m)
		}
		a.Messages = kept
	}
	r.add(StepReport{Name: "drop-spam", MessagesRemoved: removed})
}

// --- step 7: language ---

func (p *Pipeline) englishOnly(d *forum.Dataset, r *Report) {
	removed := 0
	for i := range d.Aliases {
		a := &d.Aliases[i]
		kept := a.Messages[:0]
		for _, m := range a.Messages {
			if !p.detector.IsEnglish(m.Body, MinEnglishProb) {
				removed++
				continue
			}
			kept = append(kept, m)
		}
		a.Messages = kept
	}
	r.add(StepReport{Name: "english-only", MessagesRemoved: removed})
}

// --- step 8: quotes ---

// StripQuoteText removes quoted material from a message body: Reddit-style
// "> " lines and BB-style [quote]...[/quote] blocks (nested blocks are
// removed with a depth counter — Go regexps have no lookahead, and the
// naive non-greedy regex pairs an outer opener with an inner closer).
func StripQuoteText(body string) string {
	body = stripBBQuotes(body)
	lines := strings.Split(body, "\n")
	kept := lines[:0]
	for _, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), ">") {
			continue
		}
		kept = append(kept, ln)
	}
	return strings.TrimSpace(strings.Join(kept, "\n"))
}

// stripBBQuotes removes [quote...]...[/quote] blocks, tracking nesting
// depth. Unbalanced openers discard to end of text (quoted garbage beats
// leaked foreign text); unbalanced closers are dropped as stray markup.
func stripBBQuotes(body string) string {
	lower := strings.ToLower(body)
	var b strings.Builder
	depth := 0
	i := 0
	for i < len(body) {
		switch {
		case strings.HasPrefix(lower[i:], "[quote"):
			end := strings.IndexByte(lower[i:], ']')
			if end < 0 { // unterminated opener tag
				i = len(body)
				continue
			}
			depth++
			i += end + 1
		case strings.HasPrefix(lower[i:], "[/quote]"):
			if depth > 0 {
				depth--
				if depth == 0 {
					b.WriteByte(' ')
				}
			}
			i += len("[/quote]")
		default:
			if depth == 0 {
				b.WriteByte(body[i])
			}
			i++
		}
	}
	return b.String()
}

func stripQuotes(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			body := m.Body
			if m.Quoted != "" {
				body = strings.ReplaceAll(body, m.Quoted, " ")
			}
			out := StripQuoteText(body)
			if out != m.Body {
				m.Body = out
				modified++
			}
		}
	}
	r.add(StepReport{Name: "strip-quotes", MessagesModified: modified})
}

// --- step 9: edit marks ---

// "Edit by <username>" (and common variants "Edited by X", "EDIT:") up to
// end of line — the platform-added attribution string of §III-C(9).
var editMarkRe = regexp.MustCompile(`(?im)^\s*(?:last\s+)?edit(?:ed)?\s*(?:by\s+\S+|:)?[^\n]*$`)

func stripEditMarks(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			out := strings.TrimSpace(editMarkRe.ReplaceAllString(m.Body, ""))
			if out != m.Body {
				m.Body = out
				modified++
			}
		}
	}
	r.add(StepReport{Name: "strip-edit-marks", MessagesModified: modified})
}

// --- step 10: mail addresses ---

var mailRe = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)

func tagMail(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			out := mailRe.ReplaceAllString(m.Body, MailTag)
			if out != m.Body {
				m.Body = out
				modified++
			}
		}
	}
	r.add(StepReport{Name: "tag-mail", MessagesModified: modified})
}

// --- step 11: PGP ---

func stripPGP(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			if !tokenize.ContainsPGP(m.Body) {
				continue
			}
			m.Body = tokenize.StripPGP(m.Body)
			modified++
		}
	}
	r.add(StepReport{Name: "strip-pgp", MessagesModified: modified})
}

// --- step 12: overlong words ---

func dropLongWords(d *forum.Dataset, r *Report) {
	modified := 0
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			m := &d.Aliases[i].Messages[j]
			fields := strings.Fields(m.Body)
			changed := false
			kept := fields[:0]
			for _, f := range fields {
				if len([]rune(f)) > MaxWordLen {
					changed = true
					continue
				}
				kept = append(kept, f)
			}
			if changed {
				m.Body = strings.Join(kept, " ")
				modified++
			}
		}
	}
	r.add(StepReport{Name: "drop-long-words", MessagesModified: modified})
}
