package scraper

import (
	"bytes"
	"fmt"
	"os"

	"darklight/internal/forum"
	"darklight/internal/store"
)

// openCheckpoint loads the journal named by Options.CheckpointPath (empty
// map when unset or not yet created) and opens it for appending. The
// returned close function is safe to call unconditionally.
func (s *Scraper) openCheckpoint() (map[string][]forum.Message, func(), error) {
	if s.opts.CheckpointPath == "" {
		return nil, func() {}, nil
	}
	done := make(map[string][]forum.Message)
	raw, err := os.ReadFile(s.opts.CheckpointPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, func() {}, fmt.Errorf("scraper: checkpoint %s: %w", s.opts.CheckpointPath, err)
	}
	var recs []forum.ThreadRecord
	if err == nil {
		recs, err = forum.ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			return nil, func() {}, fmt.Errorf("scraper: checkpoint %s: %w", s.opts.CheckpointPath, err)
		}
		for _, rec := range recs {
			done[rec.Thread] = rec.Messages
		}
	}
	// Rewrite the journal as exactly the records just accepted before
	// appending: a kill mid-append leaves a torn final line, and appending
	// straight after it would fuse the tear with the next record into
	// mid-file corruption a future resume must reject. The rewrite goes
	// through a sibling tmp file + fsync + atomic rename — an in-place
	// os.WriteFile would truncate first, so a crash mid-rewrite would
	// destroy the whole journal instead of just the tear it was dropping.
	var clean bytes.Buffer
	for i := range recs {
		if err := forum.WriteThreadRecord(&clean, &recs[i]); err != nil {
			return nil, func() {}, err
		}
	}
	if clean.Len() != len(raw) {
		mCkptCompact.Inc()
	}
	if err := store.WriteFileAtomic(s.opts.CheckpointPath, clean.Bytes(), 0o644); err != nil {
		return nil, func() {}, fmt.Errorf("scraper: checkpoint %s: %w", s.opts.CheckpointPath, err)
	}
	f, err := os.OpenFile(s.opts.CheckpointPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, func() {}, fmt.Errorf("scraper: checkpoint %s: %w", s.opts.CheckpointPath, err)
	}
	s.mu.Lock()
	s.ckpt = f
	s.mu.Unlock()
	return done, func() {
		s.mu.Lock()
		s.ckpt = nil
		s.mu.Unlock()
		//lint:ignore errdrop the journal is best-effort (see appendCheckpoint); a close error cannot fail the crawl
		f.Close()
	}, nil
}

// appendCheckpoint journals one completed thread. Append failures are
// reported via logf but never fail the crawl — the checkpoint is an
// optimisation, not a correctness requirement.
func (s *Scraper) appendCheckpoint(thread string, posts []forum.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckpt == nil {
		return
	}
	rec := forum.ThreadRecord{Thread: thread, Messages: posts}
	if err := forum.WriteThreadRecord(s.ckpt, &rec); err != nil {
		s.logf("checkpoint append failed for thread %q: %v", thread, err)
		return
	}
	mCkptAppends.Inc()
}
