package timeutil

import (
	"testing"
	"time"
)

// The paper's activity profiles (§III-C, eq. 1) bin posts by UTC (day,
// hour); these tests pin the edges ISSUE 4 calls out — day boundaries,
// year rollover, and inputs carrying a non-UTC zone.

func TestBinUTCDayBoundary(t *testing.T) {
	lastInstant := time.Date(2017, 6, 1, 23, 59, 59, int(time.Second)-1, time.UTC)
	firstInstant := time.Date(2017, 6, 2, 0, 0, 0, 0, time.UTC)

	lb, fb := BinUTC(lastInstant), BinUTC(firstInstant)
	if lb.Hour != 23 {
		t.Errorf("23:59:59.999… bins at hour %d, want 23", lb.Hour)
	}
	if fb.Hour != 0 {
		t.Errorf("00:00:00 bins at hour %d, want 0", fb.Hour)
	}
	if lb.Day == fb.Day {
		t.Error("instants 1ns apart across midnight must land in different days")
	}
	if lb == fb {
		t.Error("bins across midnight must differ")
	}
}

func TestBinUTCNonUTCInput(t *testing.T) {
	// 00:30 on June 1 in UTC+2 is 22:30 on May 31 in UTC: the bin must
	// follow the UTC clock, not the input's wall clock.
	zoned := time.Date(2017, 6, 1, 0, 30, 0, 0, time.FixedZone("CEST", 2*3600))
	bin := BinUTC(zoned)
	if bin.Hour != 22 {
		t.Errorf("Hour = %d, want 22 (UTC)", bin.Hour)
	}
	if got := bin.String(); got != "2017-05-31@22h" {
		t.Errorf("bin = %q, want previous UTC day", got)
	}
	// The same instant expressed in any zone must share a bin.
	if BinUTC(zoned.UTC()) != bin {
		t.Error("equal instants in different zones landed in different bins")
	}
}

func TestAlignUTCYearRollover(t *testing.T) {
	// A forum clock running at UTC+1: a post stamped 00:30 on Jan 1 2018
	// forum-local actually happened at 23:30 on Dec 31 2017 UTC.
	local := time.Date(2018, 1, 1, 0, 30, 0, 0, time.UTC)
	got := AlignUTC(local, 60)
	want := time.Date(2017, 12, 31, 23, 30, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("AlignUTC = %v, want %v", got, want)
	}
	// And the bin it lands in belongs to the old year.
	if s := BinUTC(got).String(); s != "2017-12-31@23h" {
		t.Errorf("bin = %q, want 2017-12-31@23h", s)
	}
}

func TestWeekendAroundYearRollover(t *testing.T) {
	// Dec 31 2016 (Sat) and Jan 1 2017 (Sun) straddle the year boundary
	// as a weekend; Jan 2 2017 (Mon) is a weekday again.
	if !IsWeekend(time.Date(2016, 12, 31, 12, 0, 0, 0, time.UTC)) {
		t.Error("Sat Dec 31 2016 must be weekend")
	}
	if !IsWeekend(time.Date(2017, 1, 1, 12, 0, 0, 0, time.UTC)) {
		t.Error("Sun Jan 1 2017 must be weekend")
	}
	if IsWeekend(time.Date(2017, 1, 2, 12, 0, 0, 0, time.UTC)) {
		t.Error("Mon Jan 2 2017 must not be weekend")
	}
}

func TestIsWeekendNonUTCInput(t *testing.T) {
	// 23:00 Sunday in UTC-3 is 02:00 Monday UTC: exclusion must key on
	// the UTC weekday or profiles disagree across machines.
	sundayLocal := time.Date(2017, 7, 2, 23, 0, 0, 0, time.FixedZone("BRT", -3*3600))
	if sundayLocal.Weekday() != time.Sunday {
		t.Fatal("fixture must be a local Sunday")
	}
	if IsWeekend(sundayLocal) {
		t.Error("local Sunday that is UTC Monday must not count as weekend")
	}
	// The mirror case: 01:00 Monday in UTC+3 is 22:00 Sunday UTC.
	mondayLocal := time.Date(2017, 7, 3, 1, 0, 0, 0, time.FixedZone("MSK", 3*3600))
	if mondayLocal.Weekday() != time.Monday {
		t.Fatal("fixture must be a local Monday")
	}
	if !IsWeekend(mondayLocal) {
		t.Error("local Monday that is UTC Sunday must count as weekend")
	}
}

func TestNewYearObservedInPreviousYear(t *testing.T) {
	// Jan 1 2022 is a Saturday, so the federal observance shifts to
	// Friday Dec 31 2021 — the calendar for 2022 must reach back across
	// the rollover into the previous calendar year.
	cal := USHolidays(2022)
	if !cal.Contains(time.Date(2021, 12, 31, 12, 0, 0, 0, time.UTC)) {
		t.Error("New Year's Day 2022 must be observed Fri Dec 31 2021")
	}
	if cal.Contains(time.Date(2022, 1, 1, 12, 0, 0, 0, time.UTC)) {
		t.Error("the Saturday itself must not be listed when observed earlier")
	}
	// A rollover-spanning exclusion therefore needs both years' calendars:
	// 2021's own list knows nothing about the shifted 2022 observance.
	if USHolidays(2021).Contains(time.Date(2021, 12, 31, 12, 0, 0, 0, time.UTC)) {
		t.Error("USHolidays(2021) must not claim the 2022 observance")
	}
}

func TestHolidayContainsNonUTCInput(t *testing.T) {
	cal := USHolidays(2017)
	// 20:00 July 4 in UTC-10 is 06:00 July 5 UTC — not the holiday's UTC
	// calendar day, so it must not be excluded.
	zoned := time.Date(2017, 7, 4, 20, 0, 0, 0, time.FixedZone("HST", -10*3600))
	if cal.Contains(zoned) {
		t.Error("instant on UTC July 5 must not match the July 4 holiday")
	}
	// 20:00 July 3 in UTC-10 is 06:00 July 4 UTC — that one is excluded.
	zonedEve := time.Date(2017, 7, 3, 20, 0, 0, 0, time.FixedZone("HST", -10*3600))
	if !cal.Contains(zonedEve) {
		t.Error("instant on UTC July 4 must match the holiday regardless of zone")
	}
}
