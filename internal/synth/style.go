package synth

import (
	"math"
	"math/rand"
	"strings"
)

// Style is a Person instantiated on a concrete forum: the persistent word
// affinities are materialised into cumulative-weight tables per word pool
// so message generation is O(log pool) per word. Styles are built per
// (person, forum) and discarded after the person's messages are generated.
type Style struct {
	p         *Person
	forumHash uint64
	drift     float64

	pools map[string]*weightedPool // keyed by pool name
	// mix is the per-message dilution toward population-average word
	// choice, redrawn by GenerateMessage.
	mix float64
	// tmplCum are cumulative per-person weights over sentence templates —
	// sentence-structure habits are among the strongest word-bigram
	// signatures a person has.
	tmplCum []float64
}

type weightedPool struct {
	words []string
	cum   []float64 // cumulative weights
}

func newWeightedPool(p *Person, words []string, forumHash uint64, drift, strengthScale float64) *weightedPool {
	wp := &weightedPool{words: words, cum: make([]float64, len(words))}
	total := 0.0
	for i, w := range words {
		total += p.wordAffinityScaled(w, forumHash, drift, strengthScale)
		wp.cum[i] = total
	}
	return wp
}

// functionWordStyleScale damps per-person preferences over closed-class
// words (determiners, prepositions, pronouns, auxiliaries). Real people
// differ far less in "the vs a" than in content-word choice; leaving the
// full strength on function words makes even an IDF-less char-4-gram
// cosine (the Standard baseline) separate users, which the paper shows it
// cannot.
const functionWordStyleScale = 0.35

// sample draws a word according to the person's affinities, diluted by
// the style's current per-message mix: with probability mix the word is
// drawn uniformly from the pool instead. The mix models mood/topic drift
// within a user — real users do not sample from a fixed distribution, and
// this within-user variance is what starves an IDF-less cosine of signal
// while the stable idiosyncrasies (typos, slang, phrases, punctuation,
// schedule) keep carrying it.
func (wp *weightedPool) sample(r *rand.Rand, mix float64) string {
	if len(wp.words) == 0 {
		return ""
	}
	if mix > 0 && r.Float64() < mix {
		return wp.words[r.Intn(len(wp.words))]
	}
	x := r.Float64() * wp.cum[len(wp.cum)-1]
	lo, hi := 0, len(wp.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if wp.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return wp.words[lo]
}

// NewStyle materialises the person's style on a forum. drift controls how
// much word preferences shift between platforms (§I: "people might behave
// differently and use different writing styles when in the standard Web").
func (p *Person) NewStyle(forumID string, drift float64) *Style {
	fh := hashString(forumID)
	s := &Style{p: p, forumHash: fh, drift: drift, pools: make(map[string]*weightedPool, 16)}
	s.pools["pron"] = newWeightedPool(p, pronounsSubject, fh, drift, functionWordStyleScale)
	s.pools["det"] = newWeightedPool(p, determiners, fh, drift, functionWordStyleScale)
	s.pools["prep"] = newWeightedPool(p, prepositions, fh, drift, functionWordStyleScale)
	s.pools["conj"] = newWeightedPool(p, conjunctions, fh, drift, functionWordStyleScale)
	s.pools["aux"] = newWeightedPool(p, auxiliaries, fh, drift, functionWordStyleScale)
	s.pools["adv"] = newWeightedPool(p, commonAdverbs, fh, drift, 0.6)
	s.pools["slang"] = newWeightedPool(p, p.slang, fh, 0, 1) // personal habits do not drift
	s.pools["phrase"] = newWeightedPool(p, p.phrases, fh, 0, 1)
	s.pools["opener"] = newWeightedPool(p, p.openers, fh, 0, 1)
	s.tmplCum = make([]float64, len(sentenceTemplates))
	total := 0.0
	for i := range sentenceTemplates {
		// Template affinities: people reuse a handful of sentence shapes,
		// but sentence structure is also what an IDF-less char-gram cosine
		// sees best, so the preference is kept moderate.
		z := gauss(hash2(p.Seed, hashString("tmpl:"+sentenceTemplates[i])))
		total += mathExp(1.2 * p.StyleStrength * z)
		s.tmplCum[i] = total
	}
	return s
}

func mathExp(x float64) float64 { return math.Exp(x) }

func (s *Style) sampleTemplate(r *rand.Rand) string {
	if s.mix > 0 && r.Float64() < s.mix {
		return sentenceTemplates[r.Intn(len(sentenceTemplates))]
	}
	x := r.Float64() * s.tmplCum[len(s.tmplCum)-1]
	lo, hi := 0, len(s.tmplCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.tmplCum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return sentenceTemplates[lo]
}

// topicPools returns (lazily building) the noun/verb/adjective pools for a
// topic under this style.
func (s *Style) topicPool(kind, topic string) *weightedPool {
	key := kind + "\x00" + topic
	if wp, ok := s.pools[key]; ok {
		return wp
	}
	m := topicMerged[topic]
	var words []string
	switch kind {
	case "noun":
		words = m.nouns
	case "verb":
		words = m.verbs
	case "adj":
		words = m.adjectives
	default:
		words = genericNouns
	}
	if len(words) == 0 {
		words = genericNouns
	}
	wp := newWeightedPool(s.p, words, s.forumHash, s.drift, 1)
	s.pools[key] = wp
	return wp
}

// Sentence templates. Each rune selects a slot:
//
//	P pronoun  V verb  D determiner  N noun  A adjective  R adverb
//	E preposition  C conjunction  X auxiliary  G slang
var sentenceTemplates = []string{
	"PVDAN",
	"PXVDN",
	"PVDNEDN",
	"DNVRA",
	"PRVDAN",
	"PVCVDN",
	"DANVEDN",
	"PXRVDN",
	"PVDNCPVDN",
	"RPVDAN",
	"PVEDAN",
	"DNEDNVA",
	"PXVANEDN",
	"PVANG",
	"GPVDN",
	"PVRA",
	"DNXVR",
	"PRVEDN",
	"PVDNEDAN",
	"CPVDNPVA",
}

// GenerateSentence produces one sentence of roughly the person's habitual
// length on the given topic.
func (s *Style) GenerateSentence(r *rand.Rand, topic string) string {
	p := s.p
	var words []string

	if r.Float64() < p.openerRate {
		words = append(words, s.pools["opener"].sample(r, 0))
	}
	if r.Float64() < p.phraseRate {
		words = append(words, strings.Fields(s.pools["phrase"].sample(r, 0))...)
	}

	target := int(lognormal(r, p.sentLenMu, p.sentLenSigma))
	if target < 3 {
		target = 3
	}
	if target > 28 {
		target = 28
	}
	for len(words) < target {
		tmpl := s.sampleTemplate(r)
		for _, slot := range tmpl {
			if len(words) >= target+4 {
				break
			}
			var w string
			switch slot {
			case 'P':
				w = s.pools["pron"].sample(r, s.mix)
			case 'V':
				w = s.topicPool("verb", topic).sample(r, s.mix)
			case 'D':
				w = s.pools["det"].sample(r, s.mix)
			case 'N':
				w = s.topicPool("noun", topic).sample(r, s.mix)
			case 'A':
				w = s.topicPool("adj", topic).sample(r, s.mix)
			case 'R':
				w = s.pools["adv"].sample(r, s.mix)
			case 'E':
				w = s.pools["prep"].sample(r, s.mix)
			case 'C':
				w = s.pools["conj"].sample(r, s.mix)
			case 'X':
				w = s.pools["aux"].sample(r, s.mix)
			case 'G':
				if len(s.p.slang) > 0 && r.Float64() < p.slangRate*4 {
					w = s.pools["slang"].sample(r, 0)
				}
			}
			if w == "" {
				continue
			}
			w = p.applyOrthography(r, w)
			if r.Float64() < p.emphasisRate {
				w = "*" + w + "*"
			}
			words = append(words, w)
			// Habitual mid-sentence comma.
			if r.Float64() < p.commaRate/float64(target) && len(words) > 2 {
				words[len(words)-1] += ","
			}
		}
	}
	if r.Float64() < p.digitRate {
		words = append(words, digitToken(r))
	}
	if r.Float64() < p.slangRate {
		words = append(words, s.pools["slang"].sample(r, 0))
	}
	if r.Float64() < p.parenRate && len(words) > 4 {
		k := 1 + r.Intn(2)
		at := len(words) - k
		words[at] = "(" + words[at]
		words[len(words)-1] += ")"
	}

	sentence := strings.Join(words, " ")
	if !p.lowercaseOnly && len(sentence) > 0 {
		sentence = strings.ToUpper(sentence[:1]) + sentence[1:]
	}
	switch x := r.Float64(); {
	case x < p.ellipsisRate:
		sentence += "..."
	case x < p.ellipsisRate+p.exclaimRate:
		sentence += "!"
	case x < p.ellipsisRate+p.exclaimRate+p.questionRate:
		sentence += "?"
	default:
		sentence += "."
	}
	if r.Float64() < p.emojiRate {
		sentence += " " + emojiPool[r.Intn(len(emojiPool))]
	}
	return sentence
}

// GenerateMessage produces a message of roughly targetWords words on topic.
// Each message draws a fresh style dilution (mood): between 20% and 75% of
// open-class word choices ignore the person's preferences.
func (s *Style) GenerateMessage(r *rand.Rand, topic string, targetWords int) string {
	s.mix = 0.20 + 0.50*r.Float64()
	var b strings.Builder
	wordCount := 0
	for wordCount < targetWords {
		sent := s.GenerateSentence(r, topic)
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sent)
		wordCount += len(strings.Fields(sent))
	}
	return b.String()
}

// PickTopic samples a topic according to the person's interests, restricted
// to the allowed set (nil means all topics).
func (p *Person) PickTopic(r *rand.Rand, allowed []string) string {
	if allowed == nil {
		allowed = Topics
	}
	weights := make([]float64, len(allowed))
	for i, t := range allowed {
		weights[i] = p.topicPrefs[t]
	}
	i := weightedIndex(r, weights)
	if i < 0 {
		return allowed[0]
	}
	return allowed[i]
}

func digitToken(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return itoa(5 * (1 + r.Intn(20))) // price-ish round number
	case 1:
		return itoa(1 + r.Intn(100))
	case 2:
		return itoa(1+r.Intn(10)) + "." + itoa(r.Intn(10)) // rating
	default:
		return itoa(2010 + r.Intn(10)) // year
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
