package baselines

import (
	"context"
	"math"
	"runtime"
	"sort"

	"darklight/internal/attribution"
	"darklight/internal/eval"
	"darklight/internal/features"
	"darklight/internal/sparse"
)

// KoppelConfig tunes the random-subspace method of Koppel, Schler &
// Argamon ("Authorship attribution in the wild", LREC 2011), the second
// baseline of §IV-F.
type KoppelConfig struct {
	// Iterations is the number of random subspaces (paper: 100).
	Iterations int
	// FeatureFraction is the per-iteration feature sample (paper: 0.40).
	FeatureFraction float64
	// Seed drives the subspace choices.
	Seed uint64
	// Features is the underlying feature space; the zero value means the
	// paper's reduction configuration.
	Features features.Config
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultKoppelConfig returns the published parameters.
func DefaultKoppelConfig() KoppelConfig {
	return KoppelConfig{Iterations: 100, FeatureFraction: 0.40, Seed: 1, Features: features.ReductionConfig()}
}

// Koppel is the random-subspace voting matcher. Each iteration samples 40%
// of the features, finds every unknown's nearest known subject by cosine
// in that subspace, and gives it one vote; a candidate's final score is
// its vote share over all iterations.
//
// The method is inherently ~Iterations× more expensive than a single
// cosine pass — the paper measured 2,501 s for Koppel vs 1,541 s for its
// own method — so the implementation is iteration-major: one subspace at a
// time, one inverted index per subspace, all unknowns scored against it
// before the next subspace is drawn. Peak memory stays at one subspace
// index regardless of Iterations.
type Koppel struct {
	cfg   KoppelConfig
	known []attribution.Subject
	vocab *features.Vocabulary
	vecs  []sparse.Vector // full-space TF-IDF vectors of the known set
}

// NewKoppel indexes the known subjects over the full feature space.
func NewKoppel(known []attribution.Subject, cfg KoppelConfig) *Koppel {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100
	}
	if cfg.FeatureFraction <= 0 || cfg.FeatureFraction > 1 {
		cfg.FeatureFraction = 0.40
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Features.WordMax == 0 {
		cfg.Features = features.ReductionConfig()
	}
	k := &Koppel{cfg: cfg, known: known}
	vb := features.NewVocabBuilder(cfg.Features)
	docs := make([]*features.Doc, len(known))
	for i := range known {
		docs[i] = features.Extract(known[i].Text, cfg.Features)
		vb.Add(docs[i])
	}
	k.vocab = vb.Build()
	k.vecs = make([]sparse.Vector, len(known))
	for i := range known {
		k.vecs[i] = attribution.CompositeVector(&known[i], k.vocab, cfg.Features, koppelWeights)
	}
	return k
}

// koppelWeights mirror the main method's block weighting so the subspace
// voting sees the same feature space.
var koppelWeights = attribution.Weights{Freq: 0.2, Activity: 0.7}

// inSubspace reports whether feature idx belongs to iteration it's random
// subspace. Stateless hash of (seed, iteration, index) — no mask storage.
func (k *Koppel) inSubspace(it int, idx uint32) bool {
	h := splitmix(k.cfg.Seed ^ splitmix(uint64(it)*0x9e3779b97f4a7c15^uint64(idx)))
	return float64(h>>11)/(1<<53) < k.cfg.FeatureFraction
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type koppelPosting struct {
	subject int
	value   float32
}

// VoteAll runs the full voting procedure and returns, for every unknown,
// the per-known vote shares.
func (k *Koppel) VoteAll(ctx context.Context, unknowns []attribution.Subject) ([][]float64, error) {
	// Query vectors in the full space, computed once.
	queries := make([]sparse.Vector, len(unknowns))
	for i := range unknowns {
		queries[i] = attribution.CompositeVector(&unknowns[i], k.vocab, k.cfg.Features, koppelWeights)
	}
	votes := make([][]int, len(unknowns))
	for i := range votes {
		votes[i] = make([]int, len(k.known))
	}

	for it := 0; it < k.cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Build the subspace inverted index and known norms.
		postings := make(map[uint32][]koppelPosting)
		norms := make([]float64, len(k.vecs))
		for i, v := range k.vecs {
			for j, idx := range v.Idx {
				if !k.inSubspace(it, idx) {
					continue
				}
				x := v.Val[j]
				norms[i] += x * x
				postings[idx] = append(postings[idx], koppelPosting{subject: i, value: float32(x)})
			}
		}
		for i := range norms {
			norms[i] = math.Sqrt(norms[i])
		}

		// Score every unknown against this subspace concurrently.
		err := parallelEach(ctx, k.cfg.Workers, len(unknowns), func(u int) {
			q := queries[u]
			dots := make([]float32, len(k.known))
			qNorm := 0.0
			for j, idx := range q.Idx {
				if !k.inSubspace(it, idx) {
					continue
				}
				x := q.Val[j]
				qNorm += x * x
				fx := float32(x)
				for _, p := range postings[idx] {
					dots[p.subject] += p.value * fx
				}
			}
			if qNorm == 0 {
				return
			}
			best, bestScore := -1, -1.0
			for i := range dots {
				if norms[i] == 0 {
					continue
				}
				s := float64(dots[i]) / norms[i]
				if s > bestScore {
					best, bestScore = i, s
				}
			}
			if best >= 0 {
				votes[u][best]++
			}
		})
		if err != nil {
			return nil, err
		}
	}

	shares := make([][]float64, len(unknowns))
	for u := range votes {
		shares[u] = make([]float64, len(k.known))
		for i, v := range votes[u] {
			shares[u][i] = float64(v) / float64(k.cfg.Iterations)
		}
	}
	return shares, nil
}

// Match scores one unknown and returns all candidates, best first.
// For many unknowns use Predict — Match pays the full iteration sweep for
// a single query.
func (k *Koppel) Match(unknown *attribution.Subject) []attribution.Scored {
	shares, err := k.VoteAll(context.Background(), []attribution.Subject{*unknown})
	if err != nil || len(shares) == 0 {
		return nil
	}
	out := make([]attribution.Scored, len(k.known))
	for i := range k.known {
		out[i] = attribution.Scored{Name: k.known[i].Name, Score: shares[0][i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Predict returns the best-candidate prediction per unknown.
func (k *Koppel) Predict(ctx context.Context, unknowns []attribution.Subject) ([]eval.Prediction, error) {
	shares, err := k.VoteAll(ctx, unknowns)
	if err != nil {
		return nil, err
	}
	preds := make([]eval.Prediction, len(unknowns))
	for u := range unknowns {
		best, bestScore := -1, -1.0
		for i, s := range shares[u] {
			if s > bestScore || (s == bestScore && best >= 0 && k.known[i].Name < k.known[best].Name) {
				best, bestScore = i, s
			}
		}
		if best >= 0 {
			preds[u] = eval.Prediction{Unknown: unknowns[u].Name, Candidate: k.known[best].Name, Score: bestScore}
		}
	}
	return preds, nil
}
