package corpus

import (
	"strings"
	"testing"
	"time"

	"darklight/internal/activity"
	"darklight/internal/forum"
	"darklight/internal/timeutil"
)

// makeAlias builds an alias with n messages of w words each, posted on
// distinct weekday hours.
func makeAlias(name string, n, w int) forum.Alias {
	a := forum.Alias{Name: name}
	day := time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC)
	hour := 8
	for i := 0; i < n; i++ {
		for timeutil.IsWeekend(day) {
			day = day.AddDate(0, 0, 1)
		}
		body := strings.TrimSpace(strings.Repeat("w"+string(rune('a'+i%20))+" ", w))
		a.Messages = append(a.Messages, forum.Message{
			ID: name + "-" + itoa(i), Author: name, Body: body,
			PostedAt: time.Date(day.Year(), day.Month(), day.Day(), hour, 0, 0, 0, time.UTC),
		})
		hour++
		if hour > 20 {
			hour = 8
			day = day.AddDate(0, 0, 1)
		}
	}
	return a
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

func TestUsableTimestamps(t *testing.T) {
	a := makeAlias("x", 10, 5)
	// Add weekend posts; they must not count under exclusion.
	sat := time.Date(2017, 2, 4, 12, 0, 0, 0, time.UTC)
	a.Messages = append(a.Messages, forum.Message{ID: "sat", Author: "x", Body: "w", PostedAt: sat})
	if got := UsableTimestamps(&a, activity.Options{ExcludeWeekends: true}); got != 10 {
		t.Errorf("UsableTimestamps = %d, want 10", got)
	}
	if got := UsableTimestamps(&a, activity.Options{}); got != 11 {
		t.Errorf("without exclusion = %d, want 11", got)
	}
}

func TestRefineThresholds(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	d.Add(makeAlias("rich", 40, 50))    // 2000 words, 40 ts → passes
	d.Add(makeAlias("short", 40, 10))   // 400 words → fails words
	d.Add(makeAlias("sparse", 10, 200)) // 2000 words, 10 ts → fails ts
	out := Refine(d, RefineOptions{})
	if out.Len() != 1 || out.Aliases[0].Name != "rich" {
		t.Errorf("Refine kept %v", out.Names())
	}
}

func TestSplitAlterEgos(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	d.Add(makeAlias("prolific", 80, 50)) // 4000 words, 80 ts → splittable
	d.Add(makeAlias("modest", 40, 50))   // 2000 words → stays whole
	main, ae := SplitAlterEgos(d, AlterEgoOptions{Seed: 1})

	if main.Len() != 2 {
		t.Fatalf("main has %d aliases", main.Len())
	}
	if ae.Len() != 1 || ae.Aliases[0].Name != "prolific" {
		t.Fatalf("ae = %v", ae.Names())
	}
	if ae.Name != "AE_T" {
		t.Errorf("ae dataset name = %q", ae.Name)
	}

	orig, _ := main.Find("prolific")
	alter := ae.Aliases[0]
	// Disjoint message sets, evenly split.
	if len(orig.Messages)+len(alter.Messages) != 80 {
		t.Errorf("messages lost: %d + %d", len(orig.Messages), len(alter.Messages))
	}
	if diff := len(orig.Messages) - len(alter.Messages); diff < -1 || diff > 1 {
		t.Errorf("uneven split: %d vs %d", len(orig.Messages), len(alter.Messages))
	}
	seen := map[string]bool{}
	for _, m := range orig.Messages {
		seen[m.ID] = true
	}
	for _, m := range alter.Messages {
		if seen[m.ID] {
			t.Fatalf("message %s in both halves", m.ID)
		}
	}
	// The modest alias is untouched.
	modest, _ := main.Find("modest")
	if len(modest.Messages) != 40 {
		t.Error("non-splittable alias must keep all messages")
	}
}

func TestSplitDeterministic(t *testing.T) {
	build := func() (*forum.Dataset, *forum.Dataset) {
		d := forum.NewDataset("T", forum.PlatformReddit)
		d.Add(makeAlias("p", 80, 50))
		return SplitAlterEgos(d, AlterEgoOptions{Seed: 42})
	}
	m1, a1 := build()
	m2, a2 := build()
	if m1.Aliases[0].Messages[0].ID != m2.Aliases[0].Messages[0].ID ||
		a1.Aliases[0].Messages[0].ID != a2.Aliases[0].Messages[0].ID {
		t.Error("split must be deterministic in the seed")
	}
}

func TestDocumentLongestFirst(t *testing.T) {
	a := forum.Alias{Name: "x", Messages: []forum.Message{
		{ID: "short", Body: "one two three"},
		{ID: "long", Body: "a b c d e f g h i j"},
		{ID: "mid", Body: "p q r s t"},
	}}
	doc := Document(&a, 12)
	words := strings.Fields(doc)
	if len(words) != 12 {
		t.Fatalf("doc has %d words, want 12", len(words))
	}
	// Longest message first, truncating in the mid one.
	if words[0] != "a" || words[10] != "p" {
		t.Errorf("order wrong: %v", words)
	}
	// Unlimited.
	if got := len(strings.Fields(Document(&a, -1))); got != 18 {
		t.Errorf("unlimited doc = %d words", got)
	}
	// Original order untouched.
	if a.Messages[0].ID != "short" {
		t.Error("Document must not reorder the alias's messages")
	}
}

func TestSample(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	for i := 0; i < 20; i++ {
		d.Add(forum.Alias{Name: "u" + itoa(i)})
	}
	s1 := Sample(d, 5, 7)
	s2 := Sample(d, 5, 7)
	if s1.Len() != 5 {
		t.Fatalf("sample size %d", s1.Len())
	}
	for i := range s1.Aliases {
		if s1.Aliases[i].Name != s2.Aliases[i].Name {
			t.Fatal("Sample must be deterministic")
		}
	}
	if got := Sample(d, 100, 7); got.Len() != 20 {
		t.Error("oversized sample must return everything")
	}
}

func TestWordCountCDF(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	d.Add(makeAlias("a", 1, 10))  // 10 words
	d.Add(makeAlias("b", 1, 100)) // 100 words
	cdf := WordCountCDF(d, []int{5, 10, 50, 100})
	want := []float64{0, 0.5, 0.5, 1}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := WordCountCDF(forum.NewDataset("E", forum.PlatformReddit), []int{1}); got[0] != 0 {
		t.Error("empty dataset CDF must be zero")
	}
}
