package attribution

// Bounded top-k selection for stage 1. Ranking an unknown scores every
// known subject but keeps only k = 10 of them, so sorting a full index
// permutation (O(n log n) plus an n-int allocation per query) wastes almost
// all of its work at production known-set sizes. A k-bounded min-heap does
// the same selection in O(n log k) with a k-entry scratch buffer that
// MatchAll workers reuse across queries.
//
// The ordering is exactly topKScores' historical sort order — higher score
// first, ties broken by ascending subject name — and the heap keeps the
// *worst* retained entry at the root so a streaming pass can evict in O(1)
// comparisons for the common case (candidate no better than the current
// worst). topk_test.go pins output equality against a reference full sort.

// heapEntry is one retained candidate: the subject's index and its score.
// Names are looked up through the known slice only when comparing ties,
// keeping the entry at 16 bytes.
type heapEntry struct {
	score float64
	index int
}

// entryWorse reports whether a ranks strictly below b: lower score, or an
// equal score with a lexicographically greater name. This is the exact
// inverse of the ranking comparator, so the min-heap root is the entry the
// full sort would place last among the retained k.
func entryWorse(known []Subject, a, b heapEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return known[a.index].Name > known[b.index].Name
}

func siftUp(known []Subject, h []heapEntry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entryWorse(known, h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores the heap property over h[:n] starting at i.
func siftDown(known []Subject, h []heapEntry, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && entryWorse(known, h[l], h[m]) {
			m = l
		}
		if r < n && entryWorse(known, h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pushTopK streams one candidate into a k-bounded heap and returns the
// (possibly grown) heap plus whether the candidate evicted a previously
// retained entry. The root is the worst retained entry — the running
// k-th-best threshold the pruned pre-filter compares upper bounds against.
// Eviction counts are a per-query diagnostic (surfaced through
// prefilter.Stats into request traces): many evictions mean the candidate
// stream arrived in a poor order for the heap.
func pushTopK(known []Subject, h []heapEntry, k int, e heapEntry) ([]heapEntry, bool) {
	if k <= 0 {
		return h, false
	}
	if len(h) < k {
		h = append(h, e)
		siftUp(known, h, len(h)-1)
	} else if entryWorse(known, h[0], e) {
		h[0] = e
		siftDown(known, h, 0, len(h))
		return h, true
	}
	return h, false
}

// drainTopK empties a bounded heap into ranked output — best first, ties by
// ascending name — by popping worst-first and filling back to front. The
// heap's contents are consumed; its backing array is reusable afterwards.
func drainTopK(known []Subject, h []heapEntry) []Scored {
	out := make([]Scored, len(h))
	for n := len(h); n > 0; n-- {
		e := h[0]
		h[0] = h[n-1]
		siftDown(known, h, 0, n-1)
		out[n-1] = Scored{Name: known[e.index].Name, Score: e.score}
	}
	return out
}

// topKScores selects the k best (score, name) pairs, best first; ties break
// by name for determinism, and the eviction count rides along for trace
// stats. scratch, when non-nil, supplies the reusable heap buffer of a
// matchBuffers (its capacity is kept and grown in place).
func topKScores(known []Subject, scores []float64, k int, scratch *[]heapEntry) ([]Scored, int) {
	if k > len(scores) {
		k = len(scores)
	}
	if k < 0 {
		k = 0
	}
	var h []heapEntry
	if scratch != nil {
		h = (*scratch)[:0]
	}
	evictions := 0
	for i := range scores {
		var ev bool
		h, ev = pushTopK(known, h, k, heapEntry{score: scores[i], index: i})
		if ev {
			evictions++
		}
	}
	if scratch != nil {
		*scratch = h // keep the (possibly grown) capacity for the next query
	}
	return drainTopK(known, h), evictions
}
