package langdetect

import (
	"strings"
	"testing"
)

// Holdout sentences: none of these appear in the seed corpora.
var holdout = map[Lang][]string{
	English: {
		"the package arrived yesterday and the quality is much better than the last batch i ordered from them.",
		"i really think you should check the reviews before sending any money to a new vendor on this market.",
	},
	Spanish: {
		"el envío llegó ayer y la calidad es mucho mejor que la del último pedido que hice con ellos.",
		"creo que deberías revisar las opiniones antes de enviar dinero a un vendedor nuevo en este mercado.",
	},
	French: {
		"le colis est arrivé hier et la qualité est bien meilleure que celle de ma dernière commande chez eux.",
	},
	German: {
		"das paket kam gestern an und die qualität ist viel besser als bei der letzten bestellung von ihnen.",
	},
	Italian: {
		"il pacco è arrivato ieri e la qualità è molto migliore rispetto all'ultimo ordine che ho fatto da loro.",
	},
	Portuguese: {
		"o pacote chegou ontem e a qualidade é muito melhor do que a da última encomenda que fiz com eles.",
	},
	Dutch: {
		"het pakket kwam gisteren aan en de kwaliteit is veel beter dan bij de vorige bestelling van hen.",
	},
}

func TestDetectHoldoutSentences(t *testing.T) {
	d := Default()
	for lang, sentences := range holdout {
		for _, s := range sentences {
			got, prob, ok := d.DetectLang(s)
			if !ok {
				t.Errorf("%s: no detection for %q", lang, s)
				continue
			}
			if got != lang {
				t.Errorf("detected %s (p=%.2f) for %s sentence %q", got, prob, lang, s)
			}
		}
	}
}

func TestIsEnglish(t *testing.T) {
	d := Default()
	if !d.IsEnglish(holdout[English][0], 0.5) {
		t.Error("English holdout not accepted")
	}
	if d.IsEnglish(holdout[Spanish][0], 0.5) {
		t.Error("Spanish holdout accepted as English")
	}
	if d.IsEnglish("12345 !!! ???", 0.5) {
		t.Error("letter-free text must not be English")
	}
	if d.IsEnglish("", 0.5) {
		t.Error("empty text must not be English")
	}
}

func TestDetectEmptyAndSymbolOnly(t *testing.T) {
	d := Default()
	for _, s := range []string{"", "   ", "12345", "!!! ???"} {
		if got := d.Detect(s); got != nil {
			t.Errorf("Detect(%q) = %v, want nil", s, got)
		}
	}
}

func TestDetectionsSortedAndNormalised(t *testing.T) {
	d := Default()
	ds := d.Detect(holdout[English][0])
	if len(ds) != len(d.Languages()) {
		t.Fatalf("got %d detections, want %d", len(ds), len(d.Languages()))
	}
	sum := 0.0
	for i, det := range ds {
		sum += det.Prob
		if i > 0 && det.Prob > ds[i-1].Prob {
			t.Error("detections must be sorted by descending probability")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("posteriors sum to %v, want 1", sum)
	}
}

func TestLanguagesList(t *testing.T) {
	langs := Default().Languages()
	if len(langs) != 8 {
		t.Fatalf("got %d languages, want 8", len(langs))
	}
	for i := 1; i < len(langs); i++ {
		if langs[i] <= langs[i-1] {
			t.Error("Languages must be sorted")
		}
	}
}

func TestCustomDetector(t *testing.T) {
	d := NewDetector(map[Lang]string{
		"aa": strings.Repeat("aaaa bbbb aaaa ", 50),
		"cc": strings.Repeat("cccc dddd cccc ", 50),
	})
	lang, _, ok := d.DetectLang("aaaa aaaa bbbb")
	if !ok || lang != "aa" {
		t.Errorf("DetectLang = %v, %v", lang, ok)
	}
}

func TestNormalize(t *testing.T) {
	got := normalize("Hello, WORLD!  123 foo's")
	want := "hello world foo's"
	if got != want {
		t.Errorf("normalize = %q, want %q", got, want)
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the same instance")
	}
}
