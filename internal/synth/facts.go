package synth

import (
	"fmt"
	"math/rand"
)

// Facts are person-level biographical attributes. They are revealed in
// messages with platform-dependent carelessness (§VI: users "let their
// guard down" on the standard Web) and are what the §V-A manual-inspection
// procedure compares: two aliases of the same person reveal consistent
// facts; a false match reveals contradictory ones (age 20 vs 34, Christian
// vs Atheist, pro- vs anti-Trump, Poland vs USA — all examples from §V-C).

// FactKind enumerates biographical attributes.
type FactKind string

// The fact kinds planted by the generator, mirroring the evidence classes
// the paper's manual evaluation relied on.
const (
	FactAge       FactKind = "age"
	FactCity      FactKind = "city"
	FactCountry   FactKind = "country"
	FactReligion  FactKind = "religion"
	FactPolitics  FactKind = "politics"
	FactDrug      FactKind = "drug"
	FactHobby     FactKind = "hobby"
	FactPhone     FactKind = "phone"
	FactJob       FactKind = "job"
	FactVendorRef FactKind = "vendor-complaint"
)

// Fact is one biographical attribute with its value.
type Fact struct {
	Kind  FactKind `json:"kind"`
	Value string   `json:"value"`
}

type cityCountry struct{ city, country string }

var factCities = []cityCountry{
	{"edmonton", "canada"}, {"toronto", "canada"}, {"vancouver", "canada"},
	{"miami", "usa"}, {"new york", "usa"}, {"chicago", "usa"},
	{"seattle", "usa"}, {"denver", "usa"}, {"austin", "usa"},
	{"portland", "usa"}, {"london", "uk"}, {"manchester", "uk"},
	{"berlin", "germany"}, {"hamburg", "germany"}, {"amsterdam", "netherlands"},
	{"sydney", "australia"}, {"melbourne", "australia"},
	{"warsaw", "poland"}, {"krakow", "poland"}, {"dublin", "ireland"},
}

var factReligions = []string{"christian", "atheist", "agnostic", "buddhist", "catholic"}
var factPolitics = []string{"pro-trump", "anti-trump", "libertarian", "progressive", "apolitical"}
var factDrugs = []string{"lsd", "mdma", "white molly", "mushrooms", "cannabis", "ketamine", "dmt", "2c-b"}
var factHobbies = []string{"yoga", "cooking", "hiking", "chess", "guitar", "photography", "climbing", "fishing", "painting", "gaming"}
var factPhones = []string{"samsung galaxy s4", "iphone 6", "pixel 2", "oneplus 5", "samsung galaxy s8", "lg g6"}
var factJobs = []string{"student", "unemployed", "warehouse worker", "developer", "bartender", "nurse", "electrician", "delivery driver"}
var factGames = []string{"fallout", "league of legends", "cod4", "counter strike", "overwatch", "skyrim"}
var factVendors = []string{"greenleaf", "kiwikush", "nordicbear", "acidqueen", "mollymaster", "stealthking"}

// generateFacts draws a consistent biography for a person.
func (p *Person) generateFacts() []Fact {
	r := subRand(p.Seed, "facts")
	cc := factCities[r.Intn(len(factCities))]
	facts := []Fact{
		{FactAge, itoa(18 + r.Intn(28))},
		{FactCity, cc.city},
		{FactCountry, cc.country},
		{FactReligion, factReligions[r.Intn(len(factReligions))]},
		{FactPolitics, factPolitics[r.Intn(len(factPolitics))]},
		{FactDrug, factDrugs[r.Intn(len(factDrugs))]},
		{FactHobby, factHobbies[r.Intn(len(factHobbies))]},
		{FactPhone, factPhones[r.Intn(len(factPhones))]},
		{FactJob, factJobs[r.Intn(len(factJobs))]},
		{FactVendorRef, factVendors[r.Intn(len(factVendors))]},
	}
	return facts
}

// factSentence renders a fact as a natural message fragment.
func factSentence(r *rand.Rand, f Fact) string {
	switch f.Kind {
	case FactAge:
		return pick(r,
			fmt.Sprintf("i am %s years old btw.", f.Value),
			fmt.Sprintf("turning %s this year, time flies.", f.Value),
			fmt.Sprintf("as a %s year old i have seen enough of this.", f.Value))
	case FactCity:
		return pick(r,
			fmt.Sprintf("i live in %s and the scene here is small.", f.Value),
			fmt.Sprintf("greetings from %s, anyone else around here?", f.Value),
			fmt.Sprintf("here in %s the weather has been terrible lately.", f.Value))
	case FactCountry:
		return pick(r,
			fmt.Sprintf("shipping to %s is always a gamble.", f.Value),
			fmt.Sprintf("things are different here in %s i guess.", f.Value))
	case FactReligion:
		return fmt.Sprintf("as a %s i try not to judge anyone here.", f.Value)
	case FactPolitics:
		return fmt.Sprintf("honestly my views are pretty %s these days.", f.Value)
	case FactDrug:
		return pick(r,
			fmt.Sprintf("%s is my thing, everything else is secondary.", f.Value),
			fmt.Sprintf("been taking %s regularly for a while now.", f.Value))
	case FactHobby:
		return pick(r,
			fmt.Sprintf("you should all try %s, changed my life.", f.Value),
			fmt.Sprintf("spent the whole weekend on %s again.", f.Value))
	case FactPhone:
		return fmt.Sprintf("typing this from my %s so excuse the typos.", f.Value)
	case FactJob:
		return fmt.Sprintf("work wise i am a %s at the moment.", f.Value)
	case FactVendorRef:
		return pick(r,
			fmt.Sprintf("the last batch from %s was poor quality, really disappointed.", f.Value),
			fmt.Sprintf("ordered from %s again, same story as always.", f.Value))
	default:
		return ""
	}
}

func pick(r *rand.Rand, options ...string) string {
	return options[r.Intn(len(options))]
}

// Contradicts reports whether two facts of the same kind conflict. Facts of
// different kinds never contradict.
func Contradicts(a, b Fact) bool {
	return a.Kind == b.Kind && a.Value != b.Value
}

// Consistent reports whether two facts of the same kind agree.
func Consistent(a, b Fact) bool {
	return a.Kind == b.Kind && a.Value == b.Value
}
