package attribution

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"darklight/internal/activity"
	"darklight/internal/prefilter"
)

// randomWorld builds a known set and probe set with deliberately messy
// variety: authors with shared and private vocabulary, empty documents,
// missing activity profiles, and probes ranging from near-duplicates of a
// known subject to pure noise. Everything derives from rng, so each seed
// is one reproducible world.
func randomWorld(rng *rand.Rand, n int) (known, probes []Subject) {
	genText := func(r *rand.Rand, pref []string, words int) string {
		var b strings.Builder
		for w := 0; w < words; w++ {
			if len(pref) > 0 && r.Float64() < 0.5 {
				b.WriteString(pref[r.Intn(len(pref))])
			} else {
				b.WriteString(sharedVocab[r.Intn(len(sharedVocab))])
			}
			if r.Float64() < 0.1 {
				b.WriteString(",")
			}
			b.WriteByte(' ')
		}
		return b.String()
	}
	prefs := make([][]string, n)
	for i := 0; i < n; i++ {
		pref := make([]string, 0, 8)
		for _, j := range rng.Perm(len(sharedVocab))[:5+rng.Intn(10)] {
			pref = append(pref, sharedVocab[j])
		}
		pref = append(pref, fmt.Sprintf("pw%dq", i))
		prefs[i] = pref

		s := Subject{Name: fmt.Sprintf("known%03d", i)}
		switch rng.Intn(10) {
		case 0: // empty document
		case 1: // tiny document
			s.Text = genText(rng, pref, 3)
		default:
			s.Text = genText(rng, pref, 40+rng.Intn(300))
		}
		if rng.Float64() < 0.7 {
			s.Timestamps = stamps(rng.Intn(24), 20+rng.Intn(30))
			if p, err := activity.Build(s.Timestamps, activity.Options{}); err == nil {
				s.Activity = p
			}
		}
		known = append(known, s)
	}
	nprobe := 4 + rng.Intn(6)
	for i := 0; i < nprobe; i++ {
		p := Subject{Name: fmt.Sprintf("probe%03d", i)}
		switch rng.Intn(6) {
		case 0: // zero-norm probe: empty text, no activity
		case 1: // noise probe
			p.Text = genText(rng, nil, 50+rng.Intn(100))
		default: // styled like a random known author
			j := rng.Intn(n)
			p.Text = genText(rng, prefs[j], 40+rng.Intn(300))
			if rng.Float64() < 0.7 {
				p.Timestamps = stamps(rng.Intn(24), 25)
				if ap, err := activity.Build(p.Timestamps, activity.Options{}); err == nil {
					p.Activity = ap
				}
			}
		}
		probes = append(probes, p)
	}
	return known, probes
}

// TestPrunedBitIdenticalToExact is the losslessness property test: across
// random worlds, random weights, random k, and random pruning knobs
// (including a slack far below the default), the pruned top-k must equal
// the exact scan's bit for bit — same names, same order, same float64
// score bits.
func TestPrunedBitIdenticalToExact(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	weights := []Weights{{}, {Freq: 0.2}, {Freq: 0.2, Activity: 0.7}, {Freq: 1.3, Activity: 0.1}, {Activity: 2.5}}
	knobs := []prefilter.PrunedParams{
		{},                             // defaults
		{Slack: 1e-12, TailShare: -1},  // minimal slack, full walk
		{Slack: 1e-12, TailShare: 0.5}, // minimal slack, aggressive early stop
		{Slack: 0.05, TailShare: 0.9},  // loose everything
		{Slack: prefilter.DefaultSlack * 10, TailShare: 0.2},
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("world%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			n := 15 + rng.Intn(45)
			known, probes := randomWorld(rng, n)
			opts := DefaultOptions()
			opts.Workers = 2
			opts.UseActivity = rng.Intn(2) == 0
			m, err := NewMatcher(known, opts)
			if err != nil {
				t.Fatal(err)
			}
			for pi := range probes {
				w := weights[rng.Intn(len(weights))]
				k := 1 + rng.Intn(n+5)
				ps := knobs[rng.Intn(len(knobs))]
				exact, stE := m.RankDetailed(&probes[pi], MatchOptions{K: k, Weights: &w, Mode: prefilter.ModeExact})
				pruned, stP := m.RankDetailed(&probes[pi], MatchOptions{K: k, Weights: &w, Mode: prefilter.ModePruned, Pruned: &ps})
				if stE.Mode != prefilter.ModeExact {
					t.Fatalf("probe %d: exact ran as %v", pi, stE.Mode)
				}
				if stP.Scored+stP.Pruned != n {
					t.Fatalf("probe %d: stats do not cover the known set: %+v", pi, stP)
				}
				if len(pruned) != len(exact) {
					t.Fatalf("probe %d (k=%d, knobs=%+v): pruned returned %d entries, exact %d",
						pi, k, ps, len(pruned), len(exact))
				}
				for j := range exact {
					if pruned[j].Name != exact[j].Name ||
						math.Float64bits(pruned[j].Score) != math.Float64bits(exact[j].Score) {
						t.Fatalf("probe %d (k=%d, knobs=%+v): rank %d diverges:\npruned %q %v (%x)\nexact  %q %v (%x)",
							pi, k, ps, j,
							pruned[j].Name, pruned[j].Score, math.Float64bits(pruned[j].Score),
							exact[j].Name, exact[j].Score, math.Float64bits(exact[j].Score))
					}
				}
			}
		})
	}
}

// TestPrunedIsDefaultMode pins the PR's headline behaviour change: a
// matcher built from DefaultOptions pre-filters with the lossless pruned
// mode unless told otherwise.
func TestPrunedIsDefaultMode(t *testing.T) {
	authors := makeAuthors(t, 12, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, st := m.RankDetailed(&probes[0], MatchOptions{})
	if st.Mode != prefilter.ModePruned {
		t.Fatalf("default mode = %v, want pruned", st.Mode)
	}
	// An explicit per-matcher default wins.
	opts := testOptions()
	opts.Prefilter.Mode = prefilter.ModeExact
	me, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, st = me.RankDetailed(&probes[0], MatchOptions{})
	if st.Mode != prefilter.ModeExact {
		t.Fatalf("configured exact default ran as %v", st.Mode)
	}
	// And a per-query override beats both.
	_, st = me.RankDetailed(&probes[0], MatchOptions{Mode: prefilter.ModeLSH})
	if st.Mode != prefilter.ModeLSH {
		t.Fatalf("per-query lsh override ran as %v", st.Mode)
	}
}

// TestLSHScoresMatchExactForReturnedNames: the approximate mode may miss
// candidates but must never score a returned name differently from the
// exact scan.
func TestLSHScoresMatchExactForReturnedNames(t *testing.T) {
	authors := makeAuthors(t, 30, 400)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	exactByName := make(map[string]float64)
	hits := 0
	for i := range probes {
		exact, _ := m.RankDetailed(&probes[i], MatchOptions{K: len(known), Mode: prefilter.ModeExact})
		for _, c := range exact {
			exactByName[c.Name] = c.Score
		}
		lsh, st := m.RankDetailed(&probes[i], MatchOptions{Mode: prefilter.ModeLSH})
		if st.Mode != prefilter.ModeLSH {
			t.Fatalf("probe %d ran as %v", i, st.Mode)
		}
		if st.Candidates > len(known) {
			t.Fatalf("probe %d: %d candidates out of %d known", i, st.Candidates, len(known))
		}
		for _, c := range lsh {
			want, ok := exactByName[c.Name]
			if !ok {
				t.Fatalf("probe %d: LSH invented candidate %q", i, c.Name)
			}
			if math.Float64bits(c.Score) != math.Float64bits(want) {
				t.Fatalf("probe %d: LSH rescored %q: %v vs exact %v", i, c.Name, c.Score, want)
			}
		}
		// Self-similar probes should usually surface their own author. This
		// world is adversarially homogeneous — every author draws from the
		// same 90-word vocabulary, so same-author Jaccard (~0.34) barely
		// clears different-author (~0.27) and no operating point separates
		// them sharply. The real recall floor is pinned by internal/eval on
		// a population with distinct community vocabularies; here we only
		// assert the mode is usefully better than chance.
		for _, c := range lsh {
			if c.Name == probes[i].Name {
				hits++
				break
			}
		}
	}
	if hits < len(probes)/2 {
		t.Errorf("LSH found the true author for only %d/%d probes", hits, len(probes))
	}
}

// TestLSHEmptyQueryFallsBackLossless: a probe with no gram features cannot
// be hashed; the matcher must quietly use the lossless path instead of
// returning nothing.
func TestLSHEmptyQueryFallsBackLossless(t *testing.T) {
	authors := makeAuthors(t, 8, 200)
	known, _ := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Activity only: non-zero norm but an empty gram block.
	probe := Subject{Name: "ghost", Timestamps: stamps(9, 30)}
	if p, err := activity.Build(probe.Timestamps, activity.Options{}); err == nil {
		probe.Activity = p
	}
	if probe.Activity == nil {
		t.Fatal("probe needs an activity profile for this test")
	}
	got, st := m.RankDetailed(&probe, MatchOptions{Mode: prefilter.ModeLSH})
	if st.Mode != prefilter.ModePruned {
		t.Fatalf("empty-gram LSH query ran as %v, want pruned fallback", st.Mode)
	}
	exact, _ := m.RankDetailed(&probe, MatchOptions{Mode: prefilter.ModeExact})
	if len(got) != len(exact) {
		t.Fatalf("fallback returned %d entries, exact %d", len(got), len(exact))
	}
	for i := range exact {
		if got[i] != exact[i] {
			t.Fatalf("fallback entry %d = %+v, want %+v", i, got[i], exact[i])
		}
	}
}

// TestRankConcurrentPooledBuffers hammers the bufferless entry points from
// many goroutines: the pooled scratch must never bleed state between
// concurrent queries (run under -race in CI).
func TestRankConcurrentPooledBuffers(t *testing.T) {
	authors := makeAuthors(t, 20, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Scored, len(probes))
	for i := range probes {
		want[i] = m.Rank(&probes[i], 5)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				i := (g + r) % len(probes)
				got := m.Rank(&probes[i], 5)
				for j := range want[i] {
					if got[j] != want[i][j] {
						t.Errorf("goroutine %d: probe %d entry %d = %+v, want %+v", g, i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMatchWithThreadsOptions: the two-stage path accepts per-query
// ranking options and stage 2 rescoring still runs over the filtered
// candidates.
func TestMatchWithThreadsOptions(t *testing.T) {
	authors := makeAuthors(t, 15, 400)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := m.Match(&probes[3])
	viaOpts := m.MatchWith(&probes[3], MatchOptions{})
	if base.Best != viaOpts.Best || len(base.Candidates) != len(viaOpts.Candidates) {
		t.Fatalf("MatchWith zero options diverges from Match: %+v vs %+v", viaOpts.Best, base.Best)
	}
	lsh := m.MatchWith(&probes[3], MatchOptions{Mode: prefilter.ModeLSH})
	if len(lsh.Rescored) != len(lsh.Candidates) {
		t.Fatalf("stage 2 rescored %d of %d LSH candidates", len(lsh.Rescored), len(lsh.Candidates))
	}
}
