package analysis

import "testing"

func TestScopeMatches(t *testing.T) {
	cases := []struct {
		scope string
		path  string
		want  bool
	}{
		{"internal/synth", "darklight/internal/synth", true},
		{"internal/synth", "internal/synth", true},
		{"internal/synth", "darklight/internal/synthetic", false},
		{"internal/synth", "darklight/internal/corpus", false},
		{"cmd", "darklight/cmd/scrape", true},
		{"cmd", "darklight/internal/cmdutil", false},
		{"internal", "darklight/internal/analysis/passes/errdrop", true},
		{"all", "anything/at/all", true},
		{"a,b,internal/x", "m/internal/x", true},
		{"", "m/internal/x", false},
		{"internal/scraper", "darklight/internal/scraper", true},
		{"darklight", "darklight", true},
		// "!" exclusions carve subtrees out of a broader pattern and win
		// regardless of order.
		{"internal/obs,!internal/obs/reqtrace", "darklight/internal/obs", true},
		{"internal/obs,!internal/obs/reqtrace", "darklight/internal/obs/reqtrace", false},
		{"!internal/obs/reqtrace,internal/obs", "darklight/internal/obs/reqtrace", false},
		{"all,!cmd", "darklight/cmd/scrape", false},
		{"all,!cmd", "darklight/internal/obs", true},
		{"!cmd", "darklight/internal/obs", false}, // exclusions alone match nothing
		{"!all,internal/obs", "darklight/internal/obs", false},
	}
	for _, c := range cases {
		if got := NewScope(c.scope).Matches(c.path); got != c.want {
			t.Errorf("Scope(%q).Matches(%q) = %v, want %v", c.scope, c.path, got, c.want)
		}
	}
}

func TestScopeFlagRoundTrip(t *testing.T) {
	var s Scope
	if err := s.Set(" internal/a , cmd ,"); err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "internal/a,cmd" {
		t.Errorf("String() = %q", got)
	}
	if !s.Matches("m/internal/a") || !s.Matches("m/cmd/x") {
		t.Error("parsed scope lost patterns")
	}
}
