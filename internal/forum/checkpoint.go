package forum

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// A scrape checkpoint is a JSONL journal of completed crawl units: one
// ThreadRecord per line, appended as each thread finishes. A crawl killed
// mid-run re-reads the journal and skips every thread already recorded,
// so interrupted collection resumes without refetching. The format is
// append-only on purpose — a kill can at worst truncate the final line,
// which ReadCheckpoint tolerates by dropping it.

// ThreadRecord is one fully collected thread in a scrape checkpoint.
type ThreadRecord struct {
	// Thread is the thread id as discovered in the board listing.
	Thread string `json:"thread"`
	// Messages are the thread's posts in page order.
	Messages []Message `json:"messages"`
}

// WriteThreadRecord appends one record to the journal as a single JSONL
// line. Callers serialise concurrent appends themselves.
func WriteThreadRecord(w io.Writer, rec *ThreadRecord) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("forum: checkpoint thread %q: %w", rec.Thread, err)
	}
	return nil
}

// ReadCheckpoint reads a checkpoint journal back into records, in journal
// order. A malformed final line — the signature of a crawl killed in the
// middle of an append — is dropped silently; a malformed line anywhere
// else is a real corruption and errors. Later records win when a thread
// appears twice.
func ReadCheckpoint(r io.Reader) ([]ThreadRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24) // a record holds a whole thread
	var recs []ThreadRecord
	badLine := 0 // most recent undecodable line, 1-based
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec ThreadRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if badLine != 0 {
				return nil, fmt.Errorf("forum: checkpoint line %d: corrupt record", badLine)
			}
			badLine = line
			continue
		}
		if badLine != 0 {
			// A decodable record after a bad line means the bad line was
			// not a truncated tail.
			return nil, fmt.Errorf("forum: checkpoint line %d: corrupt record", badLine)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forum: checkpoint scan: %w", err)
	}
	return recs, nil
}
