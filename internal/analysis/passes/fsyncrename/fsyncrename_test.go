package fsyncrename_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/fsyncrename"
)

// The fixture is multi-file on purpose: a.go holds the general shapes
// and compact.go replays the PR 8 checkpoint-compaction bug as a
// golden, so the exact regression cannot quietly reappear.
func TestFsyncRename(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncrename.Analyzer, "internal/store")
}
