// Command scrape crawls a forumd instance into a JSONL dataset.
//
// Usage:
//
//	scrape -url http://127.0.0.1:8989 -out tmg.jsonl [-interval 50ms] [-workers 4] [-resume crawl.ckpt]
//
// With -resume, completed threads are journaled to the named checkpoint
// file as the crawl runs; re-running the same command after an interrupt
// (Ctrl-C, network death) picks up where the crawl stopped instead of
// refetching. Threads that stay unreachable after retries are skipped
// and summarised on stderr — the partial dataset is still written.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"darklight"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/scraper"
)

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:8989", "forum base URL")
		out      = flag.String("out", "scraped.jsonl", "output JSONL path")
		name     = flag.String("name", "scraped", "dataset name")
		interval = flag.Duration("interval", 20*time.Millisecond, "politeness delay between requests (shared by all workers)")
		workers  = flag.Int("workers", 4, "concurrent thread fetchers")
		retries  = flag.Int("retries", 4, "retry budget per page for transient failures (-1 disables retries)")
		resume   = flag.String("resume", "", "checkpoint journal path; reused across runs to resume an interrupted crawl")
		jitter   = flag.Int64("jitterseed", 0, "pin the backoff-jitter RNG for a reproducible retry schedule (0 = wall-clock seed)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		manifest = flag.String("manifest", "", "write a run.json manifest to this path")
		obsAddr  = flag.String("obs.addr", "", "serve /metrics and /debug/pprof on this address for the crawl's duration")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tracer *obs.Tracer
	if *manifest != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *obsAddr != "" {
		addr, stop, err := obs.Serve(*obsAddr, obs.Default(), log.Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			os.Exit(1)
		}
		defer stop()
		log.Printf("scrape: observability on http://%s/metrics", addr)
	}

	opts := scraper.Options{
		RequestInterval: *interval,
		Workers:         *workers,
		MaxRetries:      *retries,
		CheckpointPath:  *resume,
		JitterSeed:      *jitter,
	}
	if *retries < 0 {
		opts.MaxRetries = scraper.NoRetries
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	sc := scraper.New(*base, opts)
	start := time.Now()
	dataset, err := sc.Scrape(ctx, *name, forum.PlatformSynthetic)
	if err != nil {
		if ctx.Err() != nil && *resume != "" {
			fmt.Fprintf(os.Stderr, "scrape: interrupted — re-run with -resume %s to continue\n", *resume)
		}
		fmt.Fprintln(os.Stderr, "scrape:", err)
		os.Exit(1)
	}
	for _, ce := range sc.Errors() {
		fmt.Fprintln(os.Stderr, "scrape: gave up on", ce.String())
	}
	if err := darklight.SaveJSONL(*out, dataset); err != nil {
		fmt.Fprintln(os.Stderr, "scrape:", err)
		os.Exit(1)
	}
	st := sc.Stats()
	log.Printf("scrape: %d aliases, %d posts from %d threads on %d boards "+
		"(%d requests, %d retries, %d threads resumed, %d failed) in %s → %s",
		dataset.Len(), st.Posts, st.Threads, st.Boards, st.Requests, st.Retries,
		st.Resumed, st.Failed, time.Since(start).Round(time.Millisecond), *out)

	if *manifest != "" {
		man := obs.NewManifest("scrape")
		man.Config = opts
		man.AddSeed("jitter", *jitter)
		sum, err := forum.DigestJSONL(dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			os.Exit(1)
		}
		man.Datasets = []obs.DatasetDigest{{
			Name: dataset.Name, Aliases: dataset.Len(), Messages: dataset.TotalMessages(), SHA256: sum,
		}}
		man.Stages = tracer.Stages()
		man.Metrics = obs.Default().Snapshot()
		man.AddResult("stats", fmt.Sprintf("%+v", st))
		for _, ce := range sc.Errors() {
			man.AddResult("error:"+ce.Board+ce.Thread, ce.String())
		}
		if err := man.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			os.Exit(1)
		}
		log.Printf("scrape: manifest written to %s", *manifest)
	}
}
