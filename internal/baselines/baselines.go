// Package baselines implements the two comparison methods of §IV-F:
//
//   - Standard: space-free character 4-grams weighted by term frequency,
//     cosine similarity, best candidate wins — the standard baseline of the
//     authorship-attribution literature.
//   - Koppel: the random-subspace method of Koppel, Schler & Argamon
//     ("Authorship attribution in the wild", LREC 2011): 100 iterations,
//     each over a random 40% of the feature space; every iteration votes
//     for its most similar candidate; a candidate's final score is its
//     normalised vote count.
//
// Both consume the same Subject documents as the core method, so Fig. 3's
// comparison is apples-to-apples.
package baselines

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"

	"darklight/internal/attribution"
	"darklight/internal/eval"
	"darklight/internal/sparse"
)

// Standard is the space-free char-4-gram + cosine baseline.
type Standard struct {
	known   []attribution.Subject
	vocab   map[string]uint32
	vecs    []sparse.Vector
	workers int
}

// NewStandard indexes the known subjects.
func NewStandard(known []attribution.Subject, workers int) *Standard {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Standard{known: known, vocab: make(map[string]uint32), workers: workers}
	s.vecs = make([]sparse.Vector, len(known))
	for i := range known {
		s.vecs[i] = s.vectorize(known[i].Text, true)
	}
	return s
}

// charFreeSpace4Grams counts the character 4-grams of text with all
// whitespace removed.
func charFreeSpace4Grams(text string) map[string]int {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range text {
		if r != ' ' && r != '\t' && r != '\n' && r != '\r' {
			b.WriteRune(r)
		}
	}
	runes := []rune(b.String())
	counts := make(map[string]int, len(runes))
	for i := 0; i+4 <= len(runes); i++ {
		counts[string(runes[i:i+4])]++
	}
	return counts
}

// vectorize maps 4-gram counts into the shared index space. When grow is
// true unseen grams are added to the vocabulary (used for the known set);
// query vectors only use grams already indexed.
func (s *Standard) vectorize(text string, grow bool) sparse.Vector {
	counts := charFreeSpace4Grams(text)
	grams := make([]string, 0, len(counts))
	for g := range counts {
		grams = append(grams, g)
	}
	sort.Strings(grams) // deterministic vocabulary ids
	var vec sparse.Vector
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return vec
	}
	for _, g := range grams {
		id, ok := s.vocab[g]
		if !ok {
			if !grow {
				continue
			}
			id = uint32(len(s.vocab))
			s.vocab[g] = id
		}
		vec.Idx = append(vec.Idx, id)
		vec.Val = append(vec.Val, float64(counts[g])/float64(total))
	}
	vec.Sort()
	return vec.Normalize()
}

// Match returns every known candidate scored against the unknown, best
// first.
func (s *Standard) Match(unknown *attribution.Subject) []attribution.Scored {
	q := s.vectorize(unknown.Text, false)
	out := make([]attribution.Scored, len(s.known))
	for i := range s.known {
		out[i] = attribution.Scored{Name: s.known[i].Name, Score: sparse.Dot(q, s.vecs[i])}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Predict returns the best-candidate prediction per unknown, in input
// order, computed concurrently.
func (s *Standard) Predict(ctx context.Context, unknowns []attribution.Subject) ([]eval.Prediction, error) {
	preds := make([]eval.Prediction, len(unknowns))
	err := parallelEach(ctx, s.workers, len(unknowns), func(i int) {
		ranked := s.Match(&unknowns[i])
		if len(ranked) > 0 {
			preds[i] = eval.Prediction{Unknown: unknowns[i].Name, Candidate: ranked[0].Name, Score: ranked[0].Score}
		}
	})
	return preds, err
}

// parallelEach runs fn(i) for i in [0, n) over a bounded worker pool.
func parallelEach(ctx context.Context, workers, n int, fn func(int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return err
}
