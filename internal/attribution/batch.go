package attribution

import (
	"context"
	"fmt"
)

// Batch processing (§IV-J): when the known set exceeds what memory can
// hold at once, divide it into batches of at most B aliases, run the
// k-attribution step per batch, pool the per-batch candidates, and repeat
// until the surviving candidate set fits in one batch; then run the final
// two-stage match against that set.
//
// The paper validates B = 100 on the baseline-comparison dataset and gets
// precision 91% / recall 81% at the same global threshold (0.4190).

// BatchMatcher applies the iterative batched procedure.
type BatchMatcher struct {
	known []Subject
	opts  Options
	// B is the maximum candidate set the hardware handles at once.
	B int
}

// NewBatchMatcher wraps a known set with a batch budget B. B must be at
// least the stage-1 k, or a candidate pool could never shrink below one
// batch.
func NewBatchMatcher(known []Subject, opts Options, b int) (*BatchMatcher, error) {
	opts = opts.withDefaults()
	if b < opts.K {
		return nil, fmt.Errorf("attribution: batch size %d smaller than k=%d", b, opts.K)
	}
	return &BatchMatcher{known: known, opts: opts, B: b}, nil
}

// stageOpts are the per-batch reduction options: single stage, no
// threshold decision.
func (bm *BatchMatcher) stageOpts() Options {
	o := bm.opts
	o.TwoStage = false
	return o
}

// MatchAll runs the batched procedure for every unknown.
//
// Memory discipline: only one batch is ever indexed at a time — that is
// the point of §IV-J — so the first reduction round builds each batch's
// matcher once and ranks *all* unknowns against it before moving to the
// next batch. Later rounds (needed only when ceil(N/B)·k still exceeds B)
// operate on per-unknown pools.
func (bm *BatchMatcher) MatchAll(ctx context.Context, unknowns []Subject) ([]MatchResult, error) {
	results := make([]MatchResult, len(unknowns))

	// Round 1: shared batches over the full known set.
	pools := make([][]Subject, len(unknowns))
	for start := 0; start < len(bm.known); start += bm.B {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		end := start + bm.B
		if end > len(bm.known) {
			end = len(bm.known)
		}
		batch := bm.known[start:end]
		m, err := NewMatcher(batch, bm.stageOpts())
		if err != nil {
			return results, err
		}
		for i := range unknowns {
			for _, c := range m.Rank(&unknowns[i], bm.opts.K) {
				if s := findSubject(batch, c.Name); s != nil {
					pools[i] = append(pools[i], *s)
				}
			}
		}
	}

	// Later rounds + final match, per unknown.
	for i := range unknowns {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		res, err := bm.matchPool(&unknowns[i], pools[i])
		if err != nil {
			return results, err
		}
		results[i] = res
	}
	return results, nil
}

// Match runs the batched procedure for a single unknown.
func (bm *BatchMatcher) Match(ctx context.Context, unknown *Subject) (MatchResult, error) {
	res, err := bm.MatchAll(ctx, []Subject{*unknown})
	if err != nil {
		return MatchResult{Unknown: unknown.Name}, err
	}
	return res[0], nil
}

// matchPool shrinks one unknown's candidate pool below B, then runs the
// final two-stage match against it.
func (bm *BatchMatcher) matchPool(unknown *Subject, pool []Subject) (MatchResult, error) {
	for len(pool) > bm.B {
		var survivors []Subject
		for start := 0; start < len(pool); start += bm.B {
			end := start + bm.B
			if end > len(pool) {
				end = len(pool)
			}
			batch := pool[start:end]
			m, err := NewMatcher(batch, bm.stageOpts())
			if err != nil {
				return MatchResult{Unknown: unknown.Name}, err
			}
			for _, c := range m.Rank(unknown, bm.opts.K) {
				if s := findSubject(batch, c.Name); s != nil {
					survivors = append(survivors, *s)
				}
			}
		}
		if len(survivors) >= len(pool) {
			pool = survivors
			break // cannot shrink further; fall through to final step
		}
		pool = survivors
	}
	final, err := NewMatcher(pool, bm.opts)
	if err != nil {
		return MatchResult{Unknown: unknown.Name}, err
	}
	return final.Match(unknown), nil
}

func findSubject(batch []Subject, name string) *Subject {
	for i := range batch {
		if batch[i].Name == name {
			return &batch[i]
		}
	}
	return nil
}
