package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Person is one human being with a persistent style genome and a persistent
// circadian genome. The same Person instantiated on two different forums
// (with some domain drift) is the generative model behind every
// "two aliases, one user" ground-truth pair.
type Person struct {
	// ID indexes the person within the population.
	ID int
	// Seed drives every persistent trait; derived from the master seed.
	Seed uint64

	// --- style genome ---

	// StyleStrength scales how far this person's word preferences deviate
	// from the population average. 0 = everyone identical.
	StyleStrength float64
	// slang, typos, phrases, openers are the idiosyncrasies this person
	// adopted.
	slang   []string
	typos   [][2]string // [original, misspelling]
	phrases []string
	openers []string

	// Punctuation & orthography habits (rates per sentence or per word).
	exclaimRate   float64
	ellipsisRate  float64
	questionRate  float64
	commaRate     float64
	emojiRate     float64
	emphasisRate  float64 // *word*
	parenRate     float64 // (aside)
	digitRate     float64
	slangRate     float64
	phraseRate    float64
	openerRate    float64
	typoRate      float64
	lowercaseOnly bool
	capsWordRate  float64 // OCCASIONAL SHOUTING

	// Sentence/message shape.
	sentLenMu    float64 // lognormal words per sentence
	sentLenSigma float64

	// Topic interests (unnormalised weights over Topics).
	topicPrefs map[string]float64

	// --- circadian genome ---

	// TZOffsetMinutes is the person's home-timezone offset from UTC.
	TZOffsetMinutes int
	// peakHour / peakWidth describe the primary local posting peak;
	// secondPeak adds an optional evening/morning secondary habit.
	peakHour    float64
	peakWidth   float64
	secondPeak  float64
	secondWidth float64
	secondProb  float64
	uniformProb float64
}

// PersonConfig tunes population-level trait distributions.
type PersonConfig struct {
	// StyleStrength is the mean style deviation (default 0.9).
	StyleStrength float64
	// TypoRate default 0.03, SlangRate default 0.05.
	TypoRate  float64
	SlangRate float64
}

// DefaultPersonConfig returns the calibrated defaults.
func DefaultPersonConfig() PersonConfig {
	return PersonConfig{StyleStrength: 0.7, TypoRate: 0.05, SlangRate: 0.04}
}

// NewPerson derives a person deterministically from the master seed.
func NewPerson(masterSeed uint64, id int, cfg PersonConfig) *Person {
	seed := hash2(masterSeed, uint64(id)*0x9e3779b97f4a7c15+1)
	r := subRand(seed, "genome")
	p := &Person{
		ID:            id,
		Seed:          seed,
		StyleStrength: cfg.StyleStrength * (0.4 + 1.2*r.Float64()),
	}

	// Adopt idiosyncrasies.
	p.slang = pickSubset(r, slangPool, 3+r.Intn(6))
	p.phrases = pickSubset(r, phrasePool, 2+r.Intn(4))
	p.openers = pickSubset(r, openerPool, 2+r.Intn(3))
	typoKeys := make([]string, 0, len(typoPool))
	for k := range typoPool {
		typoKeys = append(typoKeys, k)
	}
	sortStrings(typoKeys)
	for _, k := range pickSubset(r, typoKeys, 4+r.Intn(5)) {
		p.typos = append(p.typos, [2]string{k, typoPool[k]})
	}

	p.exclaimRate = clamp(r.NormFloat64()*0.08+0.08, 0, 0.5)
	p.ellipsisRate = clamp(r.NormFloat64()*0.05+0.04, 0, 0.4)
	p.questionRate = clamp(r.NormFloat64()*0.06+0.10, 0, 0.4)
	p.commaRate = clamp(r.NormFloat64()*0.10+0.25, 0, 0.8)
	p.emojiRate = clamp(r.NormFloat64()*0.04+0.02, 0, 0.3)
	p.emphasisRate = clamp(r.NormFloat64()*0.02+0.01, 0, 0.15)
	p.parenRate = clamp(r.NormFloat64()*0.03+0.02, 0, 0.2)
	p.digitRate = clamp(r.NormFloat64()*0.04+0.04, 0, 0.3)
	p.slangRate = clamp(r.NormFloat64()*0.02+cfg.SlangRate, 0, 0.2)
	p.phraseRate = clamp(r.NormFloat64()*0.02+0.03, 0, 0.15)
	p.openerRate = clamp(r.NormFloat64()*0.04+0.07, 0, 0.25)
	p.typoRate = clamp(r.NormFloat64()*0.02+cfg.TypoRate, 0, 0.2)
	p.lowercaseOnly = r.Float64() < 0.25
	p.capsWordRate = 0
	if r.Float64() < 0.15 {
		p.capsWordRate = 0.01 + 0.02*r.Float64()
	}

	p.sentLenMu = 2.2 + 0.35*r.NormFloat64() // median ≈ 9 words
	p.sentLenSigma = 0.35 + 0.1*r.Float64()

	// Topic interests: everyone likes 2–4 topics strongly, drawn by global
	// topic popularity so the population reproduces Table I's skew
	// (Drugs-dominated, Entertainment second).
	p.topicPrefs = make(map[string]float64, len(Topics))
	for _, t := range Topics {
		p.topicPrefs[t] = (0.1 + 0.2*r.Float64()) * topicPopularity[t]
	}
	popWeights := make([]float64, len(Topics))
	for i, t := range Topics {
		popWeights[i] = topicPopularity[t]
	}
	strong := 2 + r.Intn(3)
	for s := 0; s < strong; s++ {
		t := Topics[weightedIndex(r, popWeights)]
		p.topicPrefs[t] += (1.5 + 2*r.Float64()) * topicPopularity[t]
	}

	// Circadian genome: timezone drawn from a rough world population of
	// forum users (North America heavy, then Europe).
	zones := []int{-480, -420, -360, -300, -240, 0, 60, 120, 180, 330, 480, 600}
	zoneWeights := []float64{8, 6, 8, 14, 6, 10, 12, 8, 3, 2, 3, 2}
	p.TZOffsetMinutes = zones[weightedIndex(r, zoneWeights)]
	p.peakHour = float64(9+r.Intn(13)) + r.Float64() // 09–22 local
	p.peakWidth = 0.7 + 1.3*r.Float64()
	p.secondPeak = math.Mod(p.peakHour+6+6*r.Float64(), 24)
	p.secondWidth = 1.2 + 1.6*r.Float64()
	p.secondProb = 0.10 + 0.20*r.Float64()
	p.uniformProb = 0.02 + 0.05*r.Float64()
	return p
}

// Nickname generates the person's alias on a given forum. Most people pick
// unrelated nicknames per forum; vendors (decided by the population layer)
// reuse their brand.
func (p *Person) Nickname(forumID string, reuseBrand bool) string {
	h := p.Seed
	if !reuseBrand {
		h = hash2(h, hashString(forumID))
	}
	adj := nicknameAdjectives[h%uint64(len(nicknameAdjectives))]
	noun := nicknameNouns[(h>>16)%uint64(len(nicknameNouns))]
	num := (h >> 32) % 1000
	if num%3 == 0 {
		return fmt.Sprintf("%s_%s", adj, noun)
	}
	return fmt.Sprintf("%s%s%d", adj, noun, num%100)
}

// wordAffinity is the persistent per-word preference multiplier:
// exp(style · z(person, word) + drift · z(person, word, forum)).
func (p *Person) wordAffinity(word string, forumHash uint64, drift float64) float64 {
	return p.wordAffinityScaled(word, forumHash, drift, 1)
}

// wordAffinityScaled scales the style strength for this word class
// (function words get a fraction of the full strength).
func (p *Person) wordAffinityScaled(word string, forumHash uint64, drift, strengthScale float64) float64 {
	z := gauss(hash2(p.Seed, hashString(word)))
	a := p.StyleStrength * strengthScale * z
	if drift > 0 {
		a += drift * gauss(hash3(p.Seed, hashString(word), forumHash))
	}
	return math.Exp(a)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// pickSubset draws k distinct elements (order randomised) from pool.
func pickSubset(r *rand.Rand, pool []string, k int) []string {
	if k > len(pool) {
		k = len(pool)
	}
	idx := r.Perm(len(pool))[:k]
	out := make([]string, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// applyOrthography runs the person's habitual transformations on a word.
func (p *Person) applyOrthography(r *rand.Rand, word string) string {
	if p.typoRate > 0 && r.Float64() < p.typoRate {
		for _, t := range p.typos {
			if word == t[0] {
				return t[1]
			}
		}
	}
	if p.capsWordRate > 0 && r.Float64() < p.capsWordRate {
		return strings.ToUpper(word)
	}
	return word
}
