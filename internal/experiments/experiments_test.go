package experiments

import (
	"strings"
	"testing"

	"darklight/internal/attribution"
)

// The experiment harnesses are exercised end-to-end at a tiny scale: the
// goal is that every table/figure computes, renders, and has the right
// structure — the calibrated shapes are validated at scale by
// cmd/experiments and the benchmark harness.

func tinyLab(t *testing.T) *Lab {
	t.Helper()
	cfg := DefaultLabConfig()
	cfg.Scale = 0.015
	cfg.MaxUnknowns = 40
	cfg.Table3Known = 120
	cfg.Table3Unknowns = 25
	cfg.BaselineKnown = 120
	cfg.BaselineUnknowns = 20
	cfg.BatchUnknowns = 8
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

var sharedLab *Lab

func getLab(t *testing.T) *Lab {
	if sharedLab == nil {
		sharedLab = tinyLab(t)
	}
	return sharedLab
}

func TestLabDatasets(t *testing.T) {
	lab := getLab(t)
	if lab.Reddit.Len() == 0 || lab.AEReddit.Len() == 0 {
		t.Fatal("refined Reddit datasets empty")
	}
	if lab.Reddit.Len() >= lab.RawReddit.Len() {
		t.Error("refinement must drop aliases")
	}
	if lab.AEReddit.Len() > lab.Reddit.Len() {
		t.Error("alter-ego set cannot exceed the main set")
	}
}

func TestTable1Structure(t *testing.T) {
	rep := getLab(t).Table1()
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	var drugsPct float64
	total := 0.0
	for _, r := range rep.Rows {
		total += r.MessagesPct
		if r.Topic == "Drugs" {
			drugsPct = r.MessagesPct
		}
		if r.PopularSubreddit == "" || r.PopularMessages == 0 {
			t.Errorf("topic %s missing popular subreddit", r.Topic)
		}
	}
	if total < 99 || total > 101 {
		t.Errorf("message percentages sum to %v", total)
	}
	// Drugs dominates (Table I: 33.7% of messages).
	if drugsPct < 15 {
		t.Errorf("Drugs share = %.1f%%, want dominant", drugsPct)
	}
	if !strings.Contains(rep.String(), "DarkNetMarkets") {
		t.Error("rendering must include the flagship subreddit")
	}
}

func TestFigure1Monotone(t *testing.T) {
	rep := getLab(t).Figure1()
	for i := 1; i < len(rep.TMGCDF); i++ {
		if rep.TMGCDF[i] < rep.TMGCDF[i-1] || rep.DMCDF[i] < rep.DMCDF[i-1] {
			t.Fatal("CDFs must be monotone")
		}
	}
	last := len(rep.TMGCDF) - 1
	if rep.TMGCDF[last] != 1 || rep.DMCDF[last] != 1 {
		t.Error("CDF must reach 1 at the top threshold")
	}
	// DM users write less than TMG users (Fig. 1's shape).
	mid := len(rep.Thresholds) / 2
	if rep.DMCDF[mid] < rep.TMGCDF[mid] {
		t.Error("DM CDF should sit above TMG (fewer words per user)")
	}
}

func TestTable2Realised(t *testing.T) {
	rep, err := getLab(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RealisedWordGrams == 0 || rep.RealisedCharGrams == 0 {
		t.Error("realised vocabulary empty")
	}
	if rep.FreqFeatures != 42 || rep.ActivityDims != 24 {
		t.Errorf("feature dims = %d/%d", rep.FreqFeatures, rep.ActivityDims)
	}
}

func TestTable4Counts(t *testing.T) {
	lab := getLab(t)
	rep := lab.Table4()
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0].Aliases != lab.Reddit.Len() || rep.Rows[1].Aliases != lab.AEReddit.Len() {
		t.Error("Reddit rows wrong")
	}
}

func TestFigure2AndTable5(t *testing.T) {
	lab := getLab(t)
	f2, err := lab.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Threshold <= 0 || f2.Threshold >= 1 {
		t.Errorf("threshold = %v", f2.Threshold)
	}
	if f2.W1.AUC() < 0.3 {
		t.Errorf("W1 AUC = %v — even the tiny lab should do better", f2.W1.AUC())
	}
	t5, err := lab.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.PerForum) != 4 || len(t5.Global) != 4 {
		t.Fatalf("table V rows = %d/%d", len(t5.PerForum), len(t5.Global))
	}
	if t5.DarkAccuracy < 0.3 {
		t.Errorf("dark 10-attribution accuracy = %v", t5.DarkAccuracy)
	}
}

func TestTable6AndFigure5(t *testing.T) {
	lab := getLab(t)
	t6, err := lab.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 3 {
		t.Fatalf("rows = %d", len(t6.Rows))
	}
	for _, r := range t6.Rows {
		if r.AUCWithReduction < 0 || r.AUCWithReduction > 1 || r.AUCWithout < 0 || r.AUCWithout > 1 {
			t.Errorf("%s AUCs out of range: %+v", r.Forum, r)
		}
	}
	f5, err := lab.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Table.Curves) != 6 {
		t.Errorf("figure 5 curves = %d", len(f5.Table.Curves))
	}
}

func TestFigure4Shape(t *testing.T) {
	rep, err := getLab(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ks) != 10 {
		t.Fatalf("k values = %d", len(rep.Ks))
	}
	// Accuracy is monotone in k for a fixed ranking.
	for i := 1; i < 10; i++ {
		if rep.RedditAll[i] < rep.RedditAll[i-1] || rep.RedditText[i] < rep.RedditText[i-1] {
			t.Error("accuracy@k must be monotone in k")
		}
	}
}

func TestCrossForumReports(t *testing.T) {
	lab := getLab(t)
	vb, err := lab.TMGvsDM()
	if err != nil {
		t.Fatal(err)
	}
	if vb.Threshold <= 0 {
		t.Error("threshold missing")
	}
	vc, err := lab.RedditVsDarkWeb()
	if err != nil {
		t.Fatal(err)
	}
	if vc.Known == 0 || vc.Unknowns == 0 {
		t.Error("population counts missing")
	}
	// Every classified pair carries a verdict.
	for _, p := range append(vb.Pairs, vc.Pairs...) {
		switch p.Verdict {
		case "True", "Probably True", "Unclear", "False":
		default:
			t.Errorf("bad verdict %q", p.Verdict)
		}
	}
	// Rendering and profile generation must not panic regardless of
	// whether a True pair exists at this scale.
	_ = vb.String()
	_ = vc.String()
	_ = lab.ProfileBestMatch(vc).String()
}

func TestBatchProcedureReport(t *testing.T) {
	rep, err := getLab(t).BatchProcedure()
	if err != nil {
		t.Fatal(err)
	}
	if rep.B != 100 {
		t.Errorf("B = %d", rep.B)
	}
	if rep.BatchedAgreesWithPc < 0.5 {
		t.Errorf("batched agreement = %v — should mostly match direct", rep.BatchedAgreesWithPc)
	}
}

func TestTable3SingleRow(t *testing.T) {
	lab := getLab(t)
	row, err := lab.table3Row(400)
	if err != nil {
		t.Fatal(err)
	}
	if row.K10Text < row.K1Text || row.K10All < row.K1All {
		t.Error("k=10 accuracy cannot be below k=1")
	}
	if row.Unknowns == 0 || row.KnownSize == 0 {
		t.Error("row metadata missing")
	}
}

func TestSampleKnownUnknownPreservesMates(t *testing.T) {
	lab := getLab(t)
	opts := lab.SubjectOpts()
	known, unknown := sampleKnownUnknown(
		attributionSubjects(lab, opts), attributionAESubjects(lab, opts), 50, 20, 9)
	names := map[string]bool{}
	for _, k := range known {
		names[k.Name] = true
	}
	for _, u := range unknown {
		if !names[u.Name] {
			t.Fatalf("unknown %q has no mate in the known sample", u.Name)
		}
	}
}

func attributionSubjects(l *Lab, opts attribution.SubjectOptions) []attribution.Subject {
	subs, err := attribution.BuildSubjects(l.Reddit, opts)
	if err != nil {
		panic(err)
	}
	return subs
}

func attributionAESubjects(l *Lab, opts attribution.SubjectOptions) []attribution.Subject {
	subs, err := attribution.BuildSubjects(l.AEReddit, opts)
	if err != nil {
		panic(err)
	}
	return subs
}

func TestPrefilterReport(t *testing.T) {
	// The sweep world is independent of the lab datasets, so a bare Lab
	// carrying only the seed is enough — no expensive world generation.
	l := &Lab{Cfg: LabConfig{Seed: 1}}
	rep, err := l.Prefilter()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) == 0 {
		t.Fatal("empty sweep table")
	}
	var lshDefault bool
	for _, row := range rep.Table.Rows {
		if row.Point.Mode == "pruned" && row.Recall != 1 {
			t.Errorf("%s: pruned row must be lossless, recall = %v", row.Point.Label(), row.Recall)
		}
		if row.Point.Mode == "lsh" && row.Point.Bands == 0 && row.Point.Rows == 0 {
			lshDefault = true
			if row.Recall < 0.95 {
				t.Errorf("default LSH recall = %.3f, want >= 0.95", row.Recall)
			}
		}
	}
	if !lshDefault {
		t.Fatal("default LSH point missing from sweep")
	}
	if !strings.Contains(rep.String(), "lossless by construction") {
		t.Error("report note missing")
	}
}
