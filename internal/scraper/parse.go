package scraper

import (
	"fmt"
	"strings"
	"time"

	"darklight/internal/forum"
)

// The darkweb server emits a deliberately simple, stable markup; parsing
// is hand-rolled (no html package dependency) and resilient to extra
// whitespace and attribute reordering.

// extractHrefs returns the href of every <a class="<class>" ...> link.
func extractHrefs(page, class string) []string {
	var out []string
	needle := `class="` + class + `"`
	rest := page
	for {
		a := strings.Index(rest, "<a ")
		if a < 0 {
			return out
		}
		end := strings.Index(rest[a:], ">")
		if end < 0 {
			return out
		}
		tag := rest[a : a+end]
		if strings.Contains(tag, needle) {
			if href, ok := attrValue(tag, "href"); ok {
				out = append(out, href)
			}
		}
		rest = rest[a+end:]
	}
}

// rawAttr is attrValue for callers that treat a missing attribute as "".
func rawAttr(tag, attr string) string {
	v, _ := attrValue(tag, attr)
	return v
}

// attrValue extracts attr="value" from a tag string.
func attrValue(tag, attr string) (string, bool) {
	needle := attr + `="`
	i := strings.Index(tag, needle)
	if i < 0 {
		return "", false
	}
	rest := tag[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// ParsePosts extracts the posts of one thread page.
func ParsePosts(page string) ([]forum.Message, error) {
	var posts []forum.Message
	rest := page
	for {
		start := strings.Index(rest, "<article ")
		if start < 0 {
			return posts, nil
		}
		tagEnd := strings.Index(rest[start:], ">")
		if tagEnd < 0 {
			return posts, fmt.Errorf("scraper: unterminated article tag")
		}
		tag := rest[start : start+tagEnd]
		bodyStart := start + tagEnd + 1
		close := strings.Index(rest[bodyStart:], "</article>")
		if close < 0 {
			return posts, fmt.Errorf("scraper: unterminated article body")
		}
		// The server frames the body as "\n%s\n"; strip exactly that frame
		// so bodies with their own edge whitespace survive byte-for-byte.
		body := strings.TrimPrefix(rest[bodyStart:bodyStart+close], "\n")
		body = strings.TrimSuffix(body, "\n")

		// Attribute values arrive entity-escaped (a quote in an id or
		// author would otherwise terminate the attribute).
		var m forum.Message
		m.ID = htmlUnescape(rawAttr(tag, "data-id"))
		m.Author = htmlUnescape(rawAttr(tag, "data-author"))
		m.Board = htmlUnescape(rawAttr(tag, "data-board"))
		if ts, ok := attrValue(tag, "data-time"); ok {
			t, err := time.Parse(time.RFC3339, ts)
			if err != nil {
				return posts, fmt.Errorf("scraper: post %s: bad timestamp %q: %w", m.ID, ts, err)
			}
			m.PostedAt = t
		}
		m.Body = htmlUnescape(body)
		if m.Author != "" {
			posts = append(posts, m)
		}
		rest = rest[bodyStart+close:]
	}
}

// htmlUnescape reverses html.EscapeString's five entities.
func htmlUnescape(s string) string {
	r := strings.NewReplacer(
		"&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'", "&amp;", "&",
	)
	return r.Replace(s)
}
