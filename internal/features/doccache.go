package features

import "sync/atomic"

// DocCache memoises Extract (flattened to SortedDoc form) over a fixed set
// of texts under one Config. It is the attribution layer's hook for the
// second-stage hot path: the matcher re-reads the same known subjects'
// documents for every unknown it rescoring-ranks, and at k = 10 candidates
// per query the same few prolific subjects surface over and over. Entries
// are extracted lazily on first Get, so a matcher that only ever touches a
// fraction of the known set (the usual case — only subjects that surface
// in some top-k are rescored) pays memory only for that fraction. Entries
// are stored as SortedDocs because that is what the candidate-vocabulary
// fast path consumes, and the flattened form is several times smaller than
// the Doc's gram maps.
//
// Safe for concurrent use. Two goroutines racing on the same cold entry may
// both extract (Extract is pure), but CompareAndSwap keeps a single
// canonical pointer, so every caller observes the same document afterwards.
type DocCache struct {
	cfg   Config
	texts []string
	docs  []atomic.Pointer[SortedDoc]
}

// NewDocCache builds a lazy cache over texts. The slice is retained;
// callers must not mutate it. No extraction happens until Get.
func NewDocCache(cfg Config, texts []string) *DocCache {
	return &DocCache{
		cfg:   cfg,
		texts: texts,
		docs:  make([]atomic.Pointer[SortedDoc], len(texts)),
	}
}

// Len returns the number of cacheable texts.
func (c *DocCache) Len() int { return len(c.texts) }

// Config returns the extraction configuration of the cache.
func (c *DocCache) Config() Config { return c.cfg }

// Get returns the extracted document of texts[i], extracting and caching
// it on first use. The returned document is shared — callers must treat it
// as read-only.
func (c *DocCache) Get(i int) *SortedDoc {
	if d := c.docs[i].Load(); d != nil {
		return d
	}
	d := Extract(c.texts[i], c.cfg).Sorted()
	if !c.docs[i].CompareAndSwap(nil, d) {
		return c.docs[i].Load()
	}
	return d
}

// Cached reports whether entry i has been extracted already (for tests and
// memory accounting).
func (c *DocCache) Cached(i int) bool { return c.docs[i].Load() != nil }
