package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Counters hold
// integer counts (not floats) so concurrent increments commute exactly and
// exposition is deterministic for a given set of events.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into a fixed bucket layout declared at
// registration time. Fixed layouts keep exposition deterministic: the
// bucket bounds, their order, and the series set never depend on the
// observed values. The sum is a float64 accumulated with CAS; when the
// observed values are integral (item counts, byte counts) the sum is
// exact regardless of observation order.
//
// Every histogram in this registry measures a non-negative quantity
// (durations, counts, bytes), so NaN and negative observations can only
// be bugs in the caller — and admitting them would poison the series
// permanently (a single NaN turns the sum into NaN forever; a negative
// value lands in the lowest bucket and drags the sum down). Observe
// drops them into a typed counter instead, so the corruption is visible
// without being contagious.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	drops  Counter        // NaN/negative observations rejected
}

// Observe records one value. NaN and negative values are rejected and
// counted in Drops instead of corrupting the bucket counts and sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		h.drops.Inc()
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Drops returns how many observations were rejected as NaN or negative.
func (h *Histogram) Drops() int64 { return h.drops.Value() }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

type metricType uint8

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a metric family.
type series struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // key: label values joined with \xff
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), values...)}
		switch f.typ {
		case counterType:
			s.counter = &Counter{}
		case gaugeType:
			s.gauge = &Gauge{}
		case histogramType:
			s.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Registry owns a set of metric families. Registration is idempotent for
// an identical schema and panics on a conflicting one (same name, different
// type, labels, or buckets) — metric identity is a programming contract,
// not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// collectors run (in registration order) at the start of every
	// Snapshot, refreshing gauges whose source of truth lives outside the
	// registry — runtime stats, rolling-window quantiles. Keyed by name so
	// re-registration replaces rather than stacks.
	collectors     map[string]func()
	collectorOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// RegisterCollector installs fn to run at the start of every Snapshot
// (and therefore every Prometheus/JSON exposition), before the families
// are read. Collectors refresh pull-style gauges — runtime stats, rolling
// quantiles — that have no natural event to update them. Registering the
// same name again replaces the previous collector, so packages that
// register at construction time stay idempotent per registry. fn must not
// call Snapshot (or anything that exposes the registry) itself.
func (r *Registry) RegisterCollector(name string, fn func()) {
	if name == "" || fn == nil {
		panic("obs: RegisterCollector needs a name and a function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.collectors == nil {
		r.collectors = make(map[string]func())
	}
	if _, ok := r.collectors[name]; !ok {
		r.collectorOrder = append(r.collectorOrder, name)
	}
	r.collectors[name] = fn
}

// collect runs the registered collectors outside the registry lock (they
// set gauges, which take no registry-level lock).
func (r *Registry) collect() {
	r.mu.Lock()
	fns := make([]func(), 0, len(r.collectorOrder))
	for _, name := range r.collectorOrder {
		fns = append(fns, r.collectors[name])
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

func (r *Registry) register(name, help string, typ metricType, labels []string, bounds []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l)
	}
	if typ == histogramType {
		if len(bounds) == 0 {
			panic("obs: histogram " + name + " needs at least one bucket bound")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic("obs: histogram " + name + " bucket bounds must be strictly increasing")
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic("obs: metric " + name + " re-registered with a different schema")
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterType, nil, nil).get(nil).counter
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeType, nil, nil).get(nil).gauge
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, histogramType, nil, bounds).get(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec " + name + " needs at least one label (use Counter)")
	}
	return &CounterVec{f: r.register(name, help, counterType, labels, nil)}
}

// With returns the counter for one label-value tuple, creating it on first
// use. The returned handle is stable; hot paths should resolve it once.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec " + name + " needs at least one label (use Gauge)")
	}
	return &GaugeVec{f: r.register(name, help, gaugeType, labels, nil)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// HistogramVec is a histogram family with labels; every series shares the
// family's fixed bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec " + name + " needs at least one label (use Histogram)")
	}
	return &HistogramVec{f: r.register(name, help, histogramType, labels, bounds)}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic("obs: invalid metric or label name " + name)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
