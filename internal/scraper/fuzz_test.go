package scraper

import (
	"strings"
	"testing"
)

// FuzzParsePosts feeds arbitrary markup through the thread-page parser.
// The parser faces whatever a hostile or half-collapsed hidden service
// returns, so it must never panic, must reject malformed pages with an
// error rather than garbage, and for any page it accepts every post must
// carry an author and parse deterministically.
func FuzzParsePosts(f *testing.F) {
	f.Add(`<html><body>
<article class="post" data-id="p1" data-author="zoe" data-board="b" data-time="2017-03-01T10:00:00Z">
hello &amp; goodbye &lt;3
</article>
</body></html>`)
	f.Add(`<article class="post" data-author="x" data-time="garbage">b</article>`)
	f.Add(`<article class="post" data-author="x">never closed`)
	f.Add(`<article data-author="">no author</article>`)
	f.Add(`<article <article ></article></article>`)
	f.Add(`<a class="next" href="/thread/t?page=1">next</a>`)
	f.Add("<article \x00 data-author=\"n\">\xff\xfe</article>")
	f.Add("")

	f.Fuzz(func(t *testing.T, page string) {
		posts, err := ParsePosts(page)
		if err != nil {
			return // malformed markup may be rejected, just never panic
		}
		if len(posts) > strings.Count(page, "<article") {
			t.Fatalf("%d posts from %d article tags", len(posts), strings.Count(page, "<article"))
		}
		for _, p := range posts {
			if p.Author == "" {
				t.Fatal("accepted a post without an author")
			}
		}
		again, err := ParsePosts(page)
		if err != nil || len(again) != len(posts) {
			t.Fatalf("reparse diverged: %d posts then %d (err %v)", len(posts), len(again), err)
		}
	})
}
