// Package langdetect identifies the language of short forum messages.
// Polishing step 7 of the paper keeps only English messages; the original
// work used the Python langdetect port of Google's language-detection
// library. This package implements the same idea — a character-n-gram
// naive-Bayes classifier over per-language profiles — with profiles
// trained from embedded seed corpora for eight languages.
package langdetect

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Lang is an ISO-639-1 language code.
type Lang string

// Languages with embedded profiles.
const (
	English    Lang = "en"
	Spanish    Lang = "es"
	French     Lang = "fr"
	German     Lang = "de"
	Italian    Lang = "it"
	Portuguese Lang = "pt"
	Dutch      Lang = "nl"
	Romanian   Lang = "ro"
)

// Detection is a scored language guess.
type Detection struct {
	Lang Lang
	// Prob is the normalised posterior across the candidate languages.
	Prob float64
}

// Detector scores text against per-language n-gram profiles.
//
// A Detector is immutable after NewDetector returns: every field — the
// per-language profiles, the fused scoring table, and the language list —
// is built once and only read afterwards. It is therefore safe for
// concurrent use: one shared Detector can serve any number of goroutines
// (the parallel polishing pipeline fans a single instance out across its
// workers; internal/langdetect's race test pins this).
type Detector struct {
	profiles map[Lang]*profile
	ngram    int

	// The fused scoring table collapses the per-language profile maps into
	// one lookup per gram: fused[g][i] is langs[i]'s log-probability for g
	// (floor-filled when the language never saw g), and floors[i] is
	// langs[i]'s unseen-gram log-probability. Detect walks grams once and
	// adds the whole vector, instead of probing len(profiles) maps per
	// gram — the single largest cost of the english-only polishing step.
	langs  []Lang
	fused  map[string][]float64
	floors []float64
}

type profile struct {
	logProb  map[string]float64
	floorLog float64 // log-probability assigned to unseen n-grams
}

const defaultNGram = 3

var (
	defaultOnce     sync.Once
	defaultDetector *Detector
)

// Default returns the process-wide detector built from the embedded seed
// corpora. Building is done once, lazily.
func Default() *Detector {
	defaultOnce.Do(func() {
		defaultDetector = NewDetector(seedCorpora())
	})
	return defaultDetector
}

// NewDetector trains a detector from raw text per language.
func NewDetector(corpora map[Lang]string) *Detector {
	d := &Detector{profiles: make(map[Lang]*profile, len(corpora)), ngram: defaultNGram}
	for lang, text := range corpora {
		d.profiles[lang] = trainProfile(text, d.ngram)
	}
	d.buildFused()
	return d
}

// buildFused freezes the fused scoring table: the union of every profile's
// grams, each mapped to the per-language log-probability vector in langs
// order. Values are exactly the profile values (or the profile's floor), so
// fused scoring is bit-identical to probing each profile map in turn.
func (d *Detector) buildFused() {
	d.langs = make([]Lang, 0, len(d.profiles))
	for l := range d.profiles {
		d.langs = append(d.langs, l)
	}
	sort.Slice(d.langs, func(i, j int) bool { return d.langs[i] < d.langs[j] })
	d.floors = make([]float64, len(d.langs))
	union := make(map[string]struct{})
	for i, l := range d.langs {
		d.floors[i] = d.profiles[l].floorLog
		for g := range d.profiles[l].logProb {
			union[g] = struct{}{}
		}
	}
	d.fused = make(map[string][]float64, len(union))
	backing := make([]float64, len(union)*len(d.langs))
	for g := range union {
		v := backing[:len(d.langs):len(d.langs)]
		backing = backing[len(d.langs):]
		for i, l := range d.langs {
			if lp, ok := d.profiles[l].logProb[g]; ok {
				v[i] = lp
			} else {
				v[i] = d.floors[i]
			}
		}
		d.fused[g] = v
	}
}

func trainProfile(text string, n int) *profile {
	counts := make(map[string]int)
	total := 0
	for _, gram := range ngrams(normalize(text), n) {
		counts[gram]++
		total++
	}
	// Laplace smoothing with vocabulary = observed grams + 1 slot for unseen.
	vocab := len(counts) + 1
	p := &profile{logProb: make(map[string]float64, len(counts))}
	denom := float64(total + vocab)
	for gram, c := range counts {
		p.logProb[gram] = math.Log(float64(c+1) / denom)
	}
	p.floorLog = math.Log(1 / denom)
	return p
}

// normalize lowercases, collapses whitespace to single spaces, and drops
// digits and symbols — the signal is in letters and word shapes.
func normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	lastSpace := true
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r) || r == '\'':
			b.WriteRune(r)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

func ngrams(s string, n int) []string {
	runes := []rune(" " + s + " ")
	if len(runes) < n {
		return nil
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// Detect returns language guesses ordered by posterior probability.
// Empty or letter-free text yields no detections.
//
// Scoring walks the text's grams once, adding each gram's fused
// log-probability vector — the same sums, in the same order, as probing
// every profile map per gram, but with one hash lookup per gram and no
// per-gram string allocation.
func (d *Detector) Detect(text string) []Detection {
	padded := " " + normalize(text) + " "
	n := d.ngram
	ll := make([]float64, len(d.langs))
	grams := 0
	// Ring of rune start offsets: each gram is a byte range of padded, so
	// the fused-map probe needs no gram string materialised.
	ring := make([]int, n)
	runeCount := 0
	score := func(gram string) {
		if v, ok := d.fused[gram]; ok {
			for i, lp := range v {
				ll[i] += lp
			}
		} else {
			for i, f := range d.floors {
				ll[i] += f
			}
		}
		grams++
	}
	for i := range padded {
		if runeCount >= n {
			score(padded[ring[runeCount%n]:i])
		}
		ring[runeCount%n] = i
		runeCount++
	}
	if runeCount >= n {
		score(padded[ring[runeCount%n]:])
	}
	if grams == 0 || len(d.langs) == 0 {
		return nil
	}
	type scored struct {
		lang Lang
		ll   float64
	}
	scores := make([]scored, len(d.langs))
	for i, lang := range d.langs {
		// Length-normalise so long messages don't overflow and short ones
		// remain comparable.
		scores[i] = scored{lang, ll[i] / float64(grams)}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].ll != scores[j].ll {
			return scores[i].ll > scores[j].ll
		}
		return scores[i].lang < scores[j].lang
	})
	// Softmax over per-gram average log-likelihoods. The temperature
	// sharpens the distribution; per-gram averages are close together so
	// raw softmax would be nearly uniform.
	const temperature = 0.05
	best := scores[0].ll
	sum := 0.0
	probs := make([]float64, len(scores))
	for i, s := range scores {
		probs[i] = math.Exp((s.ll - best) / temperature)
		sum += probs[i]
	}
	out := make([]Detection, len(scores))
	for i, s := range scores {
		out[i] = Detection{Lang: s.lang, Prob: probs[i] / sum}
	}
	return out
}

// DetectLang returns the single most likely language and its posterior.
// ok is false when the text carries no usable signal.
func (d *Detector) DetectLang(text string) (Lang, float64, bool) {
	ds := d.Detect(text)
	if len(ds) == 0 {
		return "", 0, false
	}
	return ds[0].Lang, ds[0].Prob, true
}

// IsEnglish reports whether text is detected as English with posterior at
// least minProb. Messages with no signal are treated as non-English, which
// matches the conservative filtering of the paper's polishing step.
func (d *Detector) IsEnglish(text string, minProb float64) bool {
	lang, prob, ok := d.DetectLang(text)
	return ok && lang == English && prob >= minProb
}

// Languages returns the languages the detector was trained on, sorted.
func (d *Detector) Languages() []Lang {
	out := make([]Lang, 0, len(d.profiles))
	for l := range d.profiles {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
