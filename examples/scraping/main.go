// Scraping: the data-collection story of §III-B end to end, in-process. A
// synthetic Dream-Market-style forum is served over HTTP (with injected
// latency and transient 503s), the polite scraper crawls it board by
// board, and the result round-trips through the polishing pipeline.
//
//	go run ./examples/scraping
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"darklight"
	"darklight/internal/darkweb"
	"darklight/internal/forum"
	"darklight/internal/scraper"
)

func main() {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 3, Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	original := world.DM
	fmt.Printf("serving synthetic Dream Market: %d aliases, %d messages\n",
		original.Len(), original.TotalMessages())

	// A hidden service with a slow, flaky circuit.
	srv := darkweb.NewServer("dream-market", original, darkweb.Options{
		Latency:     2 * time.Millisecond,
		FailureRate: 0.05,
		Seed:        99,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := scraper.New(ts.URL, scraper.Options{
		RequestInterval: time.Millisecond,
		MaxRetries:      6,
	})
	start := time.Now()
	scraped, err := sc.Scrape(context.Background(), "DM", forum.PlatformDreamMarket)
	if err != nil {
		log.Fatal(err)
	}
	st := sc.Stats()
	fmt.Printf("scraped %d aliases / %d posts from %d threads on %d boards "+
		"(%d requests, %d retries after 503s) in %s\n",
		scraped.Len(), st.Posts, st.Threads, st.Boards,
		st.Requests, st.Retries, time.Since(start).Round(time.Millisecond))

	if scraped.TotalMessages() != original.TotalMessages() {
		log.Fatalf("lost messages: scraped %d, original %d",
			scraped.TotalMessages(), original.TotalMessages())
	}
	fmt.Println("scrape is lossless ✓")

	// Hand the scrape to the analysis pipeline, as cmd/scrape + cmd/darklight
	// would via JSONL files.
	report := darklight.NewPipeline().Polish(scraped)
	fmt.Println("\npolishing the scrape:")
	fmt.Print(report.String())
	fmt.Printf("ready for attribution: %d aliases, %d messages\n",
		scraped.Len(), scraped.TotalMessages())
}
