module darklight

go 1.22
