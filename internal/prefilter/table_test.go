package prefilter

import (
	"reflect"
	"testing"
)

func tableTestSets(n int) [][]uint32 {
	sets := make([][]uint32, n)
	for i := range sets {
		if i%7 == 3 {
			continue // empty set: never bucketed
		}
		set := make([]uint32, 0, 12)
		for j := 0; j < 12; j++ {
			set = append(set, uint32((i*31+j*17)%257))
		}
		sets[i] = set
	}
	return sets
}

// TestLSHTableRoundTrip pins Table → LSHFromTable: identical candidates
// for every query, and a byte-identical re-snapshot.
func TestLSHTableRoundTrip(t *testing.T) {
	sets := tableTestSets(64)
	p := LSHParams{Bands: 8, Rows: 2, Seed: 42}
	l := BuildLSH(len(sets), func(i int) []uint32 { return sets[i] }, p)

	tab := l.Table()
	got := LSHFromTable(tab)
	if got.Params() != l.Params() {
		t.Fatalf("params changed across round trip: %+v vs %+v", got.Params(), l.Params())
	}
	for i, set := range sets {
		want := l.Candidates(set, nil)
		have := got.Candidates(set, nil)
		if !reflect.DeepEqual(have, want) {
			t.Fatalf("query %d: candidates diverge after round trip", i)
		}
	}
	if !reflect.DeepEqual(got.Table(), tab) {
		t.Error("re-snapshot of the reconstructed index differs — table form is not canonical")
	}
}

// TestMaxContribValuesRoundTrip pins Values → MaxContribFromValues and
// checks the copies are independent.
func TestMaxContribValuesRoundTrip(t *testing.T) {
	c := NewMaxContrib(16)
	for i := 0; i < 16; i++ {
		c.Note(uint32(i), float32(i)*0.25)
		c.Note(uint32(i), float32(i)*0.125) // smaller, must not stick
	}
	vals := c.Values()
	got := MaxContribFromValues(vals)
	if got.Dims() != c.Dims() {
		t.Fatalf("dims = %d, want %d", got.Dims(), c.Dims())
	}
	for i := 0; i < 16; i++ {
		if got.Get(uint32(i)) != c.Get(uint32(i)) {
			t.Fatalf("idx %d: %v != %v", i, got.Get(uint32(i)), c.Get(uint32(i)))
		}
	}
	vals[3] = 99
	if got.Get(3) == 99 || c.Get(3) == 99 {
		t.Error("Values/FromValues share backing storage with the caller")
	}
}
