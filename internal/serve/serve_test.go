package serve

// Shared fixtures: a hand-built deterministic corpus (no RNG — styles are
// cyclic word patterns), a fake Clock, and service constructors. The
// corpus is small but rich enough that every alias clears the activity
// minimum and stage-1 produces distinct, stable scores.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"darklight/internal/activity"
	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/obs"
)

// fakeClock is a deterministic Clock: Now is fixed until Advance moves it,
// and After timers fire only when Advance crosses them.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: at, ch: ch})
	return ch
}

// pending reports how many After timers are armed — tests use it to wait
// until Drain has registered its deadline before advancing the clock.
func (c *fakeClock) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// Advance moves the clock and fires every timer whose deadline passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	var keep []fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
}

// Style vocabularies: each variant leans on its own word pool and
// punctuation habit, so stage-1 cosine cleanly separates variants while
// same-variant aliases score high against each other.
var styleWords = [][]string{
	{"shipment", "arrived", "stealth", "vendor", "escrow", "finalize", "quality", "reship", "tracking", "packaging"},
	{"privacy", "threat", "model", "opsec", "encrypt", "metadata", "signal", "compartment", "leak", "audit"},
	{"garden", "harvest", "strain", "organic", "terpene", "flower", "cultivar", "greenhouse", "soil", "bloom"},
	{"market", "listing", "refund", "dispute", "moderator", "feedback", "order", "wallet", "deposit", "withdraw"},
	{"keyboard", "latency", "firmware", "solder", "switch", "keycap", "matrix", "debounce", "layout", "macro"},
	{"coffee", "roast", "espresso", "grinder", "crema", "filter", "brew", "acidity", "blend", "origin"},
}

var stylePunct = []string{".", "!", "...", ".", "?!", "."}

// styleBody builds one deterministic ~12-word message for (variant, i).
func styleBody(variant, i int) string {
	words := styleWords[variant%len(styleWords)]
	var b strings.Builder
	for w := 0; w < 12; w++ {
		if w > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[(i*5+w*3+variant)%len(words)])
	}
	b.WriteString(stylePunct[variant%len(stylePunct)])
	return b.String()
}

// styleAlias builds one alias: 60 messages spaced 5 hours apart through
// spring 2017 weekdays-and-weekends, enough that ≥30 usable timestamps
// survive the paper's weekend/holiday exclusions.
func styleAlias(name string, variant int) forum.Alias {
	base := time.Date(2017, 3, 1, 8, 0, 0, 0, time.UTC)
	a := forum.Alias{Name: name, Platform: forum.PlatformSynthetic}
	for i := 0; i < 60; i++ {
		a.Messages = append(a.Messages, forum.Message{
			ID:       fmt.Sprintf("%s-%03d", name, i),
			Author:   name,
			Body:     styleBody(variant, i),
			PostedAt: base.Add(time.Duration(i) * 5 * time.Hour),
		})
	}
	return a
}

// testSubjectOptions mirrors darklight.NewPipeline's defaults.
func testSubjectOptions() attribution.SubjectOptions {
	return attribution.SubjectOptions{
		WordBudget:   attribution.DefaultWordBudget,
		Activity:     activity.PaperOptions(2017),
		WithActivity: true,
		Workers:      1,
	}
}

// newKnownDataset builds the six known aliases with styles offset by
// shift: alias i writes in variant (i+shift) mod 6. Shift 0 is the
// canonical fixture; any other shift changes every stage-1 ordering (the
// reload-atomicity test leans on that).
func newKnownDataset(shift int) *forum.Dataset {
	known := forum.NewDataset("known", forum.PlatformSynthetic)
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, n := range names {
		known.Add(styleAlias(n, (i+shift)%len(styleWords)))
	}
	return known
}

// testCorpus builds the fixture: six known aliases (variants 0-5) and two
// query aliases echoing variants 0 and 3.
func testCorpus(t testing.TB) *Corpus {
	t.Helper()
	known := newKnownDataset(0)
	query := forum.NewDataset("query", forum.PlatformSynthetic)
	query.Add(styleAlias("q_alice", 0))
	query.Add(styleAlias("q_dave", 3))

	ks, err := attribution.BuildSubjects(known, testSubjectOptions())
	if err != nil {
		t.Fatalf("build known subjects: %v", err)
	}
	qs, err := attribution.BuildSubjects(query, testSubjectOptions())
	if err != nil {
		t.Fatalf("build query subjects: %v", err)
	}
	return &Corpus{Known: ks, Query: qs}
}

// testOptions is the paper configuration with single-threaded builds.
func testOptions() attribution.Options {
	o := attribution.DefaultOptions()
	o.Workers = 1
	return o
}

// newTestService builds a Service over the fixture corpus. mutate tweaks
// the config before construction.
func newTestService(t testing.TB, clock Clock, mutate func(*Config)) *Service {
	t.Helper()
	corpus := testCorpus(t)
	cfg := Config{
		Loader:   func(context.Context) (*Corpus, error) { return corpus, nil },
		Options:  testOptions(),
		Subjects: testSubjectOptions(),
		APIKeys:  []string{"test-key", "secondary-key"},
		MaxBody:  2048,
		Clock:    clock,
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return svc
}

// TestLoaderSuppliedMatcher: a loader that hands back a pre-built matcher
// (the internal/store cold-start path) must have it installed verbatim —
// no rebuild — and answer queries identically to a service that indexed
// the same subjects itself.
func TestLoaderSuppliedMatcher(t *testing.T) {
	corpus := testCorpus(t)
	pre, err := attribution.NewMatcher(corpus.Known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, newFakeClock(), func(c *Config) {
		c.Loader = func(context.Context) (*Corpus, error) {
			return &Corpus{Known: corpus.Known, Query: corpus.Query, Matcher: pre}, nil
		}
	})
	if got := svc.state.Load().matcher; got != pre {
		t.Fatal("service rebuilt the index instead of installing the loader's matcher")
	}
	plain := newTestService(t, newFakeClock(), nil)
	body := []byte(`{"subject":{"alias":"q_alice"},"k":3}`)
	a := do(svc.Handler(), http.MethodPost, "/v1/rank", "test-key", body)
	b := do(plain.Handler(), http.MethodPost, "/v1/rank", "test-key", body)
	if a.Code != http.StatusOK || a.Body.String() != b.Body.String() {
		t.Fatalf("prebuilt-matcher service diverges:\n%d %s\nvs %s", a.Code, a.Body.String(), b.Body.String())
	}
}

// do issues one in-process request and returns the recorder.
func do(h http.Handler, method, path, apiKey string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}
