package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects hierarchical spans for one run. A nil tracer (no
// WithTracer on the context) disables tracing entirely: Start returns the
// context unchanged and a nil span whose methods are no-ops.
//
// Spans accumulate in memory until exported (Snapshot, Stages,
// WriteJSONL); a long-lived process that traces continuously should Reset
// between runs.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

type tracerKey struct{}
type spanKey struct{}

// WithTracer enables tracing on the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Span is one timed stage of the pipeline. All methods are safe on a nil
// receiver (the disabled-tracing case) and safe for concurrent use —
// parallel workers may AddItems on a shared parent while children start
// and end underneath it.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time
	items  atomic.Int64
	bytes  atomic.Int64

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	children []*Span
}

type attr struct{ key, val string }

// Start begins a span named name. The span nests under the context's
// current span when one exists, otherwise it becomes a new root of the
// context's tracer. Without a tracer the context is returned unchanged
// and the span is nil — the zero-cost disabled path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var t *Tracer
	if parent != nil {
		t = parent.tracer
	} else if t = TracerFrom(ctx); t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, name: name, start: time.Now()}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// End stamps the span's completion time. Ending twice keeps the first
// stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// AddItems adds to the span's processed-item count.
func (s *Span) AddItems(n int64) {
	if s != nil {
		s.items.Add(n)
	}
}

// AddBytes adds to the span's processed-byte count.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// SetAttr sets (or replaces) a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = value
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, value})
}

// SetWorker records which worker of a fan-out ran this span.
func (s *Span) SetWorker(w int) { s.SetAttr("worker", strconv.Itoa(w)) }

// SpanData is an exported span. Durations are the only time-derived
// values; absolute timestamps stay out of manifests (the JSONL trace
// carries them for timeline reconstruction).
type SpanData struct {
	Name     string            `json:"name"`
	DurNS    int64             `json:"dur_ns"`
	Items    int64             `json:"items,omitempty"`
	Bytes    int64             `json:"bytes,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanData        `json:"children,omitempty"`
}

func (s *Span) export() SpanData {
	s.mu.Lock()
	d := SpanData{Name: s.name, Items: s.items.Load(), Bytes: s.bytes.Load()}
	if !s.end.IsZero() {
		d.DurNS = s.end.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.key] = a.val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.export())
	}
	return d
}

// Snapshot exports the full span forest. Unfinished spans report a zero
// duration.
func (t *Tracer) Snapshot() []SpanData {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	out := make([]SpanData, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.export())
	}
	return out
}

// Reset drops every collected span.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.roots = nil
	t.mu.Unlock()
}

// StageSummary aggregates every span sharing one name: how many ran, the
// summed wall duration, and the summed item/byte counts. Summaries are
// what manifests embed — compact and name-ordered regardless of how the
// concurrent span forest interleaved.
type StageSummary struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	DurNS int64  `json:"dur_ns"`
	Items int64  `json:"items,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
}

// Stages aggregates the span forest by span name, sorted by name.
func (t *Tracer) Stages() []StageSummary {
	return t.AppendStages(nil)
}

// AppendStages is Stages with a caller-supplied destination, for hot
// paths that aggregate per request (the serving access log) and want to
// reuse a scratch slice. It walks the live spans directly — no SpanData
// export, no attribute maps — and appends one name-sorted summary per
// distinct span name. Distinct names per tree are few, so the lookup is
// a linear scan rather than a map.
func (t *Tracer) AppendStages(dst []StageSummary) []StageSummary {
	t.mu.Lock()
	roots := t.roots
	for _, r := range roots {
		dst = appendStage(dst, r)
	}
	t.mu.Unlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].Name < dst[j].Name })
	return dst
}

// appendStage folds one span (and its subtree) into dst. Parent-to-child
// lock order matches every other acquisition in this file, so holding
// the parent's lock across the recursion cannot deadlock.
func appendStage(dst []StageSummary, s *Span) []StageSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for ; i < len(dst); i++ {
		if dst[i].Name == s.name {
			break
		}
	}
	if i == len(dst) {
		dst = append(dst, StageSummary{Name: s.name})
	}
	dst[i].Count++
	if !s.end.IsZero() {
		dst[i].DurNS += s.end.Sub(s.start).Nanoseconds()
	}
	dst[i].Items += s.items.Load()
	dst[i].Bytes += s.bytes.Load()
	for _, c := range s.children {
		dst = appendStage(dst, c)
	}
	return dst
}

// traceLine is the JSONL trace record: parent links by id, depth-first
// ids, absolute start for timeline tools.
type traceLine struct {
	ID          int               `json:"id"`
	Parent      int               `json:"parent,omitempty"`
	Name        string            `json:"name"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurNS       int64             `json:"dur_ns"`
	Items       int64             `json:"items,omitempty"`
	Bytes       int64             `json:"bytes,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL exports the span forest as one JSON object per line,
// depth-first, each span carrying its parent's id.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	next := 1
	var walk func(s *Span, parent int) error
	walk = func(s *Span, parent int) error {
		s.mu.Lock()
		line := traceLine{
			ID:          next,
			Parent:      parent,
			Name:        s.name,
			StartUnixNS: s.start.UnixNano(),
			Items:       s.items.Load(),
			Bytes:       s.bytes.Load(),
		}
		if !s.end.IsZero() {
			line.DurNS = s.end.Sub(s.start).Nanoseconds()
		}
		if len(s.attrs) > 0 {
			line.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				line.Attrs[a.key] = a.val
			}
		}
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		id := next
		next++
		if err := enc.Encode(line); err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
