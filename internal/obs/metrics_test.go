package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExposition pins the full text-format rendering: family
// ordering, series ordering by label tuple, label-value escaping, and the
// cumulative histogram layout with the implicit +Inf bucket. The expected
// block is a golden string — any formatting drift is a breaking change for
// scrapers and must be deliberate.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()

	// Registered out of name order on purpose; exposition must sort.
	g := r.Gauge("zz_gauge", "a gauge")
	g.Set(2.5)

	c := r.Counter("aa_total", "plain counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotonic: ignored

	v := r.CounterVec("mid_total", "labelled counter", "class")
	v.With("b").Add(2)
	v.With("a").Inc()
	v.With(`weird\value"with` + "\n" + `newline`).Inc()

	h := r.Histogram("hist_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05) // le 0.1
	h.Observe(0.5)  // le 1
	h.Observe(5)    // le 10
	h.Observe(100)  // +Inf only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total plain counter
# TYPE aa_total counter
aa_total 5
# HELP hist_seconds a histogram
# TYPE hist_seconds histogram
hist_seconds_bucket{le="0.1"} 1
hist_seconds_bucket{le="1"} 2
hist_seconds_bucket{le="10"} 3
hist_seconds_bucket{le="+Inf"} 4
hist_seconds_sum 105.55
hist_seconds_count 4
# HELP mid_total labelled counter
# TYPE mid_total counter
mid_total{class="a"} 1
mid_total{class="b"} 2
mid_total{class="weird\\value\"with\nnewline"} 1
# HELP zz_gauge a gauge
# TYPE zz_gauge gauge
zz_gauge 2.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBuckets checks le semantics (a value equal to a bound lands
// in that bound's bucket) and the cumulative counts in snapshots.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // exactly on the first bound → le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf

	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	s := snap[0].Series[0]
	want := []Bucket{{"1", 1}, {"2", 2}, {"+Inf", 3}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(want))
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d: got %+v, want %+v", i, b, want[i])
		}
	}
	if s.Count != 3 || s.Value != 6 {
		t.Errorf("count=%d sum=%v, want 3 and 6", s.Count, s.Value)
	}
}

// TestIdempotentRegistration verifies that re-registering an identical
// schema returns the same underlying metric, and that conflicting schemas
// panic.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration returned a different counter")
	}

	mustPanic(t, "type conflict", func() { r.Gauge("c_total", "help") })
	r.CounterVec("cv_total", "", "x")
	mustPanic(t, "label conflict", func() { r.CounterVec("cv_total", "", "y") })
	r.Histogram("h", "", []float64{1, 2})
	mustPanic(t, "bucket conflict", func() { r.Histogram("h", "", []float64{1, 3}) })
	mustPanic(t, "bad name", func() { r.Counter("has space", "") })
	mustPanic(t, "wrong label arity", func() { r.CounterVec("cv_total", "", "x").With("a", "b") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h2", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestSnapshotDeterminism: two registries fed the same events in different
// orders expose byte-identical text.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		v := r.CounterVec("events_total", "", "kind")
		for _, k := range order {
			v.With(k).Inc()
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	x := build([]string{"c", "a", "b", "a"})
	y := build([]string{"a", "b", "a", "c"})
	if x != y {
		t.Errorf("exposition depends on event order:\n%s\nvs\n%s", x, y)
	}
}
