package features

import (
	"math"
	"sort"

	"darklight/internal/sparse"
)

// VocabBuilder accumulates corpus-wide n-gram statistics over a stream of
// Docs, then freezes a Vocabulary: the top-N word grams and top-N char
// grams by total corpus frequency (§IV-A: "we order the n-grams by their
// frequency across the dataset [and] select the top N features").
//
// Builders shard cleanly: feed disjoint document subsets to separate
// builders and Merge them. Corpus frequency, document frequency, and the
// document count are all plain sums, so a merged builder Builds the exact
// vocabulary a single builder fed every document would — the top-N cut
// orders by (frequency desc, gram id asc), which is independent of the
// order the counts were summed in.
type VocabBuilder struct {
	cfg      Config
	words    map[GramID]gramStat
	chars    map[GramID]gramStat
	numDocs  int
	freqSeen [NumFreqFeatures]int
}

// gramStat carries both corpus-wide counters of one gram; keeping them in
// one map entry halves the hash probes of Add, the hot loop of vocabulary
// construction.
type gramStat struct {
	freq int // total occurrences across the corpus
	df   int // number of documents containing the gram
}

// NewVocabBuilder returns a builder for the given configuration.
func NewVocabBuilder(cfg Config) *VocabBuilder {
	return &VocabBuilder{
		cfg:   cfg,
		words: make(map[GramID]gramStat),
		chars: make(map[GramID]gramStat),
	}
}

// Add folds one document's counts into the corpus statistics. The doc can
// be discarded afterwards.
func (b *VocabBuilder) Add(d *Doc) {
	b.numDocs++
	for g, c := range d.WordGrams {
		s := b.words[g]
		s.freq += c
		s.df++
		b.words[g] = s
	}
	for g, c := range d.CharGrams {
		s := b.chars[g]
		s.freq += c
		s.df++
		b.chars[g] = s
	}
	for i, f := range d.Freq {
		if f > 0 {
			b.freqSeen[i]++
		}
	}
}

// Merge folds another builder's statistics into b. The other builder must
// have seen a disjoint set of documents (each document Added exactly once
// across all shards); it is left unchanged and may be discarded. Merging
// commutes with Add: shard-then-merge yields counter-for-counter the same
// builder state as a single sequential builder.
func (b *VocabBuilder) Merge(o *VocabBuilder) {
	b.numDocs += o.numDocs
	for g, os := range o.words {
		s := b.words[g]
		s.freq += os.freq
		s.df += os.df
		b.words[g] = s
	}
	for g, os := range o.chars {
		s := b.chars[g]
		s.freq += os.freq
		s.df += os.df
		b.chars[g] = s
	}
	for i := range o.freqSeen {
		b.freqSeen[i] += o.freqSeen[i]
	}
}

// NumDocs returns the number of documents added so far.
func (b *VocabBuilder) NumDocs() int { return b.numDocs }

// Build freezes the vocabulary. The builder can keep accumulating and be
// rebuilt; Build itself does not mutate the builder.
func (b *VocabBuilder) Build() *Vocabulary {
	words := topN(b.words, b.cfg.MaxWordGrams)
	chars := topN(b.chars, b.cfg.MaxCharGrams)

	v := &Vocabulary{
		cfg:       b.cfg,
		wordIndex: make(map[GramID]uint32, len(words)),
		charIndex: make(map[GramID]uint32, len(chars)),
		wordIDF:   make([]float64, len(words)),
		charIDF:   make([]float64, len(chars)),
		numDocs:   b.numDocs,
	}
	n := float64(b.numDocs)
	for i, g := range words {
		v.wordIndex[g] = uint32(i)
		v.wordIDF[i] = idf(n, float64(b.words[g].df))
	}
	base := uint32(len(words))
	for i, g := range chars {
		v.charIndex[g] = base + uint32(i)
		v.charIDF[i] = idf(n, float64(b.chars[g].df))
	}
	return v
}

// idf is the smoothed inverse document frequency: ln((1+N)/(1+df)).
// Corpus-universal grams (df = N) weigh ≈ 0, which is what makes TF-IDF
// discriminate: without it the high-frequency function-word grams dominate
// every vector's norm and all users look alike (§IV-A: TF-IDF "gives more
// importance to features that are frequently used by only one user and
// less importance to popular features such as stop-words").
func idf(n, df float64) float64 {
	return math.Log((1 + n) / (1 + df))
}

// topN returns the n highest-frequency grams, ties broken by gram id so
// vocabulary construction is deterministic regardless of how (or in how
// many shards) the counts were accumulated.
func topN(stats map[GramID]gramStat, n int) []GramID {
	// Flatten to (gram, freq) pairs before sorting: a map probe per
	// comparison dominates the sort of a large gram universe.
	type gramFreq struct {
		g    GramID
		freq int
	}
	pairs := make([]gramFreq, 0, len(stats))
	for g, s := range stats {
		pairs = append(pairs, gramFreq{g, s.freq})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].freq != pairs[j].freq {
			return pairs[i].freq > pairs[j].freq
		}
		return pairs[i].g < pairs[j].g
	})
	if n >= 0 && len(pairs) > n {
		pairs = pairs[:n]
	}
	grams := make([]GramID, len(pairs))
	for i, p := range pairs {
		grams[i] = p.g
	}
	return grams
}

// Vocabulary maps n-grams to feature indices and carries the IDF weights.
// Immutable after Build; safe for concurrent use.
//
// Index layout (dense, no gaps):
//
//	[0, W)                word n-grams, by descending corpus frequency
//	[W, W+C)              char n-grams
//	[W+C, W+C+42)         frequency features (punct, digits, specials)
//	[W+C+42, W+C+42+24)   reserved for the daily activity profile,
//	                      appended by the attribution layer
type Vocabulary struct {
	cfg       Config
	wordIndex map[GramID]uint32
	charIndex map[GramID]uint32
	wordIDF   []float64
	charIDF   []float64
	numDocs   int
}

// NumWordGrams returns the size of the word-gram section.
func (v *Vocabulary) NumWordGrams() int { return len(v.wordIndex) }

// NumCharGrams returns the size of the char-gram section.
func (v *Vocabulary) NumCharGrams() int { return len(v.charIndex) }

// NumDocs returns the corpus size the vocabulary was built from.
func (v *Vocabulary) NumDocs() int { return v.numDocs }

// FreqOffset is the index of the first frequency feature.
func (v *Vocabulary) FreqOffset() uint32 {
	return uint32(len(v.wordIndex) + len(v.charIndex))
}

// ActivityOffset is the index of the first daily-activity dimension.
func (v *Vocabulary) ActivityOffset() uint32 {
	off := v.FreqOffset()
	if v.cfg.IncludeFreq {
		off += uint32(NumFreqFeatures)
	}
	return off
}

// Dims is the total dimensionality including the 24 activity slots.
func (v *Vocabulary) Dims() int { return int(v.ActivityOffset()) + 24 }

// Vectorize converts a document into a TF-IDF weighted sparse vector in
// this vocabulary's index space. Grams outside the vocabulary are ignored.
// Term frequency is the gram count normalised by the document's total gram
// count of the same family, so documents of different lengths remain
// comparable.
func (v *Vocabulary) Vectorize(d *Doc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams) + NumFreqFeatures
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	wordDen := float64(max(d.WordTotal, 1))
	for g, c := range d.WordGrams {
		if i, ok := v.wordIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/wordDen*v.wordIDF[i])
		}
	}
	charDen := float64(max(d.CharTotal, 1))
	base := uint32(len(v.wordIndex))
	for g, c := range d.CharGrams {
		if i, ok := v.charIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/charDen*v.charIDF[i-base])
		}
	}
	if v.cfg.IncludeFreq {
		off := v.FreqOffset()
		for i, f := range d.Freq {
			if f != 0 {
				vec.Idx = append(vec.Idx, off+uint32(i))
				vec.Val = append(vec.Val, f)
			}
		}
	}
	vec.Sort()
	return vec
}

// VectorizeGrams is Vectorize restricted to the n-gram sections — the
// frequency features are omitted. The attribution layer keeps frequency
// and activity blocks separate so it can re-weight them at query time.
func (v *Vocabulary) VectorizeGrams(d *Doc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams)
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	wordDen := float64(max(d.WordTotal, 1))
	for g, c := range d.WordGrams {
		if i, ok := v.wordIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/wordDen*v.wordIDF[i])
		}
	}
	charDen := float64(max(d.CharTotal, 1))
	base := uint32(len(v.wordIndex))
	for g, c := range d.CharGrams {
		if i, ok := v.charIndex[g]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(c)/charDen*v.charIDF[i-base])
		}
	}
	vec.Sort()
	return vec
}
