// Fixture for the atomicmix pass, second file: plain accesses of
// objects that a.go touches through sync/atomic.
package serve

func (c *counters) reset() {
	c.hits = 0 // want `hits is accessed with sync/atomic \(a\.go:\d+\); this plain access races`
}

func (c *counters) report() int64 {
	return c.hits // want `hits is accessed with sync/atomic`
}

// Taking the address for a non-atomic purpose counts too: once the
// pointer escapes, unverifiable plain writes can follow.
func (c *counters) escape() *int64 {
	return &c.hits // want `hits is accessed with sync/atomic`
}

func totalNow() int64 {
	return total // want `total is accessed with sync/atomic`
}

// misses is never touched atomically; plain access is fine.
func (c *counters) miss() {
	c.misses++
}

// A justified waiver: single-goroutine init before anything is spawned.
func initHits(c *counters) {
	//lint:ignore atomicmix fixture: runs before any goroutine exists
	c.hits = 0
}
