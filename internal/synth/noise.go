package synth

import (
	"math/rand"
	"strings"
)

// Noise injection: everything the §III-C polishing pipeline exists to
// remove. The generator plants each artefact class so the cleaning steps
// are exercised by realistic data, not only by unit fixtures.

// foreignSentences feed the non-English message injection (polishing step 7
// removes them). A few natural sentences per language are enough — the
// detector sees char trigrams, not topics.
var foreignSentences = []string{
	// Spanish
	"la verdad es que no entiendo por qué la gente sigue comprando ahí después de tantos problemas con los envíos.",
	"el paquete llegó dos semanas tarde pero la calidad era bastante buena, volveré a pedir al mismo vendedor.",
	"alguien sabe si hay algún foro en español sobre estos temas? gracias de antemano por la ayuda.",
	// German
	"ich habe das gleiche problem mit dem versand gehabt und der verkäufer hat nie geantwortet, sehr enttäuschend.",
	"kann jemand einen zuverlässigen anbieter empfehlen? die qualität war beim letzten mal wirklich schlecht.",
	"das wetter hier in deutschland ist furchtbar und die preise steigen jeden monat weiter.",
	// French
	"je ne comprends pas pourquoi tout le monde recommande ce vendeur, ma commande n'est jamais arrivée.",
	"la qualité était correcte mais le délai de livraison beaucoup trop long à mon avis.",
	// Italian
	"qualcuno ha esperienza con questo venditore? vorrei ordinare ma le recensioni sono contrastanti.",
	"il pacco è arrivato in perfette condizioni, spedizione veloce e prodotto di ottima qualità.",
	// Portuguese
	"alguém pode me ajudar com uma dúvida sobre o envio para o brasil? nunca fiz isso antes.",
	// Dutch
	"de kwaliteit was prima maar de verzending duurde veel te lang deze keer, jammer.",
}

// spamBodies produce low-distinct-ratio messages (polishing step 6).
func spamBody(r *rand.Rand) string {
	phrases := []string{
		"best quality best price best service",
		"buy now buy now limited stock",
		"free shipping free shipping worldwide",
		"top vendor top product top stealth",
		"cheap cheap cheap prices all week",
	}
	p := phrases[r.Intn(len(phrases))]
	return strings.TrimSpace(strings.Repeat(p+" ", 3+r.Intn(5)))
}

// shortBody produces sub-10-word agreement messages (polishing step 5).
func shortBody(r *rand.Rand) string {
	options := []string{
		"this.", "lol same", "thanks man", "agreed 100%", "yeah exactly",
		"nice one", "no way", "so true", "good point", "this is it",
		"came here to say this", "underrated comment", "nope.", "^ this",
	}
	return options[r.Intn(len(options))]
}

// fakePGPBlock builds an armored block (polishing step 11). The body is
// gibberish base64-looking text — the stripper keys on the delimiters.
func fakePGPBlock(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("-----BEGIN PGP PUBLIC KEY BLOCK-----\n")
	b.WriteString("Version: GnuPG v2\n\n")
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	for line := 0; line < 4+r.Intn(6); line++ {
		for i := 0; i < 64; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		b.WriteByte('\n')
	}
	b.WriteString("=")
	for i := 0; i < 4; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	b.WriteString("\n-----END PGP PUBLIC KEY BLOCK-----")
	return b.String()
}

// asciiArtToken returns an overlong token (polishing step 12).
func asciiArtToken(r *rand.Rand) string {
	chars := []string{"=", "-", "~", "#", "*"}
	c := chars[r.Intn(len(chars))]
	return strings.Repeat(c, 40+r.Intn(40))
}

// quotedLines prepends Reddit-style quote lines (polishing step 8).
func quotedLines(r *rand.Rand, style *Style, topic string) string {
	n := 1 + r.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("> ")
		b.WriteString(style.GenerateSentence(r, topic))
		b.WriteByte('\n')
	}
	return b.String()
}

// editMark appends a platform edit marker (polishing step 9).
func editMark(r *rand.Rand, nickname string) string {
	options := []string{
		"\nEdit by " + nickname + ": fixed a typo",
		"\nEdit: typo",
		"\nEdited by " + nickname,
		"\nEDIT: forgot to mention the price",
	}
	return options[r.Intn(len(options))]
}

// mailSnippet embeds an email address (polishing step 10).
func mailSnippet(r *rand.Rand, nickname string) string {
	domains := []string{"protonmail.com", "tutanota.com", "mail.ru", "gmail.com", "secmail.pro"}
	return " contact me at " + strings.ToLower(nickname) + "@" + domains[r.Intn(len(domains))] + " for details."
}

// urlSnippet embeds a raw URL (polishing step 3).
func urlSnippet(r *rand.Rand) string {
	urls := []string{
		"https://www.reddit.com/r/DarkNetMarkets/comments/abc123",
		"http://lchudifyeqm4ldjj.onion/forum/thread/991",
		"https://blockchain.info/tx/deadbeef",
		"https://imgur.com/gallery/xyz987",
		"http://talismanrestz7mr.onion/index.php?topic=42",
		"https://www.youtube.com/watch?v=dQw4w9WgXcQ",
	}
	return " check " + urls[r.Intn(len(urls))] + " for more."
}

// referralURL is the nickname-bearing link of the §V-C evidence story.
func referralURL(nickname string) string {
	return "https://paymore.example.com/ref/" + strings.ToLower(nickname)
}

// botBodies gives a bot a small fixed repertoire it repeats verbatim.
func botBodies(r *rand.Rand) []string {
	templates := []string{
		"I am a bot, this action was performed automatically. Please contact the moderators with any questions about this removal or action.",
		"Your submission has been removed because it does not follow rule 4 of this community. Please review the sidebar before posting again here.",
		"Reminder: never share personal information or payment details in public threads. Stay safe and use the escrow system provided by the market.",
		"This thread has been locked automatically after reaching the comment limit configured by the moderators of this community. Thank you for participating.",
		"Daily backup complete. Uptime report follows for all monitored mirrors and services across the network during the last twenty four hours.",
	}
	n := 2 + r.Intn(2)
	out := make([]string, n)
	perm := r.Perm(len(templates))
	for i := 0; i < n; i++ {
		out[i] = templates[perm[i]]
	}
	return out
}
