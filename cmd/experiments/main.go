// Command experiments regenerates every table and figure of the paper's
// evaluation on a synthetic world and writes the results to stdout (and
// optionally to a markdown file consumed by EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale 0.12] [-seed 1] [-run tab1,fig3] [-out results.md]
//
// Experiment ids: tab1..tab6, fig1..fig5, tmgdm, dewhole, profile, batch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darklight/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 0.12, "population scale relative to the paper's scrape")
		seed     = flag.Uint64("seed", 1, "world seed")
		only     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		outPath  = flag.String("out", "", "also write results to this markdown file")
		unknowns = flag.Int("unknowns", 0, "cap on alter-ego query sets (0 = default)")
	)
	flag.Parse()

	cfg := experiments.DefaultLabConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	if *unknowns > 0 {
		cfg.MaxUnknowns = *unknowns
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	var out strings.Builder
	emit := func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		fmt.Print(s)
		out.WriteString(s)
	}

	start := time.Now()
	emit("darklight experiment suite — scale %.2f, seed %d, started %s\n\n",
		*scale, *seed, time.Now().Format(time.RFC3339))

	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	emit("lab ready in %s (reddit %d/%d refined, tmg %d/%d, dm %d/%d)\n\n",
		time.Since(start).Round(time.Second),
		lab.Reddit.Len(), lab.RawReddit.Len(),
		lab.TMG.Len(), lab.RawTMG.Len(),
		lab.DM.Len(), lab.RawDM.Len())

	type experiment struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	var crossDark *experiments.CrossForumReport
	list := []experiment{
		{"tab1", func() (fmt.Stringer, error) { return lab.Table1(), nil }},
		{"fig1", func() (fmt.Stringer, error) { return lab.Figure1(), nil }},
		{"tab2", func() (fmt.Stringer, error) { return lab.Table2() }},
		{"tab4", func() (fmt.Stringer, error) { return lab.Table4(), nil }},
		{"tab3", func() (fmt.Stringer, error) { return lab.Table3() }},
		{"fig2", func() (fmt.Stringer, error) { return lab.Figure2() }},
		{"tab5", func() (fmt.Stringer, error) { return lab.Table5() }},
		{"tab6", func() (fmt.Stringer, error) { return lab.Table6() }},
		{"fig5", func() (fmt.Stringer, error) { return lab.Figure5() }},
		{"fig4", func() (fmt.Stringer, error) { return lab.Figure4() }},
		{"fig3", func() (fmt.Stringer, error) { return lab.Figure3() }},
		{"tmgdm", func() (fmt.Stringer, error) { return lab.TMGvsDM() }},
		{"dewhole", func() (fmt.Stringer, error) {
			rep, err := lab.RedditVsDarkWeb()
			crossDark = rep
			return rep, err
		}},
		{"profile", func() (fmt.Stringer, error) {
			if crossDark == nil {
				var err error
				crossDark, err = lab.RedditVsDarkWeb()
				if err != nil {
					return nil, err
				}
			}
			return lab.ProfileBestMatch(crossDark), nil
		}},
		{"batch", func() (fmt.Stringer, error) { return lab.BatchProcedure() }},
	}

	for _, e := range list {
		if !want(e.id) {
			continue
		}
		t0 := time.Now()
		rep, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		emit("===== %s (%s) =====\n", e.id, time.Since(t0).Round(time.Millisecond))
		if rep == nil || (fmt.Stringer)(rep) == nil {
			emit("(no result)\n\n")
			continue
		}
		emit("%s\n", rep.String())
	}
	emit("total wall clock: %s\n", time.Since(start).Round(time.Second))

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(out.String()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *outPath, err)
		}
	}
	return nil
}
