// Seeded violations for the detrand analyzer: this fake package's import
// path ("internal/synth") puts it inside the deterministic scope.
package synth

import (
	"math/rand"
	"time"
)

func globalDraws() {
	_ = rand.Intn(6)       // want `package-level math/rand call rand\.Intn`
	_ = rand.Float64()     // want `package-level math/rand call rand\.Float64`
	_ = rand.Perm(10)      // want `package-level math/rand call rand\.Perm`
	rand.Shuffle(3, swap)  // want `package-level math/rand call rand\.Shuffle`
	rand.Seed(42)          // want `package-level math/rand call rand\.Seed`
	_ = rand.Int63n(100)   // want `package-level math/rand call rand\.Int63n`
	_ = rand.NormFloat64() // want `package-level math/rand call rand\.NormFloat64`
}

func swap(i, j int) {}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from time\.Now\(\)`
}

func wallClockSeedIndirect() rand.Source {
	seed := time.Now().UnixNano()
	_ = seed
	return rand.NewSource(time.Now().Unix()) // want `rand\.NewSource seeded from time\.Now\(\)`
}

// Injected, seeded randomness is the sanctioned pattern.
func good(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodDraw(r *rand.Rand) int {
	return r.Intn(6) // method on an injected *rand.Rand: fine
}

func suppressedDraw() int {
	//lint:ignore detrand demo: jitter for a log message, not pipeline output
	return rand.Intn(6)
}
