// Fixture for the goleak pass: goroutines in long-lived packages need
// a reachable stop signal.
package obs

import (
	"context"
	"sync"
)

func selectOnDone(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func rangeOverJobs(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func waitThenClose(wg *sync.WaitGroup, done chan struct{}) {
	go func() {
		wg.Wait()
		close(done)
	}()
}

func plainReceive(done chan struct{}) {
	go func() {
		<-done
	}()
}

func spinsForever() {
	go func() { // want `goroutine in a long-lived package has no reachable stop signal`
		for {
		}
	}()
}

func selectWithoutReceive(work chan int) {
	go func() { // want `goroutine in a long-lived package has no reachable stop signal`
		for {
			select {
			case work <- 1:
			default:
			}
		}
	}()
}

// A signal in dead code does not count: the receive below sits after an
// unconditional return, so no reachable path ever consults it.
func deadSignal(done chan struct{}) {
	go func() { // want `goroutine in a long-lived package has no reachable stop signal`
		return
		<-done
	}()
}

// A signal inside a nested literal belongs to a different goroutine.
func nestedLiteralSignal(done chan struct{}) {
	go func() { // want `goroutine in a long-lived package has no reachable stop signal`
		f := func() { <-done }
		_ = f
		for {
		}
	}()
}

func namedWithContext(ctx context.Context) {
	go pump(ctx)
}

func namedWithChannel(stop chan struct{}) {
	go drain(stop)
}

func namedOrphan() {
	go orbit() // want `goroutine in a long-lived package has no reachable stop signal`
}

// A justified waiver: the goroutine is stopped out of band by closing
// the listener it blocks on.
func waived() {
	//lint:ignore goleak fixture: stopped out of band by closing the listener it serves
	go orbit()
}

func pump(ctx context.Context) { <-ctx.Done() }

func drain(stop chan struct{}) { <-stop }

func orbit() {
	for {
	}
}
