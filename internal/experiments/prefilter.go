package experiments

import (
	"fmt"
	"strings"

	"darklight/internal/attribution"
	"darklight/internal/eval"
)

// PrefilterReport is the stage-1 pre-filter operating-point sweep: the
// measured recall/work trade of the pruned and LSH modes on the
// community-structured world they are specified against. It rides along
// in run.json so every run records what the approximate mode's recall
// actually was, next to the exactness the pruned rows pin.
type PrefilterReport struct {
	Table *eval.PrefilterTable
}

// String renders the operating-point table with a reading note.
func (r *PrefilterReport) String() string {
	var b strings.Builder
	b.WriteString(r.Table.String())
	b.WriteString("(pruned rows are lossless by construction — recall 1 at any knob; ")
	b.WriteString("work is the fraction of the known set exactly scored. ")
	b.WriteString("Wall-clock speedups are measured separately by the benchdiff prefilter suite.)\n")
	return b.String()
}

// Prefilter runs the default operating-point sweep (eval.DefaultSweepPoints)
// on the community world, scaled by the lab's worker bound only through
// the matcher build — the sweep itself is sequential and deterministic.
func (l *Lab) Prefilter() (*PrefilterReport, error) {
	known, queries := eval.PrefilterWorld(eval.PrefilterWorldConfig{Seed: int64(l.Cfg.Seed)})
	opts := attribution.DefaultOptions()
	opts.Workers = l.Cfg.Workers
	m, err := attribution.NewMatcherContext(l.Context(), known, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: prefilter world matcher: %w", err)
	}
	table, err := eval.SweepPrefilter(m, queries, 10, eval.DefaultSweepPoints())
	if err != nil {
		return nil, fmt.Errorf("experiments: prefilter sweep: %w", err)
	}
	return &PrefilterReport{Table: table}, nil
}
