package serve

// The serve load harness: closed-loop in-process drivers (no sockets, no
// network noise) hammering the full middleware + handler chain. Each
// benchmark verifies every response byte-for-byte against the sequential
// matcher answer — the load numbers are only worth recording if the served
// bytes are correct — and reports the per-request p99 latency as a custom
// "p99-ns" metric, which cmd/benchdiff parses and gates with -maxp99.
//
//	go run ./cmd/benchdiff -suite serve -phase before

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
)

// benchEnv is built once and shared by all serve benchmarks.
type benchEnv struct {
	handler http.Handler
	// traced is the same service configuration with request tracing live
	// (recorder + access log + span tree per request); the bit-identity
	// contract lets the Obs twin verify against the same expected bytes.
	traced http.Handler
	// queries[i] holds the pre-marshaled request and expected response
	// bytes for one (endpoint, alias) pair.
	queries []benchQuery
}

type benchQuery struct {
	path string
	body []byte
	want string
}

var (
	benchOnce sync.Once
	bench     *benchEnv
)

// benchSetup builds a 36-alias known corpus, the service over it, and the
// expected bytes for every benchmark request, computed sequentially with
// an independently constructed matcher.
func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	benchOnce.Do(func() {
		ctx := context.Background()
		known := forum.NewDataset("bench-known", forum.PlatformSynthetic)
		for i := 0; i < 36; i++ {
			known.Add(styleAlias(benchName(i), i%len(styleWords)))
		}
		query := forum.NewDataset("bench-query", forum.PlatformSynthetic)
		query.Add(styleAlias("q_alice", 0))
		query.Add(styleAlias("q_dave", 3))

		ks, err := attribution.BuildSubjects(known, testSubjectOptions())
		if err != nil {
			panic(err)
		}
		qs, err := attribution.BuildSubjects(query, testSubjectOptions())
		if err != nil {
			panic(err)
		}
		// Both services share one pre-built matcher (the Corpus.Matcher
		// hook): the traced and untraced twins then score through the very
		// same index memory, so the overhead pair measures the tracing
		// layer alone rather than allocator layout luck between two
		// independently built indexes.
		m, err := attribution.NewMatcherContext(ctx, ks, testOptions())
		if err != nil {
			panic(err)
		}
		loader := func(context.Context) (*Corpus, error) {
			return &Corpus{Known: ks, Query: qs, Matcher: m}, nil
		}
		svc, err := New(ctx, Config{
			Loader:   loader,
			Options:  testOptions(),
			Subjects: testSubjectOptions(),
			APIKeys:  []string{"bench-key"},
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			panic(err)
		}
		svcObs, err := New(ctx, Config{
			Loader:   loader,
			Options:  testOptions(),
			Subjects: testSubjectOptions(),
			APIKeys:  []string{"bench-key"},
			Registry: obs.NewRegistry(),
			Trace: reqtrace.NewRecorder(reqtrace.Options{
				SampleRate: 0.01,
				Slow:       250 * time.Millisecond,
				AccessLog:  io.Discard,
			}),
		})
		if err != nil {
			panic(err)
		}
		env := &benchEnv{handler: svc.Handler(), traced: svcObs.Handler()}
		for i := range qs {
			sub := &qs[i]
			res := m.Match(sub)
			env.queries = append(env.queries,
				benchQuery{
					path: "/v1/rank",
					body: []byte(`{"subject":{"alias":"` + sub.Name + `"}}`),
					want: encodeBody(b, &RankResponse{IndexVersion: 1, Subject: sub.Name, Candidates: candidates(res.Candidates)}),
				},
				benchQuery{
					path: "/v1/match",
					body: []byte(`{"subject":{"alias":"` + sub.Name + `"}}`),
					want: encodeBody(b, matchResponse(1, &res, testOptions().Threshold)),
				})
			req := RescoreRequest{Subject: SubjectSpec{Alias: sub.Name}}
			for _, c := range res.Candidates {
				req.Candidates = append(req.Candidates, c.Name)
			}
			env.queries = append(env.queries, benchQuery{
				path: "/v1/rescore",
				body: []byte(encodeBody(b, &req)),
				want: encodeBody(b, &RescoreResponse{IndexVersion: 1, Subject: sub.Name, Rescored: candidates(m.Rescore(sub, res.Candidates))}),
			})
		}
		bench = env
	})
	return bench
}

func benchName(i int) string {
	return string([]byte{'k', byte('a' + i/10), byte('0' + i%10)})
}

// benchDrivers sizes the closed-loop driver pool to the machine: 2 per
// core, capped at 8. On a single-core runner more drivers only measure
// their own queueing, swamping the p99 the gate is meant to watch.
func benchDrivers() int {
	d := 2 * runtime.GOMAXPROCS(0)
	if d > 8 {
		d = 8
	}
	return d
}

// drive runs b.N requests through h on `drivers` closed-loop goroutines,
// selecting requests via pick, verifying every body, and reporting the
// p99 per-request latency.
func drive(b *testing.B, h http.Handler, drivers int, pick func(i int64) *benchQuery) {
	var next atomic.Int64
	var bad atomic.Int64
	lats := make([][]int64, drivers)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for g := 0; g < drivers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]int64, 0, b.N/drivers+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					break
				}
				q := pick(i)
				start := time.Now()
				rec := do(h, "POST", q.path, "bench-key", q.body)
				mine = append(mine, time.Since(start).Nanoseconds())
				if rec.Code != 200 || rec.Body.String() != q.want {
					bad.Add(1)
				}
			}
			lats[g] = mine
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	if n := bad.Load(); n != 0 {
		b.Fatalf("%d of %d responses diverged from the sequential matcher", n, b.N)
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		b.ReportMetric(float64(all[idx]), "p99-ns")
	}
}

func BenchmarkServeRank(b *testing.B) {
	env := benchSetup(b)
	ranks := rankQueries(env)
	drive(b, env.handler, benchDrivers(), func(i int64) *benchQuery { return ranks[i%int64(len(ranks))] })
}

// BenchmarkServeRankObs is BenchmarkServeRank with request tracing live:
// traceparent minting, the per-stage span tree, probabilistic ring
// sampling, and a (discarded) access log line per request. cmd/benchdiff's
// -maxoverhead gate pairs it with the base benchmark; the bodies are
// verified against the same expected bytes because tracing must not change
// a single response byte.
func BenchmarkServeRankObs(b *testing.B) {
	env := benchSetup(b)
	ranks := rankQueries(env)
	drive(b, env.traced, benchDrivers(), func(i int64) *benchQuery { return ranks[i%int64(len(ranks))] })
}

func rankQueries(env *benchEnv) []*benchQuery {
	var ranks []*benchQuery
	for i := range env.queries {
		if env.queries[i].path == "/v1/rank" {
			ranks = append(ranks, &env.queries[i])
		}
	}
	return ranks
}

func BenchmarkServeMatch(b *testing.B) {
	env := benchSetup(b)
	var matches []*benchQuery
	for i := range env.queries {
		if env.queries[i].path == "/v1/match" {
			matches = append(matches, &env.queries[i])
		}
	}
	drive(b, env.handler, benchDrivers(), func(i int64) *benchQuery { return matches[i%int64(len(matches))] })
}

func BenchmarkServeMixed(b *testing.B) {
	env := benchSetup(b)
	drive(b, env.handler, benchDrivers(), func(i int64) *benchQuery { return &env.queries[i%int64(len(env.queries))] })
}
