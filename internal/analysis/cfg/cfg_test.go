package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses one function body and builds its graph.
func buildFunc(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return Build(fn.Body), fset
}

// TestBuildShapes pins the exact graph the builder produces for the
// control-flow shapes the passes depend on: labeled break/continue,
// select with and without default, defer inside loops, panic-only
// exits, switch fallthrough, goto, and dead code.
func TestBuildShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straight line",
			body: "x := 1\n_ = x\nreturn",
			want: "b0: (entry) [x := 1] [_ = x] [return] -> b1\n" +
				"b1: (exit)\n",
		},
		{
			name: "if without else",
			body: "if x := 1; x > 0 {\n_ = x\n}\n_ = 2",
			want: "b0: (entry) [x := 1] [x > 0] -> b3 b2\n" +
				"b1: (exit)\n" +
				"b2: [_ = 2] -> b1\n" +
				"b3: [_ = x] -> b2\n",
		},
		{
			name: "if else with returns on both paths",
			body: "if true {\nreturn\n} else {\nreturn\n}",
			want: "b0: (entry) [true] -> b3 b4\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [return] -> b1\n" +
				"b4: [return] -> b1\n",
		},
		{
			name: "for with cond and post",
			body: "for i := 0; i < 3; i++ {\n_ = i\n}",
			want: "b0: (entry) [i := 0] -> b2\n" +
				"b1: (exit)\n" +
				"b2: [i < 3] -> b3 b4\n" +
				"b3: [_ = i] -> b5\n" +
				"b4: -> b1\n" +
				"b5: [i++] -> b2\n",
		},
		{
			name: "infinite for has no exit edge from the loop",
			body: "for {\n_ = 1\n}",
			want: "b0: (entry) -> b2\n" +
				"b1: (exit)\n" +
				"b2: -> b3\n" +
				"b3: [_ = 1] -> b2\n" +
				"b4: -> b1\n",
		},
		{
			name: "labeled break and continue",
			body: "outer:\nfor {\nfor {\nif true {\nbreak outer\n}\nif false {\ncontinue outer\n}\nbreak\n}\n}\n_ = 1",
			want: "b0: (entry) -> b2\n" +
				"b1: (exit)\n" +
				"b2: -> b3\n" +
				"b3: -> b4\n" +
				"b4: -> b6\n" +
				"b5: [_ = 1] -> b1\n" +
				"b6: -> b7\n" +
				"b7: [true] -> b10 b9\n" +
				"b8: -> b3\n" +
				"b9: [false] -> b12 b11\n" +
				"b10: [break outer] -> b5\n" +
				"b11: [break] -> b8\n" +
				"b12: [continue outer] -> b3\n",
		},
		{
			name: "range over channel",
			body: "ch := make(chan int)\nfor v := range ch {\n_ = v\n}",
			want: "b0: (entry) [ch := make(chan int)] -> b2\n" +
				"b1: (exit)\n" +
				"b2: [ch] -> b3 b4\n" +
				"b3: [_ = v] -> b2\n" +
				"b4: -> b1\n",
		},
		{
			name: "select with no default blocks on its cases",
			body: "var a, b chan int\nselect {\ncase <-a:\n_ = 1\ncase v := <-b:\n_ = v\n}",
			want: "b0: (entry) [var a, b chan int] -> b3 b4\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [<-a] [_ = 1] -> b2\n" +
				"b4: [v := <-b] [_ = v] -> b2\n",
		},
		{
			name: "select with default can skip",
			body: "var a chan int\nselect {\ncase <-a:\ndefault:\n_ = 2\n}",
			want: "b0: (entry) [var a chan int] -> b3 b4\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [<-a] -> b2\n" +
				"b4: [_ = 2] -> b2\n",
		},
		{
			name: "empty select blocks forever and strands the tail",
			body: "select {}\n_ = 1",
			want: "b0: (entry)\n" +
				"b1: (exit)\n" +
				"b2: [_ = 1] -> b1\n",
		},
		{
			name: "defer inside loop stays a loop-body node",
			body: "for i := 0; i < 3; i++ {\ndefer f()\n}",
			want: "b0: (entry) [i := 0] -> b2\n" +
				"b1: (exit)\n" +
				"b2: [i < 3] -> b3 b4\n" +
				"b3: [defer f()] -> b5\n" +
				"b4: -> b1\n" +
				"b5: [i++] -> b2\n",
		},
		{
			name: "panic-only exit",
			body: "panic(\"boom\")",
			want: "b0: (entry) [panic(\"boom\")] -> b1\n" +
				"b1: (exit)\n",
		},
		{
			name: "panic in branch, return after",
			body: "if true {\npanic(\"boom\")\n}\nreturn",
			want: "b0: (entry) [true] -> b3 b2\n" +
				"b1: (exit)\n" +
				"b2: [return] -> b1\n" +
				"b3: [panic(\"boom\")] -> b1\n",
		},
		{
			name: "switch without default gets a skip edge",
			body: "switch x := 1; x {\ncase 1:\n_ = 1\ncase 2:\n_ = 2\n}",
			want: "b0: (entry) [x := 1] [x] -> b3 b4 b2\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [1] [_ = 1] -> b2\n" +
				"b4: [2] [_ = 2] -> b2\n",
		},
		{
			name: "switch fallthrough",
			body: "switch 1 {\ncase 1:\nfallthrough\ncase 2:\n_ = 2\ndefault:\n_ = 3\n}",
			want: "b0: (entry) [1] -> b3 b4 b5\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [1] [fallthrough] -> b4\n" +
				"b4: [2] [_ = 2] -> b2\n" +
				"b5: [_ = 3] -> b2\n",
		},
		{
			name: "type switch",
			body: "var v any\nswitch v.(type) {\ncase int:\n_ = 1\n}",
			want: "b0: (entry) [var v any] [v.(type)] -> b3 b2\n" +
				"b1: (exit)\n" +
				"b2: -> b1\n" +
				"b3: [int] [_ = 1] -> b2\n",
		},
		{
			name: "goto backward and forward",
			body: "top:\n_ = 1\nif true {\ngoto top\n}\ngoto done\ndone:\nreturn",
			want: "b0: (entry) -> b2\n" +
				"b1: (exit)\n" +
				"b2: [_ = 1] [true] -> b4 b3\n" +
				"b3: [goto done] -> b5\n" +
				"b4: [goto top] -> b2\n" +
				"b5: [return] -> b1\n",
		},
		{
			name: "dead code after return still analyzed",
			body: "return\n_ = 1",
			want: "b0: (entry) [return] -> b1\n" +
				"b1: (exit)\n" +
				"b2: [_ = 1] -> b1\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, fset := buildFunc(t, tt.body)
			got := g.Describe(fset)
			if got != tt.want {
				t.Errorf("graph mismatch\n got:\n%s\nwant:\n%s", indent(got), indent(tt.want))
			}
			checkInvariants(t, g)
		})
	}
}

// checkInvariants asserts the structural properties every graph must
// satisfy, whatever its shape.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	index := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		index[b] = true
	}
	if !index[g.Entry] || !index[g.Exit] {
		t.Errorf("entry/exit not registered in Blocks")
	}
	if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
		t.Errorf("exit block must be empty and terminal")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				t.Errorf("b%d has an edge to an unregistered block", b.Index)
			}
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("b%d -> b%d missing the reverse Preds edge", b.Index, s.Index)
			}
		}
	}
}

// TestExitKind pins the return/panic/fall-off classification the
// lockbalance reporting walk keys on.
func TestExitKind(t *testing.T) {
	g, _ := buildFunc(t, "if true {\nreturn\n} else {\npanic(\"x\")\n}")
	kinds := map[Terminator]int{}
	for _, b := range g.Blocks {
		kinds[b.ExitKind(g.Exit)]++
	}
	if kinds[Return] != 1 || kinds[Panic] != 1 {
		t.Errorf("want one Return and one Panic exit, got %v", kinds)
	}
	// The empty after-block falls off the end (it is unreachable here,
	// but still classified).
	if kinds[FallOff] != 1 {
		t.Errorf("want one FallOff exit, got %v", kinds)
	}
}

// TestReachable pins reachability over dead code and infinite loops.
func TestReachable(t *testing.T) {
	g, _ := buildFunc(t, "select {}\n_ = 1")
	reach := g.Reachable()
	if !reach[g.Entry] {
		t.Fatalf("entry must be reachable")
	}
	if reach[g.Exit] {
		t.Errorf("exit must be unreachable past select{}")
	}
	var dead *Block
	for _, b := range g.Blocks {
		if len(b.Nodes) == 1 {
			dead = b
		}
	}
	if dead == nil || reach[dead] {
		t.Errorf("statement after select{} must be unreachable")
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
