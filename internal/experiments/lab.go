// Package experiments contains one harness per table and figure of the
// paper's evaluation (§III–§V). Each harness returns a printable report
// struct whose rows mirror what the paper prints; cmd/experiments runs
// them all and regenerates EXPERIMENTS.md.
//
// All harnesses share a Lab: a generated world (the data substitute for
// the paper's scraped corpora), polished and refined per §III-C/§IV-D,
// with alter-ego splits and a cached matcher for the big Reddit dataset.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"darklight/internal/activity"
	"darklight/internal/attribution"
	"darklight/internal/corpus"
	"darklight/internal/eval"
	"darklight/internal/forum"
	"darklight/internal/normalize"
	"darklight/internal/synth"
)

// LabConfig sizes the experiment suite. The paper ran at full scrape scale
// (16,567 Reddit users) on a 4-core laptop; the defaults here are sized
// for a single-CPU CI box. Raise Scale toward 1.0 to approach paper scale.
type LabConfig struct {
	// Seed drives the generator and all sampling.
	Seed uint64
	// Scale multiplies the paper's population counts (default 0.12).
	Scale float64
	// MaxUnknowns caps the alter-ego query sets of the PR experiments
	// (the paper used 1,000; default 250).
	MaxUnknowns int
	// Table3Known / Table3Unknowns cap the word-budget sweep, which
	// builds one index per (budget) pair (default 600 / 120).
	Table3Known    int
	Table3Unknowns int
	// BaselineKnown / BaselineUnknowns cap the Fig. 3 baseline comparison
	// (the Koppel baseline is ~100× one cosine pass; default 600 / 100).
	BaselineKnown    int
	BaselineUnknowns int
	// BatchUnknowns caps the §IV-J batch-procedure validation (default 50).
	BatchUnknowns int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultLabConfig returns the single-CPU defaults.
func DefaultLabConfig() LabConfig {
	return LabConfig{
		Seed:             1,
		Scale:            0.12,
		MaxUnknowns:      250,
		Table3Known:      600,
		Table3Unknowns:   120,
		BaselineKnown:    600,
		BaselineUnknowns: 100,
		BatchUnknowns:    50,
	}
}

func (c LabConfig) withDefaults() LabConfig {
	d := DefaultLabConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.MaxUnknowns == 0 {
		c.MaxUnknowns = d.MaxUnknowns
	}
	if c.Table3Known == 0 {
		c.Table3Known = d.Table3Known
	}
	if c.Table3Unknowns == 0 {
		c.Table3Unknowns = d.Table3Unknowns
	}
	if c.BaselineKnown == 0 {
		c.BaselineKnown = d.BaselineKnown
	}
	if c.BaselineUnknowns == 0 {
		c.BaselineUnknowns = d.BaselineUnknowns
	}
	if c.BatchUnknowns == 0 {
		c.BatchUnknowns = d.BatchUnknowns
	}
	return c
}

// Lab is the shared state of the experiment suite.
type Lab struct {
	Cfg LabConfig

	// World is the generated universe with ground truth.
	World *synth.World
	// Raw datasets (post-polish, pre-refinement) per forum.
	RawReddit, RawTMG, RawDM *forum.Dataset
	// Refined datasets (≥1,500 words, ≥30 usable timestamps) and their
	// alter-ego splits (Table IV's six datasets).
	Reddit, AEReddit *forum.Dataset
	TMG, AETMG       *forum.Dataset
	DM, AEDM         *forum.Dataset
	// PolishReports per forum, for Table-I-style diagnostics.
	PolishReports map[string]*normalize.Report

	// ActivityOpts is the shared profile configuration (UTC alignment,
	// weekend + US-2017-holiday exclusion).
	ActivityOpts activity.Options

	redditMatcher *attribution.Matcher
	darkMatcher   *attribution.Matcher
	curves        *aeCurveSet

	// ctx is the context the lab was built under; when it carries an
	// obs.Tracer, every harness stage (polish, matcher builds, MatchAll)
	// emits spans into it.
	ctx context.Context
}

// NewLab generates and prepares the shared datasets. This is the expensive
// setup step (~1–2 minutes at the default scale on one CPU).
func NewLab(cfg LabConfig) (*Lab, error) {
	return NewLabContext(context.Background(), cfg)
}

// NewLabContext is NewLab under a context that may carry an obs.Tracer.
// The lab retains the context and threads it through every pipeline stage
// it runs, now and later (lazy matcher builds, harness MatchAll calls).
// All outputs are bit-identical with tracing on or off.
func NewLabContext(ctx context.Context, cfg LabConfig) (*Lab, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	l := &Lab{Cfg: cfg, PolishReports: make(map[string]*normalize.Report), ctx: ctx}

	gen := synth.DefaultConfig().Scaled(cfg.Scale)
	gen.Seed = cfg.Seed
	// Overlap counts already shrink gently in Scaled; the lab additionally
	// floors them at 10 so the §V experiments keep a visible number of
	// plantable pairs even at tiny scales.
	gen.TMGDMOverlap = atLeast(gen.TMGDMOverlap, 10)
	gen.RedditTMGOveral = atLeast(gen.RedditTMGOveral, 10)
	gen.RedditDMOverlap = atLeast(gen.RedditDMOverlap, 10)

	world, err := synth.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate world: %w", err)
	}
	l.World = world
	// §IV-B: forums report local wall-clock time; align everything to UTC
	// before any profile is built.
	world.AlignUTC()

	pipe := normalize.NewPipeline()
	l.PolishReports["reddit"] = pipe.RunContext(ctx, world.Reddit)
	l.PolishReports["tmg"] = pipe.RunContext(ctx, world.TMG)
	l.PolishReports["dm"] = pipe.RunContext(ctx, world.DM)
	l.RawReddit, l.RawTMG, l.RawDM = world.Reddit, world.TMG, world.DM

	l.ActivityOpts = activity.PaperOptions(2017)

	refine := corpus.RefineOptions{Activity: l.ActivityOpts}
	aeOpts := corpus.AlterEgoOptions{Activity: l.ActivityOpts, Seed: int64(cfg.Seed)}

	l.Reddit, l.AEReddit = corpus.SplitAlterEgos(corpus.Refine(world.Reddit, refine), aeOpts)
	l.TMG, l.AETMG = corpus.SplitAlterEgos(corpus.Refine(world.TMG, refine), aeOpts)
	l.DM, l.AEDM = corpus.SplitAlterEgos(corpus.Refine(world.DM, refine), aeOpts)
	return l, nil
}

func atLeast(n, floor int) int {
	if n < floor {
		return floor
	}
	return n
}

// Context returns the context the lab was built with (context.Background
// for NewLab). Harnesses pass it to MatchAll and the matcher builds so
// their spans reach the lab's tracer.
func (l *Lab) Context() context.Context {
	if l.ctx == nil {
		return context.Background()
	}
	return l.ctx
}

// SubjectOpts returns the standard subject-building options.
func (l *Lab) SubjectOpts() attribution.SubjectOptions {
	return attribution.SubjectOptions{
		Activity:     l.ActivityOpts,
		WithActivity: true,
	}
}

// MatcherOpts returns the paper-default matcher options with the lab's
// worker bound.
func (l *Lab) MatcherOpts() attribution.Options {
	o := attribution.DefaultOptions()
	o.Workers = l.Cfg.Workers
	return o
}

// RedditMatcher lazily builds (and caches) the matcher over the full
// refined Reddit dataset — shared by Fig. 2, Table V, Fig. 4 and the §V-C
// de-anonymisation run.
func (l *Lab) RedditMatcher() (*attribution.Matcher, error) {
	if l.redditMatcher != nil {
		return l.redditMatcher, nil
	}
	known, err := attribution.BuildSubjects(l.Reddit, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	m, err := attribution.NewMatcherContext(l.Context(), known, l.MatcherOpts())
	if err != nil {
		return nil, err
	}
	l.redditMatcher = m
	return m, nil
}

// DarkWeb returns the merged TMG+DM dataset and its alter-ego merge —
// the "DarkWeb"/"AE_DarkWeb" datasets of §IV-G.
func (l *Lab) DarkWeb() (known, ae *forum.Dataset) {
	known = forum.Merge("DarkWeb", forum.PlatformSynthetic, l.TMG, l.DM)
	ae = forum.Merge("AE_DarkWeb", forum.PlatformSynthetic, l.AETMG, l.AEDM)
	return known, ae
}

// DarkMatcher lazily builds the matcher over the merged DarkWeb dataset.
func (l *Lab) DarkMatcher() (*attribution.Matcher, error) {
	if l.darkMatcher != nil {
		return l.darkMatcher, nil
	}
	known, _ := l.DarkWeb()
	subjects, err := attribution.BuildSubjects(known, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	m, err := attribution.NewMatcherContext(l.Context(), subjects, l.MatcherOpts())
	if err != nil {
		return nil, err
	}
	l.darkMatcher = m
	return m, nil
}

// sampleKnownUnknown draws a known sample and an unknown sample whose
// mates are guaranteed to be inside the known sample — in the paper every
// alter-ego's author is in dataset A, so a sampled experiment must
// preserve that property or accuracy is capped by the sampling rate.
func sampleKnownUnknown(known, unknown []attribution.Subject, nKnown, nUnknown int, seed int64) (k, u []attribution.Subject) {
	k = sampleSubjects(known, nKnown, seed)
	names := make(map[string]bool, len(k))
	for i := range k {
		names[k[i].Name] = true
	}
	withMate := make([]attribution.Subject, 0, len(unknown))
	for i := range unknown {
		if names[unknown[i].Name] {
			withMate = append(withMate, unknown[i])
		}
	}
	u = sampleSubjects(withMate, nUnknown, seed+1)
	return k, u
}

// sampleSubjects draws up to n subjects deterministically.
func sampleSubjects(subjects []attribution.Subject, n int, seed int64) []attribution.Subject {
	if n <= 0 || n >= len(subjects) {
		return subjects
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(subjects))[:n]
	out := make([]attribution.Subject, n)
	for i, j := range idx {
		out[i] = subjects[j]
	}
	return out
}

// predictionsOf converts match results into PR-curve predictions (each
// unknown's best rescored candidate).
func predictionsOf(results []attribution.MatchResult) []eval.Prediction {
	preds := make([]eval.Prediction, 0, len(results))
	for _, r := range results {
		if r.Best.Name == "" {
			continue
		}
		preds = append(preds, eval.Prediction{Unknown: r.Unknown, Candidate: r.Best.Name, Score: r.Best.Score})
	}
	return preds
}

// Timer measures harness wall-clock durations for the §IV-F comparison.
type Timer struct{ start time.Time }

// StartTimer begins timing.
//
//lint:ignore wallclock Timer measures harness runtime for the §IV-F speed comparison; durations are reported as timings, never mixed into attribution output
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the wall-clock duration so far.
//
//lint:ignore wallclock same as StartTimer: wall-clock is the measurement itself here
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// ResetCaches drops the lab's memoised matchers and curves so a benchmark
// iteration measures the full computation rather than a map lookup.
func (l *Lab) ResetCaches() {
	l.redditMatcher = nil
	l.darkMatcher = nil
	l.curves = nil
}
