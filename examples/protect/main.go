// Protect: the defensive side of the paper (§VI "Avoiding the attack" and
// the conclusion's call for writing-style anonymisation software). The
// same alter-ego experiment is run twice — once on raw text and schedules,
// once after the anonymiser rewrites the unknown aliases — to measure how
// much protection the countermeasures buy against this repository's own
// attack pipeline.
//
//	go run ./examples/protect
package main

import (
	"context"
	"fmt"
	"log"

	"darklight"
)

func main() {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 23, Scale: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	world.AlignUTC()

	pipe := darklight.NewPipeline()
	pipe.Polish(world.Reddit)
	refined := pipe.Refine(world.Reddit)
	main_, alterEgos := pipe.SplitAlterEgos(refined)
	if alterEgos.Len() > 60 {
		alterEgos.Aliases = alterEgos.Aliases[:60]
	}
	fmt.Printf("experiment: %d known aliases, %d probes\n\n", main_.Len(), alterEgos.Len())

	accuracy := func(probes *darklight.Dataset) float64 {
		matches, err := pipe.Link(context.Background(), main_, probes)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, m := range matches {
			if m.Unknown == m.Candidate {
				hits++
			}
		}
		return float64(hits) / float64(len(matches))
	}

	raw := accuracy(alterEgos)
	fmt.Printf("attack accuracy on raw aliases:        %5.1f%%\n", 100*raw)

	// What one message looks like before/after.
	sample := alterEgos.Aliases[0].Messages[0].Body
	if len(sample) > 140 {
		sample = sample[:140] + "…"
	}
	opts := darklight.DefaultAnonymizeOptions()
	fmt.Printf("\nsample before: %s\n", sample)
	rewritten := darklight.AnonymizeText(sample, opts)
	fmt.Printf("sample after:  %s\n\n", rewritten)

	protected := accuracy(darklight.Anonymize(alterEgos, opts))
	fmt.Printf("attack accuracy after anonymisation:   %5.1f%%\n", 100*protected)
	fmt.Printf("\nprotection: accuracy cut by %.1f points — and §VI's caveat stands:\n", 100*(raw-protected))
	fmt.Println("content choices still leak, so disposable aliases remain the only full defence.")
}
