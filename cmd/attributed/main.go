// Command attributed serves alias attribution as a long-lived daemon: it
// loads (or generates) a corpus once, indexes it, and answers concurrent
// /v1/rank, /v1/rescore, and /v1/match queries over HTTP JSON — the
// serving-system counterpart of the one-shot cmd/darklight batch CLI.
//
// Usage:
//
//	attributed -listen :8787 -known main.jsonl [-query ae.jsonl] [-api-keys k1,k2] [-rate 50 -burst 100]
//	attributed -listen :8787 -forum reddit -scale 0.02 -seed 1
//
// With -known, the known dataset is loaded from JSONL (polished and
// refined unless -polish=false / -refine=false) and indexed; -query
// optionally loads a second dataset that by-alias requests resolve
// against. Without -known, a synthetic world is generated and split into
// (main, alter-ego) halves: main is indexed, the alter egos become the
// query corpus — a self-contained demo where every query has a true match.
//
// With -index-dir, the index is persisted through internal/store: on
// startup the daemon cold-starts from dir/index.snap when present (no
// rebuild), replays any journal.jsonl thread deltas on top, and — with
// -save-index — writes the resulting generation back and compacts the
// journal. A missing snapshot falls back to building from the corpus
// source and (with -save-index) saving it for the next start.
//
// Signals: SIGHUP reloads — with -index-dir it replays new journal
// entries onto the live index instead of rebuilding from source — and
// swaps the index atomically (in-flight queries finish on the old
// index); SIGTERM/SIGINT stop accepting connections, drain in-flight
// requests up to -drain, and exit. /metrics, /debug/vars, /debug/pprof,
// and /debug/traces are mounted beside the API.
//
// Request tracing is on by default (-trace=false disables it): every
// response carries a traceparent + X-Request-Id, inbound traceparent
// headers are honoured, sampled span trees are browsable at
// /debug/traces, and -access-log appends one JSON line per request.
// Tracing never changes a response body (the serve tests pin the bytes
// identical either way).
//
// -selfcheck N runs N requests through the full in-process chain instead
// of serving a socket — CI uses it to produce a real access log and a
// trace-ring dump as build artifacts.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"darklight"
	"darklight/internal/attribution"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
	"darklight/internal/prefilter"
	"darklight/internal/serve"
	"darklight/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8787", "listen address")
		known     = flag.String("known", "", "known dataset JSONL to index (empty: generate a synthetic world)")
		query     = flag.String("query", "", "optional query dataset JSONL for by-alias requests (default: the known set)")
		forumW    = flag.String("forum", "reddit", "synthetic world forum: reddit, tmg, or dm")
		scale     = flag.Float64("scale", 0.02, "synthetic population scale")
		seed      = flag.Uint64("seed", 1, "synthetic generator seed")
		polish    = flag.Bool("polish", true, "run the §III-C cleaning pipeline on loaded datasets")
		refine    = flag.Bool("refine", true, "drop aliases below the §IV-D thresholds before indexing")
		thresh    = flag.Float64("threshold", darklight.DefaultThreshold, "acceptance threshold")
		k         = flag.Int("k", darklight.DefaultK, "stage-1 candidate-set size")
		budget    = flag.Int("budget", darklight.DefaultWordBudget, "per-alias word budget")
		workers   = flag.Int("workers", 0, "index-build parallelism (0: GOMAXPROCS)")
		apiKeys   = flag.String("api-keys", "", "comma-separated API keys; empty disables auth")
		rate      = flag.Float64("rate", 0, "per-client requests/second (0: unlimited)")
		burst     = flag.Int("burst", 20, "rate-limit burst size")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBody, "request body byte limit")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request handling deadline")
		drain     = flag.Duration("drain", 15*time.Second, "SIGTERM drain deadline for in-flight requests")
		preMode   = flag.String("prefilter", "", "default stage-1 candidate pre-filter: exact, pruned, or lsh (empty: pruned); /v1/rank requests may override per query")
		lshBands  = flag.Int("lsh-bands", 0, "MinHash-LSH band count (0: the built-in default)")
		lshRows   = flag.Int("lsh-rows", 0, "MinHash rows per LSH band (0: the built-in default)")
		indexDir  = flag.String("index-dir", "", "index store directory (index.snap + journal.jsonl): cold-start from the snapshot when present; SIGHUP replays journal deltas instead of rebuilding")
		saveIdx   = flag.Bool("save-index", false, "write the index back to -index-dir after build/replay and compact the journal")
		traceOn   = flag.Bool("trace", true, "request tracing: traceparent propagation, per-stage span capture, /debug/traces")
		traceRing = flag.Int("trace-ring", reqtrace.DefaultRing, "sampled traces retained in memory for /debug/traces")
		traceRate = flag.Float64("trace-sample", 0.01, "probability a request's span tree is retained (slow and inbound-sampled requests are always kept)")
		traceSlow = flag.Duration("trace-slow", 250*time.Millisecond, "always retain traces of requests at least this slow (0 disables the slow rule)")
		accessLog = flag.String("access-log", "", "append one JSON line per request to this file (empty: no access log)")
		selfcheck = flag.Int("selfcheck", 0, "run N in-process requests through the full chain, dump the trace listing to stdout, and exit instead of serving")
	)
	flag.Parse()
	if *saveIdx && *indexDir == "" {
		log.Fatal("attributed: -save-index requires -index-dir")
	}

	var rec *reqtrace.Recorder
	if *traceOn || *accessLog != "" {
		o := reqtrace.Options{Ring: *traceRing, SampleRate: *traceRate, Slow: *traceSlow}
		if *accessLog != "" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("attributed: -access-log: %v", err)
			}
			defer f.Close()
			o.AccessLog = f
		}
		rec = reqtrace.NewRecorder(o)
	}

	pipe := darklight.NewPipeline(
		darklight.WithThreshold(*thresh),
		darklight.WithK(*k),
		darklight.WithWordBudget(*budget),
		darklight.WithWorkers(*workers),
	)
	loader := makeLoader(pipe, *known, *query, *forumW, *scale, *seed, *polish, *refine)

	opts := pipe.MatcherOptions()
	mode, err := prefilter.ParseMode(*preMode)
	if err != nil {
		log.Fatalf("attributed: -prefilter: %v", err)
	}
	opts.Prefilter.Mode = mode
	opts.Prefilter.LSH.Bands = *lshBands
	opts.Prefilter.LSH.Rows = *lshRows

	if *indexDir != "" {
		st, err := store.Open(*indexDir)
		if err != nil {
			log.Fatalf("attributed: %v", err)
		}
		loader = makeStoreLoader(st, opts, pipe.SubjectOptions(), *saveIdx,
			makeKnownDataset(pipe, *known, *forumW, *scale, *seed, *polish, *refine),
			makeQuerySubjects(pipe, *known, *query, *forumW, *scale, *seed, *polish))
	}

	ctx := context.Background()
	start := time.Now()
	svc, err := serve.New(ctx, serve.Config{
		Loader:     loader,
		Options:    opts,
		Subjects:   pipe.SubjectOptions(),
		APIKeys:    splitKeys(*apiKeys),
		RatePerSec: *rate,
		Burst:      *burst,
		MaxBody:    *maxBody,
		Trace:      rec,
	})
	if err != nil {
		log.Fatalf("attributed: %v", err)
	}
	log.Printf("attributed: index v%d built in %s", svc.Version(), time.Since(start).Round(time.Millisecond))

	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	obs.AttachDebug(mux, obs.Default())
	obs.RegisterRuntime(obs.Default())
	if rec != nil {
		mux.Handle("/debug/traces", rec.Handler())
		mux.Handle("/debug/traces/", rec.Handler())
	}

	if *selfcheck > 0 {
		keys := splitKeys(*apiKeys)
		key := ""
		if len(keys) > 0 {
			key = keys[0]
		}
		if err := selfCheck(mux, rec, *selfcheck, key); err != nil {
			log.Fatalf("attributed: %v", err)
		}
		log.Printf("attributed: selfcheck passed (%d requests)", *selfcheck)
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("attributed: %v", err)
	}
	server := &http.Server{
		Handler:           http.TimeoutHandler(mux, *timeout, `{"error":{"code":"timeout","message":"request deadline exceeded","status":503}}`),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout,
		WriteTimeout:      *timeout + 5*time.Second,
	}
	go func() {
		if err := server.Serve(ln); err != nil && err != http.ErrServerClosed && !isClosedListener(err) {
			log.Fatalf("attributed: serve: %v", err)
		}
	}()
	log.Printf("attributed: serving /v1/{rank,rescore,match,healthz} on http://%s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, os.Interrupt)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			reloadStart := time.Now()
			if err := svc.Reload(ctx); err != nil {
				log.Printf("attributed: reload failed, keeping index v%d: %v", svc.Version(), err)
				continue
			}
			log.Printf("attributed: reloaded index v%d in %s", svc.Version(), time.Since(reloadStart).Round(time.Millisecond))
			continue
		}
		// SIGTERM/SIGINT: refuse new connections first, then drain.
		log.Printf("attributed: %s received, draining (deadline %s)", sig, *drain)
		//lint:ignore errdrop double-close on a dead listener is the only failure mode and the process is exiting
		ln.Close()
		if err := svc.Drain(*drain); err != nil {
			log.Printf("attributed: %v", err)
			//lint:ignore errdrop the process exits on the next line either way
			server.Close()
			os.Exit(1)
		}
		//lint:ignore errdrop in-flight requests are drained; nothing is left to fail
		server.Close()
		log.Printf("attributed: drained cleanly, exiting")
		return
	}
}

// isClosedListener matches the error Serve returns when the SIGTERM path
// closes the listener out from under it.
func isClosedListener(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// selfCheck drives n requests through the assembled mux in process — the
// same middleware chain, tracing, and sinks a socket client would hit —
// then dumps the sampled-trace listing to stdout. CI runs this mode to
// publish a real access log and trace dump as build artifacts; it fails
// on the first non-200 so a broken chain cannot produce green artifacts.
func selfCheck(mux http.Handler, rec *reqtrace.Recorder, n int, apiKey string) error {
	// An inline subject keeps the probe corpus-independent: it exercises
	// resolve + prefilter + rank without assuming any alias names.
	rank := []byte(`{"subject":{"name":"selfcheck","messages":[{"body":"shipment arrived with stealth packaging and escrow finalize quality tracking","time":"2017-03-04T10:00:00Z"}]},"k":3}`)
	for i := 0; i < n; i++ {
		method, path, body := http.MethodPost, "/v1/rank", rank
		if i%4 == 3 {
			method, path, body = http.MethodGet, "/v1/healthz", nil
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		if apiKey != "" && method == http.MethodPost {
			req.Header.Set("X-API-Key", apiKey)
		}
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			return fmt.Errorf("selfcheck request %d: %s %s: %d %s", i, method, path, w.Code, w.Body.String())
		}
	}
	if rec != nil {
		w := httptest.NewRecorder()
		rec.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
		//lint:ignore errdrop a failed stdout write has no channel left to report through
		os.Stdout.Write(w.Body.Bytes())
	}
	return nil
}

// splitKeys parses the -api-keys flag.
func splitKeys(csv string) []string {
	var keys []string
	for _, k := range strings.Split(csv, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

// makeLoader builds the corpus loader the service calls at startup and on
// every SIGHUP. File-backed corpora re-read their JSONL sources; the
// synthetic world regenerates from the same seed (a reload is then a
// no-op refresh, which is exactly what you want for a demo daemon).
func makeLoader(pipe *darklight.Pipeline, known, query, forumWhich string, scale float64, seed uint64, polish, refine bool) serve.Loader {
	return func(ctx context.Context) (*serve.Corpus, error) {
		if known == "" {
			return loadSynthetic(ctx, pipe, forumWhich, scale, seed)
		}
		kds, err := prepareDataset(ctx, pipe, known, polish, refine)
		if err != nil {
			return nil, err
		}
		ks, err := pipe.Subjects(kds)
		if err != nil {
			return nil, err
		}
		c := &serve.Corpus{Known: ks}
		if query != "" {
			qds, err := prepareDataset(ctx, pipe, query, polish, false)
			if err != nil {
				return nil, err
			}
			if c.Query, err = pipe.Subjects(qds); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
}

// prepareDataset loads one JSONL dataset and optionally polishes/refines it.
func prepareDataset(ctx context.Context, pipe *darklight.Pipeline, path string, polish, refine bool) (*darklight.Dataset, error) {
	d, err := darklight.LoadJSONL(path, path, forum.PlatformSynthetic)
	if err != nil {
		return nil, err
	}
	if polish {
		pipe.PolishContext(ctx, d)
	}
	if refine {
		d = pipe.Refine(d)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("attributed: %s: no aliases survive preparation", path)
	}
	return d, nil
}

// loadSynthetic generates a world and serves its (main, alter-ego) split.
func loadSynthetic(ctx context.Context, pipe *darklight.Pipeline, which string, scale float64, seed uint64) (*serve.Corpus, error) {
	mainDS, ae, err := syntheticSplit(ctx, pipe, which, scale, seed)
	if err != nil {
		return nil, err
	}
	c := &serve.Corpus{}
	if c.Known, err = pipe.Subjects(mainDS); err != nil {
		return nil, err
	}
	if c.Query, err = pipe.Subjects(ae); err != nil {
		return nil, err
	}
	return c, nil
}

// syntheticSplit generates the demo world and returns its (main,
// alter-ego) dataset halves.
func syntheticSplit(ctx context.Context, pipe *darklight.Pipeline, which string, scale float64, seed uint64) (*darklight.Dataset, *darklight.Dataset, error) {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: seed, Scale: scale})
	if err != nil {
		return nil, nil, err
	}
	var d *darklight.Dataset
	switch which {
	case "reddit":
		d = world.Reddit
	case "tmg":
		d = world.TMG
	case "dm":
		d = world.DM
	default:
		return nil, nil, fmt.Errorf("attributed: unknown forum %q (want reddit, tmg, or dm)", which)
	}
	pipe.PolishContext(ctx, d)
	mainDS, ae := pipe.SplitAlterEgos(pipe.Refine(d))
	return mainDS, ae, nil
}

// makeKnownDataset returns the known-corpus source the store path builds
// from when no snapshot exists yet: the prepared JSONL dataset, or the
// synthetic world's main split.
func makeKnownDataset(pipe *darklight.Pipeline, known, forumWhich string, scale float64, seed uint64, polish, refine bool) func(context.Context) (*forum.Dataset, error) {
	return func(ctx context.Context) (*forum.Dataset, error) {
		if known != "" {
			return prepareDataset(ctx, pipe, known, polish, refine)
		}
		mainDS, _, err := syntheticSplit(ctx, pipe, forumWhich, scale, seed)
		return mainDS, err
	}
}

// makeQuerySubjects returns the query-corpus source for the store path;
// nil subjects mean the known set doubles as the query corpus.
func makeQuerySubjects(pipe *darklight.Pipeline, known, query, forumWhich string, scale float64, seed uint64, polish bool) func(context.Context) ([]attribution.Subject, error) {
	return func(ctx context.Context) ([]attribution.Subject, error) {
		switch {
		case query != "":
			qds, err := prepareDataset(ctx, pipe, query, polish, false)
			if err != nil {
				return nil, err
			}
			return pipe.Subjects(qds)
		case known == "":
			_, ae, err := syntheticSplit(ctx, pipe, forumWhich, scale, seed)
			if err != nil {
				return nil, err
			}
			return pipe.Subjects(ae)
		default:
			return nil, nil
		}
	}
}

// makeStoreLoader wires the persistent index store into the serve loader.
// The first load cold-starts from the snapshot when one exists (building
// from the corpus source only when it does not); every load — including
// the SIGHUP reload path — then replays any journal deltas above the
// index's LastSeq onto the live generation, so a reload folds freshly
// scraped threads in without a rebuild. With save enabled, each new
// generation is written back atomically and the journal compacted.
func makeStoreLoader(st *store.Store, opts attribution.Options, subjOpts attribution.SubjectOptions, save bool,
	knownDS func(context.Context) (*forum.Dataset, error),
	querySubjects func(context.Context) ([]attribution.Subject, error)) serve.Loader {
	var (
		mu  sync.Mutex
		cur *store.Index
	)
	return func(ctx context.Context) (*serve.Corpus, error) {
		mu.Lock()
		defer mu.Unlock()
		built := false
		if cur == nil {
			if st.HasSnapshot() {
				idx, err := st.Load()
				if err != nil {
					return nil, err
				}
				log.Printf("attributed: cold-started index v%d (%d subjects) from %s", idx.Version, len(idx.Subjects), st.SnapshotPath())
				cur = idx
			} else {
				ds, err := knownDS(ctx)
				if err != nil {
					return nil, err
				}
				idx, err := store.BuildIndex(ctx, ds, opts, subjOpts)
				if err != nil {
					return nil, err
				}
				log.Printf("attributed: no snapshot in %s, built index v%d from source", st.Dir(), idx.Version)
				cur = idx
				built = true
			}
		}
		entries, err := st.ReadJournal(cur.LastSeq)
		if err != nil {
			return nil, err
		}
		next, err := store.Replay(ctx, cur, entries, subjOpts)
		if err != nil {
			return nil, err
		}
		if next != cur {
			log.Printf("attributed: replayed %d journal deltas into index v%d (seq %d)", len(entries), next.Version, next.LastSeq)
		}
		if save && (built || next != cur) {
			if err := st.Save(next); err != nil {
				return nil, err
			}
			if err := st.CompactJournal(next.LastSeq); err != nil {
				return nil, err
			}
		}
		cur = next
		q, err := querySubjects(ctx)
		if err != nil {
			return nil, err
		}
		// Surfacing LastSeq lets /v1/healthz report how current the serving
		// snapshot is relative to the store's journal.
		return &serve.Corpus{Known: next.Subjects, Query: q, Matcher: next.Matcher, LastJournalSeq: &next.LastSeq}, nil
	}
}
