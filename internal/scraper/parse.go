package scraper

import (
	"fmt"
	"strings"
	"time"

	"darklight/internal/forum"
)

// The darkweb server emits a deliberately simple, stable markup; parsing
// is hand-rolled (no html package dependency) and resilient to extra
// whitespace and attribute reordering.

// extractHrefs returns the href of every <a class="<class>" ...> link.
func extractHrefs(page, class string) []string {
	var out []string
	needle := `class="` + class + `"`
	rest := page
	for {
		a := strings.Index(rest, "<a ")
		if a < 0 {
			return out
		}
		end := strings.Index(rest[a:], ">")
		if end < 0 {
			return out
		}
		tag := rest[a : a+end]
		if strings.Contains(tag, needle) {
			if href, ok := attrValue(tag, "href"); ok {
				out = append(out, href)
			}
		}
		rest = rest[a+end:]
	}
}

// attrValue extracts attr="value" from a tag string.
func attrValue(tag, attr string) (string, bool) {
	needle := attr + `="`
	i := strings.Index(tag, needle)
	if i < 0 {
		return "", false
	}
	rest := tag[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// ParsePosts extracts the posts of one thread page.
func ParsePosts(page string) ([]forum.Message, error) {
	var posts []forum.Message
	rest := page
	for {
		start := strings.Index(rest, "<article ")
		if start < 0 {
			return posts, nil
		}
		tagEnd := strings.Index(rest[start:], ">")
		if tagEnd < 0 {
			return posts, fmt.Errorf("scraper: unterminated article tag")
		}
		tag := rest[start : start+tagEnd]
		bodyStart := start + tagEnd + 1
		close := strings.Index(rest[bodyStart:], "</article>")
		if close < 0 {
			return posts, fmt.Errorf("scraper: unterminated article body")
		}
		body := strings.TrimSpace(rest[bodyStart : bodyStart+close])

		var m forum.Message
		m.ID, _ = attrValue(tag, "data-id")
		m.Author, _ = attrValue(tag, "data-author")
		m.Board, _ = attrValue(tag, "data-board")
		if ts, ok := attrValue(tag, "data-time"); ok {
			t, err := time.Parse(time.RFC3339, ts)
			if err != nil {
				return posts, fmt.Errorf("scraper: post %s: bad timestamp %q: %w", m.ID, ts, err)
			}
			m.PostedAt = t
		}
		m.Body = htmlUnescape(body)
		if m.Author != "" {
			posts = append(posts, m)
		}
		rest = rest[bodyStart+close:]
	}
}

// htmlUnescape reverses html.EscapeString's five entities.
func htmlUnescape(s string) string {
	r := strings.NewReplacer(
		"&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'", "&amp;", "&",
	)
	return r.Replace(s)
}
