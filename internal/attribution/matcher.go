package attribution

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"darklight/internal/features"
	"darklight/internal/obs"
)

// Matcher metrics. Every value is a count of work performed — never a
// duration — so totals are identical for any worker count and with
// tracing on or off.
var (
	mRankTotal    = obs.Default().Counter("match_rank_total", "stage-1 rankings computed")
	mRescoreTotal = obs.Default().Counter("match_rescore_total", "stage-2 rescorings computed")
	mDecisions    = obs.Default().CounterVec("match_decisions_total", "final match decisions", "decision")
	mAccepted     = mDecisions.With("accepted")
	mRejected     = mDecisions.With("rejected")
	mCandidates   = obs.Default().Histogram("match_candidates", "stage-1 candidate-list sizes",
		[]float64{0, 1, 2, 5, 10, 20, 50, 100})
	mKnown     = obs.Default().Gauge("matcher_known_subjects", "known subjects indexed by the most recent matcher build")
	mVocabSize = obs.Default().Gauge("matcher_vocab_grams", "reduction-vocabulary size of the most recent matcher build")
	mPostings  = obs.Default().Gauge("matcher_posting_features", "distinct gram features in the most recent matcher's inverted index")
)

// Options configure a Matcher. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// K is the candidate-set size of the reduction stage.
	K int
	// Threshold is the acceptance score for the final pair decision.
	Threshold float64
	// Reduction is the stage-1 feature configuration (Table II left).
	Reduction features.Config
	// Final is the stage-2 feature configuration (Table II right).
	Final features.Config
	// UseActivity includes the daily activity profile in the score.
	UseActivity bool
	// ActivityWeight is the relative L2 norm of the activity block
	// (the n-gram block has norm 1). Ignored when UseActivity is false.
	ActivityWeight float64
	// FreqWeight is the relative L2 norm of the 42 punctuation/digit/
	// special-char frequency dimensions.
	FreqWeight float64
	// TwoStage enables the stage-2 TF-IDF recomputation. Disabling it
	// reuses stage-1 scores (an ablation; §IV-H shows two-stage wins).
	TwoStage bool
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		K:              DefaultK,
		Threshold:      DefaultThreshold,
		Reduction:      features.ReductionConfig(),
		Final:          features.FinalConfig(),
		UseActivity:    true,
		ActivityWeight: 0.7,
		FreqWeight:     0.2,
		TwoStage:       true,
	}
}

// weights returns the effective block weights.
func (o Options) weights() Weights {
	w := Weights{Freq: o.FreqWeight, Activity: o.ActivityWeight}
	if !o.UseActivity {
		w.Activity = 0
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = DefaultK
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Scored is a candidate with its similarity score.
type Scored struct {
	Name  string
	Score float64
}

// MatchResult is the full outcome for one unknown alias.
type MatchResult struct {
	// Unknown is the queried alias name.
	Unknown string
	// Candidates is the stage-1 top-k, best first.
	Candidates []Scored
	// Rescored is the stage-2 scoring of the same candidates, best first.
	// Equal to Candidates when TwoStage is off.
	Rescored []Scored
	// Best is Rescored[0] (zero value when the known set is empty).
	Best Scored
	// Accepted reports Best.Score >= Threshold — the pair the algorithm
	// outputs (§IV-I).
	Accepted bool
}

// Matcher links unknown aliases against a fixed set of known aliases.
// Construction precomputes the reduction vocabulary, an inverted index
// over the known subjects' n-gram blocks, and their dense frequency and
// activity blocks; after that Match and MatchAll are safe for concurrent
// use.
type Matcher struct {
	opts  Options
	known []Subject

	vocab *features.Vocabulary
	// Inverted index over gram features: for each feature index, the list
	// of (known subject, normalised value) postings. Scoring an unknown
	// touches only postings of features the unknown actually has.
	postings map[uint32][]posting
	// hasGrams marks subjects with a non-empty gram block.
	hasGrams []bool
	// freqs and acts are the dense normalised frequency and activity
	// blocks (nil entries when absent).
	freqs [][]float64
	acts  [][]float64
	// byName maps a known subject's name to its index (last wins on
	// duplicates, matching historical Rescore behaviour).
	byName map[string]int
	// finalDocs lazily caches the stage-2 (Final-config) extraction of each
	// known subject: the same prolific candidates surface in top-k after
	// top-k, and re-extracting their 1,500-word documents per query is the
	// single largest cost of Rescore. Only subjects that actually appear in
	// a candidate list are ever materialised.
	finalDocs *features.DocCache
	// sameExtract records that the reduction and final configs produce
	// identical raw extractions (they differ only in vocabulary budgets in
	// the paper's setup), letting Match share one unknown-document
	// extraction across both stages.
	sameExtract bool
}

// matchBuffers is per-worker scratch reused across Match calls: the dense
// score accumulators sized to the known set and the top-k heap. Each
// MatchAll worker owns one; the exported entry points pass nil and
// allocate per call.
type matchBuffers struct {
	scores   []float64
	scores32 []float32
	heap     []heapEntry
}

// scoreBufs returns zeroed float64/float32 accumulators of length n,
// reusing capacity from earlier queries.
func (b *matchBuffers) scoreBufs(n int) ([]float64, []float32) {
	if cap(b.scores) < n {
		b.scores = make([]float64, n)
	} else {
		b.scores = b.scores[:n]
		clear(b.scores)
	}
	if cap(b.scores32) < n {
		b.scores32 = make([]float32, n)
	} else {
		b.scores32 = b.scores32[:n]
		clear(b.scores32)
	}
	return b.scores, b.scores32
}

type posting struct {
	subject int
	value   float32
}

// NewMatcher indexes the known subjects. The known slice is retained (the
// second stage re-reads candidate texts); callers must not mutate it.
func NewMatcher(known []Subject, opts Options) (*Matcher, error) {
	return NewMatcherContext(context.Background(), known, opts)
}

// NewMatcherContext is NewMatcher under a context that may carry an
// obs.Tracer: the vocabulary pass emits a "matcher.vocab" span and the
// index pass a "matcher.index" span, each with one shard child per worker
// chunk. The built index is bit-identical with tracing on or off.
func NewMatcherContext(ctx context.Context, known []Subject, opts Options) (*Matcher, error) {
	opts = opts.withDefaults()
	if err := opts.Reduction.Validate(); err != nil {
		return nil, fmt.Errorf("attribution: reduction config: %w", err)
	}
	if opts.TwoStage {
		if err := opts.Final.Validate(); err != nil {
			return nil, fmt.Errorf("attribution: final config: %w", err)
		}
	}
	m := &Matcher{opts: opts, known: known}

	// Pass 1: corpus statistics → vocabulary. Each worker extracts a
	// contiguous chunk of subjects into a private builder; the builders
	// merge in shard order. Corpus counters are plain sums and the top-N
	// cut breaks frequency ties by gram id, so the merged vocabulary is
	// bit-identical to a sequential build for any worker count. Docs are
	// dropped as soon as they are folded in — keeping every doc alive
	// would cost ~1 MB per subject.
	shards := shardCount(opts.Workers, len(known))
	vctx, vspan := obs.Start(ctx, "matcher.vocab")
	vspan.AddItems(int64(len(known)))
	builders := make([]*features.VocabBuilder, shards)
	parallelChunks(shards, len(known), func(s, lo, hi int) {
		_, ss := obs.Start(vctx, "matcher.vocab.shard")
		ss.SetWorker(s)
		ss.AddItems(int64(hi - lo))
		defer ss.End()
		vb := features.NewVocabBuilder(opts.Reduction)
		for i := lo; i < hi; i++ {
			vb.Add(features.Extract(known[i].Text, opts.Reduction))
		}
		builders[s] = vb
	})
	vb := builders[0]
	for _, o := range builders[1:] {
		vb.Merge(o)
	}
	m.vocab = vb.Build()
	vspan.End()

	// Pass 2: re-extract, build blocks, and assemble per-shard posting
	// lists in one parallel sweep over the same contiguous chunks. Each
	// shard's postings are subject-ascending within its range, so
	// concatenating the shards in order reproduces exactly the
	// subject-ascending posting lists of a serial build — the order
	// stage-1 accumulates float32 dot products in.
	m.hasGrams = make([]bool, len(known))
	m.freqs = make([][]float64, len(known))
	m.acts = make([][]float64, len(known))
	ictx, ispan := obs.Start(ctx, "matcher.index")
	ispan.AddItems(int64(len(known)))
	shardPostings := make([]map[uint32][]posting, shards)
	parallelChunks(shards, len(known), func(s, lo, hi int) {
		_, ss := obs.Start(ictx, "matcher.index.shard")
		ss.SetWorker(s)
		ss.AddItems(int64(hi - lo))
		defer ss.End()
		local := make(map[uint32][]posting)
		for i := lo; i < hi; i++ {
			b := buildBlocks(&known[i], m.vocab, opts.Reduction)
			m.hasGrams[i] = b.grams.Len() > 0
			m.freqs[i] = b.freq
			m.acts[i] = b.act
			for k, idx := range b.grams.Idx {
				local[idx] = append(local[idx], posting{subject: i, value: float32(b.grams.Val[k])})
			}
		}
		shardPostings[s] = local
	})
	m.postings = make(map[uint32][]posting)
	for _, local := range shardPostings {
		for idx, ps := range local {
			m.postings[idx] = append(m.postings[idx], ps...)
		}
	}
	ispan.End()
	mKnown.Set(float64(len(known)))
	mVocabSize.Set(float64(m.vocab.NumWordGrams() + m.vocab.NumCharGrams()))
	mPostings.Set(float64(len(m.postings)))

	// Stage-2 support structures, hoisted out of Rescore: the name index
	// (previously rebuilt on every call) and the lazy Final-config doc
	// cache (previously re-extracted on every call).
	m.byName = make(map[string]int, len(known))
	texts := make([]string, len(known))
	for i := range known {
		m.byName[known[i].Name] = i
		texts[i] = known[i].Text
	}
	m.finalDocs = features.NewDocCache(opts.Final, texts)
	m.sameExtract = opts.Reduction.SameExtraction(opts.Final)
	return m, nil
}

// shardCount bounds a chunked fan-out: at most one shard per item, at
// least one shard overall.
func shardCount(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks splits [0, n) into `shards` contiguous ranges and runs
// fn(shard, lo, hi) for each concurrently. Static chunking (rather than
// atomic work-stealing) gives every shard a deterministic item range, which
// the ingest build relies on for order-preserving merges.
func parallelChunks(shards, n int, fn func(shard, lo, hi int)) {
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// NumKnown returns the size of the known set.
func (m *Matcher) NumKnown() int { return len(m.known) }

// Vocabulary exposes the reduction vocabulary (for reports and tests).
func (m *Matcher) Vocabulary() *features.Vocabulary { return m.vocab }

// Rank runs stage 1 under the matcher's configured weights.
func (m *Matcher) Rank(unknown *Subject, k int) []Scored {
	return m.RankWith(unknown, k, m.opts.weights())
}

// RankWith runs stage 1 — cosine similarity of the unknown against every
// known subject — under explicit block weights, returning the top-k best
// first. One index serves any weighting: Table III and Fig. 4 compare
// "text only" (Activity 0) against "all features" from the same matcher.
func (m *Matcher) RankWith(unknown *Subject, k int, w Weights) []Scored {
	doc := features.Extract(unknown.Text, m.opts.Reduction)
	return m.rankDoc(doc, unknown, k, w, nil)
}

// rankDoc is RankWith over an already-extracted reduction-config document,
// with optional per-worker scratch buffers.
func (m *Matcher) rankDoc(doc *features.Doc, unknown *Subject, k int, w Weights, buf *matchBuffers) []Scored {
	mRankTotal.Inc()
	if k <= 0 {
		k = m.opts.K
	}
	ub := buildBlocksFromDoc(doc, unknown, m.vocab)
	uNorm := ub.norm(w)
	var scores []float64
	var tdots []float32
	var scratch *[]heapEntry
	if buf != nil {
		scores, tdots = buf.scoreBufs(len(m.known))
		scratch = &buf.heap
	} else {
		scores = make([]float64, len(m.known))
		tdots = make([]float32, len(m.known))
	}
	if uNorm == 0 {
		return topKScores(m.known, scores, k, scratch)
	}

	// Gram block via the inverted index.
	for j, idx := range ub.grams.Idx {
		v := float32(ub.grams.Val[j])
		for _, p := range m.postings[idx] {
			tdots[p.subject] += p.value * v
		}
	}
	// Dense blocks + normalisation.
	wf2 := w.Freq * w.Freq
	wa2 := w.Activity * w.Activity
	for i := range m.known {
		dot := float64(tdots[i])
		if wf2 > 0 {
			dot += wf2 * denseDot(ub.freq, m.freqs[i])
		}
		if wa2 > 0 {
			dot += wa2 * denseDot(ub.act, m.acts[i])
		}
		kn := normOf(m.hasGrams[i], m.freqs[i] != nil, m.acts[i] != nil, w)
		if kn == 0 {
			continue
		}
		scores[i] = dot / (uNorm * kn)
	}
	return topKScores(m.known, scores, k, scratch)
}

// normOf is blocks.norm computed from block presence alone (each block is
// unit-normalised, so only presence matters).
func normOf(hasGrams, hasFreq, hasAct bool, w Weights) float64 {
	n := 0.0
	if hasGrams {
		n += 1
	}
	if hasFreq {
		n += w.Freq * w.Freq
	}
	if hasAct {
		n += w.Activity * w.Activity
	}
	return math.Sqrt(n)
}

// Rescore runs stage 2 on a candidate list: rebuild the vocabulary and
// TF-IDF over only the candidates' documents (changing the selected
// n-grams and hence every vector, including the unknown's), then rescore
// by cosine under the matcher's weights. Candidate documents come from the
// matcher's lazy Final-config cache, so repeat candidates cost one
// extraction per matcher lifetime, not one per query.
func (m *Matcher) Rescore(unknown *Subject, candidates []Scored) []Scored {
	return m.rescoreDoc(nil, unknown, candidates)
}

// rescoreDoc is Rescore with an optional pre-extracted unknown document
// (valid only when the reduction and final configs share extraction —
// Match checks m.sameExtract before passing one).
func (m *Matcher) rescoreDoc(udoc *features.Doc, unknown *Subject, candidates []Scored) []Scored {
	mRescoreTotal.Inc()
	idxs := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if i, ok := m.byName[c.Name]; ok {
			idxs = append(idxs, i)
		}
	}
	docs := make([]*features.SortedDoc, len(idxs))
	for j, i := range idxs {
		docs[j] = m.finalDocs.Get(i)
	}
	// The per-query vocabulary rebuild runs over id-sorted gram lists (the
	// cache stores candidates pre-flattened); the map-based VocabBuilder
	// path costs more than everything else in Rescore combined.
	vocab := features.BuildCandidateVocab(m.opts.Final, docs)

	w := m.opts.weights()
	if udoc == nil {
		udoc = features.Extract(unknown.Text, m.opts.Final)
	}
	ub := buildBlocksFromSorted(udoc.Sorted(), unknown, vocab)
	out := make([]Scored, 0, len(idxs))
	for j, i := range idxs {
		s := &m.known[i]
		cb := buildBlocksFromSorted(docs[j], s, vocab)
		out = append(out, Scored{Name: s.Name, Score: similarity(&ub, &cb, w)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Match runs the full §IV-I algorithm for one unknown.
func (m *Matcher) Match(unknown *Subject) MatchResult {
	return m.match(context.Background(), unknown, nil)
}

// match is Match with optional per-worker scratch and a context that may
// carry a tracer (per-query "match.rank" / "match.rescore" spans). The
// unknown's document is extracted once; when the two stages share an
// extraction config (the paper's setup) the same document also feeds
// Rescore.
func (m *Matcher) match(ctx context.Context, unknown *Subject, buf *matchBuffers) MatchResult {
	res := MatchResult{Unknown: unknown.Name}
	udoc := features.Extract(unknown.Text, m.opts.Reduction)
	_, rsp := obs.Start(ctx, "match.rank")
	res.Candidates = m.rankDoc(udoc, unknown, m.opts.K, m.opts.weights(), buf)
	rsp.AddItems(int64(len(res.Candidates)))
	rsp.End()
	mCandidates.Observe(float64(len(res.Candidates)))
	if len(res.Candidates) == 0 {
		mRejected.Inc()
		return res
	}
	if m.opts.TwoStage {
		rdoc := udoc
		if !m.sameExtract {
			rdoc = nil
		}
		_, ssp := obs.Start(ctx, "match.rescore")
		res.Rescored = m.rescoreDoc(rdoc, unknown, res.Candidates)
		ssp.AddItems(int64(len(res.Rescored)))
		ssp.End()
	} else {
		res.Rescored = res.Candidates
	}
	res.Best = res.Rescored[0]
	res.Accepted = res.Best.Score >= m.opts.Threshold
	if res.Accepted {
		mAccepted.Inc()
	} else {
		mRejected.Inc()
	}
	return res
}

// MatchAll matches every unknown concurrently over a bounded worker pool.
// Results are positionally aligned with the input. The context cancels
// remaining work; cancelled entries carry only the Unknown name.
func (m *Matcher) MatchAll(ctx context.Context, unknowns []Subject) ([]MatchResult, error) {
	actx, aspan := obs.Start(ctx, "match.all")
	aspan.AddItems(int64(len(unknowns)))
	defer aspan.End()
	results := make([]MatchResult, len(unknowns))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := m.opts.Workers
	if workers > len(unknowns) {
		workers = len(unknowns)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, wsp := obs.Start(actx, "match.worker")
			wsp.SetWorker(w)
			defer wsp.End()
			// Each worker owns one scratch buffer for the whole run:
			// score accumulators and the top-k heap are sized once and
			// reused across every query the worker picks up.
			var buf matchBuffers
			for i := range jobs {
				results[i] = m.match(wctx, &unknowns[i], &buf)
				wsp.AddItems(1)
			}
		}()
	}
	var err error
feed:
	for i := range unknowns {
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err != nil {
		for i := range results {
			if results[i].Unknown == "" {
				results[i].Unknown = unknowns[i].Name
			}
		}
	}
	return results, err
}
