package langdetect

// seedCorpora returns the embedded training text per language. The texts
// are generic encyclopedic prose — what matters is the character-trigram
// distribution of each language, not the topic. Each corpus mixes formal
// and informal register so the profiles generalise to forum writing.
func seedCorpora() map[Lang]string {
	return map[Lang]string{
		English: `The quick brown fox jumps over the lazy dog while the sun
sets behind the mountains. People often write messages on forums to share
their experiences and ask questions about things they do not understand.
Language is a structured system of communication used by humans, and every
language has its own grammar, vocabulary, and patterns of sound or gesture.
I think that we should meet tomorrow because there is something important
that I want to tell you about the project we have been working on together.
When you buy something online, you should always check the reviews that
other customers have written before you make a decision about the purchase.
The weather today was really nice, so we went for a long walk in the park
and then had coffee at the little shop around the corner from my house.
It is not always easy to know whether something you read on the internet is
true, which is why you should look for several independent sources. Many
users of this website have been members for years and they know each other
quite well, although they have never met in person. Thanks for the help,
this was exactly what I was looking for and it worked perfectly the first
time I tried it. Honestly I would not recommend this vendor because the
shipping took forever and the quality was much worse than advertised. What
do you all think about the new update? It seems faster but some features
are missing. Please read the rules before posting anything in this section
of the forum, and remember to be respectful to the other members of the
community at all times. There are a lot of good reasons to learn another
language, and one of them is that it opens your mind to different ways of
thinking about the world.`,

		Spanish: `El rápido zorro marrón salta sobre el perro perezoso
mientras el sol se pone detrás de las montañas. La gente suele escribir
mensajes en los foros para compartir sus experiencias y hacer preguntas
sobre cosas que no entiende. El idioma es un sistema estructurado de
comunicación utilizado por los seres humanos, y cada lengua tiene su propia
gramática, vocabulario y patrones de sonido. Creo que deberíamos vernos
mañana porque hay algo importante que quiero contarte sobre el proyecto en
el que hemos estado trabajando juntos. Cuando compras algo por internet,
siempre debes revisar las opiniones que otros clientes han escrito antes de
tomar una decisión sobre la compra. El tiempo hoy estaba muy agradable, así
que salimos a dar un largo paseo por el parque y luego tomamos café en la
pequeña tienda que está cerca de mi casa. No siempre es fácil saber si algo
que lees en internet es verdad, por eso debes buscar varias fuentes
independientes. Muchos usuarios de este sitio llevan años siendo miembros y
se conocen bastante bien, aunque nunca se han visto en persona. Gracias por
la ayuda, esto era exactamente lo que estaba buscando y funcionó
perfectamente la primera vez que lo intenté. Por favor, lee las reglas
antes de publicar cualquier cosa en esta sección del foro y recuerda ser
respetuoso con los demás miembros de la comunidad en todo momento.`,

		French: `Le rapide renard brun saute par-dessus le chien paresseux
pendant que le soleil se couche derrière les montagnes. Les gens écrivent
souvent des messages sur les forums pour partager leurs expériences et
poser des questions sur des choses qu'ils ne comprennent pas. La langue est
un système structuré de communication utilisé par les êtres humains, et
chaque langue possède sa propre grammaire, son vocabulaire et ses modèles
sonores. Je pense que nous devrions nous voir demain parce qu'il y a
quelque chose d'important que je veux te dire au sujet du projet sur lequel
nous travaillons ensemble. Quand tu achètes quelque chose en ligne, tu
devrais toujours vérifier les avis que les autres clients ont écrits avant
de prendre une décision. Le temps était vraiment agréable aujourd'hui,
alors nous sommes allés faire une longue promenade dans le parc et ensuite
nous avons pris un café dans le petit magasin près de chez moi. Il n'est
pas toujours facile de savoir si ce que l'on lit sur internet est vrai,
c'est pourquoi il faut chercher plusieurs sources indépendantes. Merci pour
l'aide, c'était exactement ce que je cherchais et cela a fonctionné
parfaitement du premier coup. Veuillez lire les règles avant de publier
quoi que ce soit dans cette section du forum et n'oubliez pas de rester
respectueux envers les autres membres de la communauté.`,

		German: `Der schnelle braune Fuchs springt über den faulen Hund,
während die Sonne hinter den Bergen untergeht. Die Leute schreiben oft
Nachrichten in Foren, um ihre Erfahrungen zu teilen und Fragen zu Dingen zu
stellen, die sie nicht verstehen. Sprache ist ein strukturiertes System der
Kommunikation, das von Menschen verwendet wird, und jede Sprache hat ihre
eigene Grammatik, ihren Wortschatz und ihre Lautmuster. Ich denke, dass wir
uns morgen treffen sollten, weil es etwas Wichtiges gibt, das ich dir über
das Projekt erzählen möchte, an dem wir zusammen gearbeitet haben. Wenn du
etwas im Internet kaufst, solltest du immer die Bewertungen lesen, die
andere Kunden geschrieben haben, bevor du eine Entscheidung triffst. Das
Wetter war heute wirklich schön, also sind wir lange im Park spazieren
gegangen und haben danach in dem kleinen Laden um die Ecke Kaffee
getrunken. Es ist nicht immer leicht zu wissen, ob etwas, das man im
Internet liest, wahr ist, deshalb sollte man mehrere unabhängige Quellen
suchen. Danke für die Hilfe, das war genau das, wonach ich gesucht habe,
und es hat beim ersten Versuch perfekt funktioniert. Bitte lies die Regeln,
bevor du etwas in diesem Bereich des Forums veröffentlichst, und denke
daran, respektvoll gegenüber den anderen Mitgliedern der Gemeinschaft zu
sein.`,

		Italian: `La veloce volpe marrone salta sopra il cane pigro mentre il
sole tramonta dietro le montagne. Le persone scrivono spesso messaggi sui
forum per condividere le loro esperienze e fare domande su cose che non
capiscono. La lingua è un sistema strutturato di comunicazione usato dagli
esseri umani, e ogni lingua ha la propria grammatica, il proprio
vocabolario e i propri modelli sonori. Penso che dovremmo vederci domani
perché c'è qualcosa di importante che voglio dirti sul progetto al quale
abbiamo lavorato insieme. Quando compri qualcosa online, dovresti sempre
controllare le recensioni che gli altri clienti hanno scritto prima di
prendere una decisione sull'acquisto. Oggi il tempo era davvero bello,
quindi abbiamo fatto una lunga passeggiata nel parco e poi abbiamo preso un
caffè nel piccolo negozio vicino a casa mia. Non è sempre facile sapere se
qualcosa che leggi su internet è vero, per questo dovresti cercare diverse
fonti indipendenti. Grazie per l'aiuto, era esattamente quello che stavo
cercando e ha funzionato perfettamente al primo tentativo. Per favore leggi
le regole prima di pubblicare qualsiasi cosa in questa sezione del forum e
ricorda di essere rispettoso verso gli altri membri della comunità.`,

		Portuguese: `A rápida raposa marrom pula sobre o cão preguiçoso
enquanto o sol se põe atrás das montanhas. As pessoas costumam escrever
mensagens em fóruns para compartilhar suas experiências e fazer perguntas
sobre coisas que não entendem. A língua é um sistema estruturado de
comunicação usado pelos seres humanos, e cada língua tem sua própria
gramática, vocabulário e padrões sonoros. Acho que deveríamos nos encontrar
amanhã porque há algo importante que quero te contar sobre o projeto em que
temos trabalhado juntos. Quando você compra algo pela internet, deve sempre
verificar as avaliações que outros clientes escreveram antes de tomar uma
decisão sobre a compra. O tempo hoje estava muito agradável, então fomos
dar um longo passeio no parque e depois tomamos café na lojinha perto da
minha casa. Nem sempre é fácil saber se algo que você lê na internet é
verdade, por isso você deve procurar várias fontes independentes. Obrigado
pela ajuda, era exatamente o que eu estava procurando e funcionou
perfeitamente na primeira vez que tentei. Por favor, leia as regras antes
de publicar qualquer coisa nesta seção do fórum e lembre-se de ser
respeitoso com os outros membros da comunidade.`,

		Dutch: `De snelle bruine vos springt over de luie hond terwijl de zon
achter de bergen ondergaat. Mensen schrijven vaak berichten op forums om
hun ervaringen te delen en vragen te stellen over dingen die ze niet
begrijpen. Taal is een gestructureerd communicatiesysteem dat door mensen
wordt gebruikt, en elke taal heeft zijn eigen grammatica, woordenschat en
klankpatronen. Ik denk dat we elkaar morgen moeten ontmoeten omdat er iets
belangrijks is dat ik je wil vertellen over het project waaraan we samen
hebben gewerkt. Als je iets op internet koopt, moet je altijd de
beoordelingen bekijken die andere klanten hebben geschreven voordat je een
beslissing neemt over de aankoop. Het weer was vandaag echt lekker, dus we
hebben een lange wandeling in het park gemaakt en daarna koffie gedronken
in het winkeltje om de hoek bij mijn huis. Het is niet altijd gemakkelijk
om te weten of iets dat je op internet leest waar is, daarom moet je
meerdere onafhankelijke bronnen zoeken. Bedankt voor de hulp, dit was
precies wat ik zocht en het werkte perfect de eerste keer dat ik het
probeerde. Lees alsjeblieft de regels voordat je iets in dit gedeelte van
het forum plaatst en vergeet niet respectvol te zijn tegenover de andere
leden van de gemeenschap.`,

		Romanian: `Vulpea maro rapidă sare peste câinele leneș în timp ce
soarele apune în spatele munților. Oamenii scriu adesea mesaje pe forumuri
pentru a-și împărtăși experiențele și pentru a pune întrebări despre
lucruri pe care nu le înțeleg. Limba este un sistem structurat de
comunicare folosit de oameni, și fiecare limbă are propria gramatică,
propriul vocabular și propriile modele sonore. Cred că ar trebui să ne
întâlnim mâine pentru că este ceva important pe care vreau să ți-l spun
despre proiectul la care am lucrat împreună. Când cumperi ceva de pe
internet, ar trebui să verifici întotdeauna recenziile pe care alți clienți
le-au scris înainte de a lua o decizie. Vremea a fost foarte frumoasă
astăzi, așa că am făcut o plimbare lungă în parc și apoi am băut cafea la
micul magazin de lângă casa mea. Nu este întotdeauna ușor să știi dacă ceva
ce citești pe internet este adevărat, de aceea ar trebui să cauți mai multe
surse independente. Mulțumesc pentru ajutor, era exact ceea ce căutam și a
funcționat perfect din prima încercare. Te rog să citești regulile înainte
de a publica orice în această secțiune a forumului și amintește-ți să fii
respectuos față de ceilalți membri ai comunității.`,
	}
}
