// Seeded violations for the errdrop analyzer, including a regression
// case mirroring the PR 2 BuildSubjects bug: a worker that swallowed
// every non-sentinel error, shipping partial subject sets as complete.
package attribution

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

type Dataset struct{}

type Subject struct{ Name string }

var ErrInsufficientTimestamps = errors.New("insufficient timestamps")

func BuildSubjects(d *Dataset) ([]Subject, error) {
	if d == nil {
		return nil, ErrInsufficientTimestamps
	}
	return []Subject{{Name: "a"}}, nil
}

// The PR 2 regression shape: the error vanishes into the blank
// identifier and the partial result is used as if complete.
func swallowedBuildSubjects(d *Dataset) []Subject {
	subjects, _ := BuildSubjects(d) // want `error result of BuildSubjects assigned to _`
	return subjects
}

func blankOnly(d *Dataset) {
	_ = persist(d) // want `error result of persist assigned to _`
}

func bareCall(d *Dataset) {
	persist(d) // want `error result of persist is silently discarded`
}

func persist(d *Dataset) error {
	if d == nil {
		return errors.New("nil dataset")
	}
	return nil
}

func handled(d *Dataset) ([]Subject, error) {
	subjects, err := BuildSubjects(d)
	if err != nil {
		return nil, err
	}
	return subjects, nil
}

// Deferred Close is exempt by design: the error has nowhere to go.
func deferredClose(c io.Closer) {
	defer c.Close()
}

// …but a closure deferred for cleanup cannot hide dropped errors inside.
func deferredClosure(d *Dataset) {
	defer func() {
		persist(d) // want `error result of persist is silently discarded`
	}()
}

// Infallible sinks are exempt: strings.Builder, stdout/stderr.
func sinks() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	fmt.Fprintln(os.Stderr, "status")
	fmt.Println("done")
	return b.String()
}

// Real io.Writers stay flagged — a file write error must not vanish.
func fileWrite(w io.Writer) {
	fmt.Fprintf(w, "table row\n") // want `error result of fmt\.Fprintf is silently discarded`
}

func suppressedDrop(d *Dataset) {
	//lint:ignore errdrop demo: best-effort cache warm-up, failure is harmless
	persist(d)
}

// A bare lint:ignore without a reason suppresses nothing.
func reasonlessSuppression(d *Dataset) {
	//lint:ignore errdrop
	persist(d) // want `error result of persist is silently discarded`
}
