// Package anonymize implements the defence side of the paper: §VI
// ("Avoiding the attack") analyses how a user could protect herself from
// the daily-activity + stylometry pipeline, and the conclusion calls for
// "more work on software that is able to anonymize writing patterns"
// (citing Anonymouth). This package is such a tool, scoped to exactly the
// feature families the attack exploits:
//
//   - character-level idiosyncrasies: habitual misspellings, letter-case
//     habits, *emphasis*, emoji, repeated punctuation ("...", "!!");
//   - frequency features: punctuation/digit/special-char rates are pushed
//     toward a population-neutral profile by normalising their carriers;
//   - word-level markers: slang/abbreviation expansion ("imo" → "in my
//     opinion"), filler-opener removal;
//   - the daily activity profile: messages are re-timed by a scheduled
//     posting queue, which is the §VI countermeasure ("post on a
//     completely different time") made practical.
//
// The package deliberately does not paraphrase content — that is the
// open research problem the paper points at — so the protection it offers
// is measurable but partial, which is itself one of §VI's claims. The
// degradation it causes to the attack is quantified in the package tests
// and in BenchmarkCountermeasure.
package anonymize

import (
	"math/rand"
	"strings"
	"time"
	"unicode"

	"darklight/internal/forum"
	"darklight/internal/tokenize"
)

// Options select which defences run. The zero value applies none; use
// DefaultOptions for the full §VI treatment.
type Options struct {
	// FixMisspellings replaces habitual misspellings with the standard
	// form ("definately" → "definitely", "u" → "you").
	FixMisspellings bool
	// ExpandSlang rewrites forum abbreviations to plain words
	// ("imo" → "in my opinion").
	ExpandSlang bool
	// NormalizeCase lowercases SHOUTED words and sentence-cases the text,
	// removing letter-case habits.
	NormalizeCase bool
	// NormalizePunctuation collapses "..." / "!!" / "??" runs to a single
	// mark, drops *emphasis* asterisks and (parenthetical) habits' extra
	// markers, and strips emoji.
	NormalizePunctuation bool
	// DropOpeners removes habitual sentence openers ("honestly, ...").
	DropOpeners bool
	// RescheduleWithin, when positive, re-times every message uniformly at
	// random within this window starting at the original day's 00:00 UTC —
	// a scheduled-posting queue that destroys the daily activity profile.
	RescheduleWithin time.Duration
	// Seed drives rescheduling.
	Seed int64
}

// DefaultOptions enables every textual defence and a 24-hour posting
// queue.
func DefaultOptions() Options {
	return Options{
		FixMisspellings:      true,
		ExpandSlang:          true,
		NormalizeCase:        true,
		NormalizePunctuation: true,
		DropOpeners:          true,
		RescheduleWithin:     24 * time.Hour,
		Seed:                 1,
	}
}

// Anonymizer rewrites text and schedules to suppress stylometric and
// temporal fingerprints. Safe for concurrent use.
type Anonymizer struct {
	opts Options
}

// New returns an anonymizer with the given options.
func New(opts Options) *Anonymizer { return &Anonymizer{opts: opts} }

// Text rewrites one message body.
func (a *Anonymizer) Text(body string) string {
	if a.opts.NormalizePunctuation {
		body = normalizePunctuation(body)
	}
	words := strings.Fields(body)
	out := make([]string, 0, len(words))
	for i, w := range words {
		core, prefix, suffix := splitAffixes(w)
		lower := strings.ToLower(core)
		switch {
		case a.opts.FixMisspellings && corrections[lower] != "":
			core = matchCase(core, corrections[lower])
		case a.opts.ExpandSlang && slangExpansion[lower] != "":
			core = matchCase(core, slangExpansion[lower])
		}
		if a.opts.DropOpeners && i == 0 && openerSet[lower] && len(words) > 3 {
			continue
		}
		if a.opts.NormalizeCase {
			core = normalizeWordCase(core)
		}
		out = append(out, prefix+core+suffix)
	}
	result := strings.Join(out, " ")
	if a.opts.NormalizeCase {
		result = sentenceCase(result)
	}
	return result
}

// Alias rewrites every message of an alias (bodies and, when configured,
// posting times) and returns the anonymised copy.
func (a *Anonymizer) Alias(in forum.Alias) forum.Alias {
	out := forum.Alias{Name: in.Name, Platform: in.Platform}
	out.Messages = make([]forum.Message, len(in.Messages))
	r := rand.New(rand.NewSource(a.opts.Seed ^ int64(len(in.Messages))))
	for i, m := range in.Messages {
		m.Body = a.Text(m.Body)
		if a.opts.RescheduleWithin > 0 {
			day := m.PostedAt.UTC().Truncate(24 * time.Hour)
			m.PostedAt = day.Add(time.Duration(r.Int63n(int64(a.opts.RescheduleWithin))))
		}
		out.Messages[i] = m
	}
	return out
}

// Dataset anonymises every alias, returning a new dataset.
func (a *Anonymizer) Dataset(d *forum.Dataset) *forum.Dataset {
	out := forum.NewDataset(d.Name, d.Platform)
	for i := range d.Aliases {
		out.Aliases = append(out.Aliases, a.Alias(d.Aliases[i]))
	}
	return out
}

// --- text transforms ---

// normalizePunctuation collapses repeated terminal punctuation, removes
// emphasis/parenthesis decoration, and strips emoji.
func normalizePunctuation(s string) string {
	s = tokenize.StripEmoji(s)
	var b strings.Builder
	b.Grow(len(s))
	var prev rune
	for _, r := range s {
		switch r {
		case '.', '!', '?':
			if prev == r {
				continue // ".." → "."
			}
		case '*', '~':
			prev = r
			continue // drop emphasis decoration entirely
		}
		b.WriteRune(r)
		prev = r
	}
	return b.String()
}

// splitAffixes separates leading/trailing punctuation from a word so the
// dictionaries match the core token.
func splitAffixes(w string) (core, prefix, suffix string) {
	start := 0
	for start < len(w) && !isWordByte(w[start]) {
		start++
	}
	end := len(w)
	for end > start && !isWordByte(w[end-1]) {
		end--
	}
	return w[start:end], w[:start], w[end:]
}

func isWordByte(b byte) bool {
	return b == '\'' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= 0x80
}

// matchCase maps the replacement to the original's capitalisation shape.
func matchCase(original, replacement string) string {
	if original == "" || replacement == "" {
		return replacement
	}
	r := []rune(original)
	if unicode.IsUpper(r[0]) {
		rr := []rune(replacement)
		rr[0] = unicode.ToUpper(rr[0])
		return string(rr)
	}
	return replacement
}

// normalizeWordCase lowercases fully-uppercase (shouted) words longer than
// one rune; acronym-ish short tokens are left alone.
func normalizeWordCase(w string) string {
	runes := []rune(w)
	if len(runes) < 3 {
		return w
	}
	upper := 0
	letters := 0
	for _, r := range runes {
		if unicode.IsLetter(r) {
			letters++
			if unicode.IsUpper(r) {
				upper++
			}
		}
	}
	if letters > 0 && upper == letters {
		return strings.ToLower(w)
	}
	return w
}

// sentenceCase lowercases everything and re-capitalises sentence starts —
// a single, population-neutral casing habit.
func sentenceCase(s string) string {
	s = strings.ToLower(s)
	out := []rune(s)
	capNext := true
	for i, r := range out {
		if capNext && unicode.IsLetter(r) {
			out[i] = unicode.ToUpper(r)
			capNext = false
		}
		if r == '.' || r == '!' || r == '?' {
			capNext = true
		}
	}
	return string(out)
}
