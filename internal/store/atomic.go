package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data using the sibling-tmp + fsync +
// atomic-rename discipline: the bytes are written to a temporary file in
// the same directory, flushed to stable storage, renamed over the
// destination in one atomic step, and the directory entry is synced so the
// rename itself survives a power cut. A crash at any point leaves either
// the complete old file or the complete new file at path — never a
// truncated or interleaved hybrid, which is what a plain in-place
// os.WriteFile risks between its truncate and its final write.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure before the rename removes the sibling and leaves the
	// destination untouched; the original error is the one worth reporting.
	fail := func(op string, opErr error) error {
		//lint:ignore errdrop the write already failed; close/remove are best-effort cleanup of the doomed sibling
		tmp.Close()
		//lint:ignore errdrop see above — the sibling is garbage either way
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: %s: %w", path, op, opErr)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		//lint:ignore errdrop close already failed; removing the sibling is best-effort cleanup
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		//lint:ignore errdrop rename failed; removing the sibling is best-effort cleanup
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: rename: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir flushes a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		//lint:ignore errdrop the sync error is the one reported; double-closing a read-only handle has no further failure mode
		d.Close()
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
