package serve

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"

	"darklight/internal/obs"
	"darklight/internal/obs/reqtrace"
)

// endpointMode selects the middleware chain an endpoint runs under.
type endpointMode struct {
	method string
	// auth and limit apply the API-key check and the token bucket.
	auth, limit bool
	// gateDrain refuses the request with 503 once Drain has started.
	gateDrain bool
	// readBody reads (and bounds) the request body before the handler.
	readBody bool
}

var (
	// postJSON is the query-endpoint chain: POST only, authenticated,
	// rate-limited, drain-gated, body-bounded.
	postJSON = endpointMode{method: http.MethodPost, auth: true, limit: true, gateDrain: true, readBody: true}
	// getOpen is the healthz chain: GET, unauthenticated, never gated —
	// orchestrators must be able to watch a draining instance.
	getOpen = endpointMode{method: http.MethodGet}
)

// handlerFunc is one endpoint's logic: pure request → (response, error)
// against an immutable state snapshot. The wrapper owns everything
// HTTP-shaped around it.
type handlerFunc func(r *http.Request, st *state, body []byte) (any, *Error)

// endpoint wraps h in the middleware chain: request tracing, in-flight
// accounting, the drain gate, method check, auth, rate limiting, body
// bounding, response encoding, and per-endpoint request/latency metrics.
// The state snapshot is loaded exactly once per request, so handlers never
// observe a reload mid-request.
//
// Tracing (Config.Trace non-nil) stamps the response with this hop's
// traceparent and request id, installs a root "serve" span on the request
// context (the stage spans below nest under it), and reports the finished
// request to the recorder's sinks. Response BODIES are bit-identical with
// tracing on or off — only the two response headers differ.
func (s *Service) endpoint(name string, mode endpointMode, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.clock.Now()
		act := s.cfg.Trace.Begin(r.Header.Get(reqtrace.Header))
		var root *obs.Span
		var counted *byteCountWriter
		out := w
		if act != nil {
			w.Header().Set(reqtrace.Header, act.Traceparent())
			w.Header().Set(reqtrace.RequestIDHeader, act.RequestID)
			counted = &byteCountWriter{ResponseWriter: w}
			out = counted
			var ctx = r.Context()
			ctx, root = act.Start(ctx, "serve")
			root.SetAttr("endpoint", name)
			r = r.WithContext(ctx)
		}
		s.inflight.Add(1)
		s.met.inflight.Add(1)
		defer func() {
			s.met.inflight.Add(-1)
			s.inflight.Done()
		}()
		// Admission is decided here, at entry: a request that sees the
		// drain flag clear is in-flight work that Drain waits for and that
		// must complete even if the drain starts mid-handling. (Add-then-
		// check keeps the flag store and wg.Wait race-free.)
		admitted := !mode.gateDrain || !s.draining.Load()
		if s.hookInflight != nil {
			s.hookInflight(name)
		}

		var resp any
		var apiErr *Error
		if !admitted {
			apiErr = &Error{Code: CodeDraining, Message: "the server is draining; no new requests are accepted", Status: http.StatusServiceUnavailable}
		} else {
			resp, apiErr = s.serveOne(r, s.state.Load(), mode, h)
		}
		status := http.StatusOK
		if apiErr != nil {
			status = apiErr.Status
			writeError(out, apiErr)
		} else {
			writeJSON(out, status, resp)
		}
		elapsed := s.clock.Now().Sub(start)
		s.met.requests.With(name, strconv.Itoa(status)).Inc()
		s.met.latency.With(name).Observe(elapsed.Seconds())
		s.quant.Observe(s.clock.Now(), elapsed.Seconds())
		if act != nil {
			root.SetAttr("code", strconv.Itoa(status))
			if apiErr != nil {
				root.SetAttr("error", apiErr.Code)
			}
			root.End()
			s.cfg.Trace.Finish(act, reqtrace.RequestInfo{
				Endpoint: name,
				Method:   r.Method,
				Code:     status,
				Duration: elapsed,
				Bytes:    counted.n,
			})
		}
	})
}

// byteCountWriter counts response bytes for the access log. Writes pass
// through untouched, so wrapping cannot change the bytes on the wire.
type byteCountWriter struct {
	http.ResponseWriter
	n int
}

func (w *byteCountWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.n += n
	return n, err
}

// serveOne runs the chain for one request and returns either a response
// value or a structured error. Each stage runs under its own span (nested
// below the endpoint's root "serve" span) so a retained trace shows where
// a rejected request died and what each admission decision was; with
// tracing off every obs.Start returns a nil span and the stages cost
// nothing.
func (s *Service) serveOne(r *http.Request, st *state, mode endpointMode, h handlerFunc) (any, *Error) {
	if r.Method != mode.method {
		return nil, &Error{Code: CodeMethodNotAllowed, Message: "use " + mode.method, Status: http.StatusMethodNotAllowed}
	}
	ctx := r.Context()
	presented := r.Header.Get("X-API-Key")
	// key stays empty unless auth actually validated the header: when auth
	// is disabled the X-API-Key value is attacker-controlled, and keying
	// the limiter on it would let a caller mint a fresh bucket per request
	// — a full rate-limit bypass that also inflates the bucket map.
	key := ""
	if mode.auth && s.keys != nil {
		_, sp := obs.Start(ctx, "auth")
		if presented == "" {
			sp.SetAttr("result", "missing")
			sp.End()
			return nil, &Error{Code: CodeUnauthorized, Message: "missing X-API-Key header", Status: http.StatusUnauthorized}
		}
		if _, ok := s.keys[presented]; !ok {
			sp.SetAttr("result", "invalid")
			sp.End()
			return nil, &Error{Code: CodeInvalidAPIKey, Message: "the presented API key is not recognised", Status: http.StatusForbidden}
		}
		key = presented
		sp.SetAttr("result", "ok")
		sp.End()
	}
	if mode.limit {
		_, sp := obs.Start(ctx, "ratelimit")
		ok, wait := s.limiter.allow(clientKey(key, r))
		if !ok {
			sp.SetAttr("result", "limited")
			sp.End()
			return nil, &Error{
				Code:       CodeRateLimited,
				Message:    "per-client rate limit exceeded; retry after the Retry-After delay",
				Status:     http.StatusTooManyRequests,
				retryAfter: wait,
			}
		}
		sp.SetAttr("result", "ok")
		sp.End()
	}
	// Deadline check before any expensive work: a request that spent its
	// budget queueing is answered with a timeout envelope instead of
	// burning matcher time on an answer nobody is waiting for.
	if err := ctx.Err(); err != nil {
		return nil, &Error{Code: CodeTimeout, Message: "request deadline exceeded before handling started", Status: http.StatusServiceUnavailable}
	}
	var body []byte
	if mode.readBody {
		_, sp := obs.Start(ctx, "decode")
		var apiErr *Error
		body, apiErr = s.readBody(r)
		sp.AddBytes(int64(len(body)))
		sp.End()
		if apiErr != nil {
			return nil, apiErr
		}
	}
	return h(r, st, body)
}

// clientKey identifies the rate-limit bucket: the API key when auth has
// validated it, else the remote host (auth-disabled deployments).
func clientKey(apiKey string, r *http.Request) string {
	if apiKey != "" {
		return apiKey
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// readBody reads the request body under the configured byte bound. An
// over-limit body is rejected with the payload_too_large envelope whether
// it is caught by the HTTP layer (MaxBytesReader) or by length.
func (s *Service) readBody(r *http.Request) ([]byte, *Error) {
	limited := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody)
	body, err := io.ReadAll(limited)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, errPayloadTooLarge(s.cfg.MaxBody)
		}
		return nil, errInvalidJSON("reading request body: " + err.Error())
	}
	return body, nil
}
