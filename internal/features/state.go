package features

import (
	"fmt"
	"slices"

	"darklight/internal/sparse"
)

// This file is the persistence and incremental-maintenance surface of the
// vocabulary layer. A VocabBuilder's counters and a frozen Vocabulary's
// index tables are both plain integer/float state, so they round-trip
// through value types the store can serialise; and because Add/Merge are
// plain sums, documents can also be *subtracted*, which is what lets a
// live index fold an updated alias in without rebuilding from scratch.

// GramCount is one gram's corpus counters in a BuilderState, emitted in
// ascending gram-id order so serialisation is deterministic.
type GramCount struct {
	ID   GramID
	Freq int64
	DF   int64
}

// BuilderState is the full counter set of a VocabBuilder as value types.
// NewVocabBuilderFromState(b.State()) reconstructs a builder that Builds
// the bit-identical Vocabulary.
type BuilderState struct {
	Config   Config
	NumDocs  int
	FreqSeen [NumFreqFeatures]int
	Words    []GramCount // ascending gram id
	Chars    []GramCount // ascending gram id
}

// State snapshots the builder's counters.
func (b *VocabBuilder) State() BuilderState {
	return BuilderState{
		Config:   b.cfg,
		NumDocs:  b.numDocs,
		FreqSeen: b.freqSeen,
		Words:    gramCounts(b.words),
		Chars:    gramCounts(b.chars),
	}
}

func gramCounts(stats map[GramID]gramStat) []GramCount {
	out := make([]GramCount, 0, len(stats))
	for g, s := range stats {
		out = append(out, GramCount{ID: g, Freq: int64(s.freq), DF: int64(s.df)})
	}
	slices.SortFunc(out, func(a, b GramCount) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return out
}

// NewVocabBuilderFromState reconstructs a builder from a snapshot.
func NewVocabBuilderFromState(st BuilderState) *VocabBuilder {
	b := NewVocabBuilder(st.Config)
	b.numDocs = st.NumDocs
	b.freqSeen = st.FreqSeen
	for _, gc := range st.Words {
		b.words[gc.ID] = gramStat{freq: int(gc.Freq), df: int(gc.DF)}
	}
	for _, gc := range st.Chars {
		b.chars[gc.ID] = gramStat{freq: int(gc.Freq), df: int(gc.DF)}
	}
	return b
}

// Clone returns an independent copy of the builder: mutations of one never
// affect the other. Used by incremental index maintenance to derive the
// next corpus state while the current one keeps serving.
func (b *VocabBuilder) Clone() *VocabBuilder {
	c := &VocabBuilder{
		cfg:      b.cfg,
		words:    make(map[GramID]gramStat, len(b.words)),
		chars:    make(map[GramID]gramStat, len(b.chars)),
		numDocs:  b.numDocs,
		freqSeen: b.freqSeen,
	}
	for g, s := range b.words {
		c.words[g] = s
	}
	for g, s := range b.chars {
		c.chars[g] = s
	}
	return c
}

// AddSorted is Add for a pre-sorted document. Counter-for-counter
// equivalent to Add(d) on the Doc the SortedDoc came from.
func (b *VocabBuilder) AddSorted(d *SortedDoc) {
	b.numDocs++
	for _, e := range d.WordGrams {
		s := b.words[e.ID]
		s.freq += int(e.Count)
		s.df++
		b.words[e.ID] = s
	}
	for _, e := range d.CharGrams {
		s := b.chars[e.ID]
		s.freq += int(e.Count)
		s.df++
		b.chars[e.ID] = s
	}
	for i, f := range d.Freq {
		if f > 0 {
			b.freqSeen[i]++
		}
	}
}

// RemoveSorted subtracts a previously added document, the exact inverse of
// AddSorted: after Remove(d) the counters equal a builder that never saw
// d. Grams whose counters reach zero are deleted so the builder's state
// (and therefore topN's candidate set) is identical to one that never
// counted them.
func (b *VocabBuilder) RemoveSorted(d *SortedDoc) {
	b.numDocs--
	for _, e := range d.WordGrams {
		s := b.words[e.ID]
		s.freq -= int(e.Count)
		s.df--
		if s.freq == 0 && s.df == 0 {
			delete(b.words, e.ID)
		} else {
			b.words[e.ID] = s
		}
	}
	for _, e := range d.CharGrams {
		s := b.chars[e.ID]
		s.freq -= int(e.Count)
		s.df--
		if s.freq == 0 && s.df == 0 {
			delete(b.chars, e.ID)
		} else {
			b.chars[e.ID] = s
		}
	}
	for i, f := range d.Freq {
		if f > 0 {
			b.freqSeen[i]--
		}
	}
}

// VocabState is a frozen Vocabulary as value types: the gram ids in index
// order plus their IDF weights. NewVocabularyFromState(v.State())
// reconstructs a Vocabulary whose Vectorize output is bit-identical.
type VocabState struct {
	Config  Config
	NumDocs int
	Words   []GramID // index order (descending corpus frequency)
	WordIDF []float64
	Chars   []GramID
	CharIDF []float64
}

// State snapshots the vocabulary's index tables.
func (v *Vocabulary) State() VocabState {
	st := VocabState{
		Config:  v.cfg,
		NumDocs: v.numDocs,
		Words:   make([]GramID, len(v.wordIndex)),
		WordIDF: slices.Clone(v.wordIDF),
		Chars:   make([]GramID, len(v.charIndex)),
		CharIDF: slices.Clone(v.charIDF),
	}
	for g, i := range v.wordIndex {
		st.Words[i] = g
	}
	base := uint32(len(v.wordIndex))
	for g, i := range v.charIndex {
		st.Chars[i-base] = g
	}
	return st
}

// NewVocabularyFromState reconstructs a Vocabulary from a snapshot.
func NewVocabularyFromState(st VocabState) (*Vocabulary, error) {
	if len(st.Words) != len(st.WordIDF) || len(st.Chars) != len(st.CharIDF) {
		return nil, fmt.Errorf("features: vocab state: %d word grams / %d word idf, %d char grams / %d char idf",
			len(st.Words), len(st.WordIDF), len(st.Chars), len(st.CharIDF))
	}
	v := &Vocabulary{
		cfg:       st.Config,
		wordIndex: make(map[GramID]uint32, len(st.Words)),
		charIndex: make(map[GramID]uint32, len(st.Chars)),
		wordIDF:   slices.Clone(st.WordIDF),
		charIDF:   slices.Clone(st.CharIDF),
		numDocs:   st.NumDocs,
	}
	for i, g := range st.Words {
		if _, dup := v.wordIndex[g]; dup {
			return nil, fmt.Errorf("features: vocab state: duplicate word gram %d", g)
		}
		v.wordIndex[g] = uint32(i)
	}
	base := uint32(len(st.Words))
	for i, g := range st.Chars {
		if _, dup := v.charIndex[g]; dup {
			return nil, fmt.Errorf("features: vocab state: duplicate char gram %d", g)
		}
		v.charIndex[g] = base + uint32(i)
	}
	return v, nil
}

// VectorizeGramsSorted is VectorizeGrams for a pre-sorted document. The
// per-entry arithmetic is identical, so the resulting vector is
// bit-identical to VectorizeGrams on the originating Doc.
func (v *Vocabulary) VectorizeGramsSorted(d *SortedDoc) sparse.Vector {
	est := len(d.WordGrams) + len(d.CharGrams)
	vec := sparse.Vector{
		Idx: make([]uint32, 0, est),
		Val: make([]float64, 0, est),
	}
	wordDen := float64(max(d.WordTotal, 1))
	for _, e := range d.WordGrams {
		if i, ok := v.wordIndex[e.ID]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(e.Count)/wordDen*v.wordIDF[i])
		}
	}
	charDen := float64(max(d.CharTotal, 1))
	base := uint32(len(v.wordIndex))
	for _, e := range d.CharGrams {
		if i, ok := v.charIndex[e.ID]; ok {
			vec.Idx = append(vec.Idx, i)
			vec.Val = append(vec.Val, float64(e.Count)/charDen*v.charIDF[i-base])
		}
	}
	vec.Sort()
	return vec
}
