package reqtrace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darklight/internal/obs"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tid, sid, sampled, ok := parseTraceparent(valid)
	if !ok {
		t.Fatalf("valid header rejected: %s", valid)
	}
	if tid != "0af7651916cd43dd8448eb211c80319c" || sid != "b7ad6b7169203331" || !sampled {
		t.Errorf("parse = (%s, %s, %v)", tid, sid, sampled)
	}
	if _, _, sampled, ok = parseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok || sampled {
		t.Errorf("flags 00 should parse as unsampled (ok=%v sampled=%v)", ok, sampled)
	}

	bad := []string{
		"",
		"garbage",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // all-zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // all-zero span
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",  // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",   // short span
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // trailing junk
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // wrong separator
	}
	for _, s := range bad {
		if _, _, _, ok := parseTraceparent(s); ok {
			t.Errorf("malformed header accepted: %q", s)
		}
	}
}

func TestBeginHonorsInboundAndMintsFresh(t *testing.T) {
	rec := NewRecorder(Options{})

	inbound := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	a := rec.Begin(inbound)
	if a.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("inbound trace id not adopted: %s", a.TraceID)
	}
	if a.ParentID != "b7ad6b7169203331" {
		t.Errorf("inbound span id not recorded as parent: %s", a.ParentID)
	}
	if a.SpanID == "b7ad6b7169203331" {
		t.Error("this hop must mint a fresh span id, not reuse the caller's")
	}
	out := a.Traceparent()
	if !strings.HasPrefix(out, "00-0af7651916cd43dd8448eb211c80319c-") || !strings.HasSuffix(out, "-01") {
		t.Errorf("outbound header must keep trace id and sampled flag: %s", out)
	}

	b := rec.Begin("")
	if len(b.TraceID) != 32 || len(b.SpanID) != 16 || !isLowerHex(b.TraceID) || !isLowerHex(b.SpanID) {
		t.Errorf("fresh ids malformed: trace=%s span=%s", b.TraceID, b.SpanID)
	}
	if !strings.HasSuffix(b.Traceparent(), "-00") {
		t.Errorf("unsampled fresh request must carry flags 00: %s", b.Traceparent())
	}
	if b.TraceID == a.TraceID {
		t.Error("fresh trace ids must differ per request")
	}
}

func TestRequestIDsAreSequential(t *testing.T) {
	rec := NewRecorder(Options{})
	if got := rec.Begin("").RequestID; got != "r00000001" {
		t.Errorf("first request id = %s, want r00000001", got)
	}
	if got := rec.Begin("").RequestID; got != "r00000002" {
		t.Errorf("second request id = %s, want r00000002", got)
	}
}

func TestNilRecorderAndActiveAreNoops(t *testing.T) {
	var rec *Recorder
	a := rec.Begin("anything")
	if a != nil {
		t.Fatal("nil recorder must return nil Active")
	}
	if got := a.Traceparent(); got != "" {
		t.Errorf("nil Active Traceparent = %q, want empty", got)
	}
	ctx, span := a.Start(context.Background(), "serve")
	if span != nil {
		t.Error("nil Active must not start spans")
	}
	if ctx == nil {
		t.Error("nil Active must pass the context through")
	}
	rec.Finish(a, RequestInfo{}) // must not panic
}

func TestSamplingReasons(t *testing.T) {
	drain := func(rec *Recorder) []*Trace {
		out, _ := rec.ring.list()
		return out
	}

	// Probabilistic: rate 1 keeps everything as "sample".
	rec := NewRecorder(Options{SampleRate: 1})
	rec.Finish(rec.Begin(""), RequestInfo{Endpoint: "/v1/rank", Duration: time.Millisecond})
	if got := drain(rec); len(got) != 1 || got[0].Sampled != "sample" {
		t.Fatalf("rate-1 request not retained as sample: %+v", got)
	}

	// Rate 0: fast request dropped, slow request kept as "slow".
	rec = NewRecorder(Options{Slow: 100 * time.Millisecond})
	rec.Finish(rec.Begin(""), RequestInfo{Duration: time.Millisecond})
	if got := drain(rec); len(got) != 0 {
		t.Fatalf("fast unsampled request retained: %+v", got)
	}
	rec.Finish(rec.Begin(""), RequestInfo{Duration: 250 * time.Millisecond})
	if got := drain(rec); len(got) != 1 || got[0].Sampled != "slow" {
		t.Fatalf("slow request not retained: %+v", got)
	}

	// Inbound sampled flag wins even at rate 0 with no slow threshold.
	rec = NewRecorder(Options{})
	rec.Finish(rec.Begin("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"), RequestInfo{})
	if got := drain(rec); len(got) != 1 || got[0].Sampled != "inbound" {
		t.Fatalf("inbound-sampled request not retained: %+v", got)
	}

	// Inbound flag 00 donates the trace id but not retention.
	rec = NewRecorder(Options{})
	rec.Finish(rec.Begin("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"), RequestInfo{})
	if got := drain(rec); len(got) != 0 {
		t.Fatalf("unsampled inbound request retained: %+v", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	rec := NewRecorder(Options{Ring: 2, SampleRate: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		a := rec.Begin("")
		ids = append(ids, a.TraceID)
		rec.Finish(a, RequestInfo{Endpoint: "/v1/rank"})
	}
	if got := rec.ring.get(ids[0]); got != nil {
		t.Error("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if rec.ring.get(id) == nil {
			t.Errorf("trace %s missing from ring", id)
		}
	}
	list, total := rec.ring.list()
	if total != 3 {
		t.Errorf("lifetime retained = %d, want 3", total)
	}
	if len(list) != 2 || list[0].TraceID != ids[2] || list[1].TraceID != ids[1] {
		t.Errorf("list not newest-first: %+v", list)
	}
}

func TestDebugHandler(t *testing.T) {
	rec := NewRecorder(Options{SampleRate: 1})
	a := rec.Begin("")
	ctx, span := a.Start(context.Background(), "serve")
	_, child := obs.Start(ctx, "rank")
	child.SetAttr("mode", "lsh")
	child.End()
	span.End()
	rec.Finish(a, RequestInfo{Endpoint: "/v1/rank", Method: "POST", Code: 200, Duration: 3 * time.Millisecond})

	h := rec.Handler()

	// Listing.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("list status = %d", w.Code)
	}
	var list listBody
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Held != 1 || list.Retained != 1 || len(list.Traces) != 1 {
		t.Fatalf("list = %+v", list)
	}
	if list.Traces[0].TraceID != a.TraceID || list.Traces[0].Endpoint != "/v1/rank" {
		t.Errorf("summary = %+v", list.Traces[0])
	}
	if strings.Contains(w.Body.String(), `"spans"`) {
		t.Error("listing must not inline span trees")
	}

	// Single trace with full span tree.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces/"+a.TraceID, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("get status = %d: %s", w.Code, w.Body.String())
	}
	var tr Trace
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "serve" {
		t.Fatalf("span tree missing or rank not nested: %+v", tr.Spans)
	}
	kids := tr.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "rank" || kids[0].Attrs["mode"] != "lsh" {
		t.Errorf("rank span with mode attr not nested under serve: %+v", kids)
	}

	// Unknown id and wrong method.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces/deadbeefdeadbeefdeadbeefdeadbeef", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", w.Code)
	}
}

func TestAccessLogLineShape(t *testing.T) {
	var buf strings.Builder
	rec := NewRecorder(Options{AccessLog: &buf})

	a := rec.Begin("")
	_, span := a.Start(context.Background(), "serve")
	span.End()
	rec.Finish(a, RequestInfo{Endpoint: "/v1/rank", Method: "POST", Code: 200, Duration: 2 * time.Millisecond, Bytes: 128})
	rec.Finish(rec.Begin(""), RequestInfo{Endpoint: "/v1/healthz", Method: "GET", Code: 200, Duration: time.Millisecond})

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d access lines, want 2:\n%s", len(lines), buf.String())
	}
	// Deterministic field order: id leads, then trace, method, endpoint.
	wantPrefix := `{"id":"r00000001","trace":"` + a.TraceID + `","method":"POST","endpoint":"/v1/rank","code":200,"dur_ns":2000000,"bytes":128,"stages":[`
	if !strings.HasPrefix(lines[0], wantPrefix) {
		t.Errorf("line 1 = %s\nwant prefix %s", lines[0], wantPrefix)
	}
	var entry AccessEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if len(entry.Stages) != 1 || entry.Stages[0].Name != "serve" {
		t.Errorf("stages = %+v, want one serve stage", entry.Stages)
	}
	// A request with no spans omits the stages key entirely.
	if strings.Contains(lines[1], "stages") {
		t.Errorf("span-free request should omit stages: %s", lines[1])
	}
}

// TestAccessLineMatchesJSON pins the hand-rolled marshal byte-identical
// to encoding/json over the schema struct — omitempty corners, zero
// values, and strings that need escaping (which must fall back to the
// encoding/json path, HTML escapes included).
func TestAccessLineMatchesJSON(t *testing.T) {
	entries := []AccessEntry{
		{},
		{ID: "r00000001", Trace: "0af7651916cd43dd8448eb211c80319c", Method: "POST", Endpoint: "/v1/rank", Code: 200, DurNS: 2000000, Bytes: 128,
			Stages: []obs.StageSummary{{Name: "serve", Count: 1, DurNS: 2000000}, {Name: "rank", Count: 2, DurNS: 150, Items: 3, Bytes: 64}}},
		{ID: "r0000000a", Method: "GET", Endpoint: "/v1/healthz", Code: 200, DurNS: 1},
		{Method: `we"ird\`, Endpoint: "/a?b=<c>&d=é\x01", Code: 404, DurNS: -5, Bytes: -1,
			Stages: []obs.StageSummary{{Name: "spaced name\t", Count: 1, Items: -2}}},
	}
	for _, e := range entries {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendAccessLine(nil, e); string(got) != string(want) {
			t.Errorf("appendAccessLine(%+v)\n got %s\nwant %s", e, got, want)
		}
	}
}

func TestWindowQuantiles(t *testing.T) {
	base := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	w := NewWindow(60*time.Second, 6, 100, 1)

	for i := 1; i <= 100; i++ {
		w.Observe(base, float64(i))
	}
	if got := w.Quantile(base, 0.5); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := w.Quantile(base, 0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := w.Quantile(base, 1); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := w.Quantile(base, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}

	// 30s later the old slice is still inside the window.
	if got := w.Quantile(base.Add(30*time.Second), 0.5); got != 50 {
		t.Errorf("p50 after 30s = %v, want 50 (still in window)", got)
	}
	// 90s later everything has aged out.
	if got := w.Quantile(base.Add(90*time.Second), 0.5); got != 0 {
		t.Errorf("p50 after 90s = %v, want 0 (window empty)", got)
	}

	// New observations land in the fresh window.
	later := base.Add(2 * time.Minute)
	w.Observe(later, 7)
	if got := w.Quantile(later, 0.99); got != 7 {
		t.Errorf("p99 after refill = %v, want 7", got)
	}
}

func TestWindowReservoirBoundsMemory(t *testing.T) {
	base := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	w := NewWindow(60*time.Second, 2, 8, 1)
	for i := 0; i < 10000; i++ {
		w.Observe(base, 42)
	}
	for i := range w.slices {
		if n := len(w.slices[i].vals); n > 8 {
			t.Fatalf("slice %d holds %d values, cap is 8", i, n)
		}
	}
	if got := w.Quantile(base, 0.99); got != 42 {
		t.Errorf("p99 = %v, want 42", got)
	}
}

func TestMiddleware(t *testing.T) {
	clock := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	now := func() time.Time {
		clock = clock.Add(5 * time.Millisecond)
		return clock
	}
	rec := NewRecorder(Options{SampleRate: 1})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, span := obs.Start(r.Context(), "rank")
		span.SetAttr("mode", "exact")
		span.End()
		w.WriteHeader(http.StatusTeapot)
		//lint:ignore errdrop test writer cannot fail
		w.Write([]byte("hello"))
	})
	h := Middleware(inner, rec, now)

	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/mirror/page", nil)
	req.Header.Set(Header, "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	h.ServeHTTP(w, req)

	if got := w.Header().Get(Header); !strings.HasPrefix(got, "00-0af7651916cd43dd8448eb211c80319c-") {
		t.Errorf("response traceparent = %s, want inbound trace id", got)
	}
	if got := w.Header().Get(RequestIDHeader); got != "r00000001" {
		t.Errorf("request id header = %s", got)
	}

	tr := rec.ring.get("0af7651916cd43dd8448eb211c80319c")
	if tr == nil {
		t.Fatal("trace not retained")
	}
	if tr.Code != http.StatusTeapot || tr.Bytes != 5 {
		t.Errorf("trace code/bytes = %d/%d", tr.Code, tr.Bytes)
	}
	if tr.Sampled != "inbound" || tr.Endpoint != "/mirror/page" {
		t.Errorf("trace = %+v", tr)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "serve" {
		t.Fatalf("root span wrong: %+v", tr.Spans)
	}
	if len(tr.Spans[0].Children) != 1 || tr.Spans[0].Children[0].Attrs["mode"] != "exact" {
		t.Errorf("handler span not nested under serve: %+v", tr.Spans[0].Children)
	}

	// Nil recorder: no trace headers appear, no state is touched.
	w = httptest.NewRecorder()
	Middleware(inner, nil, now).ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/mirror/page", nil))
	if got := w.Header().Get(Header); got != "" {
		t.Errorf("nil recorder stamped traceparent %q", got)
	}
	if got := w.Header().Get(RequestIDHeader); got != "" {
		t.Errorf("nil recorder stamped request id %q", got)
	}
}
