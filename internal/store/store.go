package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"darklight/internal/forum"
)

const (
	snapshotName = "index.snap"
	journalName  = "journal.jsonl"
)

// Store manages one index directory: a snapshot file (index.snap, the
// framed binary format) plus an append-only journal of thread deltas
// (journal.jsonl). Save replaces the snapshot atomically; AppendThread
// records deltas durably between saves; on cold start Load + ReadJournal
// + Replay reconstruct the current index without a full rebuild.
//
// A Store serialises its own writers, but there must be only one writing
// process per directory.
type Store struct {
	dir string

	mu      sync.Mutex
	nextSeq uint64
}

// Open prepares an index directory, creating it if needed. If a previous
// process was killed mid-append, the journal's torn final line is
// repaired (atomically rewritten away) so later appends start on a fresh
// line; mid-file journal corruption fails Open.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, nextSeq: 1}
	raw, err := os.ReadFile(s.JournalPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	entries, intact, jerr := readJournal(raw)
	if jerr != nil {
		fillPath(jerr, s.JournalPath())
		return nil, jerr
	}
	if intact < len(raw) {
		if err := WriteFileAtomic(s.JournalPath(), raw[:intact], 0o644); err != nil {
			return nil, err
		}
	}
	if n := len(entries); n > 0 {
		s.nextSeq = entries[n-1].Seq + 1
	}
	return s, nil
}

// Dir reports the directory the store manages.
func (s *Store) Dir() string { return s.dir }

// SnapshotPath is the snapshot file path inside the store directory.
func (s *Store) SnapshotPath() string { return filepath.Join(s.dir, snapshotName) }

// JournalPath is the journal file path inside the store directory.
func (s *Store) JournalPath() string { return filepath.Join(s.dir, journalName) }

// HasSnapshot reports whether a snapshot file exists.
func (s *Store) HasSnapshot() bool {
	_, err := os.Stat(s.SnapshotPath())
	return err == nil
}

// Save encodes idx and replaces the snapshot file atomically: a crash
// mid-save leaves the previous snapshot intact.
func (s *Store) Save(idx *Index) error {
	raw, err := encodeIndex(idx)
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return WriteFileAtomic(s.SnapshotPath(), raw, 0o644)
}

// Load reads and verifies the snapshot, reassembling a ready-to-serve
// index. Corruption anywhere — a flipped bit in any section, a truncated
// file, a mangled payload — surfaces as a *CorruptError naming the
// section, never a panic or a silently wrong index.
func (s *Store) Load() (*Index, error) {
	raw, err := os.ReadFile(s.SnapshotPath())
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	idx, err := decodeIndex(raw)
	if err != nil {
		fillPath(err, s.SnapshotPath())
		return nil, err
	}
	return idx, nil
}

// AppendThread durably appends one scraped thread to the journal and
// returns its sequence number. The line is fsynced before returning, so
// an acknowledged delta survives a crash.
func (s *Store) AppendThread(rec forum.ThreadRecord) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: journal open: %w", err)
	}
	seq := s.nextSeq
	if err := appendJournalLine(f, JournalEntry{Seq: seq, Thread: rec}); err != nil {
		//lint:ignore errdrop the append already failed; close is best-effort cleanup
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("store: journal close: %w", err)
	}
	s.nextSeq = seq + 1
	return seq, nil
}

// ReadJournal returns the journal entries with sequence numbers above
// afterSeq (pass an index's LastSeq to get exactly the deltas it has not
// folded in yet; pass 0 for everything). A torn final line is dropped;
// corruption anywhere else is a *CorruptError.
func (s *Store) ReadJournal(afterSeq uint64) ([]JournalEntry, error) {
	raw, err := os.ReadFile(s.JournalPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil, nil
	case err != nil:
		return nil, fmt.Errorf("store: journal read: %w", err)
	}
	entries, _, jerr := readJournal(raw)
	if jerr != nil {
		fillPath(jerr, s.JournalPath())
		return nil, jerr
	}
	if afterSeq == 0 {
		return entries, nil
	}
	kept := entries[:0:0]
	for _, e := range entries {
		if e.Seq > afterSeq {
			kept = append(kept, e)
		}
	}
	return kept, nil
}

// CompactJournal atomically rewrites the journal keeping only entries
// with sequence numbers above keepAfter — normally the LastSeq of a
// snapshot that was just saved. Crashing between Save and CompactJournal
// is harmless: replay skips the already-folded entries by sequence.
func (s *Store) CompactJournal(keepAfter uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := os.ReadFile(s.JournalPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil
	case err != nil:
		return fmt.Errorf("store: journal read: %w", err)
	}
	entries, _, jerr := readJournal(raw)
	if jerr != nil {
		fillPath(jerr, s.JournalPath())
		return jerr
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range entries {
		if entries[i].Seq <= keepAfter {
			continue
		}
		if err := enc.Encode(&entries[i]); err != nil {
			return fmt.Errorf("store: journal compact: %w", err)
		}
	}
	return WriteFileAtomic(s.JournalPath(), buf.Bytes(), 0o644)
}

// fillPath stamps the file path onto a CorruptError bubbling up from the
// path-agnostic decode layer.
func fillPath(err error, path string) {
	var ce *CorruptError
	if errors.As(err, &ce) {
		ce.Path = path
	}
}
