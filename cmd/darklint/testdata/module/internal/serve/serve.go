// Package serve is the darklint -json golden fixture: one unsuppressed
// lockbalance finding and one suppressed one, with every other pass
// quiet on purpose. The directory is named internal/serve so the
// scoped passes (goleak, lockbalance's "all") apply exactly as they do
// to the real serving package.
package serve

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

func (r *registry) get(k string) (int, bool) {
	r.mu.Lock()
	v, ok := r.items[k]
	if !ok {
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

func (r *registry) reset() {
	r.mu.Lock()
	r.items = map[string]int{}
	//lint:ignore lockbalance fixture: reset hands the lock to the caller
}
