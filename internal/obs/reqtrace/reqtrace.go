// Package reqtrace gives every request through the serving path an
// identity that survives process boundaries and a per-stage record of
// what the server decided on its behalf.
//
// Three pieces compose:
//
//   - Propagation: each request gets a W3C-trace-context-style
//     traceparent (00-<trace>-<span>-<flags>). An inbound header is
//     honoured — the trace id and sampled flag carry through — and the
//     response is stamped with the same trace id under this hop's fresh
//     span id, which is exactly the contract a scatter-gather
//     coordinator will reuse when it fans a query out to shard workers.
//     A deterministic-format request id (r<8 hex digits>, a per-process
//     sequence) names the request in logs.
//   - Capture: the request flows through an obs.Tracer span tree
//     (obs.Start nests via context as everywhere else in the pipeline),
//     so each middleware and handler stage records its duration and
//     decision payload (prefilter mode, candidates examined, heap
//     evictions, index version) as span attributes.
//   - Sinks: a JSONL access log (one line per request, struct-ordered
//     fields), a bounded in-memory ring of sampled traces served at
//     /debug/traces and /debug/traces/{id}, and a rolling-window
//     streaming-quantile Window that backs the serve_request_seconds_p50
//     and _p99 gauges.
//
// Sampling is always-keep-slow plus probabilistic: a request slower than
// Options.Slow is always retained, everything else is retained with
// probability Options.SampleRate drawn from an injected splitmix64
// stream (fixed seed by default — no global RNG, no wall-clock seeding),
// or because the inbound traceparent already carried the sampled flag.
//
// The package never reads the wall clock: request latencies arrive from
// the caller's injected clock and span timings live inside internal/obs
// (the one sanctioned timing layer). The darklint wallclock pass checks
// this package (it is carved out of the internal/obs allowlist), and the
// serving layer's bit-identity test pins response bodies identical with
// tracing on or off.
package reqtrace

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"darklight/internal/obs"
)

// Header is the W3C trace-context propagation header, honoured inbound
// and stamped on every response.
const Header = "traceparent"

// RequestIDHeader carries the per-process request id on responses.
const RequestIDHeader = "X-Request-Id"

// DefaultSeed seeds the sampling RNG unless Options overrides it. A fixed
// seed keeps sampling decisions reproducible for a given request sequence
// without biasing which requests are kept.
const DefaultSeed = 0x7265717472616365 // "reqtrace"

// Options configure a Recorder. The zero value disables every sink; set
// at least Ring or AccessLog for the Recorder to be useful.
type Options struct {
	// Ring is how many sampled traces the in-memory buffer retains
	// (default 256 when <= 0).
	Ring int
	// SampleRate is the probabilistic retention rate in [0, 1].
	SampleRate float64
	// Slow always retains requests at least this slow; 0 disables the
	// slow path.
	Slow time.Duration
	// Seed seeds the sampling RNG (default DefaultSeed).
	Seed uint64
	// AccessLog receives one JSONL line per request when non-nil.
	AccessLog io.Writer
}

// DefaultRing is the trace buffer capacity when Options.Ring is unset.
const DefaultRing = 256

// Recorder owns the sinks of one serving process: the access log, the
// sampled-trace ring, and the sampling RNG. All methods are safe for
// concurrent use and safe on a nil receiver — a nil *Recorder is the
// tracing-disabled configuration, and every per-request call degrades to
// a no-op returning a nil *Active.
type Recorder struct {
	opts Options
	rng  atomic.Uint64
	seq  atomic.Uint64
	ring traceRing

	logMu sync.Mutex
}

// NewRecorder builds a Recorder. The access log writer, when set, must
// stay valid for the Recorder's lifetime (the caller owns closing it).
func NewRecorder(o Options) *Recorder {
	if o.Ring <= 0 {
		o.Ring = DefaultRing
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	r := &Recorder{opts: o}
	r.rng.Store(o.Seed)
	r.ring.init(o.Ring)
	return r
}

// Active is one in-flight request's trace state: its ids, its retention
// decision so far, and the span tree being collected. Methods are
// nil-safe; a nil *Active is what disabled tracing hands around.
type Active struct {
	// TraceID is the 32-hex-digit trace identity, shared across hops.
	TraceID string
	// SpanID is this hop's fresh 16-hex-digit span id.
	SpanID string
	// ParentID is the inbound caller's span id ("" when this hop started
	// the trace).
	ParentID string
	// RequestID is the per-process request id (r<8 hex digits>).
	RequestID string

	inbound bool // inbound traceparent carried the sampled flag
	prob    bool // probabilistic sampling chose this request
	tracer  *obs.Tracer
}

// Begin starts trace state for one request. traceparent is the inbound
// header value ("" for none): a valid header donates its trace id,
// parent span id, and sampled flag; anything else starts a fresh trace.
// Returns nil when the Recorder is nil.
func (c *Recorder) Begin(traceparent string) *Active {
	if c == nil {
		return nil
	}
	a := &Active{
		RequestID: formatRequestID(c.seq.Add(1)),
		SpanID:    c.newSpanID(),
		tracer:    obs.NewTracer(),
	}
	if tid, sid, sampled, ok := parseTraceparent(traceparent); ok {
		a.TraceID, a.ParentID, a.inbound = tid, sid, sampled
	} else {
		a.TraceID = c.newTraceID()
	}
	a.prob = c.opts.SampleRate > 0 && c.randFloat() < c.opts.SampleRate
	return a
}

// Start installs the request's tracer on ctx and opens a span, nesting
// under the context's current span exactly like obs.Start. On a nil
// Active it returns ctx unchanged and a nil span — the zero-cost path.
func (a *Active) Start(ctx context.Context, name string) (context.Context, *obs.Span) {
	if a == nil {
		return ctx, nil
	}
	return obs.Start(obs.WithTracer(ctx, a.tracer), name)
}

// Traceparent renders the outbound header value for this hop: the shared
// trace id under this hop's span id, with the sampled flag set when the
// request is already known to be retained (inbound flag or the
// probabilistic draw; the slow path is decided only at Finish and cannot
// be reflected here). "" on a nil Active.
func (a *Active) Traceparent() string {
	if a == nil {
		return ""
	}
	flags := "00"
	if a.inbound || a.prob {
		flags = "01"
	}
	return "00-" + a.TraceID + "-" + a.SpanID + "-" + flags
}

// RequestInfo is what the serving layer reports about one finished
// request. Duration comes from the caller's injected clock.
type RequestInfo struct {
	Endpoint string
	Method   string
	Code     int
	Duration time.Duration
	Bytes    int
}

// Finish completes one request: the span tree is exported, the access
// line written, and the trace retained in the ring when sampling says so
// (inbound flag, probabilistic draw, or the always-keep-slow rule). The
// caller must have ended its spans first. No-op when either receiver or
// active is nil.
func (c *Recorder) Finish(a *Active, info RequestInfo) {
	if c == nil || a == nil {
		return
	}
	reason := ""
	switch {
	case a.inbound:
		reason = "inbound"
	case a.prob:
		reason = "sample"
	case c.opts.Slow > 0 && info.Duration >= c.opts.Slow:
		reason = "slow"
	}
	if c.opts.AccessLog != nil {
		c.writeAccessLine(a, info)
	}
	if reason == "" {
		return
	}
	c.ring.add(&Trace{
		TraceID:   a.TraceID,
		RequestID: a.RequestID,
		ParentID:  a.ParentID,
		Endpoint:  info.Endpoint,
		Method:    info.Method,
		Code:      info.Code,
		DurNS:     info.Duration.Nanoseconds(),
		Bytes:     info.Bytes,
		Sampled:   reason,
		Spans:     a.tracer.Snapshot(),
	})
}

// randFloat draws a uniform float64 in [0, 1) from the splitmix64 stream.
func (c *Recorder) randFloat() float64 {
	return float64(c.rand64()>>11) / (1 << 53)
}

// rand64 advances the shared splitmix64 state. The additive-constant
// stream means concurrent callers each get a distinct, well-mixed draw
// without locking.
func (c *Recorder) rand64() uint64 {
	z := c.rng.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newTraceID mints a 32-hex-digit non-zero trace id.
func (c *Recorder) newTraceID() string {
	for {
		hi, lo := c.rand64(), c.rand64()
		if hi|lo == 0 {
			continue
		}
		var b [32]byte
		putHex64(b[:16], hi)
		putHex64(b[16:], lo)
		return string(b[:])
	}
}

// newSpanID mints a 16-hex-digit non-zero span id.
func (c *Recorder) newSpanID() string {
	for {
		v := c.rand64()
		if v == 0 {
			continue
		}
		var b [16]byte
		putHex64(b[:], v)
		return string(b[:])
	}
}

// formatRequestID renders the per-process sequence as r<8 hex digits> —
// a fixed-width, lexically sortable id for log grepping.
func formatRequestID(seq uint64) string {
	var b [9]byte
	b[0] = 'r'
	for i := 8; i >= 1; i-- {
		b[i] = hexDigit(byte(seq & 0xf))
		seq >>= 4
	}
	return string(b[:])
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		if i < len(dst) {
			dst[i] = hexDigit(byte(v & 0xf))
		}
		v >>= 4
	}
}

// parseTraceparent validates an inbound header: version 00, 32 lowercase
// hex trace id (not all zero), 16 lowercase hex parent span id (not all
// zero), 2 hex flags. Anything malformed is ignored (ok = false) — a
// hostile or sloppy client must not be able to corrupt trace state.
func parseTraceparent(s string) (traceID, spanID string, sampled, ok bool) {
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return "", "", false, false
	}
	tid, pid, flags := s[3:35], s[36:52], s[53:55]
	if !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return "", "", false, false
	}
	if allZero(tid) || allZero(pid) {
		return "", "", false, false
	}
	return tid, pid, flags[1]&1 == 1, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
