package prefilter

import (
	"math/rand"
	"testing"
)

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeDefault, ModeExact, ModePruned, ModeLSH} {
		s := m.String()
		if m == ModeDefault {
			s = "" // the wire spelling of "unset"
		}
		got, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		if got != m {
			t.Errorf("ParseMode(%q) = %v, want %v", s, got, m)
		}
	}
	if _, err := ParseMode("fancy"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Mode != ModePruned {
		t.Errorf("default mode = %v, want pruned", p.Mode)
	}
	if p.Pruned.Slack != DefaultSlack || p.Pruned.TailShare != DefaultTailShare {
		t.Errorf("pruned defaults = %+v", p.Pruned)
	}
	if p.LSH.Bands != DefaultBands || p.LSH.Rows != DefaultRows || p.LSH.Seed != DefaultSeed {
		t.Errorf("lsh defaults = %+v", p.LSH)
	}
	// Explicit settings survive.
	q := Params{Mode: ModeLSH, Pruned: PrunedParams{TailShare: -1}, LSH: LSHParams{Bands: 4, Rows: 8}}.WithDefaults()
	if q.Mode != ModeLSH || q.Pruned.TailShare != -1 || q.LSH.Bands != 4 || q.LSH.Rows != 8 {
		t.Errorf("explicit params overwritten: %+v", q)
	}
}

// randomSet draws a sorted set of feature ids from [0, universe).
func randomSet(rng *rand.Rand, universe, size int) []uint32 {
	seen := make(map[uint32]bool, size)
	out := make([]uint32, 0, size)
	for len(out) < size {
		x := uint32(rng.Intn(universe))
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// mutate flips roughly frac of the set's members to fresh ids.
func mutate(rng *rand.Rand, set []uint32, universe int, frac float64) []uint32 {
	out := make([]uint32, len(set))
	copy(out, set)
	for i := range out {
		if rng.Float64() < frac {
			out[i] = uint32(rng.Intn(universe))
		}
	}
	return out
}

func TestLSHFindsNearDuplicatesNotStrangers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 400
	sets := make([][]uint32, n)
	for i := range sets {
		sets[i] = randomSet(rng, 1<<20, 120)
	}
	l := BuildLSH(n, func(i int) []uint32 { return sets[i] }, LSHParams{})

	hit, miss := 0, 0
	for i := 0; i < 50; i++ {
		// A query ~85% similar to subject i must surface i.
		q := mutate(rng, sets[i], 1<<20, 0.15)
		cands := l.Candidates(q, nil)
		found := false
		for _, c := range cands {
			if int(c) == i {
				found = true
				break
			}
		}
		if found {
			hit++
		}
		// Disjoint random sets almost never collide; a large candidate
		// union here would mean the family degenerated.
		if len(cands) > n/4 {
			miss++
		}
	}
	if hit < 48 {
		t.Errorf("near-duplicate recall %d/50, want >= 48", hit)
	}
	if miss > 0 {
		t.Errorf("%d queries matched over a quarter of unrelated subjects", miss)
	}
}

func TestLSHCandidatesSortedDedupedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 100
	sets := make([][]uint32, n)
	for i := range sets {
		sets[i] = randomSet(rng, 4096, 60) // small universe: forced collisions
	}
	l := BuildLSH(n, func(i int) []uint32 { return sets[i] }, LSHParams{Bands: 32, Rows: 1})
	q := sets[17]
	a := l.Candidates(q, nil)
	b := l.Candidates(q, make([]int32, 0, 8))
	if len(a) == 0 {
		t.Fatal("query found no candidates, not even itself")
	}
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d across calls", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidates differ across calls at %d: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("candidates not strictly ascending at %d: %v", i, a[:i+1])
		}
	}
	if got := l.Candidates(nil, nil); len(got) != 0 {
		t.Errorf("empty query returned %d candidates", len(got))
	}
}

func TestLSHSeedChangesBucketsButStaysDeterministic(t *testing.T) {
	set := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	a := BandSignature(set, LSHParams{Seed: 1})
	b := BandSignature(set, LSHParams{Seed: 1})
	c := BandSignature(set, LSHParams{Seed: 2})
	if len(a) != DefaultBands {
		t.Fatalf("signature has %d bands, want %d", len(a), DefaultBands)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different signatures at band %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical signatures")
	}
	if got := BandSignature(nil, LSHParams{}); got != nil {
		t.Errorf("empty set signature = %v, want nil", got)
	}
}

// FuzzBandHash pins the banding kernel: no panic on arbitrary sets and
// parameters, and bit-identical output across repeated calls.
func FuzzBandHash(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(16), uint8(3), uint64(0))
	f.Add([]byte{}, uint8(0), uint8(0), uint64(7))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(1), uint8(64), uint64(1<<63))
	f.Fuzz(func(t *testing.T, raw []byte, bands, rows uint8, seed uint64) {
		set := make([]uint32, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw); i += 4 {
			set = append(set, uint32(raw[i])|uint32(raw[i+1])<<8|uint32(raw[i+2])<<16|uint32(raw[i+3])<<24)
		}
		// Cap the family size so hostile inputs stay cheap.
		p := LSHParams{Bands: int(bands % 65), Rows: int(rows % 17), Seed: seed}
		a := BandSignature(set, p)
		b := BandSignature(set, p)
		if len(a) != len(b) {
			t.Fatalf("signature length changed across calls: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("band %d key changed across calls: %x vs %x", i, a[i], b[i])
			}
		}
	})
}
