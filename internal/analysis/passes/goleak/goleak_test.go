package goleak_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/goleak"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "internal/obs")
}
