// Package atomicmix enforces the all-or-nothing rule of sync/atomic: a
// variable or field whose address is ever passed to a sync/atomic
// function must be accessed through sync/atomic everywhere. A plain
// read races with a concurrent atomic write (and vice versa) — the
// compiler and CPU may tear, cache, or reorder the plain access — and
// unlike a typed atomic.Int64 or atomic.Pointer, nothing in the type
// system stops the mixed access from compiling. The serve snapshot
// pointer and the limiter counters migrated to typed atomics for
// exactly this reason; this pass keeps any future raw-atomic usage
// honest, package-wide.
//
// The check is two-phase over the whole package: first collect every
// object passed by address to sync/atomic (the blessed sites), then
// flag every other plain mention of the same object. Taking the
// object's address for any non-atomic purpose counts as a plain access
// too — once &x escapes, unverifiable writes can follow.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultScope applies everywhere: mixed atomic/plain access is never
// intentional.
const DefaultScope = "all"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed via sync/atomic anywhere in the package may not also be read or " +
		"written plainly",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}

	// Phase 1: every object whose address reaches sync/atomic, plus the
	// exact operand expressions of those calls (excluded from phase 2).
	atomicObjs := make(map[types.Object]token.Pos)
	blessed := make(map[ast.Expr]bool)
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if pkg, _ := astquery.PkgFunc(pass.TypesInfo, call); pkg != "sync/atomic" {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			obj := addressedObject(pass.TypesInfo, un.X)
			if obj == nil {
				continue
			}
			blessed[un.X] = true
			if _, seen := atomicObjs[obj]; !seen {
				atomicObjs[obj] = call.Pos()
			}
		}
	})
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Phase 2: any other mention of those objects is a mixed access.
	// Field mentions arrive as SelectorExpr (reported once, then only
	// the chain prefix is re-walked so the Sel identifier is not
	// double-counted); plain variables and package-qualified vars
	// arrive as Ident.
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if !blessed[n] {
					reportMixed(pass, atomicObjs, sel.Obj(), n.Pos())
				}
				ast.Inspect(n.X, visit)
				return false
			}
		case *ast.Ident:
			// The defining identifier (field declaration, var spec) is
			// not an access.
			if pass.TypesInfo.Defs[n] == nil && !blessed[ast.Expr(n)] {
				reportMixed(pass, atomicObjs, astquery.ObjectOf(pass.TypesInfo, n), n.Pos())
			}
		}
		return true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, visit)
	}
	return nil, nil
}

// addressedObject resolves &x to x's object: a plain identifier or the
// field of a selector chain.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return astquery.ObjectOf(info, e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		// &xs[i]: the element, not the slice, is what atomic touches;
		// element-granular tracking is out of reach, so skip.
		return nil
	}
	return nil
}

func reportMixed(pass *analysis.Pass, atomicObjs map[types.Object]token.Pos, obj types.Object, pos token.Pos) {
	firstAtomic, ok := atomicObjs[obj]
	if !ok {
		return
	}
	p := pass.Fset.Position(firstAtomic)
	pass.Reportf(pos, "%s is accessed with sync/atomic (%s:%d); this plain access races with it — "+
		"use sync/atomic everywhere or a typed atomic value", obj.Name(), filepath.Base(p.Filename), p.Line)
}
