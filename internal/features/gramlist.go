package features

import "slices"

// GramEntry is one (gram id, count) pair of an id-sorted gram list.
type GramEntry struct {
	ID    GramID
	Count int32
}

// SortedDoc is a Doc flattened into id-sorted slices. It carries exactly
// the information of a Doc but in a form the candidate-vocabulary fast
// path can merge linearly: hash maps are where the per-query stage-2
// rebuild spends most of its time, and none survive here. A SortedDoc is
// also ~2-3× smaller than the Doc's maps, which matters for the matcher's
// per-subject cache.
type SortedDoc struct {
	WordGrams  []GramEntry
	CharGrams  []GramEntry
	WordTotal  int
	CharTotal  int
	Freq       [NumFreqFeatures]float64
	TotalChars int
}

// Sorted flattens the Doc. The Doc itself is unchanged and can be dropped.
func (d *Doc) Sorted() *SortedDoc {
	return &SortedDoc{
		WordGrams:  sortedEntries(d.WordGrams),
		CharGrams:  sortedEntries(d.CharGrams),
		WordTotal:  d.WordTotal,
		CharTotal:  d.CharTotal,
		Freq:       d.Freq,
		TotalChars: d.TotalChars,
	}
}

func sortedEntries(m map[GramID]int) []GramEntry {
	out := make([]GramEntry, 0, len(m))
	for g, c := range m {
		out = append(out, GramEntry{ID: g, Count: int32(c)})
	}
	slices.SortFunc(out, func(a, b GramEntry) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return out
}
