package synth

import (
	"math"
	"math/rand"
)

// Determinism contract: every stochastic choice in the generator flows from
// either (a) an explicit *rand.Rand seeded from the master seed, for
// sequential decisions, or (b) a stateless hash of (seed, entity, key), for
// *persistent* traits that must be identical whenever the same entity is
// instantiated — a person's affinity for a word must not depend on the
// order in which forums generate their messages.

// splitmix64 is the SplitMix64 mixing function: a high-quality 64-bit
// finaliser used to derive independent sub-seeds and stateless uniforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into a 64-bit value (FNV-1a core, splitmix
// finalised).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(h)
}

// hash2 combines two 64-bit values.
func hash2(a, b uint64) uint64 { return splitmix64(a ^ splitmix64(b)) }

// hash3 combines three 64-bit values.
func hash3(a, b, c uint64) uint64 { return splitmix64(hash2(a, b) ^ splitmix64(c)) }

// uniform01 maps a hash to (0,1). Never returns exactly 0, so it is safe
// as a log() argument.
func uniform01(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// gauss maps a hash to a standard normal deviate via Box–Muller on two
// decorrelated uniforms derived from the hash.
func gauss(h uint64) float64 {
	u1 := uniform01(h)
	u2 := uniform01(splitmix64(h + 0x6a09e667f3bcc909))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// subRand derives an independent rand.Rand stream for a named purpose.
func subRand(seed uint64, purpose string) *rand.Rand {
	return rand.New(rand.NewSource(int64(hash2(seed, hashString(purpose)))))
}

// weightedIndex draws an index proportionally to weights using r.
// The weights need not be normalised; non-positive weights are ignored.
// Returns -1 when every weight is non-positive.
func weightedIndex(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x <= 0 {
			return i
		}
	}
	// Float round-off can leave a sliver; return the last positive index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// lognormal draws exp(N(mu, sigma)) using r.
func lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
