package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Analysis defines a forward dataflow problem. Facts must be treated as
// immutable values: Transfer and Join return fresh facts (or the input
// unchanged) and never mutate their arguments, so one fact can safely
// flow into several successors. The framework guarantees Transfer sees
// a block's nodes in execution order.
type Analysis[F any] interface {
	// Entry is the fact at function entry — and the seed for
	// unreachable blocks, which are still analyzed so dead code gets
	// the same diagnostics as live code.
	Entry() F
	// Transfer applies one node's effect to the incoming fact.
	Transfer(n ast.Node, in F) F
	// Join merges the facts of two converging paths.
	Join(a, b F) F
	// Equal reports fact equality; it bounds the fixpoint iteration.
	Equal(a, b F) bool
}

// maxPasses caps fixpoint iteration. The lattices darklint uses are
// finite and low (lock counts, file states), so structured control flow
// converges in a handful of passes; the cap only guards against a
// non-monotone Analysis looping forever.
const maxPasses = 64

// Forward iterates the analysis to a fixpoint and returns the fact at
// the entry of every block. Re-apply Transfer over a block's nodes to
// recover the fact at any interior program point — the reporting walk
// the passes run after convergence.
func Forward[F any](g *Graph, a Analysis[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	haveOut := make(map[*Block]bool, len(g.Blocks))

	order := reversePostorder(g)
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, blk := range order {
			f := a.Entry()
			seeded := blk == g.Entry
			for _, p := range blk.Preds {
				if !haveOut[p] {
					continue
				}
				if !seeded && len(blk.Preds) > 0 {
					// First computed predecessor replaces the seed;
					// later ones join in.
					f = out[p]
					seeded = true
					continue
				}
				f = a.Join(f, out[p])
			}
			in[blk] = f
			for _, n := range blk.Nodes {
				f = a.Transfer(n, f)
			}
			if !haveOut[blk] || !a.Equal(out[blk], f) {
				out[blk] = f
				haveOut[blk] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// reversePostorder orders reachable blocks so most predecessors are
// visited before their successors (fast convergence); unreachable
// blocks follow in index order.
func reversePostorder(g *Graph) []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Entry)
	order := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b] {
			order = append(order, b)
		}
	}
	return order
}

// Describe renders the graph for tests and debugging: one line per
// block with its nodes printed as compressed source, succ edges by
// index, and the Exit block marked. The output is deterministic.
func (g *Graph) Describe(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		if b == g.Entry {
			sb.WriteString(" (entry)")
		}
		if b == g.Exit {
			sb.WriteString(" (exit)")
		}
		for _, n := range b.Nodes {
			sb.WriteString(" [" + nodeText(fset, n) + "]")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("%T", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
