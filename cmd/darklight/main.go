// Command darklight is the pipeline CLI: generate synthetic corpora,
// polish raw datasets, build alter-ego ground truth, print dataset
// statistics, and link aliases across two datasets.
//
// Subcommands:
//
//	darklight gen    -out reddit.jsonl -forum reddit -scale 0.05 [-seed 1]
//	darklight polish -in raw.jsonl -out clean.jsonl
//	darklight stats  -in data.jsonl
//	darklight alterego -in data.jsonl -main main.jsonl -ae ae.jsonl
//	darklight link   -known known.jsonl -unknown unknown.jsonl [-threshold 0.4190]
//	darklight anonymize -in mine.jsonl -out safe.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"darklight"
	"darklight/internal/corpus"
	"darklight/internal/forum"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "polish":
		err = cmdPolish(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "alterego":
		err = cmdAlterEgo(os.Args[2:])
	case "link":
		err = cmdLink(os.Args[2:])
	case "anonymize":
		err = cmdAnonymize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "darklight: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darklight:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: darklight <gen|polish|stats|alterego|link|anonymize> [flags]

  gen       generate a synthetic forum dataset (JSONL)
  polish    run the 12-step §III-C cleaning pipeline
  stats     print dataset statistics
  alterego  refine (§IV-D) and split into (main, alter-ego) datasets
  link      link unknown aliases against a known dataset (§IV-I)
  anonymize apply the §VI writing-style/schedule countermeasures`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "dataset.jsonl", "output path")
	which := fs.String("forum", "reddit", "reddit, tmg, or dm")
	scale := fs.Float64("scale", 0.05, "population scale")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)

	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	var d *forum.Dataset
	switch *which {
	case "reddit":
		d = world.Reddit
	case "tmg":
		d = world.TMG
	case "dm":
		d = world.DM
	default:
		return fmt.Errorf("unknown forum %q", *which)
	}
	if err := darklight.SaveJSONL(*out, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d aliases, %d messages\n", *out, d.Len(), d.TotalMessages())
	return nil
}

func cmdPolish(args []string) error {
	fs := flag.NewFlagSet("polish", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL")
	out := fs.String("out", "", "output JSONL")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("polish: -in and -out are required")
	}
	d, err := darklight.LoadJSONL(*in, "input", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	report := darklight.NewPipeline().Polish(d)
	fmt.Print(report.String())
	if err := darklight.SaveJSONL(*out, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d aliases, %d messages\n", *out, d.Len(), d.TotalMessages())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	d, err := darklight.LoadJSONL(*in, "input", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	fmt.Printf("aliases:  %d\n", d.Len())
	fmt.Printf("messages: %d\n", d.TotalMessages())
	fmt.Printf("words:    %d\n", d.TotalWords())

	counts := make([]int, d.Len())
	for i := range d.Aliases {
		counts[i] = d.Aliases[i].TotalWords()
	}
	sort.Ints(counts)
	if len(counts) > 0 {
		fmt.Printf("words/alias: min %d, median %d, p90 %d, max %d\n",
			counts[0], counts[len(counts)/2], counts[len(counts)*9/10], counts[len(counts)-1])
	}
	return nil
}

func cmdAlterEgo(args []string) error {
	fs := flag.NewFlagSet("alterego", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL (polished)")
	mainOut := fs.String("main", "main.jsonl", "main dataset output")
	aeOut := fs.String("ae", "ae.jsonl", "alter-ego dataset output")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("alterego: -in is required")
	}
	d, err := darklight.LoadJSONL(*in, "input", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	pipe := darklight.NewPipeline()
	refined := pipe.Refine(d)
	fmt.Printf("refined: %d of %d aliases pass §IV-D thresholds (≥%d words, ≥%d timestamps)\n",
		refined.Len(), d.Len(), corpus.MinWords, corpus.MinTimestamps)
	mainDS, ae := pipe.SplitAlterEgos(refined)
	if err := darklight.SaveJSONL(*mainOut, mainDS); err != nil {
		return err
	}
	if err := darklight.SaveJSONL(*aeOut, ae); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d aliases) and %s (%d alter-egos)\n", *mainOut, mainDS.Len(), *aeOut, ae.Len())
	return nil
}

func cmdLink(args []string) error {
	fs := flag.NewFlagSet("link", flag.ExitOnError)
	knownPath := fs.String("known", "", "known dataset JSONL")
	unknownPath := fs.String("unknown", "", "unknown dataset JSONL")
	threshold := fs.Float64("threshold", darklight.DefaultThreshold, "acceptance threshold")
	all := fs.Bool("all", false, "print every pair, not only accepted ones")
	fs.Parse(args)
	if *knownPath == "" || *unknownPath == "" {
		return fmt.Errorf("link: -known and -unknown are required")
	}
	known, err := darklight.LoadJSONL(*knownPath, "known", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	unknown, err := darklight.LoadJSONL(*unknownPath, "unknown", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	pipe := darklight.NewPipeline(darklight.WithThreshold(*threshold))
	matches, err := pipe.Link(context.Background(), known, unknown)
	if err != nil {
		return err
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Score > matches[j].Score })
	accepted := 0
	for _, m := range matches {
		if m.Accepted {
			accepted++
		}
		if m.Accepted || *all {
			marker := " "
			if m.Accepted {
				marker = "*"
			}
			fmt.Printf("%s %.4f  %-30s -> %s\n", marker, m.Score, m.Unknown, m.Candidate)
		}
	}
	fmt.Printf("%d of %d unknowns linked above threshold %.4f\n", accepted, len(matches), *threshold)
	return nil
}

func cmdAnonymize(args []string) error {
	fs := flag.NewFlagSet("anonymize", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL")
	out := fs.String("out", "", "output JSONL")
	keepTimes := fs.Bool("keep-times", false, "do not reschedule posting times")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("anonymize: -in and -out are required")
	}
	d, err := darklight.LoadJSONL(*in, "input", forum.PlatformSynthetic)
	if err != nil {
		return err
	}
	opts := darklight.DefaultAnonymizeOptions()
	if *keepTimes {
		opts.RescheduleWithin = 0
	}
	anon := darklight.Anonymize(d, opts)
	if err := darklight.SaveJSONL(*out, anon); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d aliases anonymised (§VI countermeasures%s)\n",
		*out, anon.Len(), map[bool]string{true: ", times kept", false: " incl. rescheduling"}[*keepTimes])
	return nil
}
