package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzBuild feeds arbitrary function bodies through the builder: any
// body that parses must produce a well-formed graph — registered
// blocks only, consistent Preds, an empty terminal Exit — and both the
// fixpoint driver and the renderer must run without panicking.
func FuzzBuild(f *testing.F) {
	seeds := []string{
		"return",
		"for i := 0; i < 3; i++ {\n\tdefer f()\n}",
		"outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}",
		"select {}",
		"var a chan int\nselect {\ncase <-a:\ndefault:\n}",
		"switch 1 {\ncase 1:\n\tfallthrough\ncase 2:\n}",
		"top:\nif true {\n\tgoto top\n}",
		"panic(\"x\")",
		"go func() {}()",
		"if true {\n\treturn\n}\n_ = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "f.go", src, 0)
		if err != nil {
			t.Skip()
		}
		var fn *ast.FuncDecl
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn = fd
				break
			}
		}
		if fn == nil {
			t.Skip()
		}
		g := Build(fn.Body)
		index := make(map[*Block]bool, len(g.Blocks))
		for _, b := range g.Blocks {
			index[b] = true
		}
		if !index[g.Entry] || !index[g.Exit] {
			t.Fatalf("entry or exit not registered")
		}
		if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
			t.Fatalf("exit must be empty and terminal")
		}
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				if !index[s] {
					t.Fatalf("edge to unregistered block from b%d", b.Index)
				}
			}
		}
		Forward[int](g, markAnalysis{})
		_ = g.Describe(fset)
		_ = g.Reachable()
	})
}
