// Package lemma implements a deterministic rule-based English lemmatiser.
// It reduces inflected forms to their lemma ("am", "are", "is" → "be";
// "running" → "run"; "mice" → "mouse") so that the word n-gram features of
// the pipeline treat different inflections of the same word as one item
// (§IV-A of the paper).
//
// The design is the classic two-layer one: an exception table for irregular
// forms, then ordered suffix-rewrite rules with consonant-doubling and
// silent-e heuristics. It does not attempt part-of-speech disambiguation —
// forum text offers no reliable POS signal and the attribution features are
// robust to the occasional over-stemming.
package lemma

import "strings"

// Lemmatize returns the lemma of a single lowercase word. Words shorter
// than 3 runes, non-alphabetic tokens, and unknown forms pass through
// unchanged. Input is lowercased internally.
func Lemmatize(word string) string {
	w := strings.ToLower(word)
	if len(w) < 3 {
		return w
	}
	if lemma, ok := irregular[w]; ok {
		return lemma
	}
	if out := trySuffixRules(w); out != "" {
		return out
	}
	return w
}

// LemmatizeAll lemmatises every word of the slice in place and returns it.
func LemmatizeAll(words []string) []string {
	for i, w := range words {
		words[i] = Lemmatize(w)
	}
	return words
}

// vowel reports whether the byte at i in w is a vowel ('y' counts when not
// word-initial, the usual stemming convention).
func vowel(w string, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	case 'y':
		return i > 0
	default:
		return false
	}
}

func hasVowel(w string) bool {
	for i := range w {
		if vowel(w, i) {
			return true
		}
	}
	return false
}

// endsDoubledConsonant reports whether w ends in a doubled consonant
// ("stopp", "runn").
func endsDoubledConsonant(w string) bool {
	n := len(w)
	if n < 2 {
		return false
	}
	return w[n-1] == w[n-2] && !vowel(w, n-1)
}

// trySuffixRules applies the ordered inflection-stripping rules. Empty
// string means no rule applied.
func trySuffixRules(w string) string {
	// ---- verbal -ing ----
	if strings.HasSuffix(w, "ing") && len(w) > 5 {
		stem := w[:len(w)-3]
		if !hasVowel(stem) {
			return ""
		}
		switch {
		case endsDoubledConsonant(stem) && !keepDouble(stem):
			return stem[:len(stem)-1] // running → run
		case needsSilentE(stem):
			return stem + "e" // making → make
		default:
			return stem // walking → walk
		}
	}
	// ---- verbal/adjectival -ed ----
	if strings.HasSuffix(w, "ied") && len(w) > 4 {
		return w[:len(w)-3] + "y" // tried → try
	}
	if strings.HasSuffix(w, "ed") && len(w) > 4 {
		stem := w[:len(w)-2]
		if !hasVowel(stem) {
			return ""
		}
		switch {
		case endsDoubledConsonant(stem) && !keepDouble(stem):
			return stem[:len(stem)-1] // stopped → stop
		case needsSilentE(stem):
			return stem + "e" // hoped → hope... (heuristic)
		default:
			return stem // walked → walk
		}
	}
	// ---- comparatives / superlatives ----
	if strings.HasSuffix(w, "iest") && len(w) > 5 {
		return w[:len(w)-4] + "y" // happiest → happy
	}
	if strings.HasSuffix(w, "ier") && len(w) > 4 {
		return w[:len(w)-3] + "y" // happier → happy
	}
	// ---- plural nouns / 3rd person singular ----
	if strings.HasSuffix(w, "ies") && len(w) > 4 {
		return w[:len(w)-3] + "y" // cities → city
	}
	if strings.HasSuffix(w, "ves") && len(w) > 4 {
		if base, ok := vesSingular[w]; ok {
			return base // knives → knife
		}
		return w[:len(w)-3] + "f" // wolves → wolf
	}
	if strings.HasSuffix(w, "sses") && len(w) > 5 {
		return w[:len(w)-2] // classes → class
	}
	if strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes") ||
		strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes") {
		if len(w) > 4 {
			return w[:len(w)-2] // boxes → box, riches → rich
		}
	}
	if strings.HasSuffix(w, "oes") && len(w) > 4 {
		return w[:len(w)-2] // potatoes → potato
	}
	if strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") &&
		!strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is") && len(w) > 3 {
		return w[:len(w)-1] // dogs → dog, runs → run
	}
	return ""
}

// keepDouble lists final doubled consonants that are part of the lemma and
// must not be collapsed ("fall" ← "falling", not "fal").
func keepDouble(stem string) bool {
	switch {
	case strings.HasSuffix(stem, "ll"),
		strings.HasSuffix(stem, "ss"),
		strings.HasSuffix(stem, "zz"),
		strings.HasSuffix(stem, "ff"),
		strings.HasSuffix(stem, "ee"),
		strings.HasSuffix(stem, "oo"):
		return true
	}
	return false
}

// needsSilentE guesses whether the stem lost a silent 'e' when the suffix
// was attached: consonant + single vowel + consonant with the last
// consonant not being w/x/y, and the stem ending in a typically e-final
// cluster. Heuristic tuned on common verbs.
func needsSilentE(stem string) bool {
	for _, suf := range eFinalClusters {
		if strings.HasSuffix(stem, suf) {
			return true
		}
	}
	return false
}

// eFinalClusters end lemmas in silent 'e' after suffix stripping:
// mak(e)ing, writ(e)ing, hop(e)ed, danc(e)ing, believ(e)ed …
var eFinalClusters = []string{
	"mak", "tak", "giv", "hav", "liv", "lov", "mov", "prov", "serv",
	"writ", "rid", "driv", "danc", "chang", "charg", "judg", "manag",
	"believ", "receiv", "achiev", "leav", "sav", "wav", "shar", "car",
	"stor", "scor", "ignor", "explor", "compar", "declar", "prepar",
	"requir", "desir", "admir", "retir", "inspir", "us", "caus", "clos",
	"chos", "rais", "pleas", "increas", "decreas", "releas", "purchas",
	"promis", "surpris", "exercis", "realiz", "recogniz", "organiz",
	"analyz", "siz", "freez", "sneez", "squeez", "creat", "stat", "relat",
	"operat", "separat", "generat", "celebrat", "educat", "indicat",
	"communicat", "not", "vot", "quot", "promot", "devot", "wast", "tast",
	"past", "invit", "unit", "excit", "decid", "provid", "divid", "hid",
	"guid", "slid", "trad", "fad", "upgrad", "includ", "exclud", "conclud",
	"produc", "reduc", "introduc", "induc", "deduc", "fac", "plac",
	"replac", "trac", "spac", "rac", "pric", "slic", "notic", "practic",
	"servic", "sourc", "forc", "divorc", "bak", "wak", "shak", "smok",
	"jok", "strok", "lik", "hik", "bik", "strik", "pok", "invok", "evok",
	"argu", "rescu", "valu", "continu", "pursu", "issu", "tissu", "glu",
	"du", "sham", "blam", "fram", "nam", "tam", "gam", "tim", "chim",
	"com", "welcom", "assum", "consum", "resum", "combin", "defin",
	"imagin", "determin", "examin", "machin", "shin", "lin", "min", "fin",
	"refin", "declin", "win", "dilut", "comput", "execut", "contribut",
	"distribut", "salut", "pollut", "dictat", "rotat", "locat", "donat",
	"hop", "rop", "scop", "shap", "escap", "typ", "hyp", "wip", "pip",
	"rip", "snip", "cop", "scrap", "stak", "brak", "flak", "rak",
	"describ", "subscrib", "prescrib", "vib", "brib", "tun", "prun",
	"din", "pin", "vin", "bon", "ston", "phon", "zon", "clon", "ton",
	"postpon", "styl", "smil", "fil", "pil", "compil", "whil", "tackl",
	"settl", "handl", "bundl", "puzzl", "battl", "bottl", "titl",
	"schedul", "rul", "sampl", "exampl", "coupl", "tripl", "simpl",
	"googl", "cycl", "recycl", "articl", "struggl", "singl", "jungl",
	"angl", "tangl", "gigl", "giggl", "juggl", "snuggl", "smuggl",
	"shuffl", "muffl", "ruffl", "rattl", "startl", "whistl", "wrestl",
	"hustl", "bustl", "castl", "measur", "pressur", "treasur", "assur",
	"ensur", "insur", "cur", "secur", "matur", "figur", "captur",
	"featur", "natur", "lectur", "structur", "cultur", "pictur",
	"manufactur", "textur", "mixtur", "ventur", "adventur", "gestur",
	"postur", "tortur", "nurtur", "injur", "conjur", "endur", "procedur",
	"acquir", "inquir", "wir", "hir", "fir", "tir", "expir", "pric",
	"sacrific", "offic", "devic", "advic", "vic", "twic", "juic", "spic",
	"dic", "entic", "splic", "ic", "smash", "observ", "deserv", "reserv",
	"preserv", "conserv", "curv", "starv", "carv", "involv", "evolv",
	"solv", "resolv", "dissolv", "halv", "delv", "shelv", "nerv", "swerv",
	"dodg", "lodg", "budg", "nudg", "bridg", "pledg", "hedg", "wedg",
	"edg", "urg", "surg", "merg", "emerg", "purg", "forg", "gorg",
	"indulg", "divulg", "bulg", "rang", "arrang", "exchang", "strang",
	"aveng", "reveng", "challeng", "ging", "hing", "cring", "fring",
	"billing", "loung", "scroung", "ploung", "spong", "plung", "expung",
	"bath", "breath", "cloth", "looth", "sooth", "seeth", "teeth",
	"scath", "swath", "lath", "tith", "writh",
}

// vesSingular handles -ves plurals whose singular ends in -fe, not -f.
var vesSingular = map[string]string{
	"knives": "knife", "wives": "wife", "lives": "life", "selves": "self",
	"elves": "elf", "shelves": "shelf", "halves": "half", "loaves": "loaf",
	"thieves": "thief", "leaves": "leaf", "calves": "calf", "wolves": "wolf",
	"scarves": "scarf", "hooves": "hoof", "dwarves": "dwarf",
}
