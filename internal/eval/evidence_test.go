package eval

import (
	"testing"

	"darklight/internal/synth"
)

// buildTruth constructs a minimal ground truth: two aliases per person,
// with controllable revealed facts and link evidence.
func buildTruth() *synth.GroundTruth {
	t := &synth.GroundTruth{
		PersonOf:     map[string]int{},
		AliasesOf:    map[int][]string{},
		Facts:        map[int][]synth.Fact{},
		Revealed:     map[string][]synth.Fact{},
		LinkEvidence: map[string][]string{},
		Vendors:      map[int]bool{},
	}
	add := func(id int, keys ...string) {
		for _, k := range keys {
			t.PersonOf[k] = id
			t.AliasesOf[id] = append(t.AliasesOf[id], k)
		}
	}
	add(1, "dm/alpha", "reddit/alpha_open")
	add(2, "dm/beta", "reddit/beta_open")
	add(3, "dm/gamma", "reddit/gamma_open")
	add(4, "dm/delta")
	add(5, "reddit/delta_open")
	return t
}

func fact(k synth.FactKind, v string) synth.Fact { return synth.Fact{Kind: k, Value: v} }

func TestClassifyTrueViaLinkEvidence(t *testing.T) {
	truth := buildTruth()
	truth.LinkEvidence["dm/alpha"] = []string{"self-reference"}
	ins := NewInspector(truth)
	if got := ins.Classify("dm/alpha", "reddit/alpha_open"); got != VerdictTrue {
		t.Errorf("verdict = %v, want True", got)
	}
	// Link evidence on the other side works too.
	truth2 := buildTruth()
	truth2.LinkEvidence["reddit/beta_open"] = []string{"shared-link"}
	ins2 := NewInspector(truth2)
	if got := ins2.Classify("dm/beta", "reddit/beta_open"); got != VerdictTrue {
		t.Errorf("verdict = %v, want True", got)
	}
}

func TestClassifyFalseOnContradiction(t *testing.T) {
	truth := buildTruth()
	// Different persons revealing contradictory ages (§V-C: "20 years old
	// on the Dark Web and 34 on Reddit").
	truth.Revealed["dm/delta"] = []synth.Fact{fact(synth.FactAge, "20")}
	truth.Revealed["reddit/delta_open"] = []synth.Fact{fact(synth.FactAge, "34")}
	ins := NewInspector(truth)
	if got := ins.Classify("dm/delta", "reddit/delta_open"); got != VerdictFalse {
		t.Errorf("verdict = %v, want False", got)
	}
}

func TestClassifyProbablyTrue(t *testing.T) {
	truth := buildTruth()
	shared := []synth.Fact{
		fact(synth.FactCity, "miami"),
		fact(synth.FactVendorRef, "greenleaf"),
	}
	truth.Revealed["dm/gamma"] = shared
	truth.Revealed["reddit/gamma_open"] = shared
	ins := NewInspector(truth)
	if got := ins.Classify("dm/gamma", "reddit/gamma_open"); got != VerdictProbablyTrue {
		t.Errorf("verdict = %v, want Probably True", got)
	}
}

func TestDrugAloneIsNotDiscriminative(t *testing.T) {
	truth := buildTruth()
	// §V-C: sharing only the kind of drug is not enough.
	truth.Revealed["dm/gamma"] = []synth.Fact{fact(synth.FactDrug, "lsd"), fact(synth.FactCity, "miami")}
	truth.Revealed["reddit/gamma_open"] = []synth.Fact{fact(synth.FactDrug, "lsd"), fact(synth.FactCity, "miami")}
	ins := NewInspector(truth)
	// drug + city = only ONE non-drug consistent kind → Unclear.
	if got := ins.Classify("dm/gamma", "reddit/gamma_open"); got != VerdictUnclear {
		t.Errorf("verdict = %v, want Unclear (drug must not count)", got)
	}
}

func TestClassifyUnclearWithoutEvidence(t *testing.T) {
	truth := buildTruth()
	ins := NewInspector(truth)
	if got := ins.Classify("dm/alpha", "reddit/alpha_open"); got != VerdictUnclear {
		t.Errorf("no-evidence same-person pair = %v, want Unclear", got)
	}
	if got := ins.Classify("dm/delta", "reddit/delta_open"); got != VerdictUnclear {
		t.Errorf("no-evidence different-person pair = %v, want Unclear", got)
	}
}

func TestLinkEvidenceDoesNotLeakAcrossPersons(t *testing.T) {
	truth := buildTruth()
	// delta (dm) has link evidence but delta_open is a DIFFERENT person:
	// the inspector must not return True.
	truth.LinkEvidence["dm/delta"] = []string{"self-reference"}
	ins := NewInspector(truth)
	if got := ins.Classify("dm/delta", "reddit/delta_open"); got == VerdictTrue {
		t.Error("link evidence must only confirm true same-person pairs")
	}
}

func TestClassifyAllAndCounts(t *testing.T) {
	truth := buildTruth()
	truth.LinkEvidence["dm/alpha"] = []string{"brand-reuse"}
	truth.Revealed["dm/delta"] = []synth.Fact{fact(synth.FactAge, "20")}
	truth.Revealed["reddit/delta_open"] = []synth.Fact{fact(synth.FactAge, "34")}
	ins := NewInspector(truth)

	preds := []Prediction{
		{Unknown: "alpha", Candidate: "alpha_open", Score: 0.8},
		{Unknown: "delta", Candidate: "delta_open", Score: 0.6},
		{Unknown: "beta", Candidate: "beta_open", Score: 0.7},
	}
	reports := ins.ClassifyAll(preds,
		func(n string) string { return "dm/" + n },
		func(n string) string { return "reddit/" + n })
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	// Sorted by score descending.
	if reports[0].Unknown != "alpha" || reports[2].Unknown != "delta" {
		t.Error("reports must be sorted by score")
	}
	if !reports[0].Correct || reports[2].Correct {
		t.Error("Correct flags wrong")
	}
	counts := VerdictCounts(reports)
	if counts[VerdictTrue] != 1 || counts[VerdictFalse] != 1 || counts[VerdictUnclear] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
