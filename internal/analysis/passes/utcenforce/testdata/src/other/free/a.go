// Out-of-scope package: utcenforce must stay silent here.
package free

import "time"

func local(sec int64) time.Time { return time.Unix(sec, 0) }
