package attribution

import (
	"darklight/internal/prefilter"
)

// Stage-1 ranking paths. rankDoc (matcher.go) resolves per-query options
// and dispatches here:
//
//   - rankExact: the original full scan — accumulate every subject's gram
//     dot through the inverted index, then normalise all N scores.
//   - rankPruned: lossless WAND-style pruning. Walk only the
//     highest-impact query terms' posting lists, bound every subject's
//     score from the partial sums plus the unwalked tail, and exact-score
//     subjects in bound order until the best remaining bound cannot beat
//     the running k-th score. Bit-identical to rankExact (rank_test.go
//     pins ids, order, and score bits across random worlds).
//   - rankLSH: approximate banded MinHash. Exact-score only subjects
//     sharing a band bucket with the query; recall is measured by
//     internal/eval, not assumed.
//
// All three paths score a subject with identical arithmetic (scoreOne
// reproduces the posting sweep's float32 accumulation order), so the modes
// differ only in which subjects get scored.

// MatchOptions select per-query ranking behaviour. The zero value
// reproduces the matcher's configured defaults exactly.
type MatchOptions struct {
	// K overrides the candidate-set size; 0 means the matcher's K.
	K int
	// Weights override the matcher's block weights when non-nil.
	Weights *Weights
	// Mode selects the stage-1 pre-filter for this query; ModeDefault
	// uses the matcher's configured default.
	Mode prefilter.Mode
	// Pruned overrides the pruned-mode safety knobs when non-nil.
	Pruned *prefilter.PrunedParams
	// LSH overrides the LSH operating point when non-nil.
	LSH *prefilter.LSHParams
}

func (o MatchOptions) prunedParams(d *prefilter.Params) prefilter.PrunedParams {
	if o.Pruned != nil {
		return o.Pruned.WithDefaults()
	}
	return d.Pruned
}

func (o MatchOptions) lshParams(d *prefilter.Params) prefilter.LSHParams {
	if o.LSH != nil {
		return o.LSH.WithDefaults()
	}
	return d.LSH
}

// Safety margins of the pruned mode's bound arithmetic. These are fixed —
// correctness must not be tunable — and the per-query PrunedParams.Slack
// is added on top. boundMul covers the float64 multiply/divide roundings
// of the bound itself; f32ulp scales with the query-term count to cover
// the worst-case drift of the exact scan's float32 gram accumulation
// ((terms-1) rounding steps, each at most 2^-24 of a sum bounded by 1 —
// 2^-23 per term is double that).
const (
	boundMul = 1 + 1.0/(1<<20)
	f32ulp   = 1.0 / (1 << 23)
)

// rankExact is the full O(N) scan, unchanged from the pre-prefilter
// matcher: it remains the executable spec the pruned mode is pinned
// against.
func (m *Matcher) rankExact(ub *blocks, k int, w Weights, uNorm float64, buf *matchBuffers) ([]Scored, prefilter.Stats) {
	scores, tdots := buf.scoreBufs(len(m.known))
	// Gram block via the inverted index.
	for j, idx := range ub.grams.Idx {
		v := float32(ub.grams.Val[j])
		for _, p := range m.postings[idx] {
			tdots[p.subject] += p.value * v
		}
	}
	// Dense blocks + normalisation.
	wf2 := w.Freq * w.Freq
	wa2 := w.Activity * w.Activity
	for i := range m.known {
		dot := float64(tdots[i])
		if wf2 > 0 {
			dot += wf2 * denseDot(ub.freq, m.freqs[i])
		}
		if wa2 > 0 {
			dot += wa2 * denseDot(ub.act, m.acts[i])
		}
		kn := maskNorm(m.mask[i], w)
		if kn == 0 {
			continue
		}
		scores[i] = dot / (uNorm * kn)
	}
	st := prefilter.Stats{Mode: prefilter.ModeExact, Candidates: len(m.known), Scored: len(m.known)}
	out, ev := topKScores(m.known, scores, k, &buf.heap)
	st.Evictions = ev
	return out, st
}

// scoreOne exactly scores one known subject, bit-identical to what the
// full scan computes for it: the forward lists and the query vector are
// both id-sorted, so the float32 merge below applies the same additions in
// the same order as the posting sweep (which visits query terms in
// ascending id and adds subject-side float32 values), and the dense tail
// repeats the scan's float64 arithmetic verbatim.
func (m *Matcher) scoreOne(i int, ub *blocks, qv32 []float32, wf2, wa2 float64, w Weights, uNorm float64) float64 {
	var t float32
	qi := ub.grams.Idx
	si := m.fwdIdx[i]
	sv := m.fwdVal[i]
	a, b := 0, 0
	for a < len(qi) && b < len(si) {
		switch {
		case qi[a] == si[b]:
			t += sv[b] * qv32[a]
			a++
			b++
		case qi[a] < si[b]:
			a++
		default:
			b++
		}
	}
	dot := float64(t)
	if wf2 > 0 {
		dot += wf2 * denseDot(ub.freq, m.freqs[i])
	}
	if wa2 > 0 {
		dot += wa2 * denseDot(ub.act, m.acts[i])
	}
	kn := maskNorm(m.mask[i], w)
	if kn == 0 {
		return 0
	}
	return dot / (uNorm * kn)
}

// rankPruned is the lossless pre-filtered scan.
//
// Why it is safe to skip a subject: its returned score can only be
// (partial gram sum) + (unwalked tail) + (dense caps), scaled by the same
// norms the exact path divides by, plus margins covering every float32-
// vs-float64 discrepancy — so UB >= exact score, always. Subjects the
// walk touched get individual bounds and are popped best-bound first;
// subjects the walk never touched all share one bound per presence mask
// (their partial sum is zero, so only the tail and the dense caps
// remain), which is checked once per mask class instead of building and
// heapifying N entries. The scan stops once the best remaining bound is
// strictly below the current k-th best score; strictness matters because
// an equal score could still win its place by the name tie-break, so ties
// keep scoring. Every skipped subject therefore scores strictly below the
// returned k-th entry and cannot appear in topKScores' output either.
// The processing order (touched heap first, untouched sweep second) does
// not affect the result: the top-k set is unique under the total
// (score desc, name asc) order, whichever order candidates are offered.
func (m *Matcher) rankPruned(ub *blocks, k int, w Weights, uNorm float64, buf *matchBuffers, p prefilter.PrunedParams) ([]Scored, prefilter.Stats) {
	n := len(m.known)
	if k > n {
		k = n
	}
	if k <= 0 {
		return []Scored{}, prefilter.Stats{Mode: prefilter.ModePruned, Pruned: n}
	}
	// Per-term impacts: no subject can gain more than qv_j * max posting
	// value from term j.
	g := &ub.grams
	qv32 := buf.queryVals(g.Val)
	imps := buf.impactBuf(len(g.Idx))
	total := 0.0
	for j, idx := range g.Idx {
		imps[j] = g.Val[j] * float64(m.maxContrib.Get(idx))
		total += imps[j]
	}
	buf.order = prefilter.OrderTermsByImpact(imps, buf.order)

	// Walk posting lists heaviest-term first until the unwalked tail is
	// below TailShare of the total impact: the long tail of near-zero-IDF
	// terms costs most of the scan but barely moves any bound. pscore is
	// all-zero between queries (the touched list below is how it gets
	// cleared), so only subjects this walk reaches are ever visited —
	// never all N.
	pscore, touched := buf.pruneBufs(n)
	tail := total
	budget := p.TailShare * total
	for _, oj := range buf.order {
		if tail <= budget {
			break
		}
		qv := g.Val[oj]
		for _, post := range m.postings[g.Idx[oj]] {
			// Zero contributions (idf-zero grams) are skipped rather than
			// added: every contribution is >= 0, so a touched subject's
			// partial sum is strictly positive — which is what lets the
			// untouched sweep below identify touched subjects by
			// pscore != 0, and keeps the touched list duplicate-free.
			c := qv * float64(post.value)
			if c == 0 {
				continue
			}
			if pscore[post.subject] == 0 {
				touched = append(touched, int32(post.subject))
			}
			pscore[post.subject] += c
		}
		tail -= imps[oj]
	}
	if tail < 0 {
		tail = 0
	}

	// Per-presence-mask constants: the subject-side norm and the dense
	// caps depend only on which blocks a subject has (8 combinations).
	// tailUB[msk] is the shared bound of every untouched subject with that
	// mask: gram partial 0, so only the tail (for gram-bearing subjects)
	// and the dense caps remain.
	wf2 := w.Freq * w.Freq
	wa2 := w.Activity * w.Activity
	// The real-arithmetic gram dot of two unit vectors is at most 1; the
	// exact scan's float32 version may drift above the real value by at
	// most f32Guard, which therefore rides on every gram bound.
	f32Guard := float64(len(g.Idx)) * f32ulp
	var addC, invKn, tailUB [8]float64
	for msk := range invKn {
		if kn := maskNorm(uint8(msk), w); kn > 0 {
			invKn[msk] = boundMul / (uNorm * kn)
		}
		if ub.freq != nil && uint8(msk)&maskFreq != 0 {
			addC[msk] += wf2
		}
		if ub.act != nil && uint8(msk)&maskAct != 0 {
			addC[msk] += wa2
		}
		gb := 0.0
		if uint8(msk)&maskGrams != 0 {
			gb = tail
			if gb > 1 {
				gb = 1
			}
			gb += f32Guard
		}
		tailUB[msk] = (gb+addC[msk])*invKn[msk] + p.Slack
	}
	bounds := buf.bounds[:0]
	for _, id := range touched {
		i := int(id)
		msk := m.mask[i]
		gb := pscore[i] + tail
		if gb > 1 {
			gb = 1
		}
		gb += f32Guard
		bounds = append(bounds, prefilter.Bound{UB: (gb+addC[msk])*invKn[msk] + p.Slack, ID: id})
	}
	buf.bounds = bounds
	bounds.Init()

	topk := buf.heap[:0]
	scored, evictions := 0, 0
	for len(bounds) > 0 {
		if len(topk) == k && bounds[0].UB < topk[0].score {
			break
		}
		b := bounds.Pop()
		i := int(b.ID)
		s := m.scoreOne(i, ub, qv32, wf2, wa2, w, uNorm)
		scored++
		var ev bool
		topk, ev = pushTopK(m.known, topk, k, heapEntry{score: s, index: i})
		if ev {
			evictions++
		}
	}
	buf.bounds = buf.bounds[:0]

	// Untouched sweep: needed only while some mask class's shared bound
	// can still reach the running k-th score (a large TailShare, a large
	// Slack, or a top-k not yet full). tailUB never changes but the k-th
	// score only rises, so the per-mask check inside the loop prunes the
	// sweep further as it goes. Touched subjects have nonzero pscore and
	// are skipped (they were already offered).
	maxTailUB := 0.0
	for _, ubm := range tailUB {
		if ubm > maxTailUB {
			maxTailUB = ubm
		}
	}
	if len(topk) < k || maxTailUB >= topk[0].score {
		for i := 0; i < n; i++ {
			if pscore[i] != 0 {
				continue
			}
			if len(topk) == k && tailUB[m.mask[i]] < topk[0].score {
				continue
			}
			s := m.scoreOne(i, ub, qv32, wf2, wa2, w, uNorm)
			scored++
			var ev bool
			topk, ev = pushTopK(m.known, topk, k, heapEntry{score: s, index: i})
			if ev {
				evictions++
			}
		}
	}
	buf.heap = topk

	// Restore the pscore invariant (all-zero) by clearing only what this
	// query touched.
	for _, id := range touched {
		pscore[id] = 0
	}
	buf.touched = touched[:0]

	st := prefilter.Stats{Mode: prefilter.ModePruned, Candidates: scored, Scored: scored, Pruned: n - scored, Evictions: evictions}
	return drainTopK(m.known, topk), st
}

// rankLSH scores only the subjects sharing a band bucket with the query's
// gram set. Candidate scores are computed by the same scoreOne as the
// lossless paths, so an LSH result differs from exact only by absence —
// never by a different score for a returned name. Fewer than k results
// (or zero) are possible when few subjects collide with the query.
func (m *Matcher) rankLSH(ub *blocks, k int, w Weights, uNorm float64, buf *matchBuffers, lp prefilter.LSHParams) ([]Scored, prefilter.Stats) {
	n := len(m.known)
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	l := m.lshFor(lp)
	// Hash the query's informative gram set — the same MinHash floor the
	// index side applies, so the Jaccard estimate stays symmetric. A query
	// whose grams are ALL weightless (impossible for a unit-norm vector
	// under ~10^8 grams, but query blocks are not re-validated here) falls
	// back to its full set.
	qset := buf.lshq[:0]
	for j, v := range ub.grams.Val {
		if v >= prefilter.MinHashValueFloor {
			qset = append(qset, ub.grams.Idx[j])
		}
	}
	buf.lshq = qset
	if len(qset) == 0 {
		qset = ub.grams.Idx
	}
	buf.cands = l.Candidates(qset, buf.cands)
	qv32 := buf.queryVals(ub.grams.Val)
	wf2 := w.Freq * w.Freq
	wa2 := w.Activity * w.Activity
	topk := buf.heap[:0]
	evictions := 0
	for _, id := range buf.cands {
		i := int(id)
		s := m.scoreOne(i, ub, qv32, wf2, wa2, w, uNorm)
		var ev bool
		topk, ev = pushTopK(m.known, topk, k, heapEntry{score: s, index: i})
		if ev {
			evictions++
		}
	}
	buf.heap = topk
	st := prefilter.Stats{Mode: prefilter.ModeLSH, Candidates: len(buf.cands), Scored: len(buf.cands), Pruned: n - len(buf.cands), Evictions: evictions}
	return drainTopK(m.known, topk), st
}

// lshFor returns the LSH index for one operating point, building it on
// first use. The default point is built on the first LSH query; per-query
// overrides each get their own cached index. Indexes hash each subject's
// informative gram set (prefilter.MinHashValueFloor applied): corpus-
// universal grams carry IDF ≈ 0, so hashing them would inflate every
// cross-subject Jaccard — and with it the candidate count — without
// making true matches any likelier to collide.
func (m *Matcher) lshFor(p prefilter.LSHParams) *prefilter.LSH {
	p = p.WithDefaults()
	m.lshMu.Lock()
	defer m.lshMu.Unlock()
	if l, ok := m.lshIdx[p]; ok {
		return l
	}
	if m.lshSets == nil {
		m.lshSets = make([][]uint32, len(m.known))
		for i := range m.lshSets {
			m.lshSets[i] = lshInformative(m.fwdIdx[i], m.fwdVal[i])
		}
	}
	l := prefilter.BuildLSH(len(m.known), func(i int) []uint32 { return m.lshSets[i] }, p)
	m.lshIdx[p] = l
	return l
}

// lshInformative filters a forward list to the ids whose value clears the
// MinHash floor, returning the input slice unchanged (no copy) when
// nothing is filtered — the common case for subjects with no weightless
// grams.
func lshInformative(ids []uint32, vals []float32) []uint32 {
	drop := 0
	for _, v := range vals {
		if v < prefilter.MinHashValueFloor {
			drop++
		}
	}
	if drop == 0 {
		return ids
	}
	out := make([]uint32, 0, len(ids)-drop)
	for j, v := range vals {
		if v >= prefilter.MinHashValueFloor {
			out = append(out, ids[j])
		}
	}
	return out
}
