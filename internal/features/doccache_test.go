package features

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestDocCacheMatchesDirectExtract(t *testing.T) {
	cfg := FinalConfig()
	texts := []string{
		"the quick brown fox jumps over the lazy dog, twice even!",
		"an entirely different document with: punctuation; and 123 digits",
		"",
	}
	c := NewDocCache(cfg, texts)
	if c.Len() != len(texts) {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, text := range texts {
		if c.Cached(i) {
			t.Fatalf("entry %d extracted before first Get", i)
		}
		got := c.Get(i)
		if !reflect.DeepEqual(got, Extract(text, cfg).Sorted()) {
			t.Fatalf("entry %d: cached doc differs from direct Extract", i)
		}
		if !c.Cached(i) {
			t.Fatalf("entry %d not cached after Get", i)
		}
		if c.Get(i) != got {
			t.Fatalf("entry %d: repeat Get returned a different pointer", i)
		}
	}
}

func TestDocCacheConcurrentGetCanonical(t *testing.T) {
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = fmt.Sprintf("document number %d with some shared words and its own marker m%dx", i, i)
	}
	c := NewDocCache(ReductionConfig(), texts)
	const goroutines = 16
	ptrs := make([][]*SortedDoc, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ptrs[g] = make([]*SortedDoc, len(texts))
			for i := range texts {
				ptrs[g][i] = c.Get(i)
			}
		}(g)
	}
	wg.Wait()
	for i := range texts {
		for g := 1; g < goroutines; g++ {
			if ptrs[g][i] != ptrs[0][i] {
				t.Fatalf("entry %d: goroutines observed different canonical docs", i)
			}
		}
	}
}
