// Fixture for the lockbalance pass: every mutex acquisition must be
// released on all paths out of the function, and no path may re-acquire
// a mutex it definitely holds.
package serve

import "sync"

type svc struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func ok(s *svc) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func okDefer(s *svc) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func okDeferLit(s *svc) {
	s.mu.Lock()
	defer func() {
		s.n--
		s.mu.Unlock()
	}()
	s.n++
}

func leakEarlyReturn(s *svc, err error) error {
	s.mu.Lock()
	if err != nil {
		return err // want `s\.mu\.Lock\(\) is not released on every path to this return`
	}
	s.mu.Unlock()
	return nil
}

func leakEnd(s *svc) {
	s.mu.Lock()
	s.n++
} // want `s\.mu\.Lock\(\) is not released on every path to this function end`

func doubleLock(s *svc) {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu\.Lock\(\) on a path where s\.mu is already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func upgradeDeadlock(s *svc) {
	s.rw.RLock()
	s.rw.Lock() // want `s\.rw\.Lock\(\) while s\.rw\.RLock\(\) is held on the same path`
	s.rw.Unlock()
	s.rw.RUnlock()
}

// A conditionally acquired lock balanced by a conditional defer on the
// same path is fine: held and deferred facts travel together.
func conditional(s *svc, cond bool) {
	if cond {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.n++
}

func loopBalanced(s *svc, xs []int) {
	for _, x := range xs {
		s.mu.Lock()
		s.n += x
		s.mu.Unlock()
	}
}

// A lock held at a panic exit is exempt: the goroutine is unwinding.
func panicExit(s *svc) {
	s.mu.Lock()
	panic("fatal")
}

func branchesBalanced(s *svc, cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func readSide(s *svc) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func switchBalanced(s *svc, v int) {
	s.mu.Lock()
	switch v {
	case 1:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
}

func switchLeaks(s *svc, v int) {
	s.mu.Lock()
	switch v {
	case 1:
		s.mu.Unlock()
	}
} // want `s\.mu\.Lock\(\) is not released on every path to this function end`

// Function literals balance their own locks; the enclosing function's
// analysis never descends into them.
func closuresAreSeparate(s *svc) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// A goroutine literal that leaks reports at its own closing brace; the
// enclosing function stays clean.
func leakInGoroutineLiteral(s *svc) {
	go func() {
		s.mu.Lock()
		s.n++
	}() // want `s\.mu\.Lock\(\) is not released on every path to this function end`
}

// A waiver on the line above the finding suppresses it — the reason is
// mandatory.
func waived(s *svc) {
	s.mu.Lock()
	//lint:ignore lockbalance fixture: intentionally returns holding the lock
	return
}
