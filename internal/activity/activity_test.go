package activity

import (
	"errors"
	"math"
	"testing"
	"time"

	"darklight/internal/timeutil"
)

// ts builds n weekday timestamps at the given UTC hour, spread over
// distinct days starting 2017-01-02 (a Monday).
func weekdayTimestamps(n, hour int) []time.Time {
	out := make([]time.Time, 0, n)
	day := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	for len(out) < n {
		if !timeutil.IsWeekend(day) {
			out = append(out, time.Date(day.Year(), day.Month(), day.Day(), hour, 15, 0, 0, time.UTC))
		}
		day = day.AddDate(0, 0, 1)
	}
	return out
}

func TestBuildSingleHourProfile(t *testing.T) {
	p, err := Build(weekdayTimestamps(40, 14), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Samples != 40 {
		t.Errorf("Samples = %d", p.Samples)
	}
	if p.Bins[14] != 1 {
		t.Errorf("Bins[14] = %v, want 1", p.Bins[14])
	}
	if p.PeakHour() != 14 {
		t.Errorf("PeakHour = %d", p.PeakHour())
	}
	if p.Entropy() != 0 {
		t.Errorf("single-hour entropy = %v, want 0", p.Entropy())
	}
}

func TestBinaryPerDayHour(t *testing.T) {
	// Many posts within ONE (day, hour) bin count once — eq. (1)'s a_u is
	// binary.
	base := time.Date(2017, 3, 1, 10, 0, 0, 0, time.UTC)
	var stamps []time.Time
	for i := 0; i < 50; i++ {
		stamps = append(stamps, base.Add(time.Duration(i)*time.Second))
	}
	// Plus one post in another hour on another day.
	stamps = append(stamps, time.Date(2017, 3, 2, 20, 0, 0, 0, time.UTC))
	p, err := Build(stamps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ActiveBins != 2 {
		t.Fatalf("ActiveBins = %d, want 2", p.ActiveBins)
	}
	if p.Bins[10] != 0.5 || p.Bins[20] != 0.5 {
		t.Errorf("bins = %v / %v, want 0.5 each", p.Bins[10], p.Bins[20])
	}
}

func TestMinTimestamps(t *testing.T) {
	_, err := Build(weekdayTimestamps(29, 9), Options{})
	if !errors.Is(err, ErrInsufficientTimestamps) {
		t.Errorf("err = %v, want ErrInsufficientTimestamps", err)
	}
	if _, err := Build(weekdayTimestamps(30, 9), Options{}); err != nil {
		t.Errorf("30 timestamps must suffice: %v", err)
	}
	// Override.
	if _, err := Build(weekdayTimestamps(5, 9), Options{MinTimestamps: 5}); err != nil {
		t.Errorf("override failed: %v", err)
	}
}

func TestWeekendExclusion(t *testing.T) {
	stamps := weekdayTimestamps(30, 9)
	// Add 10 Saturday posts at hour 23.
	sat := time.Date(2017, 1, 7, 23, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		stamps = append(stamps, sat.AddDate(0, 0, 7*i))
	}
	p, err := Build(stamps, Options{ExcludeWeekends: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bins[23] != 0 {
		t.Error("weekend posts must be excluded")
	}
	if p.Samples != 30 {
		t.Errorf("Samples = %d, want 30", p.Samples)
	}
	// Without exclusion they count.
	p2, _ := Build(stamps, Options{})
	if p2.Bins[23] == 0 {
		t.Error("weekend posts must count when exclusion is off")
	}
}

func TestHolidayExclusion(t *testing.T) {
	opts := PaperOptions(2017)
	july4 := time.Date(2017, 7, 4, 12, 0, 0, 0, time.UTC) // Tuesday, holiday
	// 40 weekdays: a couple (Jan 2, Jan 16) are themselves 2017 holidays
	// and get excluded, which is fine — enough remain.
	stamps := append(weekdayTimestamps(40, 9), july4)
	p, err := Build(stamps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bins[12] != 0 {
		t.Error("holiday posts must be excluded")
	}
}

func TestUTCAlignment(t *testing.T) {
	// Forum clock is UTC-5: local 20:00 is 01:00 UTC next day.
	local := weekdayTimestamps(35, 20)
	p, err := Build(local, Options{ForumUTCOffsetMinutes: -300})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bins[1] != 1 {
		t.Errorf("aligned bin = %v, want all mass at hour 1", p.Bins)
	}
}

func TestProfileVectorAndCosine(t *testing.T) {
	a, _ := Build(weekdayTimestamps(30, 9), Options{})
	b, _ := Build(weekdayTimestamps(30, 9), Options{})
	c, _ := Build(weekdayTimestamps(30, 21), Options{})
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical profiles cosine = %v", got)
	}
	if got := Cosine(a, c); got != 0 {
		t.Errorf("disjoint profiles cosine = %v", got)
	}
	if a.Vector().Len() != 1 {
		t.Errorf("vector entries = %d", a.Vector().Len())
	}
}

func TestProfileSumsToOne(t *testing.T) {
	stamps := append(weekdayTimestamps(20, 9), weekdayTimestamps(20, 15)...)
	p, err := Build(stamps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, b := range p.Bins {
		sum += b
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("profile sums to %v", sum)
	}
}

func TestUniformEntropy(t *testing.T) {
	var stamps []time.Time
	day := time.Date(2017, 1, 2, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 24; h++ {
		stamps = append(stamps, time.Date(2017, 1, 2+h/24, h, 0, 0, 0, time.UTC))
	}
	for len(stamps) < 48 { // two full uniform days
		day = day.AddDate(0, 0, 1)
		h := len(stamps) % 24
		stamps = append(stamps, time.Date(day.Year(), day.Month(), day.Day(), h, 0, 0, 0, time.UTC))
	}
	p, err := Build(stamps, Options{MinTimestamps: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(24)
	if math.Abs(p.Entropy()-want) > 0.01 {
		t.Errorf("uniform entropy = %v, want %v", p.Entropy(), want)
	}
}

func TestPaperOptions(t *testing.T) {
	opts := PaperOptions(2017, 2018)
	if !opts.ExcludeWeekends {
		t.Error("paper options must exclude weekends")
	}
	if opts.Holidays.Len() != 20 {
		t.Errorf("two years of holidays = %d entries, want 20", opts.Holidays.Len())
	}
}
