package store

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"darklight/internal/attribution"
	"darklight/internal/forum"
)

// BuildIndex builds the first index generation from a corpus: the
// dataset is canonicalised (name-sorted), subjects are derived, and the
// matcher is built incrementally so the result can be snapshotted and
// folded. The dataset is sorted in place and retained by the index.
func BuildIndex(ctx context.Context, ds *forum.Dataset, opts attribution.Options, subjOpts attribution.SubjectOptions) (*Index, error) {
	ds.SortByName()
	subjects, err := attribution.BuildSubjects(ds, subjOpts)
	if err != nil {
		return nil, err
	}
	opts.Incremental = true
	m, err := attribution.NewMatcherContext(ctx, subjects, opts)
	if err != nil {
		return nil, err
	}
	digest, err := forum.DigestJSONL(ds)
	if err != nil {
		return nil, err
	}
	return &Index{Version: 1, Dataset: ds, Subjects: m.Subjects(), Matcher: m, Digest: digest}, nil
}

// ApplyThreads folds scraped thread records into a copy of the dataset:
// messages are grouped by author, known aliases gain their new messages,
// unseen authors become new aliases. The input dataset is never mutated
// — changed aliases get freshly allocated message slices, unchanged ones
// share storage with the original. Returns the new dataset in canonical
// name-sorted order plus the sorted names of the aliases that changed.
//
// Each record's messages are taken as new to the corpus; the scraper's
// checkpoint already guarantees a completed thread is never re-scraped.
func ApplyThreads(ds *forum.Dataset, recs []forum.ThreadRecord) (*forum.Dataset, []string) {
	byAuthor := make(map[string][]forum.Message)
	var order []string
	for _, rec := range recs {
		for _, msg := range rec.Messages {
			if msg.Author == "" {
				continue
			}
			if _, ok := byAuthor[msg.Author]; !ok {
				order = append(order, msg.Author)
			}
			byAuthor[msg.Author] = append(byAuthor[msg.Author], msg)
		}
	}
	out := forum.NewDataset(ds.Name, ds.Platform)
	out.Aliases = slices.Clone(ds.Aliases)
	idx := make(map[string]int, len(out.Aliases))
	for i := range out.Aliases {
		idx[out.Aliases[i].Name] = i
	}
	changed := make([]string, 0, len(order))
	for _, name := range order {
		msgs := byAuthor[name]
		if i, ok := idx[name]; ok {
			a := &out.Aliases[i]
			// Clone before appending: the copied header still points at the
			// original's backing array.
			a.Messages = append(slices.Clone(a.Messages), msgs...)
		} else {
			out.Add(forum.Alias{Name: name, Messages: msgs})
		}
		changed = append(changed, name)
	}
	out.SortByName()
	sort.Strings(changed)
	return out, changed
}

// Replay folds journal entries into the index, producing the next
// generation. Entries at or below the index's LastSeq are skipped, so
// replaying the whole journal after a crash between Save and
// CompactJournal is idempotent. Only the changed aliases are re-derived
// and folded; the result is bit-identical to a full rebuild over the
// merged corpus. idx itself is never mutated and keeps serving while the
// fold runs; with no new entries it is returned unchanged.
func Replay(ctx context.Context, idx *Index, entries []JournalEntry, subjOpts attribution.SubjectOptions) (*Index, error) {
	lastSeq := idx.LastSeq
	var recs []forum.ThreadRecord
	for _, e := range entries {
		if e.Seq <= lastSeq {
			continue
		}
		lastSeq = e.Seq
		recs = append(recs, e.Thread)
	}
	if len(recs) == 0 {
		return idx, nil
	}
	ds, changed := ApplyThreads(idx.Dataset, recs)

	// Subject construction is strictly per-alias, so building the changed
	// aliases from a mini-dataset yields exactly the subjects a full
	// BuildSubjects over the merged corpus would for those names.
	mini := forum.NewDataset(ds.Name, ds.Platform)
	for _, name := range changed {
		a, err := ds.Find(name)
		if err != nil {
			return nil, fmt.Errorf("store: replay: %w", err)
		}
		mini.Add(*a)
	}
	subjects, err := attribution.BuildSubjects(mini, subjOpts)
	if err != nil {
		return nil, err
	}
	m, err := idx.Matcher.Fold(ctx, subjects)
	if err != nil {
		return nil, err
	}
	digest, err := forum.DigestJSONL(ds)
	if err != nil {
		return nil, err
	}
	return &Index{
		Version:  idx.Version + 1,
		LastSeq:  lastSeq,
		Dataset:  ds,
		Subjects: m.Subjects(),
		Matcher:  m,
		Digest:   digest,
	}, nil
}
