package eval

// Operating-point evaluation for the stage-1 candidate pre-filters
// (internal/prefilter). The pruned mode is lossless by construction, so
// its rows exist to show the work saved; the LSH mode trades recall for
// candidates, and this harness is where that trade is MEASURED — the
// matcher never assumes a recall number that did not come out of a sweep
// like this one.
//
// Everything here is deterministic (seeded generator, count-based work
// metrics, no durations), so the table can be pinned by tests and emitted
// into run manifests. Wall-clock speedups live in the benchmark suite
// (BENCH_prefilter.json via cmd/benchdiff), not here: a manifest must not
// change because the machine was busy.

import (
	"fmt"
	"math/rand"
	"strings"

	"darklight/internal/attribution"
	"darklight/internal/prefilter"
)

// PrefilterPoint is one pre-filter operating point to evaluate: a mode
// plus its knobs (zero knobs mean the mode's defaults).
type PrefilterPoint struct {
	// Mode is "exact", "pruned", or "lsh".
	Mode string
	// Slack / TailShare configure the pruned mode.
	Slack     float64
	TailShare float64
	// Bands / Rows configure the LSH mode.
	Bands int
	Rows  int
}

// Label renders the point compactly ("pruned slack=1e-03 tail=0.05",
// "lsh 32x3").
func (p PrefilterPoint) Label() string {
	switch p.Mode {
	case "lsh":
		lp := prefilter.LSHParams{Bands: p.Bands, Rows: p.Rows}.WithDefaults()
		return fmt.Sprintf("lsh %dx%d", lp.Bands, lp.Rows)
	case "pruned":
		pp := prefilter.PrunedParams{Slack: p.Slack, TailShare: p.TailShare}.WithDefaults()
		return fmt.Sprintf("pruned slack=%.0e tail=%.2f", pp.Slack, pp.TailShare)
	default:
		return p.Mode
	}
}

// PrefilterRow is one evaluated operating point.
type PrefilterRow struct {
	Point PrefilterPoint
	// Recall is the mean recall-of-true-top-k: per query, the fraction of
	// the exact top-k names the point's top-k also returned. Pruned rows
	// are 1 by construction (and tests pin that).
	Recall float64
	// Candidates is the mean number of subjects exactly scored per query.
	Candidates float64
	// Work is Candidates divided by the known-set size — the fraction of
	// the exact scan's scoring work this point performs. The wall-clock
	// speedup this buys is measured by the benchmark suite.
	Work float64
}

// PrefilterTable is the result of one sweep.
type PrefilterTable struct {
	// Known is the known-set size, Queries the query count, K the top-k
	// depth the recall is measured at.
	Known   int
	Queries int
	K       int
	Rows    []PrefilterRow
}

// String renders the operating-point table.
func (t *PrefilterTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pre-filter operating points (N=%d known, %d queries, recall of true top-%d)\n",
		t.Known, t.Queries, t.K)
	fmt.Fprintf(&b, "%-28s %8s %12s %8s\n", "point", "recall", "candidates", "work")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s %8.3f %12.1f %7.1f%%\n",
			r.Point.Label(), r.Recall, r.Candidates, 100*r.Work)
	}
	return b.String()
}

// DefaultSweepPoints is the standard grid: the pruned default and its
// neighbours (tighter and looser bounds), and the LSH default 32x3 with
// the banding neighbours that bracket it on the recall/work curve.
func DefaultSweepPoints() []PrefilterPoint {
	return []PrefilterPoint{
		{Mode: "pruned", Slack: 1e-12, TailShare: -1},
		{Mode: "pruned"}, // defaults
		{Mode: "pruned", Slack: 1e-2, TailShare: 0.2},
		{Mode: "lsh", Bands: 8, Rows: 4},
		{Mode: "lsh", Bands: 16, Rows: 3},
		{Mode: "lsh"}, // default 32x3
		{Mode: "lsh", Bands: 32, Rows: 2},
		{Mode: "lsh", Bands: 64, Rows: 2},
	}
}

// SweepPrefilter evaluates each operating point against the exact top-k
// over the same matcher and queries. The exact ranking is computed once
// per query; every point then reruns the query in its mode and is scored
// on how much of the true top-k it recovered and how many subjects it
// exactly scored.
func SweepPrefilter(m *attribution.Matcher, queries []attribution.Subject, k int, points []PrefilterPoint) (*PrefilterTable, error) {
	if k <= 0 {
		return nil, fmt.Errorf("eval: sweep needs k > 0, got %d", k)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("eval: sweep needs at least one query")
	}
	// Exact truth, once per query.
	truth := make([]map[string]bool, len(queries))
	known := 0
	for qi := range queries {
		exact, st := m.RankDetailed(&queries[qi], attribution.MatchOptions{K: k, Mode: prefilter.ModeExact})
		known = st.Candidates + st.Pruned
		truth[qi] = make(map[string]bool, len(exact))
		for _, s := range exact {
			truth[qi][s.Name] = true
		}
	}
	t := &PrefilterTable{Known: known, Queries: len(queries), K: k}
	for _, p := range points {
		mode, err := prefilter.ParseMode(p.Mode)
		if err != nil {
			return nil, fmt.Errorf("eval: sweep point %+v: %w", p, err)
		}
		o := attribution.MatchOptions{K: k, Mode: mode}
		switch mode {
		case prefilter.ModePruned:
			o.Pruned = &prefilter.PrunedParams{Slack: p.Slack, TailShare: p.TailShare}
		case prefilter.ModeLSH:
			o.LSH = &prefilter.LSHParams{Bands: p.Bands, Rows: p.Rows}
		}
		row := PrefilterRow{Point: p}
		for qi := range queries {
			got, st := m.RankDetailed(&queries[qi], o)
			hits := 0
			for _, s := range got {
				if truth[qi][s.Name] {
					hits++
				}
			}
			if len(truth[qi]) > 0 {
				row.Recall += float64(hits) / float64(len(truth[qi]))
			}
			row.Candidates += float64(st.Scored)
		}
		row.Recall /= float64(len(queries))
		row.Candidates /= float64(len(queries))
		if known > 0 {
			row.Work = row.Candidates / float64(known)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PrefilterWorldConfig sizes the community-structured synthetic world the
// sweep runs on. Unlike the adversarially homogeneous alter-ego worlds
// (where every author shares one vocabulary and gram-set Jaccard barely
// separates authors), this world models the regime LSH is built for:
// communities with distinct vocabularies, so same-community documents
// share most of their grams and cross-community documents almost none.
type PrefilterWorldConfig struct {
	// Communities is the number of disjoint-vocabulary communities.
	Communities int
	// PerCommunity is the number of known authors in each community.
	PerCommunity int
	// QueriesPer is the number of query documents drawn per community.
	QueriesPer int
	// WordsPerDoc is the document length in words.
	WordsPerDoc int
	// Seed drives the generator.
	Seed int64
}

// WithDefaults fills zero fields with the standard sweep world: 6
// communities of 12 authors (72 known), 3 queries each.
func (c PrefilterWorldConfig) WithDefaults() PrefilterWorldConfig {
	if c.Communities == 0 {
		c.Communities = 6
	}
	if c.PerCommunity == 0 {
		c.PerCommunity = 12
	}
	if c.QueriesPer == 0 {
		c.QueriesPer = 3
	}
	if c.WordsPerDoc == 0 {
		c.WordsPerDoc = 240
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// communityTags give each community's words a distinct character shape so
// char 1-5 grams separate communities as cleanly as word grams do.
var communityTags = []string{
	"zarfel", "quomik", "vexdun", "lyrosh", "hubrent", "jipkal",
	"wombrey", "taxilon", "gredfum", "nysper", "okvalt", "drimsou",
}

// PrefilterWorld generates the community world: known subjects plus
// queries written in the same community voices. Every document draws 92%
// of its words from its community's private vocabulary and 8% from a
// small shared function-word pool, so in-community gram Jaccard lands in
// the 0.45-0.60 band where the default 32x3 LSH point catches nearly every
// true candidate, while cross-community Jaccard stays under ~0.1.
func PrefilterWorld(cfg PrefilterWorldConfig) (known, queries []attribution.Subject) {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	shared := []string{"the", "and", "for", "with", "that", "this", "from", "have", "will", "about"}
	const vocabPer = 60
	vocab := make([][]string, cfg.Communities)
	for c := range vocab {
		tag := communityTags[c%len(communityTags)]
		words := make([]string, vocabPer)
		for j := range words {
			words[j] = fmt.Sprintf("%s%c%d", tag, 'a'+byte(j%26), j)
		}
		vocab[c] = words
	}
	doc := func(c int) string {
		var b strings.Builder
		for w := 0; w < cfg.WordsPerDoc; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			if rng.Intn(100) < 8 {
				b.WriteString(shared[rng.Intn(len(shared))])
			} else {
				b.WriteString(vocab[c][rng.Intn(vocabPer)])
			}
		}
		return b.String()
	}
	for c := 0; c < cfg.Communities; c++ {
		for a := 0; a < cfg.PerCommunity; a++ {
			known = append(known, attribution.Subject{
				Name: fmt.Sprintf("c%02d-author%02d", c, a),
				Text: doc(c),
			})
		}
		for q := 0; q < cfg.QueriesPer; q++ {
			queries = append(queries, attribution.Subject{
				Name: fmt.Sprintf("c%02d-query%02d", c, q),
				Text: doc(c),
			})
		}
	}
	return known, queries
}
