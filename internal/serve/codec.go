// Package serve is the handler layer of cmd/attributed: versioned HTTP
// JSON endpoints over a darklight matcher, unit-testable without sockets.
//
// The response contract is deterministic: responses are encoded from
// structs (stable field order), candidate lists are sorted best-first with
// score ties broken by ascending alias name (the matcher's own order,
// re-asserted here), and a response is computed entirely against one
// immutable index snapshot — a reload never yields a torn or mixed-index
// response. The concurrency tests pin /v1/match bodies byte-identical to
// the darklight facade's Match output for the same corpus.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// DefaultMaxBody caps request bodies at 1 MiB unless Config overrides it.
const DefaultMaxBody = 1 << 20

// Error is the structured error envelope every rejected request carries,
// serialized as {"error": {...}}.
type Error struct {
	// Code is a stable machine-readable identifier (e.g. "unknown_alias").
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Status is the HTTP status the error was served with.
	Status int `json:"status"`

	// retryAfter, when positive, is surfaced as a Retry-After header.
	retryAfter time.Duration
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Message) }

// errorEnvelope is the wire form of an Error.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

// Error codes. Stable: clients and the golden handler tests key on them.
const (
	CodeInvalidJSON      = "invalid_json"
	CodeUnknownField     = "unknown_field"
	CodeInvalidRequest   = "invalid_request"
	CodeUnknownAlias     = "unknown_alias"
	CodeUnauthorized     = "unauthorized"
	CodeInvalidAPIKey    = "invalid_api_key"
	CodeRateLimited      = "rate_limited"
	CodePayloadTooLarge  = "payload_too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeDraining         = "draining"
	CodeTimeout          = "timeout"
	CodeInternal         = "internal"
)

func errInvalidJSON(msg string) *Error {
	return &Error{Code: CodeInvalidJSON, Message: msg, Status: http.StatusBadRequest}
}

func errUnknownField(field string) *Error {
	return &Error{Code: CodeUnknownField, Message: "unknown field " + field, Status: http.StatusBadRequest}
}

func errInvalidRequest(msg string) *Error {
	return &Error{Code: CodeInvalidRequest, Message: msg, Status: http.StatusBadRequest}
}

func errUnknownAlias(name string) *Error {
	return &Error{Code: CodeUnknownAlias, Message: fmt.Sprintf("alias %q is not in the loaded corpus", name), Status: http.StatusNotFound}
}

func errPayloadTooLarge(limit int64) *Error {
	return &Error{Code: CodePayloadTooLarge, Message: fmt.Sprintf("request body exceeds the %d-byte limit", limit), Status: http.StatusRequestEntityTooLarge}
}

// MessageSpec is one inline query message.
type MessageSpec struct {
	// Body is the raw message text.
	Body string `json:"body"`
	// Time is the posting time in RFC 3339 (e.g. "2017-03-04T10:00:00Z").
	// Offsets are honoured as forum-local time, exactly like scraped data.
	Time string `json:"time"`
}

// SubjectSpec names the query subject: either a reference into the loaded
// query corpus ("alias") or an inline subject ("name" + "messages"),
// never both. Inline subjects are built by the same BuildSubjects path the
// batch pipeline uses — longest messages first under the word budget, with
// length ties broken by the injected sequential message id (request
// order), so the document is a pure function of the request.
type SubjectSpec struct {
	Alias    string        `json:"alias,omitempty"`
	Name     string        `json:"name,omitempty"`
	Messages []MessageSpec `json:"messages,omitempty"`
}

// RankRequest is the /v1/rank body.
type RankRequest struct {
	Subject SubjectSpec `json:"subject"`
	// K overrides the candidate-set size; 0 means the server's default.
	K int `json:"k,omitempty"`
	// Prefilter selects the stage-1 candidate pre-filter for this query:
	// "exact", "pruned" (lossless, bit-identical to exact), or "lsh"
	// (approximate banded MinHash). Empty means the server's default, and
	// leaves the response in its legacy shape (no "prefilter" stats
	// object).
	Prefilter string `json:"prefilter,omitempty"`
}

// RescoreRequest is the /v1/rescore body. Every candidate must name a
// known subject in the current index.
type RescoreRequest struct {
	Subject    SubjectSpec `json:"subject"`
	Candidates []string    `json:"candidates"`
}

// MatchRequest is the /v1/match body.
type MatchRequest struct {
	Subject SubjectSpec `json:"subject"`
}

// Candidate is one scored known alias.
type Candidate struct {
	Alias string  `json:"alias"`
	Score float64 `json:"score"`
}

// PrefilterInfo reports what the stage-1 candidate pre-filter did for one
// query: the mode that actually ran, how many known subjects it exactly
// scored, and how many it skipped. Candidates + Pruned is the known-set
// size.
type PrefilterInfo struct {
	Mode       string `json:"mode"`
	Candidates int    `json:"candidates"`
	Pruned     int    `json:"pruned"`
}

// RankResponse is the /v1/rank reply: the stage-1 top-k, best first,
// score ties broken by ascending alias name. Prefilter is present only
// when the request set the "prefilter" knob — requests that do not opt in
// get byte-identical legacy responses.
type RankResponse struct {
	IndexVersion int            `json:"index_version"`
	Subject      string         `json:"subject"`
	Candidates   []Candidate    `json:"candidates"`
	Prefilter    *PrefilterInfo `json:"prefilter,omitempty"`
}

// RescoreResponse is the /v1/rescore reply: the stage-2 rescoring of the
// requested candidates, best first.
type RescoreResponse struct {
	IndexVersion int         `json:"index_version"`
	Subject      string      `json:"subject"`
	Rescored     []Candidate `json:"rescored"`
}

// MatchResponse is the /v1/match reply — the full two-stage §IV-I outcome,
// field-for-field the facade's MatchResult plus the index version and the
// decision threshold.
type MatchResponse struct {
	IndexVersion int         `json:"index_version"`
	Subject      string      `json:"subject"`
	Candidates   []Candidate `json:"candidates"`
	Rescored     []Candidate `json:"rescored"`
	Best         *Candidate  `json:"best,omitempty"`
	Accepted     bool        `json:"accepted"`
	Threshold    float64     `json:"threshold"`
}

// HealthResponse is the /v1/healthz reply. Healthz stays reachable while
// draining (Status flips to "draining") so orchestrators can watch the
// drain progress. Reloads counts installed snapshots (the initial load is
// 1); LastJournalSeq appears only for store-backed corpora and is the
// journal sequence the live snapshot was built from, so an operator can
// compare it against the writer's position to see how stale the server is.
type HealthResponse struct {
	Status         string  `json:"status"`
	IndexVersion   int     `json:"index_version"`
	KnownSubjects  int     `json:"known_subjects"`
	QuerySubjects  int     `json:"query_subjects"`
	Reloads        int     `json:"reloads"`
	LastJournalSeq *uint64 `json:"last_journal_seq,omitempty"`
	Draining       bool    `json:"draining"`
}

// decodeRequest strictly decodes one JSON request body into dst: bodies
// over limit (when limit > 0), malformed JSON, unknown fields, and
// trailing data are all rejected with a structured *Error. It never
// panics on hostile input (FuzzDecodeRequest pins this).
func decodeRequest(data []byte, limit int64, dst any) *Error {
	if limit > 0 && int64(len(data)) > limit {
		return errPayloadTooLarge(limit)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if field, ok := unknownField(err); ok {
			return errUnknownField(field)
		}
		return errInvalidJSON(err.Error())
	}
	// A request is exactly one JSON value; trailing data means the client
	// framed the body wrong.
	if dec.More() {
		return errInvalidJSON("trailing data after the request object")
	}
	return nil
}

// unknownField extracts the field name from encoding/json's
// DisallowUnknownFields error, which is only exposed as text.
func unknownField(err error) (string, bool) {
	const marker = `unknown field `
	s := err.Error()
	i := strings.Index(s, marker)
	if i < 0 {
		return "", false
	}
	return s[i+len(marker):], true
}

// validate rejects a SubjectSpec that names no subject or names one both
// ways. It returns nil for well-formed specs; resolution errors (alias not
// found, bad timestamps) surface later.
func (s *SubjectSpec) validate() *Error {
	inline := s.Name != "" || len(s.Messages) > 0
	switch {
	case s.Alias == "" && !inline:
		return errInvalidRequest("subject: set \"alias\" or an inline \"name\" + \"messages\"")
	case s.Alias != "" && inline:
		return errInvalidRequest("subject: \"alias\" and inline \"name\"/\"messages\" are mutually exclusive")
	case s.Alias == "" && s.Name == "":
		return errInvalidRequest("subject: inline subjects need a \"name\"")
	case s.Alias == "" && len(s.Messages) == 0:
		return errInvalidRequest("subject: inline subjects need at least one message")
	}
	return nil
}

// writeJSON writes one response value with the given status. Encoding is
// compact with a trailing newline; struct field order makes the bytes
// deterministic.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Responses are plain structs of strings/numbers; Marshal cannot
		// fail on them. Guard anyway rather than panic the connection.
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed","status":500}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(status)
	//lint:ignore errdrop a failed response write means the client hung up; there is no one left to report to
	w.Write(append(data, '\n'))
}

// writeError writes the structured envelope for e, including a Retry-After
// header when the error carries a wait hint.
func writeError(w http.ResponseWriter, e *Error) {
	if e.retryAfter > 0 {
		secs := int64(e.retryAfter / time.Second)
		if e.retryAfter%time.Second != 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.Status, errorEnvelope{Error: e})
}
