package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterEvictsIdleBuckets pins the bucket map size under key
// churn. Before eviction the map held one entry per distinct key for the
// life of the daemon, so a scan of unauthenticated hosts (or minted API
// keys) grew it without bound.
func TestRateLimiterEvictsIdleBuckets(t *testing.T) {
	clock := newFakeClock()
	l := newRateLimiter(1, 1, clock) // idle window = burst/rate = 1s

	const churn = 1000
	maxSeen := 0
	for i := 0; i < churn; i++ {
		ok, _ := l.allow(fmt.Sprintf("host-%d", i))
		if !ok {
			t.Fatalf("fresh key %d denied", i)
		}
		if n := l.numBuckets(); n > maxSeen {
			maxSeen = n
		}
		clock.Advance(100 * time.Millisecond)
	}

	// Each sweep (once per 1s window) clears every bucket older than the
	// window; at 10 keys/second the live set can never exceed two windows'
	// worth of clients plus slack. Without eviction maxSeen == churn.
	const bound = 25
	if maxSeen > bound {
		t.Errorf("bucket map peaked at %d entries over %d churned keys, want <= %d (idle buckets never evicted?)", maxSeen, churn, bound)
	}
}

// TestRateLimiterEvictionIsLossless verifies eviction cannot change any
// admission decision: a bucket is only dropped once idle long enough to
// have refilled to full burst, which is exactly the state a recreated
// bucket starts in.
func TestRateLimiterEvictionIsLossless(t *testing.T) {
	clock := newFakeClock()
	l := newRateLimiter(1, 2, clock) // idle window = 2s

	// Exhaust the bucket.
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("client"); !ok {
			t.Fatalf("request %d denied with tokens available", i)
		}
	}
	if ok, wait := l.allow("client"); ok || wait != time.Second {
		t.Fatalf("empty bucket: allow = %v wait = %v, want denied with 1s retry", ok, wait)
	}

	// After a full idle window the bucket may or may not have been swept —
	// either way the client must get exactly burst tokens back, no more.
	clock.Advance(2 * time.Second)
	// Touch another key so a sweep actually runs before the client returns.
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("fresh key denied")
	}
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("client"); !ok {
			t.Fatalf("request %d after refill window denied — eviction lost tokens", i)
		}
	}
	if ok, _ := l.allow("client"); ok {
		t.Error("third request after refill allowed — eviction granted extra tokens")
	}
}

// TestRateLimiterKeepsActiveBuckets verifies a client that stays active
// is never evicted mid-conversation: its partial-refill state survives
// sweeps.
func TestRateLimiterKeepsActiveBuckets(t *testing.T) {
	clock := newFakeClock()
	l := newRateLimiter(1, 4, clock) // idle window = 4s

	// Exhaust the bucket at t=0, then spend one of the two tokens accrued
	// by t=2s: tokens = 1, last = 2s.
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("steady"); !ok {
			t.Fatalf("request %d denied with tokens available", i)
		}
	}
	clock.Advance(2 * time.Second)
	if ok, _ := l.allow("steady"); !ok {
		t.Fatal("accrued token missing at t=2s")
	}

	// t=4.5s: the bystander triggers a sweep (4.5s past the last one), but
	// steady has only been idle 2.5s < 4s and must survive with its partial
	// state: 1 banked + 2.5 accrued = 3 tokens, not a fresh bucket's 4.
	clock.Advance(2500 * time.Millisecond)
	l.allow("bystander")
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("steady"); !ok {
			t.Fatalf("banked token %d missing — active bucket evicted mid-conversation", i)
		}
	}
	if ok, _ := l.allow("steady"); ok {
		t.Error("4th token granted — partially drained bucket was reset to full burst")
	}
}
