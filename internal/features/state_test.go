package features

import (
	"reflect"
	"testing"
)

// TestBuilderStateRoundTrip pins State → NewVocabBuilderFromState to the
// original builder: identical counters, and a bit-identical Vocabulary.
func TestBuilderStateRoundTrip(t *testing.T) {
	docs := shardTestDocs(29)
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		b.Add(d)
	}
	got := NewVocabBuilderFromState(b.State())
	if !reflect.DeepEqual(got.words, b.words) || !reflect.DeepEqual(got.chars, b.chars) {
		t.Error("round-tripped builder counters diverge")
	}
	if got.numDocs != b.numDocs || got.freqSeen != b.freqSeen {
		t.Errorf("round-tripped builder: numDocs %d/%d freqSeen %v/%v", got.numDocs, b.numDocs, got.freqSeen, b.freqSeen)
	}
	if !reflect.DeepEqual(got.Build(), b.Build()) {
		t.Error("round-tripped builder Builds a different vocabulary")
	}
}

// TestBuilderStateDeterministic pins the serialised form: two builders fed
// the same documents in different orders emit byte-for-byte equal states.
func TestBuilderStateDeterministic(t *testing.T) {
	docs := shardTestDocs(17)
	a := NewVocabBuilder(ReductionConfig())
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		a.Add(d)
	}
	for i := len(docs) - 1; i >= 0; i-- {
		b.Add(docs[i])
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Error("builder state depends on document order")
	}
}

// TestVocabStateRoundTrip pins Vocabulary State → NewVocabularyFromState:
// the reconstructed vocabulary vectorizes bit-identically.
func TestVocabStateRoundTrip(t *testing.T) {
	docs := shardTestDocs(29)
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		b.Add(d)
	}
	v := b.Build()
	got, err := NewVocabularyFromState(v.State())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Error("round-tripped vocabulary diverges")
	}
	for i, d := range docs {
		if !reflect.DeepEqual(got.Vectorize(d), v.Vectorize(d)) {
			t.Fatalf("doc %d: round-tripped vocabulary vectorizes differently", i)
		}
	}
}

// TestVocabStateRejectsMalformed: length mismatches and duplicate grams
// must error, not build a silently wrong index.
func TestVocabStateRejectsMalformed(t *testing.T) {
	docs := shardTestDocs(5)
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		b.Add(d)
	}
	st := b.Build().State()

	short := st
	short.WordIDF = short.WordIDF[:len(short.WordIDF)-1]
	if _, err := NewVocabularyFromState(short); err == nil {
		t.Error("length mismatch accepted")
	}
	dup := st
	dup.Words = append([]GramID{st.Words[1]}, st.Words[1:]...)
	dup.WordIDF = append([]float64{st.WordIDF[1]}, st.WordIDF[1:]...)
	if _, err := NewVocabularyFromState(dup); err == nil {
		t.Error("duplicate gram accepted")
	}
}

// TestAddSortedMatchesAdd: feeding SortedDocs must leave counter-for-
// counter the same builder as feeding the original Docs.
func TestAddSortedMatchesAdd(t *testing.T) {
	docs := shardTestDocs(23)
	plain := NewVocabBuilder(ReductionConfig())
	sorted := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		plain.Add(d)
		sorted.AddSorted(d.Sorted())
	}
	if !reflect.DeepEqual(sorted.words, plain.words) || !reflect.DeepEqual(sorted.chars, plain.chars) {
		t.Error("AddSorted counters diverge from Add")
	}
	if sorted.numDocs != plain.numDocs || sorted.freqSeen != plain.freqSeen {
		t.Error("AddSorted bookkeeping diverges from Add")
	}
}

// TestRemoveSortedIsInverse: Add then Remove of any subset must equal a
// builder that never saw those documents — including the map's key set,
// so a gram whose counters hit zero cannot linger and perturb the top-N
// candidate ordering.
func TestRemoveSortedIsInverse(t *testing.T) {
	docs := shardTestDocs(23)
	full := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		full.AddSorted(d.Sorted())
	}
	for _, d := range docs[17:] {
		full.RemoveSorted(d.Sorted())
	}
	want := NewVocabBuilder(ReductionConfig())
	for _, d := range docs[:17] {
		want.AddSorted(d.Sorted())
	}
	if !reflect.DeepEqual(full.words, want.words) || !reflect.DeepEqual(full.chars, want.chars) {
		t.Error("RemoveSorted left residue (or removed too much)")
	}
	if full.numDocs != want.numDocs || full.freqSeen != want.freqSeen {
		t.Error("RemoveSorted bookkeeping diverges")
	}
	if !reflect.DeepEqual(full.Build(), want.Build()) {
		t.Error("RemoveSorted builder Builds a different vocabulary")
	}
}

// TestBuilderCloneIsIndependent: mutating a clone never leaks into the
// original.
func TestBuilderCloneIsIndependent(t *testing.T) {
	docs := shardTestDocs(11)
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs[:7] {
		b.AddSorted(d.Sorted())
	}
	before := b.State()
	c := b.Clone()
	if !reflect.DeepEqual(c.State(), before) {
		t.Fatal("clone does not equal original")
	}
	for _, d := range docs[7:] {
		c.AddSorted(d.Sorted())
	}
	c.RemoveSorted(docs[0].Sorted())
	if !reflect.DeepEqual(b.State(), before) {
		t.Error("mutating the clone changed the original")
	}
}

// TestVectorizeGramsSortedMatches pins the sorted-document vectorizer to
// VectorizeGrams bit-for-bit.
func TestVectorizeGramsSortedMatches(t *testing.T) {
	docs := shardTestDocs(23)
	b := NewVocabBuilder(ReductionConfig())
	for _, d := range docs {
		b.Add(d)
	}
	v := b.Build()
	for i, d := range docs {
		want := v.VectorizeGrams(d)
		got := v.VectorizeGramsSorted(d.Sorted())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %d: VectorizeGramsSorted diverges from VectorizeGrams", i)
		}
	}
}
