package atomicmix_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/atomicmix"
)

// The fixture is deliberately multi-file: the atomic sites live in
// a.go and the plain accesses in b.go, pinning the package-wide sweep
// (and the harness's multi-file // want matching) in one place.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "internal/serve")
}
