// Package eval implements the evaluation machinery of the paper:
// precision–recall curves over match-score thresholds (§IV-E, Fig. 2/3/5),
// area under the PR curve (§IV-H, Table VI), k-attribution accuracy
// (Table III, Fig. 4), and the §V-A evidence-based pair classification
// (True / Probably True / Unclear / False).
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Prediction is one proposed match: an unknown alias, its best candidate
// from the known set, and the similarity score.
type Prediction struct {
	Unknown   string
	Candidate string
	Score     float64
}

// PRPoint is one operating point of a precision–recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// Curve is a precision–recall curve, ordered by descending threshold
// (i.e. increasing recall).
type Curve struct {
	Points []PRPoint
	// TotalRelevant is the recall denominator used to build the curve.
	TotalRelevant int
}

// PRCurve sweeps the threshold over every prediction score. A pair counts
// as correct when isCorrect(unknown, candidate) is true. totalRelevant is
// the number of unknowns that truly have a match in the known set — the
// recall denominator. In alter-ego experiments every unknown has one, so
// totalRelevant is the number of unknowns.
func PRCurve(preds []Prediction, isCorrect func(unknown, candidate string) bool, totalRelevant int) Curve {
	sorted := append([]Prediction(nil), preds...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].Unknown != sorted[j].Unknown {
			return sorted[i].Unknown < sorted[j].Unknown
		}
		return sorted[i].Candidate < sorted[j].Candidate
	})
	c := Curve{TotalRelevant: totalRelevant}
	if totalRelevant <= 0 {
		return c
	}
	tp, fp := 0, 0
	for i, p := range sorted {
		if isCorrect(p.Unknown, p.Candidate) {
			tp++
		} else {
			fp++
		}
		// Emit a point only at distinct thresholds (ties collapse).
		if i+1 < len(sorted) && sorted[i+1].Score == p.Score {
			continue
		}
		c.Points = append(c.Points, PRPoint{
			Threshold: p.Score,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalRelevant),
		})
	}
	return c
}

// AtThreshold returns precision and recall when accepting pairs with score
// ≥ t. Returns zeros when no prediction clears the threshold.
func (c Curve) AtThreshold(t float64) (precision, recall float64) {
	var best *PRPoint
	for i := range c.Points {
		if c.Points[i].Threshold >= t {
			best = &c.Points[i]
		} else {
			break
		}
	}
	if best == nil {
		return 0, 0
	}
	return best.Precision, best.Recall
}

// ThresholdForRecall returns the highest threshold whose recall is at least
// target, and the curve point there. The paper's Table V reports the
// thresholds associated with 80% recall. ok is false when the curve never
// reaches the target recall.
func (c Curve) ThresholdForRecall(target float64) (PRPoint, bool) {
	for _, p := range c.Points {
		if p.Recall >= target {
			return p, true
		}
	}
	return PRPoint{}, false
}

// BestF1 returns the point maximising F1, a convenient single-number
// summary for tests.
func (c Curve) BestF1() PRPoint {
	var best PRPoint
	bestF1 := -1.0
	for _, p := range c.Points {
		if p.Precision+p.Recall == 0 {
			continue
		}
		f1 := 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
		if f1 > bestF1 {
			bestF1 = f1
			best = p
		}
	}
	return best
}

// AUC integrates precision over recall (trapezoidal), the metric of
// Table VI. An empty curve has AUC 0.
func (c Curve) AUC() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	auc := 0.0
	prevR := 0.0
	prevP := c.Points[0].Precision
	for _, p := range c.Points {
		auc += (p.Recall - prevR) * (p.Precision + prevP) / 2
		prevR, prevP = p.Recall, p.Precision
	}
	return auc
}

// String renders a compact curve summary.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PR curve (%d points, AUC %.3f)", len(c.Points), c.AUC())
	return b.String()
}

// Ranking is an unknown alias's candidate list, best first.
type Ranking struct {
	Unknown    string
	Candidates []string
	Scores     []float64
}

// AccuracyAtK returns the fraction of rankings whose correct candidate
// appears within the first k entries — the k-attribution accuracy of
// Table III and Fig. 4.
func AccuracyAtK(rankings []Ranking, isCorrect func(unknown, candidate string) bool, k int) float64 {
	if len(rankings) == 0 {
		return 0
	}
	hit := 0
	for _, r := range rankings {
		limit := k
		if limit > len(r.Candidates) {
			limit = len(r.Candidates)
		}
		for i := 0; i < limit; i++ {
			if isCorrect(r.Unknown, r.Candidates[i]) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(rankings))
}

// MeanReciprocalRank computes MRR over the rankings, an extension metric
// not in the paper but useful for ablation comparisons.
func MeanReciprocalRank(rankings []Ranking, isCorrect func(unknown, candidate string) bool) float64 {
	if len(rankings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rankings {
		for i, c := range r.Candidates {
			if isCorrect(r.Unknown, c) {
				sum += 1 / float64(i+1)
				break
			}
		}
	}
	return sum / float64(len(rankings))
}

// SameName is the correctness predicate for alter-ego experiments: the
// alter-ego keeps the original alias name, so a match is correct iff the
// names are equal.
func SameName(unknown, candidate string) bool { return unknown == candidate }

// F1 computes the harmonic mean of precision and recall.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// RoundPct renders a ratio as a percentage with one decimal, used by the
// experiment harnesses to print paper-style tables.
func RoundPct(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*math.Round(x*1000)/1000)
}
