// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: <testdata>/src/<pattern>/ holds one package per pattern; the
// pattern doubles as the package's import path, so a testdata directory
// named internal/synth exercises scope rules exactly as the real
// darklight/internal/synth would. Expectations annotate the offending
// line:
//
//	rand.Intn(6) // want `package-level math/rand`
//
// Each backquoted or double-quoted string is a regular expression that
// must match exactly one diagnostic reported on that line; diagnostics
// with no matching expectation (and expectations with no diagnostic)
// fail the test. lint:ignore suppression is applied before matching, so
// testdata can also pin the suppression syntax itself.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"darklight/internal/analysis"
	"darklight/internal/analysis/load"
)

// Result is the outcome of one package run.
type Result struct {
	Pkg         *load.Package
	Diagnostics []analysis.Diagnostic
}

// Run loads each pattern's package from testdata/src, applies the
// analyzer, and reports mismatches via t.Errorf.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) []Result {
	t.Helper()
	var results []Result
	for _, pattern := range patterns {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pattern))
		pkg, err := load.LoadDir(dir, pattern)
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, pattern, err)
			continue
		}
		diags := runOne(t, a, pkg)
		checkWants(t, a, pkg, diags)
		results = append(results, Result{Pkg: pkg, Diagnostics: diags})
	}
	return results
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg *load.Package) []analysis.Diagnostic {
	t.Helper()
	sup := analysis.NewSuppressor(pkg.Fset, pkg.Files)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			if !sup.Suppressed(a.Name, d.Pos) {
				diags = append(diags, d)
			}
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: run on %s: %v", a.Name, pkg.Path, err)
	}
	return diags
}

// expectation is one // want regexp, keyed to a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

func checkWants(t *testing.T, a *analysis.Analyzer, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitWant(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, relFile(pkg, pos), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, relFileName(pkg, w.file), w.line, w.raw)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
}

// splitWant tokenises the payload of a want comment into its quoted
// regexps: sequences of "..." (Go-unquoted) or `...` (verbatim).
func splitWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}

func relFile(pkg *load.Package, pos token.Position) string {
	return relFileName(pkg, pos.Filename)
}

func relFileName(pkg *load.Package, file string) string {
	if rel, err := filepath.Rel(pkg.Dir, file); err == nil {
		return rel
	}
	return file
}
