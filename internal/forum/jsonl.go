package forum

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The on-disk format is JSON Lines: one Message object per line. Aliases
// are reconstructed by grouping on the Author field. JSONL keeps datasets
// streamable — a scraper can append while an analysis job reads.

// WriteJSONL writes every message of the dataset, one JSON object per line.
// Messages are written alias by alias in dataset order.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Aliases {
		for j := range d.Aliases[i].Messages {
			msg := d.Aliases[i].Messages[j]
			if msg.Author == "" {
				msg.Author = d.Aliases[i].Name
			}
			if err := enc.Encode(&msg); err != nil {
				return fmt.Errorf("forum: encode message %s: %w", msg.ID, err)
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL reads messages from r and groups them into aliases. The dataset
// is given the provided name and platform. Aliases come out sorted by name
// so reads are deterministic regardless of input order.
func ReadJSONL(r io.Reader, name string, p Platform) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22) // messages can be long (PGP blocks)
	byAuthor := make(map[string][]Message)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m Message
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("forum: line %d: %w", line, err)
		}
		if m.Author == "" {
			return nil, fmt.Errorf("forum: line %d: message %q has no author", line, m.ID)
		}
		byAuthor[m.Author] = append(byAuthor[m.Author], m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("forum: scan: %w", err)
	}
	names := make([]string, 0, len(byAuthor))
	for a := range byAuthor {
		names = append(names, a)
	}
	sort.Strings(names)
	d := NewDataset(name, p)
	for _, a := range names {
		d.Aliases = append(d.Aliases, Alias{Name: a, Platform: p, Messages: byAuthor[a]})
	}
	return d, nil
}
