package features

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"reduction default", func(c *Config) {}, false},
		{"bad word range", func(c *Config) { c.WordMin = 0 }, true},
		{"inverted word range", func(c *Config) { c.WordMax = c.WordMin - 1 }, true},
		{"bad char range", func(c *Config) { c.CharMin = 0 }, true},
		{"negative budget", func(c *Config) { c.MaxWordGrams = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := ReductionConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTableIIBudgets(t *testing.T) {
	r, f := ReductionConfig(), FinalConfig()
	if r.MaxWordGrams != 60000 || r.MaxCharGrams != 30000 {
		t.Errorf("reduction budgets = %d/%d", r.MaxWordGrams, r.MaxCharGrams)
	}
	if f.MaxWordGrams != 50000 || f.MaxCharGrams != 15000 {
		t.Errorf("final budgets = %d/%d", f.MaxWordGrams, f.MaxCharGrams)
	}
	if NumFreqFeatures != 42 {
		t.Errorf("NumFreqFeatures = %d, want 42 (11+10+21)", NumFreqFeatures)
	}
	if got := len(FreqFeatureNames()); got != 42 {
		t.Errorf("FreqFeatureNames = %d entries", got)
	}
}

func TestExtractCounts(t *testing.T) {
	cfg := Config{WordMin: 1, WordMax: 2, CharMin: 1, CharMax: 2, MaxWordGrams: 100, MaxCharGrams: 100, IncludeFreq: true}
	d := Extract("aa bb aa", cfg)

	// Word unigrams: aa×2, bb×1 → 3; bigrams: "aa bb", "bb aa" → 2.
	if d.WordTotal != 5 {
		t.Errorf("WordTotal = %d, want 5", d.WordTotal)
	}
	if got := d.WordGrams[HashGram("aa")]; got != 2 {
		t.Errorf("count(aa) = %d, want 2", got)
	}
	if got := d.WordGrams[WordGramID("aa", "bb")]; got != 1 {
		t.Errorf("count(aa bb) = %d, want 1", got)
	}
	// Char unigrams: 8 chars; bigrams: 7 windows → 15.
	if d.CharTotal != 15 {
		t.Errorf("CharTotal = %d, want 15", d.CharTotal)
	}
	if got := d.CharGrams[GramID(HashGram("aa"))]; got != 2 {
		t.Errorf("char count(aa) = %d, want 2", got)
	}
}

func TestExtractFreqFeatures(t *testing.T) {
	cfg := ReductionConfig()
	d := Extract("a.b.c!", cfg)
	// 6 chars total, two '.', one '!'.
	dotIdx := strings.IndexRune(".,:;!?'\"-()", '.')
	if dotIdx != 0 {
		t.Fatal("test assumes '.' is the first punctuation feature")
	}
	if got := d.Freq[0]; got != 2.0/6.0 {
		t.Errorf("freq('.') = %v, want %v", got, 2.0/6.0)
	}
	if d.TotalChars != 6 {
		t.Errorf("TotalChars = %d", d.TotalChars)
	}
}

func TestExtractLemmatizes(t *testing.T) {
	cfg := ReductionConfig()
	d := Extract("running dogs were", cfg)
	if d.WordGrams[HashGram("run")] != 1 || d.WordGrams[HashGram("dog")] != 1 || d.WordGrams[HashGram("be")] != 1 {
		t.Error("word grams must be lemmatised")
	}
	if d.WordGrams[HashGram("running")] != 0 {
		t.Error("inflected form must not appear")
	}
	// Char grams come from the raw text.
	if d.CharGrams[GramID(HashGram("runni"))] == 0 {
		t.Error("char grams must come from the original text")
	}
}

func TestExtractUnicodeCharGrams(t *testing.T) {
	cfg := Config{WordMin: 1, WordMax: 1, CharMin: 2, CharMax: 2, IncludeFreq: false}
	d := Extract("héé", cfg)
	// Runes: h, é, é → bigrams "hé", "éé".
	if d.CharTotal != 2 {
		t.Fatalf("CharTotal = %d, want 2", d.CharTotal)
	}
	if d.CharGrams[GramID(HashGram("hé"))] != 1 || d.CharGrams[GramID(HashGram("éé"))] != 1 {
		t.Error("unicode bigrams wrong")
	}
}

func TestVocabTopNSelection(t *testing.T) {
	cfg := Config{WordMin: 1, WordMax: 1, CharMin: 1, CharMax: 1, MaxWordGrams: 2, MaxCharGrams: 1000, IncludeFreq: false}
	vb := NewVocabBuilder(cfg)
	vb.Add(Extract("apple apple apple banana banana cherry", cfg))
	v := vb.Build()
	if v.NumWordGrams() != 2 {
		t.Fatalf("vocab kept %d word grams, want 2", v.NumWordGrams())
	}
	// apple and banana are the top-2; cherry must be out.
	doc := Extract("cherry", cfg)
	vec := v.VectorizeGrams(doc)
	for _, idx := range vec.Idx {
		if idx < 2 {
			t.Error("cherry should not map to a word-gram index")
		}
	}
}

func TestIDFKillsUniversalGrams(t *testing.T) {
	cfg := Config{WordMin: 1, WordMax: 1, CharMin: 1, CharMax: 1, MaxWordGrams: 100, MaxCharGrams: 100, IncludeFreq: false}
	vb := NewVocabBuilder(cfg)
	// "common" appears in every doc; "rare" in one.
	vb.Add(Extract("common rare", cfg))
	for i := 0; i < 9; i++ {
		vb.Add(Extract("common filler", cfg))
	}
	v := vb.Build()
	doc := Extract("common rare", cfg)
	vec := v.Vectorize(doc)
	commonW := vec.Get(lookupWordIdx(t, v, "common"))
	rareW := vec.Get(lookupWordIdx(t, v, "rare"))
	if commonW >= rareW {
		t.Errorf("universal gram weight %v must be below rare gram weight %v", commonW, rareW)
	}
}

func lookupWordIdx(t *testing.T, v *Vocabulary, gram string) uint32 {
	t.Helper()
	idx, ok := v.wordIndex[HashGram(gram)]
	if !ok {
		t.Fatalf("gram %q not in vocabulary", gram)
	}
	return idx
}

func TestVectorizeSortedAndNamespaced(t *testing.T) {
	cfg := ReductionConfig()
	vb := NewVocabBuilder(cfg)
	doc := Extract("the quick brown fox jumps over the lazy dog, again and again! 123", cfg)
	vb.Add(doc)
	v := vb.Build()
	vec := v.Vectorize(doc)
	if !vec.IsSorted() {
		t.Error("Vectorize must return sorted vectors")
	}
	// Freq features live at FreqOffset.
	hasFreq := false
	for _, idx := range vec.Idx {
		if idx >= v.FreqOffset() && idx < v.ActivityOffset() {
			hasFreq = true
		}
		if idx >= v.ActivityOffset() {
			t.Error("Vectorize must not emit activity dims")
		}
	}
	if !hasFreq {
		t.Error("frequency features missing")
	}
	if v.Dims() != int(v.ActivityOffset())+24 {
		t.Error("Dims must reserve 24 activity slots")
	}
}

func TestVectorizeGramsExcludesFreq(t *testing.T) {
	cfg := ReductionConfig()
	vb := NewVocabBuilder(cfg)
	doc := Extract("hello, world! 42", cfg)
	vb.Add(doc)
	v := vb.Build()
	vec := v.VectorizeGrams(doc)
	for _, idx := range vec.Idx {
		if idx >= v.FreqOffset() {
			t.Fatal("VectorizeGrams must not emit frequency features")
		}
	}
}

func TestEmptyDoc(t *testing.T) {
	cfg := ReductionConfig()
	d := Extract("", cfg)
	if d.WordTotal != 0 || d.CharTotal != 0 {
		t.Error("empty text must yield empty counts")
	}
	vb := NewVocabBuilder(cfg)
	vb.Add(d)
	v := vb.Build()
	if got := v.Vectorize(d); got.Len() != 0 {
		t.Errorf("empty doc vector = %v", got)
	}
}

// Property: extraction is deterministic and total counts match the gram
// map sums.
func TestExtractConsistencyProperty(t *testing.T) {
	cfg := Config{WordMin: 1, WordMax: 3, CharMin: 1, CharMax: 5, MaxWordGrams: 1000, MaxCharGrams: 1000, IncludeFreq: true}
	f := func(text string) bool {
		a := Extract(text, cfg)
		b := Extract(text, cfg)
		if a.WordTotal != b.WordTotal || a.CharTotal != b.CharTotal {
			return false
		}
		sum := 0
		for _, c := range a.WordGrams {
			sum += c
		}
		if sum != a.WordTotal {
			return false
		}
		sum = 0
		for _, c := range a.CharGrams {
			sum += c
		}
		return sum == a.CharTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWordGramIDMatchesExtraction(t *testing.T) {
	cfg := Config{WordMin: 2, WordMax: 2, CharMin: 1, CharMax: 1, IncludeFreq: false, Lemmatize: false}
	d := Extract("alpha beta gamma", cfg)
	if d.WordGrams[WordGramID("alpha", "beta")] != 1 {
		t.Error("WordGramID must match countWordGrams hashing")
	}
	if d.WordGrams[WordGramID("beta", "alpha")] != 0 {
		t.Error("n-gram hashing must be order-sensitive")
	}
}
