package forum

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadJSONL feeds arbitrary bytes through the JSONL loader and, for any
// input it accepts, requires the Read → Write → Read round trip to be
// idempotent: the first serialisation is a fixed point. Malformed lines
// must produce an error, never a panic.
func FuzzReadJSONL(f *testing.F) {
	valid := func(msgs ...Message) []byte {
		var b bytes.Buffer
		d := NewDataset("seed", PlatformSynthetic)
		for _, m := range msgs {
			d.Add(Alias{Name: m.Author, Platform: PlatformSynthetic, Messages: []Message{m}})
		}
		if err := WriteJSONL(&b, d); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	ts := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	f.Add(valid(
		Message{ID: "1", Author: "alice", Board: "b", Body: "hello there", PostedAt: ts},
		Message{ID: "2", Author: "bob", Body: "another message", PostedAt: ts.Add(time.Hour)},
	))
	f.Add([]byte(`{"id":"1","author":"a","body":"x"}` + "\n\n" + `{"id":"2","author":"a","body":"y"}`))
	f.Add([]byte(`{"id":"1","body":"no author"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"id":"1","author":"a","posted_at":"bogus"}`))
	f.Add([]byte("{}\n{}"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSONL(bytes.NewReader(data), "fuzz", PlatformSynthetic)
		if err != nil {
			return // malformed input may be rejected, just never panic
		}
		var first bytes.Buffer
		if err := WriteJSONL(&first, d); err != nil {
			t.Fatalf("write of accepted dataset failed: %v", err)
		}
		d2, err := ReadJSONL(bytes.NewReader(first.Bytes()), "fuzz", PlatformSynthetic)
		if err != nil {
			t.Fatalf("re-read of written output failed: %v", err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip changed alias count: %d -> %d", d.Len(), d2.Len())
		}
		var second bytes.Buffer
		if err := WriteJSONL(&second, d2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Read→Write→Read is not idempotent:\nfirst  %q\nsecond %q", first.Bytes(), second.Bytes())
		}
	})
}
