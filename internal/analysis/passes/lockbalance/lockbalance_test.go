package lockbalance_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/lockbalance"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, "testdata", lockbalance.Analyzer, "internal/serve")
}
