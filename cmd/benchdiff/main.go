// Command benchdiff runs the matcher hot-path benchmarks (BenchmarkRank,
// BenchmarkRescore, BenchmarkMatchAll in the repository root) and records
// their results in BENCH_matcher.json — the repo's perf-regression
// trajectory. Run it once from the commit you are starting from and once
// after your change:
//
//	go run ./cmd/benchdiff -phase before
//	go run ./cmd/benchdiff -phase after
//
// Phases merge into one file; when both are present a speedup factor
// (before ns/op divided by after ns/op) is computed per benchmark. Each
// phase stores the median of -count samples, so a single noisy run does
// not skew the trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one phase's measurement of one benchmark (medians over the
// -count samples).
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Entry pairs the two phases of one benchmark.
type Entry struct {
	Before *Metrics `json:"before,omitempty"`
	After  *Metrics `json:"after,omitempty"`
	// Speedup is before.ns_per_op / after.ns_per_op (>1 means faster).
	Speedup float64 `json:"speedup,omitempty"`
}

// File is the BENCH_matcher.json schema.
type File struct {
	Description string            `json:"description"`
	GoVersion   string            `json:"go_version"`
	CPU         string            `json:"cpu,omitempty"`
	Benchmarks  map[string]*Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	phase := flag.String("phase", "", "which side of the change this run measures: before | after")
	count := flag.Int("count", 3, "benchmark sample count (median is recorded)")
	out := flag.String("out", "BENCH_matcher.json", "trajectory file to create or merge into")
	pattern := flag.String("bench", "^(BenchmarkRank|BenchmarkRescore|BenchmarkMatchAll)$", "benchmark selection pattern")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	flag.Parse()
	if *phase != "before" && *phase != "after" {
		fmt.Fprintln(os.Stderr, "benchdiff: -phase must be 'before' or 'after'")
		flag.Usage()
		os.Exit(2)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: go test -bench failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}
	os.Stdout.Write(outBytes)

	samples, cpu := parse(string(outBytes))
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results parsed")
		os.Exit(1)
	}

	f := load(*out)
	f.GoVersion = runtime.Version()
	if cpu != "" {
		f.CPU = cpu
	}
	for name, ms := range samples {
		short := strings.TrimPrefix(name, "Benchmark")
		e := f.Benchmarks[short]
		if e == nil {
			e = &Entry{}
			f.Benchmarks[short] = e
		}
		med := median(ms)
		if *phase == "before" {
			e.Before = &med
		} else {
			e.After = &med
		}
		if e.Before != nil && e.After != nil && e.After.NsPerOp > 0 {
			e.Speedup = round3(e.Before.NsPerOp / e.After.NsPerOp)
		} else {
			e.Speedup = 0
		}
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: recorded %q phase for %d benchmarks in %s\n", *phase, len(samples), *out)
}

// parse collects every sample per benchmark name plus the reported CPU.
func parse(output string) (map[string][]Metrics, string) {
	samples := make(map[string][]Metrics)
	cpu := ""
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var s Metrics
		s.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			s.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			s.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		samples[m[1]] = append(samples[m[1]], s)
	}
	return samples, cpu
}

// median takes the per-field median so one outlier run cannot skew the
// recorded trajectory point.
func median(ms []Metrics) Metrics {
	pick := func(get func(Metrics) float64) float64 {
		vs := make([]float64, len(ms))
		for i, m := range ms {
			vs[i] = get(m)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return Metrics{
		NsPerOp:     pick(func(m Metrics) float64 { return m.NsPerOp }),
		BytesPerOp:  pick(func(m Metrics) float64 { return m.BytesPerOp }),
		AllocsPerOp: pick(func(m Metrics) float64 { return m.AllocsPerOp }),
		Samples:     len(ms),
	}
}

func load(path string) *File {
	f := &File{
		Description: "Matcher hot-path benchmark trajectory. Regenerate with `go run ./cmd/benchdiff -phase before|after`; medians of -count runs, ns/op ratios in `speedup`.",
		Benchmarks:  make(map[string]*Entry),
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return f
	}
	var existing File
	if err := json.Unmarshal(data, &existing); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring unreadable %s: %v\n", path, err)
		return f
	}
	if existing.Benchmarks == nil {
		existing.Benchmarks = make(map[string]*Entry)
	}
	if existing.Description == "" {
		existing.Description = f.Description
	}
	return &existing
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
