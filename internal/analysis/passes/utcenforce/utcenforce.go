// Package utcenforce guards the UTC alignment the paper's 24-bin daily
// activity profiles depend on (§III-C / eq. 1). In the time-handling
// packages (timeutil, activity, forum) every timestamp must be pinned to
// UTC explicitly: a stray time.Local, a time.Unix() left in local time,
// or a time.Date() built in the host zone shifts posts across hour bins
// and day boundaries depending on the machine that runs the pipeline —
// exactly the nondeterminism the equivalence tests cannot catch because
// CI and the author's laptop may share a zone.
package utcenforce

import (
	"go/ast"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultScope lists the packages where UTC alignment is load-bearing.
const DefaultScope = "internal/activity,internal/timeutil,internal/forum"

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the utcenforce pass.
var Analyzer = &analysis.Analyzer{
	Name: "utcenforce",
	Doc: "forbid local-time construction in UTC-critical packages: no time.Local, no bare time.Unix() " +
		"without .UTC(), no time.Date() in a non-UTC location, no t.Local()",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if astquery.IsPkgSelector(pass.TypesInfo, n, "time", "Local") {
				pass.Reportf(n.Pos(), "time.Local leaks the host zone into the activity profile; use time.UTC")
			}
		case *ast.CallExpr:
			checkCall(pass, n, stack)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	switch pkg, name := astquery.PkgFunc(info, call); {
	case pkg == "time" && (name == "Unix" || name == "UnixMilli" || name == "UnixMicro"):
		if !utcImmediately(stack) {
			pass.Reportf(call.Pos(), "time.%s returns a local-zone Time; append .UTC() before binning", name)
		}
	case pkg == "time" && name == "Date":
		if len(call.Args) == 8 && !astquery.IsPkgSelector(info, call.Args[7], "time", "UTC") && !utcImmediately(stack) {
			pass.Reportf(call.Pos(), "time.Date with a non-UTC location; pass time.UTC (or convert with .UTC())")
		}
	case pkg == "time" && name == "ParseInLocation":
		if len(call.Args) == 3 && !astquery.IsPkgSelector(info, call.Args[2], "time", "UTC") {
			pass.Reportf(call.Pos(), "time.ParseInLocation with a non-UTC location shifts timestamps by host zone")
		}
	}
	if recv, name := astquery.MethodCall(info, call); recv != nil && name == "Local" &&
		astquery.IsNamed(recv, "time", "Time") {
		pass.Reportf(call.Pos(), "Time.Local() converts into the host zone; activity bins must stay UTC")
	}
}

// utcImmediately reports whether the call under inspection is the
// receiver of an immediate .UTC() call — stack ends
// [... CallExpr(.UTC) SelectorExpr CallExpr(inspected)].
func utcImmediately(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "UTC" {
		return false
	}
	outer, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && outer.Fun == sel
}
