// Seeded violations for the utcenforce analyzer: this fake package's
// import path ("internal/timeutil") is inside the UTC-critical scope.
package timeutil

import "time"

var hostZone = time.Local // want `time\.Local leaks the host zone`

func badUnix(sec int64) time.Time {
	return time.Unix(sec, 0) // want `time\.Unix returns a local-zone Time`
}

func badUnixMilli(ms int64) time.Time {
	return time.UnixMilli(ms) // want `time\.UnixMilli returns a local-zone Time`
}

func goodUnix(sec int64) time.Time {
	return time.Unix(sec, 0).UTC()
}

func badDate(loc *time.Location) time.Time {
	return time.Date(2017, time.January, 1, 0, 0, 0, 0, loc) // want `time\.Date with a non-UTC location`
}

func goodDate() time.Time {
	return time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)
}

func goodDateConverted(loc *time.Location) time.Time {
	// Building in a forum's zone and converting immediately is fine: the
	// value that escapes is UTC.
	return time.Date(2017, time.January, 1, 0, 0, 0, 0, loc).UTC()
}

func badParse(layout, value string, loc *time.Location) (time.Time, error) {
	return time.ParseInLocation(layout, value, loc) // want `time\.ParseInLocation with a non-UTC location`
}

func goodParse(layout, value string) (time.Time, error) {
	return time.ParseInLocation(layout, value, time.UTC)
}

func badLocal(t time.Time) time.Time {
	return t.Local() // want `Time\.Local\(\) converts into the host zone`
}

func suppressed(sec int64) time.Time {
	//lint:ignore utcenforce demo: the display layer may show local time
	return time.Unix(sec, 0)
}
