// Package forum defines the data model shared by every stage of the
// darklight pipeline: messages, aliases, and datasets collected from (or
// generated to stand in for) web forums.
//
// The model is intentionally minimal — the linking methodology of the paper
// consumes only (alias, message text, timestamp) triples plus the forum and
// board the message was posted on. Everything else (votes, threads, user
// profiles) is irrelevant to attribution and is not modelled.
package forum

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"
)

// Platform identifies the kind of site a dataset was collected from.
type Platform int

// Platforms under study. Reddit is the "open web" platform; TheMajesticGarden
// and DreamMarket are the two Dark Web forums of the paper. Synthetic marks
// generated corpora that do not correspond to a concrete site.
const (
	PlatformUnknown Platform = iota
	PlatformReddit
	PlatformTheMajesticGarden
	PlatformDreamMarket
	PlatformSynthetic
)

var platformNames = map[Platform]string{
	PlatformUnknown:           "unknown",
	PlatformReddit:            "reddit",
	PlatformTheMajesticGarden: "tmg",
	PlatformDreamMarket:       "dm",
	PlatformSynthetic:         "synthetic",
}

// String returns the short lowercase name used in dataset files and CLIs.
func (p Platform) String() string {
	if s, ok := platformNames[p]; ok {
		return s
	}
	return fmt.Sprintf("platform(%d)", int(p))
}

// ParsePlatform converts a short name back into a Platform.
func ParsePlatform(s string) (Platform, error) {
	for p, name := range platformNames {
		if name == s {
			return p, nil
		}
	}
	return PlatformUnknown, fmt.Errorf("forum: unknown platform %q", s)
}

// Message is a single forum post by one alias.
type Message struct {
	// ID is unique within a dataset. Synthetic generators and scrapers are
	// responsible for assigning it.
	ID string `json:"id"`
	// Author is the alias (nickname) that posted the message.
	Author string `json:"author"`
	// Board is the sub-community: a subreddit on Reddit, a section on a
	// Dark Web forum.
	Board string `json:"board,omitempty"`
	// Thread groups messages of one discussion.
	Thread string `json:"thread,omitempty"`
	// Body is the raw text as collected. The normalize package produces the
	// polished form; Body is never mutated in place.
	Body string `json:"body"`
	// PostedAt is the post time. Scrapers record the forum-local time; the
	// activity package aligns everything to UTC before binning.
	PostedAt time.Time `json:"posted_at"`
	// Quoted is any quoted text that the platform marks explicitly
	// (e.g. "> ..." on Reddit). Kept separate so cleaning can verify its
	// removal.
	Quoted string `json:"quoted,omitempty"`
}

// WordCount counts whitespace-separated tokens in the body. It is the word
// metric used by every threshold in the paper (≥10-word messages, ≥1,500
// words per alias, ≥3,000 words for alter-ego sources). The count equals
// len(strings.Fields(m.Body)) without materialising the fields — WordCount
// sits inside every refinement filter and the longest-first sort
// comparator, where the per-call allocation dominated.
func (m *Message) WordCount() int {
	return countWords(m.Body)
}

// countWords counts maximal runs of non-space runes, the field boundary
// rule of strings.Fields (unicode.IsSpace).
func countWords(s string) int {
	n := 0
	inField := false
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			// ASCII fast path, mirroring strings.Fields.
			if asciiSpace[c] {
				inField = false
			} else if !inField {
				n++
				inField = true
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if unicode.IsSpace(r) {
			inField = false
		} else if !inField {
			n++
			inField = true
		}
		i += size
	}
	return n
}

// asciiSpace marks the ASCII bytes unicode.IsSpace reports true for.
var asciiSpace = [utf8.RuneSelf]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// DistinctWordRatio returns the number of distinct (case-folded) words over
// the total number of words. The polishing step 6 of the paper discards
// messages with a ratio below 0.5 as spam. A message with no words has
// ratio 0.
func (m *Message) DistinctWordRatio() float64 {
	fields := strings.Fields(m.Body)
	if len(fields) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		seen[strings.ToLower(f)] = struct{}{}
	}
	return float64(len(seen)) / float64(len(fields))
}

// Alias is one account on one platform together with everything it posted.
type Alias struct {
	// Name is the nickname as it appears on the platform.
	Name string `json:"name"`
	// Platform the alias belongs to.
	Platform Platform `json:"platform"`
	// Messages posted by this alias, in no particular order unless a
	// pipeline stage documents otherwise.
	Messages []Message `json:"messages"`
}

// Key returns the globally unique identifier "platform/name" for the alias.
func (a *Alias) Key() string { return a.Platform.String() + "/" + a.Name }

// TotalWords sums the word counts of all messages.
func (a *Alias) TotalWords() int {
	total := 0
	for i := range a.Messages {
		total += a.Messages[i].WordCount()
	}
	return total
}

// Timestamps returns the posting times of all messages, in message order.
func (a *Alias) Timestamps() []time.Time {
	ts := make([]time.Time, len(a.Messages))
	for i := range a.Messages {
		ts[i] = a.Messages[i].PostedAt
	}
	return ts
}

// Text concatenates all message bodies separated by newlines. Stages that
// need a bounded amount of text should use corpus.SelectWords instead.
func (a *Alias) Text() string {
	var b strings.Builder
	for i := range a.Messages {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(a.Messages[i].Body)
	}
	return b.String()
}

// SortMessagesByLengthDesc orders messages from the longest (in words) to
// the shortest, breaking ties by ID for determinism. The paper selects
// messages longest-first when truncating an alias to 1,500 words.
// Word counts are computed once per message up front; recomputing them in
// the comparator made the sort O(n log n) body scans.
func (a *Alias) SortMessagesByLengthDesc() {
	counts := make([]int, len(a.Messages))
	order := make([]int, len(a.Messages))
	for i := range a.Messages {
		counts[i] = a.Messages[i].WordCount()
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		oi, oj := order[i], order[j]
		if counts[oi] != counts[oj] {
			return counts[oi] > counts[oj]
		}
		return a.Messages[oi].ID < a.Messages[oj].ID
	})
	sorted := make([]Message, len(a.Messages))
	for k, idx := range order {
		sorted[k] = a.Messages[idx]
	}
	copy(a.Messages, sorted)
}

// IsLikelyBot reports whether the alias name starts or ends with "bot"
// (case-insensitive), the heuristic of polishing step 1. Trailing digits are
// ignored so that "tipbot3000" is caught too.
func (a *Alias) IsLikelyBot() bool {
	name := strings.ToLower(a.Name)
	trimmed := strings.TrimRightFunc(name, unicode.IsDigit)
	return strings.HasPrefix(name, "bot") || strings.HasSuffix(trimmed, "bot")
}

// Dataset is a named collection of aliases from one platform.
type Dataset struct {
	// Name labels the dataset ("Reddit", "AE_Reddit", "TMG", ...).
	Name string `json:"name"`
	// Platform all aliases belong to.
	Platform Platform `json:"platform"`
	// Aliases in the dataset.
	Aliases []Alias `json:"aliases"`
}

// NewDataset returns an empty dataset with the given name and platform.
func NewDataset(name string, p Platform) *Dataset {
	return &Dataset{Name: name, Platform: p}
}

// Len returns the number of aliases.
func (d *Dataset) Len() int { return len(d.Aliases) }

// TotalMessages counts messages across all aliases.
func (d *Dataset) TotalMessages() int {
	total := 0
	for i := range d.Aliases {
		total += len(d.Aliases[i].Messages)
	}
	return total
}

// TotalWords counts words across all aliases.
func (d *Dataset) TotalWords() int {
	total := 0
	for i := range d.Aliases {
		total += d.Aliases[i].TotalWords()
	}
	return total
}

// Add appends an alias. The alias platform is forced to the dataset's.
func (d *Dataset) Add(a Alias) {
	a.Platform = d.Platform
	d.Aliases = append(d.Aliases, a)
}

// ErrAliasNotFound is returned by Find when no alias has the given name.
var ErrAliasNotFound = errors.New("forum: alias not found")

// Find returns a pointer to the alias with the given name.
func (d *Dataset) Find(name string) (*Alias, error) {
	for i := range d.Aliases {
		if d.Aliases[i].Name == name {
			return &d.Aliases[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q in %s", ErrAliasNotFound, name, d.Name)
}

// Names returns the alias names in dataset order.
func (d *Dataset) Names() []string {
	names := make([]string, len(d.Aliases))
	for i := range d.Aliases {
		names[i] = d.Aliases[i].Name
	}
	return names
}

// SortByName orders aliases lexicographically, for deterministic iteration.
func (d *Dataset) SortByName() {
	sort.Slice(d.Aliases, func(i, j int) bool {
		return d.Aliases[i].Name < d.Aliases[j].Name
	})
}

// Filter returns a new dataset containing only the aliases accepted by keep.
// Message slices are shared with the original dataset.
func (d *Dataset) Filter(keep func(*Alias) bool) *Dataset {
	out := NewDataset(d.Name, d.Platform)
	for i := range d.Aliases {
		if keep(&d.Aliases[i]) {
			out.Aliases = append(out.Aliases, d.Aliases[i])
		}
	}
	return out
}

// Merge returns a new dataset with the aliases of both inputs. The paper
// merges TMG with DM into "DarkWeb" for the §IV-G experiment. Every alias
// is renamed to "name@platform" so that (a) names stay unique across
// inputs and (b) merging a dataset and separately merging its alter-ego
// split yields consistent names — name-equality ground truth survives the
// merge.
func Merge(name string, p Platform, datasets ...*Dataset) *Dataset {
	out := NewDataset(name, p)
	for _, d := range datasets {
		for i := range d.Aliases {
			a := d.Aliases[i]
			a.Name = a.Name + "@" + a.Platform.String()
			a.Platform = p
			out.Aliases = append(out.Aliases, a)
		}
	}
	return out
}

// HashNickname returns a stable hex digest of a nickname. Mirrors the
// ethics handling of §VII: stored datasets never contain raw nicknames.
func HashNickname(name string) string {
	sum := sha256.Sum256([]byte("darklight:" + name))
	return hex.EncodeToString(sum[:8])
}

// Anonymize returns a copy of the dataset with every author nickname
// replaced by its hash. The mapping is returned so an operator holding the
// original data can invert it.
func (d *Dataset) Anonymize() (*Dataset, map[string]string) {
	mapping := make(map[string]string, len(d.Aliases))
	out := NewDataset(d.Name, d.Platform)
	for i := range d.Aliases {
		orig := d.Aliases[i]
		h := HashNickname(orig.Name)
		mapping[h] = orig.Name
		msgs := make([]Message, len(orig.Messages))
		copy(msgs, orig.Messages)
		for j := range msgs {
			msgs[j].Author = h
		}
		out.Aliases = append(out.Aliases, Alias{Name: h, Platform: orig.Platform, Messages: msgs})
	}
	return out, mapping
}
