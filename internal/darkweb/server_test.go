package darkweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darklight/internal/forum"
)

func testDataset() *forum.Dataset {
	d := forum.NewDataset("test-forum", forum.PlatformDreamMarket)
	t0 := time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)
	var msgs []forum.Message
	for i := 0; i < 45; i++ { // 45 posts in one thread → 3 pages at 20/page
		msgs = append(msgs, forum.Message{
			ID: "m" + itoa(i), Author: "alice", Board: "reviews", Thread: "big-thread",
			Body: "post number " + itoa(i) + ` with <angle> & "quote"`, PostedAt: t0.Add(time.Duration(i) * time.Hour),
		})
	}
	d.Add(forum.Alias{Name: "alice", Messages: msgs})
	d.Add(forum.Alias{Name: "bob", Messages: []forum.Message{
		{ID: "b1", Author: "bob", Board: "scams", Thread: "warning-1", Body: "watch out", PostedAt: t0},
		{ID: "b2", Author: "bob", Body: "no board or thread", PostedAt: t0},
	}})
	return d
}

func itoa(i int) string {
	s := ""
	if i == 0 {
		return "0"
	}
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerIndex(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, board := range []string{"reviews", "scams", "general"} {
		if !strings.Contains(body, `href="/board/`+board+`"`) {
			t.Errorf("index missing board %s", board)
		}
	}
	if boards := srv.Boards(); len(boards) != 3 {
		t.Errorf("Boards = %v", boards)
	}
}

func TestServerBoardAndThreadPagination(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/board/reviews")
	if !strings.Contains(body, `href="/thread/big-thread"`) {
		t.Error("board page missing thread link")
	}

	// Thread page 0: 20 posts + next link.
	_, p0 := get(t, ts, "/thread/big-thread")
	if got := strings.Count(p0, "<article"); got != PostsPerPage {
		t.Errorf("page 0 has %d posts", got)
	}
	if !strings.Contains(p0, `href="/thread/big-thread?page=1"`) {
		t.Error("page 0 missing next link")
	}
	// Last page: 5 posts, no next link.
	_, p2 := get(t, ts, "/thread/big-thread?page=2")
	if got := strings.Count(p2, "<article"); got != 5 {
		t.Errorf("page 2 has %d posts", got)
	}
	if strings.Contains(p2, `class="next"`) {
		t.Error("last page must not have a next link")
	}
	// Page beyond the end clamps to the last page.
	_, pbig := get(t, ts, "/thread/big-thread?page=99")
	if got := strings.Count(pbig, "<article"); got != 5 {
		t.Errorf("clamped page has %d posts", got)
	}
}

func TestServerEscapesHTML(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/thread/big-thread")
	if strings.Contains(body, "<angle>") {
		t.Error("post bodies must be HTML-escaped")
	}
	if !strings.Contains(body, "&lt;angle&gt;") {
		t.Error("escaped body missing")
	}
}

func TestServerNotFound(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/board/nope", "/thread/nope", "/bogus"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("%s returned %d", path, code)
		}
	}
}

func TestServerFailureInjection(t *testing.T) {
	srv := NewServer("flaky", testDataset(), Options{FailureRate: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/"); code != http.StatusServiceUnavailable {
		t.Errorf("failure rate 1 must 503, got %d", code)
	}
}

func TestUnthreadedMessagesGetDefaultThread(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/board/general")
	if !strings.Contains(body, "general-general") {
		t.Error("boardless message must land in the general board's default thread")
	}
}
