package errdrop_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "internal/attribution")
}
