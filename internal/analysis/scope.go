package analysis

import "strings"

// Scope is a comma-separable list of package-path patterns. A pattern
// matches a package when its slash-separated segments occur as a
// contiguous run anywhere in the package's import path, so the one
// pattern "internal/synth" covers both the real package
// ("darklight/internal/synth") and its analysistest stand-in
// ("internal/synth"), and "cmd" covers every command. The special
// pattern "all" matches everything.
//
// A pattern starting with "!" is an exclusion and always wins: the scope
// "internal/obs,!internal/obs/reqtrace" covers the obs tree except the
// reqtrace subpackage, regardless of pattern order. A scope of only
// exclusions matches nothing (there is no implicit "all").
type Scope []string

// NewScope splits a comma-separated pattern list, dropping empties.
func NewScope(csv string) Scope {
	var s Scope
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			s = append(s, p)
		}
	}
	return s
}

// String renders the scope as its flag syntax.
func (s Scope) String() string { return strings.Join(s, ",") }

// Set implements flag.Value so a Scope can back an analyzer flag.
func (s *Scope) Set(csv string) error {
	*s = NewScope(csv)
	return nil
}

// Matches reports whether any positive pattern matches the package path
// and no "!"-negated pattern does. Exclusions are checked first so they
// win independent of where they sit in the list.
func (s Scope) Matches(pkgPath string) bool {
	for _, pat := range s {
		if neg, ok := strings.CutPrefix(pat, "!"); ok && (neg == "all" || matchSegments(neg, pkgPath)) {
			return false
		}
	}
	for _, pat := range s {
		if strings.HasPrefix(pat, "!") {
			continue
		}
		if pat == "all" || matchSegments(pat, pkgPath) {
			return true
		}
	}
	return false
}

func matchSegments(pattern, path string) bool {
	if pattern == path {
		return true
	}
	want := strings.Split(pattern, "/")
	have := strings.Split(path, "/")
	for i := 0; i+len(want) <= len(have); i++ {
		ok := true
		for j := range want {
			if have[i+j] != want[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
