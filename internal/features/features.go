// Package features implements the stylometric feature extraction of §IV-A
// and Table II of the paper: word 1–3-grams and character 1–5-grams over
// lemmatised text, plus the frequencies of punctuation marks, digits, and
// special characters. N-grams are ranked by corpus frequency, the top N
// are kept as the vocabulary, and per-document weights are TF-IDF.
//
// N-grams are identified by a 64-bit FNV-1a hash rather than by string —
// feature hashing. At 64 bits, collisions across even a million distinct
// grams are vanishingly rare (birthday bound ≈ 2.7e-8), and extraction
// avoids a string allocation per gram, which is what makes the single-CPU
// experiment sweeps feasible. The hash is fixed (not seeded per process)
// so runs are reproducible.
//
// The package is deliberately two-pass friendly: extraction (Extract) is
// cheap and repeatable, so callers keep only compact sparse vectors and
// rebuild vocabularies over candidate subsets — exactly what the paper's
// second cosine-similarity stage requires.
package features

import (
	"fmt"
	"strings"

	"darklight/internal/lemma"
	"darklight/internal/tokenize"
)

// Config selects the feature-space shape. Table II of the paper defines two
// instances: the space-reduction configuration and the final (second-stage)
// configuration.
type Config struct {
	// WordMin..WordMax are the word n-gram orders (paper: 1..3).
	WordMin, WordMax int
	// CharMin..CharMax are the character n-gram orders (paper: 1..5).
	CharMin, CharMax int
	// MaxWordGrams is the vocabulary budget for word n-grams
	// (paper: 60,000 reduction / 50,000 final).
	MaxWordGrams int
	// MaxCharGrams is the vocabulary budget for char n-grams
	// (paper: 30,000 reduction / 15,000 final).
	MaxCharGrams int
	// Lemmatize runs the lemmatiser before word n-gram extraction.
	Lemmatize bool
	// IncludeFreq adds the 42 punctuation/digit/special-char frequency
	// dimensions (11 + 10 + 21, Table II).
	IncludeFreq bool
}

// ReductionConfig returns the Table II "Space Reduction" column.
func ReductionConfig() Config {
	return Config{
		WordMin: 1, WordMax: 3,
		CharMin: 1, CharMax: 5,
		MaxWordGrams: 60000,
		MaxCharGrams: 30000,
		Lemmatize:    true,
		IncludeFreq:  true,
	}
}

// FinalConfig returns the Table II "Final" column, used when rescoring the
// k candidates.
func FinalConfig() Config {
	cfg := ReductionConfig()
	cfg.MaxWordGrams = 50000
	cfg.MaxCharGrams = 15000
	return cfg
}

// SameExtraction reports whether c and o produce identical Extract output
// for every text. The vocabulary budgets (MaxWordGrams, MaxCharGrams) are
// selection-time parameters consumed by VocabBuilder.Build — Extract never
// reads them — while every other field changes the raw counts. The
// attribution layer uses this to extract an unknown's document once and
// share it between the two stages: the paper's reduction and final configs
// differ only in their budgets.
func (c Config) SameExtraction(o Config) bool {
	c.MaxWordGrams, c.MaxCharGrams = 0, 0
	o.MaxWordGrams, o.MaxCharGrams = 0, 0
	return c == o
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WordMin < 1 || c.WordMax < c.WordMin:
		return fmt.Errorf("features: invalid word n-gram range [%d,%d]", c.WordMin, c.WordMax)
	case c.CharMin < 1 || c.CharMax < c.CharMin:
		return fmt.Errorf("features: invalid char n-gram range [%d,%d]", c.CharMin, c.CharMax)
	case c.MaxWordGrams < 0 || c.MaxCharGrams < 0:
		return fmt.Errorf("features: negative vocabulary budget")
	}
	return nil
}

// Frequency feature character sets (Table II: 11 punctuation marks, 10
// digits, 21 special characters).
const (
	punctChars   = `.,:;!?'"-()`
	digitChars   = "0123456789"
	specialChars = "@#$%^&*+=/\\|<>[]{}~`_"
)

// NumFreqFeatures is the number of frequency dimensions (11 + 10 + 21).
const NumFreqFeatures = len(punctChars) + len(digitChars) + len(specialChars)

// FreqFeatureNames returns a label per frequency dimension, for reports.
func FreqFeatureNames() []string {
	names := make([]string, 0, NumFreqFeatures)
	for _, c := range punctChars {
		names = append(names, "punct:"+string(c))
	}
	for _, c := range digitChars {
		names = append(names, "digit:"+string(c))
	}
	for _, c := range specialChars {
		names = append(names, "special:"+string(c))
	}
	return names
}

// GramID is the 64-bit hash identifying one n-gram.
type GramID uint64

// HashGram returns the feature id of a gram given as a string. Exposed for
// tests and for tools that need to look up a specific gram.
func HashGram(s string) GramID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return GramID(h)
}

// Doc holds the raw feature counts of one document (the concatenated text
// of one alias). Docs are transient: build them, feed them to a
// VocabBuilder or Vectorize them, then let them go.
type Doc struct {
	WordGrams  map[GramID]int
	CharGrams  map[GramID]int
	WordTotal  int
	CharTotal  int
	Freq       [NumFreqFeatures]float64
	TotalChars int
}

// Extract computes all raw feature counts for one text under cfg.
func Extract(text string, cfg Config) *Doc {
	d := &Doc{
		WordGrams: make(map[GramID]int, 1024),
		CharGrams: make(map[GramID]int, 4096),
	}
	words := tokenize.Words(text)
	if cfg.Lemmatize {
		words = lemma.LemmatizeAll(words)
	}
	// Pre-hash every word once; n-grams chain the hashes.
	wordHashes := make([]uint64, len(words))
	for i, w := range words {
		wordHashes[i] = uint64(HashGram(w))
	}
	for n := cfg.WordMin; n <= cfg.WordMax; n++ {
		countWordGrams(d.WordGrams, wordHashes, n, &d.WordTotal)
	}
	for n := cfg.CharMin; n <= cfg.CharMax; n++ {
		countCharGrams(d.CharGrams, text, n, &d.CharTotal)
	}
	if cfg.IncludeFreq {
		extractFreq(text, &d.Freq, &d.TotalChars)
	}
	return d
}

// mix combines two 64-bit hashes order-sensitively (an n-gram is a
// sequence, not a set).
func mix(a, b uint64) uint64 {
	a ^= b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)
	a *= 0xff51afd7ed558ccd
	return a ^ (a >> 33)
}

// countWordGrams counts word n-grams by chaining pre-computed word hashes.
func countWordGrams(into map[GramID]int, wordHashes []uint64, n int, total *int) {
	if len(wordHashes) < n {
		return
	}
	for i := 0; i+n <= len(wordHashes); i++ {
		h := wordHashes[i]
		for j := 1; j < n; j++ {
			h = mix(h, wordHashes[i+j])
		}
		into[GramID(h)]++
		*total++
	}
}

// countCharGrams counts rune n-grams using a rolling ring of rune start
// offsets: each gram is hashed directly from the original string slice —
// no []rune materialisation, no per-gram allocation. Ranging over a string
// yields rune start offsets, so a window of the last n starts identifies
// each gram's byte range.
func countCharGrams(into map[GramID]int, text string, n int, total *int) {
	const maxN = 16
	if n < 1 || n > maxN {
		return
	}
	var ring [maxN]int
	runeCount := 0
	for i := range text {
		if runeCount >= n {
			start := ring[runeCount%n] // offset of the rune n positions back
			into[GramID(hashBytes(text[start:i]))]++
			*total++
		}
		ring[runeCount%n] = i
		runeCount++
	}
	if runeCount >= n {
		start := ring[runeCount%n]
		into[GramID(hashBytes(text[start:]))]++
		*total++
	}
}

func hashBytes(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func extractFreq(text string, freq *[NumFreqFeatures]float64, totalChars *int) {
	var counts [128]int
	total := 0
	for _, r := range text {
		if r < 128 {
			counts[r]++
		}
		total++
	}
	*totalChars = total
	if total == 0 {
		return
	}
	i := 0
	for _, set := range []string{punctChars, digitChars, specialChars} {
		for _, c := range set {
			freq[i] = float64(counts[c]) / float64(total)
			i++
		}
	}
}

// WordGramID returns the id of a multi-word gram the way countWordGrams
// hashes it, for callers that need to query a specific word sequence: the
// id of the bigram "not sure" is WordGramID("not", "sure"). Words are
// lowercased but not lemmatised — pass lemmas when the config lemmatises.
func WordGramID(words ...string) GramID {
	if len(words) == 0 {
		return 0
	}
	h := uint64(HashGram(strings.ToLower(words[0])))
	for _, w := range words[1:] {
		h = mix(h, uint64(HashGram(strings.ToLower(w))))
	}
	return GramID(h)
}
