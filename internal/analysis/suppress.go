package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the same line as the finding, or on the line directly above it,
// silences matching diagnostics. The analyzer list may be "all". The
// reason is mandatory — a bare //lint:ignore suppresses nothing, so every
// waiver in the tree carries its justification.
const ignorePrefix = "lint:ignore "

// ignoreDirective is one parsed lint:ignore comment.
type ignoreDirective struct {
	names  []string // analyzer names, or ["all"]
	reason string
}

func (d ignoreDirective) matches(analyzer string) bool {
	for _, n := range d.names {
		if n == "all" || n == analyzer {
			return true
		}
	}
	return false
}

// Suppressor answers whether a diagnostic is silenced by a lint:ignore
// directive. Build one per package with NewSuppressor.
type Suppressor struct {
	fset *token.FileSet
	// byLine maps filename -> line -> directives on that line.
	byLine map[string]map[int][]ignoreDirective
}

// NewSuppressor indexes every lint:ignore directive in the files.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, byLine: make(map[string]map[int][]ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.SplitN(rest, " ", 2)
				if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" {
					continue // no reason given: directive is inert
				}
				d := ignoreDirective{
					names:  NewScope(fields[0]),
					reason: strings.TrimSpace(fields[1]),
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]ignoreDirective)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive on its line or the line above.
func (s *Suppressor) Suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.matches(analyzer) {
				return true
			}
		}
	}
	return false
}
